//! Workload-aware task decomposition for the edge-range driver.
//!
//! The parallel driver splits the directed edge range `0..m` into tasks.
//! How it splits matters twice over:
//!
//! * **Balance** — uniform edge counts are not uniform work. A hub source
//!   with degree 10⁴ makes its task an order of magnitude more expensive
//!   than a task of leaf edges, and the whole run waits on the straggler.
//! * **Source alignment** — per-source kernels (BMP, BMP-RF) rebuild their
//!   bitmap whenever a task starts mid-source: the same source is re-indexed
//!   once per task that touches it. Cutting only on source boundaries makes
//!   `begin_source` run once per (source, run) instead of once per
//!   (source, task).
//!
//! [`SchedulePolicy::Uniform`] reproduces the historical fixed-size chunks
//! byte-for-byte and stays the default. [`SchedulePolicy::Balanced`] prices
//! every source with the kernel's [`CostModel`], prefix-sums the costs, and
//! binary-searches near-equal cut points that always land on source
//! boundaries.

use std::ops::Range;

use cnc_graph::CsrGraph;
use cnc_intersect::CostModel;
use cnc_workload::Workload;

/// How the parallel driver decomposes the edge range into tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Fixed-size contiguous chunks of `task_size` edges (the historical
    /// behavior, kept as the baseline). Cuts ignore source boundaries.
    Uniform {
        /// Edges per task; clamped to at least 1.
        task_size: usize,
    },
    /// Cost-balanced, source-aligned decomposition into at most `tasks`
    /// tasks. Cut points are chosen so every task carries a near-equal
    /// share of the kernel's estimated work, and always fall on source
    /// boundaries.
    Balanced {
        /// Upper bound on the number of tasks; clamped to at least 1.
        /// Degenerate cuts (empty tasks) are merged away, so the actual
        /// count may be lower.
        tasks: usize,
    },
}

/// The historical default chunk size of the uniform policy.
pub const DEFAULT_TASK_SIZE: usize = 8192;

impl Default for SchedulePolicy {
    fn default() -> Self {
        SchedulePolicy::Uniform {
            task_size: DEFAULT_TASK_SIZE,
        }
    }
}

impl SchedulePolicy {
    /// Uniform chunks of `task_size` edges (clamped to ≥ 1).
    pub fn uniform(task_size: usize) -> Self {
        SchedulePolicy::Uniform {
            task_size: task_size.max(1),
        }
    }

    /// Cost-balanced decomposition into at most `tasks` tasks (clamped
    /// to ≥ 1).
    pub fn balanced(tasks: usize) -> Self {
        SchedulePolicy::Balanced {
            tasks: tasks.max(1),
        }
    }
}

/// A concrete decomposition of `0..m` into contiguous tasks, plus the cost
/// model's estimate of the heaviest and lightest task (for observability;
/// zero when estimates were not requested).
#[derive(Debug, Clone)]
pub struct Schedule {
    tasks: Vec<Range<usize>>,
    est_cost_max: u64,
    est_cost_min: u64,
}

impl Schedule {
    /// Decompose `g`'s directed edge range under `policy`, pricing pairs
    /// and sources through `workload` (CNC prices every pair with the raw
    /// kernel model; pruning workloads zero out uncovered pairs, so their
    /// balanced cuts visibly differ on the same graph).
    ///
    /// `with_estimates` controls whether per-task cost estimates are
    /// computed for the uniform policy (the balanced policy prices every
    /// source anyway, so its estimates are free). Skipping them keeps the
    /// unobserved uniform path free of the O(E) costing pass.
    pub fn compute<W: Workload>(
        g: &CsrGraph,
        policy: SchedulePolicy,
        model: &CostModel,
        workload: &W,
        with_estimates: bool,
    ) -> Self {
        let m = g.num_directed_edges();
        if m == 0 {
            return Schedule {
                tasks: Vec::new(),
                est_cost_max: 0,
                est_cost_min: 0,
            };
        }
        match policy {
            SchedulePolicy::Uniform { task_size } => {
                let t = task_size.max(1);
                // Reproduce the legacy chunks exactly: task k covers
                // [k*t, min((k+1)*t, m)). Saturating arithmetic keeps
                // t = usize::MAX well-defined.
                let tasks: Vec<Range<usize>> = (0..m.div_ceil(t))
                    .map(|k| {
                        let start = k.saturating_mul(t);
                        start..start.saturating_add(t).min(m)
                    })
                    .collect();
                let (est_cost_max, est_cost_min) = if with_estimates {
                    let prefix = source_cost_prefix(g, model, workload);
                    estimate_spread(g, &prefix, &tasks)
                } else {
                    (0, 0)
                };
                Schedule {
                    tasks,
                    est_cost_max,
                    est_cost_min,
                }
            }
            SchedulePolicy::Balanced { tasks: want } => {
                let want = want.max(1);
                let prefix = source_cost_prefix(g, model, workload);
                let bounds = balanced_bounds(g, &prefix, want);
                let tasks: Vec<Range<usize>> = bounds.windows(2).map(|w| w[0]..w[1]).collect();
                let (est_cost_max, est_cost_min) = estimate_spread(g, &prefix, &tasks);
                Schedule {
                    tasks,
                    est_cost_max,
                    est_cost_min,
                }
            }
        }
    }

    /// The task ranges, in edge order. Disjoint and covering `0..m`.
    pub fn tasks(&self) -> &[Range<usize>] {
        &self.tasks
    }

    /// Estimated cost of the most expensive task (0 when not computed).
    pub fn est_cost_max(&self) -> u64 {
        self.est_cost_max
    }

    /// Estimated cost of the cheapest task (0 when not computed).
    pub fn est_cost_min(&self) -> u64 {
        self.est_cost_min
    }
}

/// One contiguous, source-aligned block of the directed edge range, with
/// the cost model's estimate of its work. Cuts land on source boundaries,
/// so the estimate is exact under the model (no interpolation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeBlock {
    /// The directed-edge range this block covers.
    pub range: Range<usize>,
    /// The model's estimated kernel cost of the block.
    pub est_cost: u64,
}

/// Cut `g`'s directed edge range into at most `blocks` contiguous,
/// source-aligned blocks of near-equal estimated cost — the exact cuts
/// [`SchedulePolicy::Balanced`] would pick for the same inputs, exposed
/// for callers that distribute ranges across processes rather than
/// threads (the shard coordinator assigns one block per worker and feeds
/// the estimates into its `shard.range_cost_*` counters).
pub fn cut_source_blocks<W: Workload>(
    g: &CsrGraph,
    model: &CostModel,
    workload: &W,
    blocks: usize,
) -> Vec<RangeBlock> {
    if g.num_directed_edges() == 0 {
        return Vec::new();
    }
    let prefix = source_cost_prefix(g, model, workload);
    let bounds = balanced_bounds(g, &prefix, blocks.max(1));
    bounds
        .windows(2)
        .map(|w| RangeBlock {
            range: w[0]..w[1],
            est_cost: prefix_at_edge(g, &prefix, w[1]) - prefix_at_edge(g, &prefix, w[0]),
        })
        .collect()
}

/// Source-aligned cut points for a cost-balanced decomposition into at
/// most `want` pieces: `bounds[0] = 0`, `bounds.last() = m`, interior
/// bounds snap the ideal `k/want`-of-total cost points to the first
/// source boundary at or past them, dropping degenerate (empty) cuts.
/// Shared by [`SchedulePolicy::Balanced`] and [`cut_source_blocks`] so
/// thread tasks and process shards agree byte-for-byte.
fn balanced_bounds(g: &CsrGraph, prefix: &[u64], want: usize) -> Vec<usize> {
    let m = g.num_directed_edges();
    let n = g.num_vertices();
    let total = prefix[n];
    let offsets = g.offsets();
    let mut bounds: Vec<usize> = vec![0];
    for k in 1..want {
        // Ideal cut at cost k/want of the total; snap to the first
        // source boundary at or past it.
        let target = ((total as u128 * k as u128) / want as u128) as u64;
        let s = prefix.partition_point(|&c| c < target).min(n);
        let cut = offsets[s];
        if cut > *bounds.last().expect("bounds starts non-empty") && cut < m {
            bounds.push(cut);
        }
    }
    bounds.push(m);
    bounds
}

/// Per-source cost prefix sums: `prefix[u]` is the estimated cost of the
/// edge ranges of sources `0..u`, so a range cut on source boundaries
/// `offsets[a]..offsets[b]` costs exactly `prefix[b] - prefix[a]`.
///
/// A source's cost is one unit per directed edge (the range walk itself),
/// plus the workload's pair cost for every counted *covered* pair
/// (`v > u` and [`Workload::covers`]), plus the workload's per-source cost
/// when the source has at least one such pair (mirroring the driver, which
/// only runs `begin_source` for pairs it actually visits).
fn source_cost_prefix<W: Workload>(g: &CsrGraph, model: &CostModel, workload: &W) -> Vec<u64> {
    let n = g.num_vertices();
    let mut prefix = vec![0u64; n + 1];
    for u in 0..n {
        let u = u as u32;
        let du = g.degree(u);
        let mut cost = du as u64;
        let mut counted = false;
        for &v in g.neighbors(u) {
            if v > u && workload.covers(g, u, v) {
                counted = true;
                cost = cost.saturating_add(workload.pair_cost(model, g, u, v));
            }
        }
        if counted {
            cost = cost.saturating_add(workload.source_cost(model, g, u));
        }
        prefix[u as usize + 1] = prefix[u as usize].saturating_add(cost);
    }
    prefix
}

/// Estimated cost prefix at an arbitrary edge offset: exact on source
/// boundaries, linearly interpolated inside a source's range (uniform cuts
/// can land mid-source).
fn prefix_at_edge(g: &CsrGraph, prefix: &[u64], e: usize) -> u64 {
    let m = g.num_directed_edges();
    if e >= m {
        return prefix[g.num_vertices()];
    }
    let offsets = g.offsets();
    let u = offsets.partition_point(|&o| o <= e) - 1;
    let (o0, o1) = (offsets[u], offsets[u + 1]);
    let within = prefix[u + 1] - prefix[u];
    prefix[u] + within.saturating_mul((e - o0) as u64) / (o1 - o0) as u64
}

/// (max, min) estimated task cost over `tasks` under the given prefix.
fn estimate_spread(g: &CsrGraph, prefix: &[u64], tasks: &[Range<usize>]) -> (u64, u64) {
    let mut max = 0u64;
    let mut min = u64::MAX;
    for r in tasks {
        let cost = prefix_at_edge(g, prefix, r.end) - prefix_at_edge(g, prefix, r.start);
        max = max.max(cost);
        min = min.min(cost);
    }
    if tasks.is_empty() {
        (0, 0)
    } else {
        (max, min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::generators::hub_web;
    use cnc_graph::EdgeList;
    use cnc_workload::{CncWorkload, TriangleWorkload};

    fn hub_graph() -> CsrGraph {
        CsrGraph::from_edge_list(&hub_web(300, 6.0, 3, 0.5, 7))
    }

    fn path_graph(n: usize) -> CsrGraph {
        CsrGraph::from_edge_list(&EdgeList::from_pairs(
            (0..n.saturating_sub(1)).map(|i| (i as u32, (i + 1) as u32)),
        ))
    }

    /// Every schedule must tile `0..m` exactly: disjoint, covering, in order.
    fn assert_tiles(s: &Schedule, m: usize) {
        let mut next = 0usize;
        for r in s.tasks() {
            assert_eq!(r.start, next, "tasks must be contiguous and ordered");
            assert!(r.end > r.start, "no empty tasks");
            next = r.end;
        }
        assert_eq!(next, m, "tasks must cover the whole edge range");
    }

    #[test]
    fn uniform_reproduces_legacy_chunks() {
        let g = hub_graph();
        let m = g.num_directed_edges();
        for t in [1usize, 3, 17, 8192, usize::MAX] {
            let s = Schedule::compute(
                &g,
                SchedulePolicy::uniform(t),
                &CostModel::Merge,
                &CncWorkload,
                false,
            );
            assert_tiles(&s, m);
            let expect: Vec<Range<usize>> = (0..m.div_ceil(t))
                .map(|k| (k.saturating_mul(t))..(k.saturating_mul(t).saturating_add(t)).min(m))
                .collect();
            assert_eq!(s.tasks(), &expect[..]);
        }
    }

    #[test]
    fn balanced_cuts_are_source_aligned_and_bounded() {
        let g = hub_graph();
        let m = g.num_directed_edges();
        for (want, model) in [
            (1usize, CostModel::Merge),
            (2, CostModel::Bmp),
            (7, CostModel::Mps { skew_threshold: 50 }),
            (16, CostModel::Bmp),
            (10_000, CostModel::Merge),
        ] {
            let s = Schedule::compute(
                &g,
                SchedulePolicy::balanced(want),
                &model,
                &CncWorkload,
                false,
            );
            assert_tiles(&s, m);
            assert!(
                s.tasks().len() <= want,
                "requested {want}, got {}",
                s.tasks().len()
            );
            for r in s.tasks() {
                // Interior boundaries must be source boundaries.
                assert!(
                    g.offsets().binary_search(&r.start).is_ok(),
                    "cut at edge {} is not a source boundary",
                    r.start
                );
            }
        }
    }

    #[test]
    fn balanced_flattens_cost_spread_on_skewed_graphs() {
        let g = hub_graph();
        let model = CostModel::Bmp;
        let uniform = Schedule::compute(
            &g,
            SchedulePolicy::uniform(g.num_directed_edges().div_ceil(8)),
            &model,
            &CncWorkload,
            true,
        );
        let balanced =
            Schedule::compute(&g, SchedulePolicy::balanced(8), &model, &CncWorkload, true);
        assert!(uniform.est_cost_max() > 0 && balanced.est_cost_max() > 0);
        // The balanced straggler must not be heavier than the uniform one
        // (on a hub-skewed graph it is strictly lighter).
        assert!(
            balanced.est_cost_max() <= uniform.est_cost_max(),
            "balanced straggler {} vs uniform {}",
            balanced.est_cost_max(),
            uniform.est_cost_max()
        );
    }

    #[test]
    fn balanced_on_uniform_degrees_is_near_even() {
        let g = path_graph(2_000);
        let s = Schedule::compute(
            &g,
            SchedulePolicy::balanced(8),
            &CostModel::Merge,
            &CncWorkload,
            true,
        );
        assert_tiles(&s, g.num_directed_edges());
        assert_eq!(s.tasks().len(), 8);
        // On a degree-uniform graph the spread collapses.
        assert!(s.est_cost_max() <= 2 * s.est_cost_min().max(1));
    }

    #[test]
    fn empty_and_tiny_graphs_schedule_cleanly() {
        let empty = CsrGraph::from_edge_list(&EdgeList::from_pairs(std::iter::empty()));
        for policy in [SchedulePolicy::uniform(8), SchedulePolicy::balanced(8)] {
            let s = Schedule::compute(&empty, policy, &CostModel::Merge, &CncWorkload, true);
            assert!(s.tasks().is_empty());
            assert_eq!((s.est_cost_max(), s.est_cost_min()), (0, 0));
        }
        let two = path_graph(2);
        for policy in [SchedulePolicy::uniform(1), SchedulePolicy::balanced(64)] {
            let s = Schedule::compute(&two, policy, &CostModel::Merge, &CncWorkload, true);
            assert_tiles(&s, two.num_directed_edges());
        }
    }

    #[test]
    fn pruning_workload_reshapes_the_pricing() {
        // A star plus a short tail: every star edge has a degree-1 endpoint,
        // so the triangle workload covers almost nothing and its priced
        // total (balanced(1) ⇒ est_cost_max = whole-range cost) drops
        // strictly below CNC's on the same graph and model.
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(
            (1u32..60).map(|v| (0, v)).chain([(1, 2), (2, 3)]),
        ));
        let cnc = Schedule::compute(
            &g,
            SchedulePolicy::balanced(1),
            &CostModel::Merge,
            &CncWorkload,
            true,
        );
        let tri = Schedule::compute(
            &g,
            SchedulePolicy::balanced(1),
            &CostModel::Merge,
            &TriangleWorkload,
            true,
        );
        assert!(
            tri.est_cost_max() < cnc.est_cost_max(),
            "triangle pricing {} must undercut cnc pricing {}",
            tri.est_cost_max(),
            cnc.est_cost_max()
        );
    }

    #[test]
    fn cut_source_blocks_matches_balanced_schedule() {
        let g = hub_graph();
        for (want, model) in [
            (1usize, CostModel::Merge),
            (4, CostModel::Bmp),
            (8, CostModel::Mps { skew_threshold: 50 }),
        ] {
            let s = Schedule::compute(
                &g,
                SchedulePolicy::balanced(want),
                &model,
                &CncWorkload,
                true,
            );
            let blocks = cut_source_blocks(&g, &model, &CncWorkload, want);
            let ranges: Vec<Range<usize>> = blocks.iter().map(|b| b.range.clone()).collect();
            assert_eq!(ranges, s.tasks(), "cuts must match Balanced exactly");
            let max = blocks.iter().map(|b| b.est_cost).max().unwrap();
            let min = blocks.iter().map(|b| b.est_cost).min().unwrap();
            assert_eq!((max, min), (s.est_cost_max(), s.est_cost_min()));
        }
        let empty = CsrGraph::from_edge_list(&EdgeList::from_pairs(std::iter::empty()));
        assert!(cut_source_blocks(&empty, &CostModel::Merge, &CncWorkload, 4).is_empty());
    }

    #[test]
    fn policy_constructors_clamp_to_one() {
        assert_eq!(
            SchedulePolicy::uniform(0),
            SchedulePolicy::Uniform { task_size: 1 }
        );
        assert_eq!(
            SchedulePolicy::balanced(0),
            SchedulePolicy::Balanced { tasks: 1 }
        );
    }
}
