//! The one edge-range task loop behind every CPU driver.
//!
//! The paper's Algorithm 3 runs the same skeleton for every algorithm: the
//! edge-offset range `[0, |E|)` is cut into tasks (see
//! [`SchedulePolicy`](crate::SchedulePolicy) — fixed `|T|`-sized chunks or
//! cost-balanced source-aligned cuts), each task finds the source of each
//! offset with the amortized `FindSrc` stash, computes counts for `u < v`
//! pairs, and scatters both `cnt[e(u,v)]` and the mirrored `cnt[e(v,u)]`.
//! The only per-algorithm difference is the per-pair counting strategy —
//! captured by [`PairKernel`] in `cnc-intersect` — including its per-source
//! state (BMP's bitmap index, rebuilt only when the source changes).
//!
//! [`run_range`] is that skeleton, written exactly once. [`EdgeRangeDriver`]
//! instantiates it three ways:
//!
//! * [`run_seq`](EdgeRangeDriver::run_seq) — the whole range as one task,
//!   work reported to the caller's [`Meter`] (this is what the KNL/CPU
//!   machine-model profiler executes);
//! * [`run_par`](EdgeRangeDriver::run_par) — rayon task split, unmetered;
//! * [`run_par_metered`](EdgeRangeDriver::run_par_metered) — rayon task
//!   split with a per-task [`CountingMeter`], tallies reduced lock-free at
//!   the end.
//!
//! Kernels with per-source state are shared across tasks through a
//! [`KernelFactory`]; [`BitmapPool`] implements it so BMP tasks borrow (and
//! return clean) bitmap kernels, and [`CloneFactory`] serves the stateless
//! merge family.

use std::ops::Range;

use cnc_graph::CsrGraph;
use cnc_intersect::{
    validate_rf_ratio, BmpKernel, CostModel, CountingMeter, MergeKernel, Meter, MpsConfig,
    MpsKernel, NullMeter, PairKernel, RfKernel, RfRatioError, WorkCounts,
};
use rayon::prelude::*;

use crate::pool::BitmapPool;
use crate::scatter::ScatterVec;
use crate::schedule::Schedule;
use crate::ParConfig;

/// BMP index flavor: plain `|V|`-bit bitmap or the range-filtered variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BmpMode {
    /// Plain bitmap (Algorithm 2 as written).
    Plain,
    /// Range-filtered bitmap with the given big-to-small ratio
    /// (the paper's RF technique; default ratio 4096).
    RangeFiltered {
        /// Big-bitmap bits summarized per small-bitmap bit (power of two).
        ratio: usize,
    },
}

impl BmpMode {
    /// The paper's default RF configuration.
    pub fn rf_default() -> Self {
        BmpMode::RangeFiltered {
            ratio: cnc_intersect::DEFAULT_RF_RATIO,
        }
    }

    /// RF with the scale-aware ratio for a graph of `num_vertices` (see
    /// [`cnc_intersect::scaled_rf_ratio`]): the paper's L1-fitting rule
    /// applied at any graph size.
    pub fn rf_scaled(num_vertices: usize) -> Self {
        BmpMode::RangeFiltered {
            ratio: cnc_intersect::scaled_rf_ratio(num_vertices),
        }
    }

    /// A validated RF mode: rejects zero / one / non-power-of-two ratios
    /// with a descriptive error instead of panicking at run time.
    pub fn range_filtered(ratio: usize) -> Result<Self, RfRatioError> {
        validate_rf_ratio(ratio)?;
        Ok(BmpMode::RangeFiltered { ratio })
    }

    /// Check this mode's configuration (the RF ratio, if any).
    pub fn validate(&self) -> Result<(), RfRatioError> {
        match self {
            BmpMode::Plain => Ok(()),
            BmpMode::RangeFiltered { ratio } => validate_rf_ratio(*ratio),
        }
    }
}

/// Cost of the `e(v,u)` mirror lookup (the symmetric-assignment technique),
/// reported to the meter.
///
/// Prepared graphs carry a reverse-edge index, making the lookup a single
/// streamed load; graphs without one fall back to a binary search over
/// `N(v)` whose probes hit random cache lines.
#[inline]
fn meter_reverse<M: Meter>(has_rev: bool, dv: usize, meter: &mut M) {
    if has_rev {
        meter.seq_bytes(8); // one rev[eid] load, streamed with the edge walk
    } else {
        let probes = (dv.max(1)).ilog2() as u64 + 1;
        meter.scalar_ops(probes);
        meter.rand_accesses(probes);
    }
    meter.write_bytes(8); // the two count stores
}

/// **The** edge-range task loop (Algorithm 3 lines 6–24).
///
/// Walks `range`, resolves sources with the `FindSrc` stash, drives the
/// kernel's per-source state with the `pu_tls` rebuild-on-change logic, and
/// emits `(offset, count)` for both `e(u,v)` and the mirrored `e(v,u)`.
/// Every sequential, parallel and metered CPU driver — and the KNL / CPU
/// machine-model profiler — executes this function and nothing else.
///
/// Returns the number of `begin_source` transitions the range incurred:
/// one per distinct source under source-aligned scheduling, more when cuts
/// land mid-source and the same source is re-indexed by several tasks.
pub fn run_range<K: PairKernel, M: Meter>(
    g: &CsrGraph,
    range: Range<usize>,
    kernel: &mut K,
    meter: &mut M,
    emit: &mut impl FnMut(usize, u32),
) -> u64 {
    let has_rev = g.has_reverse_index();
    let mut u_tls = 0u32; // FindSrc stash (Algorithm 3 line 8)
    let mut pu: Option<u32> = None; // pu_tls (Algorithm 3 line 19)
    let mut rebuilds = 0u64;
    for eid in range {
        let u = g.find_src(eid, &mut u_tls);
        let v = g.dst()[eid];
        if u >= v {
            continue;
        }
        if pu != Some(u) {
            if let Some(p) = pu {
                kernel.end_source(g.neighbors(p), meter);
            }
            kernel.begin_source(g.neighbors(u), meter);
            rebuilds += 1;
            pu = Some(u);
        }
        let c = kernel.count(g.neighbors(u), g.neighbors(v), meter);
        emit(eid, c);
        emit(g.reverse_offset(u, eid), c);
        meter_reverse(has_rev, g.degree(v), meter);
    }
    if let Some(p) = pu {
        kernel.end_source(g.neighbors(p), meter);
    }
    rebuilds
}

/// Hands kernels to parallel tasks and takes them back.
///
/// Stateful kernels are expensive (BMP's bitmap has `|V|` bits), so tasks
/// borrow them from a pool; stateless ones are cloned. Released kernels
/// must be reset ([`PairKernel::is_reset`]).
pub trait KernelFactory: Sync {
    /// The kernel type this factory produces.
    type Kernel: PairKernel;
    /// Borrow a reset kernel for one task.
    fn acquire(&self) -> Self::Kernel;
    /// Return a reset kernel after the task.
    fn release(&self, kernel: Self::Kernel);
}

impl<K: PairKernel + Send> KernelFactory for BitmapPool<K> {
    type Kernel = K;

    fn acquire(&self) -> K {
        let k = BitmapPool::acquire(self);
        debug_assert!(k.is_reset(), "pool must hand out clean kernels");
        k
    }

    fn release(&self, kernel: K) {
        debug_assert!(kernel.is_reset(), "kernels must be returned clean");
        BitmapPool::release(self, kernel);
    }
}

/// Factory for stateless kernels (merge family): clone per task, drop after.
#[derive(Debug, Clone, Copy)]
pub struct CloneFactory<K>(pub K);

impl<K: PairKernel + Clone + Sync> KernelFactory for CloneFactory<K> {
    type Kernel = K;

    fn acquire(&self) -> K {
        self.0.clone()
    }

    fn release(&self, _kernel: K) {}
}

/// The generic driver: owns the task decomposition, scatter mirroring and
/// kernel borrowing for one graph, and instantiates [`run_range`] per
/// execution mode.
pub struct EdgeRangeDriver<'g> {
    g: &'g CsrGraph,
}

impl<'g> EdgeRangeDriver<'g> {
    /// A driver over `g`'s directed edge-offset range.
    pub fn new(g: &'g CsrGraph) -> Self {
        Self { g }
    }

    /// Sequential execution: the whole edge range as one task, all work
    /// reported to `meter`.
    pub fn run_seq<K: PairKernel, M: Meter>(&self, kernel: &mut K, meter: &mut M) -> Vec<u32> {
        let m = self.g.num_directed_edges();
        let mut cnt = vec![0u32; m];
        let rebuilds = run_range(self.g, 0..m, kernel, meter, &mut |eid, c| cnt[eid] = c);
        cnc_obs::ObsContext::add_current(cnc_obs::Counter::KernelSourceRebuilds, rebuilds);
        cnt
    }

    /// Parallel execution (Algorithm 3): unmetered.
    pub fn run_par<F: KernelFactory>(
        &self,
        factory: &F,
        cfg: &ParConfig,
        model: &CostModel,
    ) -> Vec<u32> {
        self.par_drive(factory, cfg, model, false).0
    }

    /// Parallel execution with per-task [`CountingMeter`]s, tallies reduced
    /// lock-free and returned alongside the counts.
    pub fn run_par_metered<F: KernelFactory>(
        &self,
        factory: &F,
        cfg: &ParConfig,
        model: &CostModel,
    ) -> (Vec<u32>, WorkCounts) {
        self.par_drive(factory, cfg, model, true)
    }

    /// Shared parallel skeleton: decompose the edge range under the
    /// config's schedule policy, borrow a kernel per task, scatter through
    /// a [`ScatterVec`], optionally meter. Per-task tallies (and
    /// `begin_source` rebuild counts) are combined with a rayon
    /// `map`/`reduce` of thread-local values — no lock on the hot path.
    fn par_drive<F: KernelFactory>(
        &self,
        factory: &F,
        cfg: &ParConfig,
        model: &CostModel,
        metered: bool,
    ) -> (Vec<u32>, WorkCounts) {
        let g = self.g;
        let m = g.num_directed_edges();
        let cnt = ScatterVec::new(m);
        let mut total = WorkCounts::default();
        if m > 0 {
            // Ambient observability: rayon workers do not see the installing
            // thread's context, so capture it (and the id of a "kernel" span
            // that nests under the caller's open span) here and hand both to
            // every task explicitly. `None` means every probe below is a
            // no-op and the loop body is identical to the uninstrumented one.
            let obs = cnc_obs::ObsContext::current();
            // Cost estimates are only worth the O(E) pricing pass when
            // someone is watching (the balanced policy prices sources
            // either way, so its estimates are free).
            let schedule = Schedule::compute(g, cfg.schedule, model, obs.is_some());
            let tasks = schedule.tasks();
            let kernel_span = obs.as_ref().map(|ctx| {
                use cnc_obs::Counter as C;
                ctx.add(C::DriverTasks, tasks.len() as u64);
                ctx.add(C::ScheduleTasks, tasks.len() as u64);
                ctx.add(C::ScheduleEstCostMax, schedule.est_cost_max());
                ctx.add(C::ScheduleEstCostMin, schedule.est_cost_min());
                ctx.span("kernel")
            });
            let parent = kernel_span.as_ref().map(|s| s.id());
            let obs = &obs;
            let run = || {
                (0..tasks.len())
                    .into_par_iter()
                    .map(|k| {
                        let range = tasks[k].clone();
                        let _task_span = obs.as_ref().map(|ctx| {
                            let mut s = ctx.span_under("task", parent);
                            s.set_items(range.len() as u64);
                            s
                        });
                        let mut kernel = factory.acquire();
                        let mut emit = |eid: usize, c: u32| cnt.set(eid, c);
                        let tally = if metered {
                            let mut meter = CountingMeter::new();
                            let rebuilds = run_range(g, range, &mut kernel, &mut meter, &mut emit);
                            (meter.counts, rebuilds)
                        } else {
                            let rebuilds =
                                run_range(g, range, &mut kernel, &mut NullMeter, &mut emit);
                            (WorkCounts::default(), rebuilds)
                        };
                        factory.release(kernel);
                        tally
                    })
                    .reduce(
                        || (WorkCounts::default(), 0u64),
                        |mut a, b| {
                            a.0.merge(&b.0);
                            (a.0, a.1 + b.1)
                        },
                    )
            };
            let (counts, rebuilds) = crate::with_threads(cfg.threads, run);
            if let Some(ctx) = obs.as_ref() {
                ctx.add(cnc_obs::Counter::KernelSourceRebuilds, rebuilds);
            }
            total = counts;
        }
        (cnt.into_vec(), total)
    }
}

/// The platform-side algorithm dispatch: one value selects the kernel for
/// every execution mode. The named driver functions (`seq_mps`, `par_bmp`,
/// …) are thin wrappers over this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuKernel {
    /// Baseline plain merge (**M**).
    Merge,
    /// Hybrid pivot-skip / vectorized block merge (**MPS**).
    Mps(MpsConfig),
    /// Dynamic bitmap index (**BMP**), optionally range-filtered.
    Bmp(BmpMode),
}

impl CpuKernel {
    /// Check configuration that the type system cannot (the RF ratio).
    pub fn validate(&self) -> Result<(), RfRatioError> {
        match self {
            CpuKernel::Bmp(mode) => mode.validate(),
            _ => Ok(()),
        }
    }

    /// The cost model the balanced scheduler prices this kernel with.
    pub fn cost_model(&self) -> CostModel {
        match self {
            CpuKernel::Merge => CostModel::Merge,
            CpuKernel::Mps(cfg) => CostModel::Mps {
                skew_threshold: cfg.skew_threshold,
            },
            CpuKernel::Bmp(_) => CostModel::Bmp,
        }
    }

    /// Sequential execution on `g`, work reported to `meter`.
    pub fn run_seq<M: Meter>(&self, g: &CsrGraph, meter: &mut M) -> Vec<u32> {
        let drv = EdgeRangeDriver::new(g);
        match self {
            CpuKernel::Merge => drv.run_seq(&mut MergeKernel, meter),
            CpuKernel::Mps(cfg) => drv.run_seq(&mut MpsKernel::new(*cfg), meter),
            CpuKernel::Bmp(BmpMode::Plain) => {
                drv.run_seq(&mut BmpKernel::new(g.num_vertices()), meter)
            }
            CpuKernel::Bmp(BmpMode::RangeFiltered { ratio }) => {
                let mut k = RfKernel::prevalidated(g.num_vertices().max(1), *ratio);
                drv.run_seq(&mut k, meter)
            }
        }
    }

    /// Parallel execution on `g` (Algorithm 3), unmetered.
    pub fn run_par(&self, g: &CsrGraph, cfg: &ParConfig) -> Vec<u32> {
        let drv = EdgeRangeDriver::new(g);
        let n = g.num_vertices();
        let model = self.cost_model();
        match self {
            CpuKernel::Merge => drv.run_par(&CloneFactory(MergeKernel), cfg, &model),
            CpuKernel::Mps(mps) => drv.run_par(&CloneFactory(MpsKernel::new(*mps)), cfg, &model),
            CpuKernel::Bmp(BmpMode::Plain) => {
                drv.run_par(&BitmapPool::new(move || BmpKernel::new(n)), cfg, &model)
            }
            CpuKernel::Bmp(BmpMode::RangeFiltered { ratio }) => {
                let ratio = *ratio;
                let pool = BitmapPool::new(move || RfKernel::prevalidated(n.max(1), ratio));
                drv.run_par(&pool, cfg, &model)
            }
        }
    }

    /// Parallel execution with merged per-task work tallies.
    pub fn run_par_metered(&self, g: &CsrGraph, cfg: &ParConfig) -> (Vec<u32>, WorkCounts) {
        let drv = EdgeRangeDriver::new(g);
        let n = g.num_vertices();
        let model = self.cost_model();
        match self {
            CpuKernel::Merge => drv.run_par_metered(&CloneFactory(MergeKernel), cfg, &model),
            CpuKernel::Mps(mps) => {
                drv.run_par_metered(&CloneFactory(MpsKernel::new(*mps)), cfg, &model)
            }
            CpuKernel::Bmp(BmpMode::Plain) => {
                drv.run_par_metered(&BitmapPool::new(move || BmpKernel::new(n)), cfg, &model)
            }
            CpuKernel::Bmp(BmpMode::RangeFiltered { ratio }) => {
                let ratio = *ratio;
                let pool = BitmapPool::new(move || RfKernel::prevalidated(n.max(1), ratio));
                drv.run_par_metered(&pool, cfg, &model)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::{generators, EdgeList};

    fn oracle(g: &CsrGraph) -> Vec<u32> {
        let mut cnt = vec![0u32; g.num_directed_edges()];
        for (eid, u, v) in g.iter_edges() {
            cnt[eid] = cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v));
        }
        cnt
    }

    #[test]
    fn every_kernel_every_mode_is_exact() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(250, 5.0, 2, 0.5, 2));
        let want = oracle(&g);
        for cfg in [ParConfig::with_task_size(53), ParConfig::balanced(7)] {
            for kernel in [
                CpuKernel::Merge,
                CpuKernel::Mps(MpsConfig::default()),
                CpuKernel::Bmp(BmpMode::Plain),
                CpuKernel::Bmp(BmpMode::rf_scaled(g.num_vertices())),
            ] {
                assert_eq!(kernel.run_seq(&g, &mut NullMeter), want, "{kernel:?} seq");
                assert_eq!(kernel.run_par(&g, &cfg), want, "{kernel:?} par {cfg:?}");
                let (counts, work) = kernel.run_par_metered(&g, &cfg);
                assert_eq!(counts, want, "{kernel:?} par_metered {cfg:?}");
                assert!(work.total_ops() > 0, "{kernel:?} reported no work");
            }
        }
    }

    #[test]
    fn seq_and_metered_par_report_identical_work() {
        // Uniform metering: meter_reverse and kernel work are recorded on
        // every path, so for kernels without per-source state the parallel
        // decomposition must not change a single tally.
        let g = CsrGraph::from_edge_list(&generators::chung_lu(200, 9.0, 2.2, 6));
        let kernel = CpuKernel::Mps(MpsConfig::default());
        let mut seq_meter = CountingMeter::new();
        kernel.run_seq(&g, &mut seq_meter);
        for cfg in [ParConfig::with_task_size(61), ParConfig::balanced(9)] {
            let (_, par_work) = kernel.run_par_metered(&g, &cfg);
            assert_eq!(par_work, seq_meter.counts, "{cfg:?}");
        }
    }

    #[test]
    fn reverse_index_removes_random_probe_metering() {
        // Acceptance: on a graph carrying the prepared reverse-edge index
        // the mirror store is a streamed O(1) load — the merge kernel does
        // no other random accesses, so the whole tally must show zero.
        let mut g = CsrGraph::from_edge_list(&generators::hub_web(200, 5.0, 2, 0.5, 4));
        let mut searched = CountingMeter::new();
        CpuKernel::Merge.run_seq(&g, &mut searched);
        g.build_reverse_index();
        let mut indexed = CountingMeter::new();
        let counts = CpuKernel::Merge.run_seq(&g, &mut indexed);
        assert_eq!(counts, oracle(&g));
        assert!(
            searched.counts.rand_accesses > 0,
            "binary-search fallback must meter random probes"
        );
        assert_eq!(
            indexed.counts.rand_accesses, 0,
            "reverse index must eliminate every random probe"
        );
        assert!(indexed.counts.seq_bytes > searched.counts.seq_bytes);
    }

    #[test]
    fn empty_range_never_touches_kernel() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        for kernel in [CpuKernel::Merge, CpuKernel::Bmp(BmpMode::Plain)] {
            assert!(kernel.run_seq(&g, &mut NullMeter).is_empty());
            assert!(kernel.run_par(&g, &ParConfig::default()).is_empty());
        }
    }

    #[test]
    fn validate_rejects_bad_rf_ratios() {
        assert!(CpuKernel::Bmp(BmpMode::RangeFiltered { ratio: 0 })
            .validate()
            .is_err());
        assert!(CpuKernel::Bmp(BmpMode::RangeFiltered { ratio: 48 })
            .validate()
            .is_err());
        assert!(CpuKernel::Bmp(BmpMode::rf_default()).validate().is_ok());
        assert!(CpuKernel::Merge.validate().is_ok());
        assert!(BmpMode::range_filtered(100).is_err());
        assert_eq!(
            BmpMode::range_filtered(64),
            Ok(BmpMode::RangeFiltered { ratio: 64 })
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn run_with_bad_ratio_panics_with_clear_message() {
        // Invalid ratios are a plan-construction bug (Plan::validate rejects
        // them); the kernel constructor still refuses to build a broken
        // filter if one slips through.
        let g = CsrGraph::from_edge_list(&generators::gnm(20, 40, 1));
        let _ =
            CpuKernel::Bmp(BmpMode::RangeFiltered { ratio: 3 }).run_par(&g, &ParConfig::default());
    }
}
