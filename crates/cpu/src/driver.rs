//! The one edge-range task loop behind every CPU driver.
//!
//! The paper's Algorithm 3 runs the same skeleton for every workload: the
//! edge-offset range `[0, |E|)` is cut into tasks (see
//! [`SchedulePolicy`](crate::SchedulePolicy) — fixed `|T|`-sized chunks or
//! cost-balanced source-aligned cuts), each task finds the source of each
//! offset with the amortized `FindSrc` stash, and visits every covered
//! `u < v` pair through the active [`Workload`] (CNC scatters counts into
//! both directed slots; triangle / k-clique counting reduce task-local
//! tallies). The per-algorithm counting strategy stays captured by
//! [`PairKernel`] in `cnc-intersect` — including its per-source state
//! (BMP's bitmap index, rebuilt only when the source changes).
//!
//! [`run_range`] is that skeleton, written exactly once and generic over
//! the workload. [`EdgeRangeDriver`] instantiates it three ways:
//!
//! * [`run_seq_workload`](EdgeRangeDriver::run_seq_workload) — the whole
//!   range as one task, work reported to the caller's [`Meter`] (this is
//!   what the KNL/CPU machine-model profiler executes, via the CNC-pinned
//!   [`run_seq`](EdgeRangeDriver::run_seq));
//! * [`run_par_workload`](EdgeRangeDriver::run_par_workload) — rayon task
//!   split, unmetered;
//! * [`run_par_metered_workload`](EdgeRangeDriver::run_par_metered_workload)
//!   — rayon task split with a per-task [`CountingMeter`], tallies reduced
//!   lock-free at the end.
//!
//! Kernels with per-source state are shared across tasks through a
//! [`KernelFactory`]; [`BitmapPool`] implements it so BMP tasks borrow (and
//! return clean) bitmap kernels, and [`CloneFactory`] serves the stateless
//! merge family.

use std::ops::Range;

use cnc_graph::CsrGraph;
use cnc_intersect::{
    validate_rf_ratio, BmpKernel, CostModel, CountingMeter, MergeKernel, Meter, MpsConfig,
    MpsKernel, NullMeter, PairKernel, RfKernel, RfRatioError, WorkCounts,
};
use cnc_workload::{
    CncWorkload, KCliqueWorkload, TriangleWorkload, Workload, WorkloadKind, WorkloadOutput,
};
use rayon::prelude::*;

use crate::pool::BitmapPool;
use crate::schedule::Schedule;
use crate::ParConfig;

/// BMP index flavor: plain `|V|`-bit bitmap or the range-filtered variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BmpMode {
    /// Plain bitmap (Algorithm 2 as written).
    Plain,
    /// Range-filtered bitmap with the given big-to-small ratio
    /// (the paper's RF technique; default ratio 4096).
    RangeFiltered {
        /// Big-bitmap bits summarized per small-bitmap bit (power of two).
        ratio: usize,
    },
}

impl BmpMode {
    /// The paper's default RF configuration.
    pub fn rf_default() -> Self {
        BmpMode::RangeFiltered {
            ratio: cnc_intersect::DEFAULT_RF_RATIO,
        }
    }

    /// RF with the scale-aware ratio for a graph of `num_vertices` (see
    /// [`cnc_intersect::scaled_rf_ratio`]): the paper's L1-fitting rule
    /// applied at any graph size.
    pub fn rf_scaled(num_vertices: usize) -> Self {
        BmpMode::RangeFiltered {
            ratio: cnc_intersect::scaled_rf_ratio(num_vertices),
        }
    }

    /// A validated RF mode: rejects zero / one / non-power-of-two ratios
    /// with a descriptive error instead of panicking at run time.
    pub fn range_filtered(ratio: usize) -> Result<Self, RfRatioError> {
        validate_rf_ratio(ratio)?;
        Ok(BmpMode::RangeFiltered { ratio })
    }

    /// Check this mode's configuration (the RF ratio, if any).
    pub fn validate(&self) -> Result<(), RfRatioError> {
        match self {
            BmpMode::Plain => Ok(()),
            BmpMode::RangeFiltered { ratio } => validate_rf_ratio(*ratio),
        }
    }
}

/// Per-range bookkeeping returned by [`run_range`]: the observability
/// tallies every execution mode reduces over its tasks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeTally {
    /// `begin_source` transitions the range incurred: one per distinct
    /// source under source-aligned scheduling, more when cuts land
    /// mid-source and the same source is re-indexed by several tasks.
    /// Always zero for workloads that bypass the kernel's per-source state.
    pub rebuilds: u64,
    /// Covered canonical pairs visited.
    pub visited: u64,
    /// Canonical pairs skipped by the workload's cover predicate.
    pub skipped: u64,
}

impl RangeTally {
    /// Fold another range's tally into this one (parallel reduction).
    pub fn accumulate(&mut self, other: &RangeTally) {
        self.rebuilds += other.rebuilds;
        self.visited += other.visited;
        self.skipped += other.skipped;
    }
}

/// **The** edge-range task loop (Algorithm 3 lines 6–24).
///
/// Walks `range`, resolves sources with the `FindSrc` stash, drives the
/// kernel's per-source state with the `pu_tls` rebuild-on-change logic
/// (skipped entirely when the workload never probes the kernel), and calls
/// [`Workload::visit`] for every covered canonical (`u < v`) pair. Every
/// sequential, parallel and metered CPU driver — and the KNL / CPU
/// machine-model profiler — executes this function and nothing else.
pub fn run_range<W: Workload, K: PairKernel, M: Meter>(
    g: &CsrGraph,
    range: Range<usize>,
    workload: &W,
    shared: &W::Shared,
    acc: &mut W::Accum,
    kernel: &mut K,
    meter: &mut M,
) -> RangeTally {
    let uses_kernel = workload.uses_kernel();
    let mut u_tls = 0u32; // FindSrc stash (Algorithm 3 line 8)
    let mut pu: Option<u32> = None; // pu_tls (Algorithm 3 line 19)
    let mut tally = RangeTally::default();
    for eid in range {
        let u = g.find_src(eid, &mut u_tls);
        let v = g.dst()[eid];
        if u >= v {
            continue;
        }
        if !workload.covers(g, u, v) {
            tally.skipped += 1;
            continue;
        }
        if uses_kernel && pu != Some(u) {
            if let Some(p) = pu {
                kernel.end_source(g.neighbors(p), meter);
            }
            kernel.begin_source(g.neighbors(u), meter);
            tally.rebuilds += 1;
            pu = Some(u);
        }
        workload.visit(g, shared, acc, eid, u, v, kernel, meter);
        tally.visited += 1;
    }
    if let Some(p) = pu {
        kernel.end_source(g.neighbors(p), meter);
    }
    tally
}

/// Hands kernels to parallel tasks and takes them back.
///
/// Stateful kernels are expensive (BMP's bitmap has `|V|` bits), so tasks
/// borrow them from a pool; stateless ones are cloned. Released kernels
/// must be reset ([`PairKernel::is_reset`]).
pub trait KernelFactory: Sync {
    /// The kernel type this factory produces.
    type Kernel: PairKernel;
    /// Borrow a reset kernel for one task.
    fn acquire(&self) -> Self::Kernel;
    /// Return a reset kernel after the task.
    fn release(&self, kernel: Self::Kernel);
}

impl<K: PairKernel + Send> KernelFactory for BitmapPool<K> {
    type Kernel = K;

    fn acquire(&self) -> K {
        let k = BitmapPool::acquire(self);
        debug_assert!(k.is_reset(), "pool must hand out clean kernels");
        k
    }

    fn release(&self, kernel: K) {
        debug_assert!(kernel.is_reset(), "kernels must be returned clean");
        BitmapPool::release(self, kernel);
    }
}

/// Factory for stateless kernels (merge family): clone per task, drop after.
#[derive(Debug, Clone, Copy)]
pub struct CloneFactory<K>(pub K);

impl<K: PairKernel + Clone + Sync> KernelFactory for CloneFactory<K> {
    type Kernel = K;

    fn acquire(&self) -> K {
        self.0.clone()
    }

    fn release(&self, _kernel: K) {}
}

/// The generic driver: owns the task decomposition, scatter mirroring and
/// kernel borrowing for one graph, and instantiates [`run_range`] per
/// execution mode.
pub struct EdgeRangeDriver<'g> {
    g: &'g CsrGraph,
}

impl<'g> EdgeRangeDriver<'g> {
    /// A driver over `g`'s directed edge-offset range.
    pub fn new(g: &'g CsrGraph) -> Self {
        Self { g }
    }

    /// Sequential execution of any workload: the whole edge range as one
    /// task, all work reported to `meter`.
    pub fn run_seq_workload<W: Workload, K: PairKernel, M: Meter>(
        &self,
        workload: &W,
        kernel: &mut K,
        meter: &mut M,
    ) -> W::Output {
        let g = self.g;
        let m = g.num_directed_edges();
        let shared = workload.new_shared(g);
        let mut acc = workload.new_accum(g);
        let tally = run_range(g, 0..m, workload, &shared, &mut acc, kernel, meter);
        Self::record_tally(&cnc_obs::ObsContext::current(), &tally);
        workload.finish(g, shared, acc)
    }

    /// Sequential CNC execution (the historical driver entry point).
    pub fn run_seq<K: PairKernel, M: Meter>(&self, kernel: &mut K, meter: &mut M) -> Vec<u32> {
        self.run_seq_workload(&CncWorkload, kernel, meter)
    }

    /// Parallel execution of any workload (Algorithm 3): unmetered.
    pub fn run_par_workload<W: Workload, F: KernelFactory>(
        &self,
        workload: &W,
        factory: &F,
        cfg: &ParConfig,
        model: &CostModel,
    ) -> W::Output {
        self.par_drive(workload, factory, cfg, model, false).0
    }

    /// Parallel CNC execution (the historical driver entry point).
    pub fn run_par<F: KernelFactory>(
        &self,
        factory: &F,
        cfg: &ParConfig,
        model: &CostModel,
    ) -> Vec<u32> {
        self.run_par_workload(&CncWorkload, factory, cfg, model)
    }

    /// Parallel execution of any workload with per-task [`CountingMeter`]s,
    /// tallies reduced lock-free and returned alongside the output.
    pub fn run_par_metered_workload<W: Workload, F: KernelFactory>(
        &self,
        workload: &W,
        factory: &F,
        cfg: &ParConfig,
        model: &CostModel,
    ) -> (W::Output, WorkCounts) {
        self.par_drive(workload, factory, cfg, model, true)
    }

    /// Parallel metered CNC execution (the historical driver entry point).
    pub fn run_par_metered<F: KernelFactory>(
        &self,
        factory: &F,
        cfg: &ParConfig,
        model: &CostModel,
    ) -> (Vec<u32>, WorkCounts) {
        self.run_par_metered_workload(&CncWorkload, factory, cfg, model)
    }

    /// Record one execution's reduced [`RangeTally`] into the ambient
    /// observability context, if any.
    fn record_tally(obs: &Option<std::sync::Arc<cnc_obs::ObsContext>>, tally: &RangeTally) {
        if let Some(ctx) = obs.as_ref() {
            use cnc_obs::Counter as C;
            ctx.add(C::KernelSourceRebuilds, tally.rebuilds);
            ctx.add(C::WorkloadEdgesVisited, tally.visited);
            ctx.add(C::WorkloadEdgesSkipped, tally.skipped);
        }
    }

    /// Shared parallel skeleton: decompose the edge range under the
    /// config's schedule policy (priced through the workload's cost hooks),
    /// borrow a kernel per task, accumulate through the workload's shared /
    /// per-task state, optionally meter. Per-task accumulators and tallies
    /// are combined with a rayon `map`/`reduce` of thread-local values — no
    /// lock on the hot path.
    fn par_drive<W: Workload, F: KernelFactory>(
        &self,
        workload: &W,
        factory: &F,
        cfg: &ParConfig,
        model: &CostModel,
        metered: bool,
    ) -> (W::Output, WorkCounts) {
        let g = self.g;
        let m = g.num_directed_edges();
        let shared = workload.new_shared(g);
        let mut merged = workload.new_accum(g);
        let mut total = WorkCounts::default();
        if m > 0 {
            // Ambient observability: rayon workers do not see the installing
            // thread's context, so capture it (and the id of a "kernel" span
            // that nests under this call's "workload" span) here and hand
            // both to every task explicitly. `None` means every probe below
            // is a no-op and the loop body is identical to the
            // uninstrumented one.
            let obs = cnc_obs::ObsContext::current();
            // Cost estimates are only worth the O(E) pricing pass when
            // someone is watching (the balanced policy prices sources
            // either way, so its estimates are free).
            let schedule = Schedule::compute(g, cfg.schedule, model, workload, obs.is_some());
            let tasks = schedule.tasks();
            // Span nesting is ambient on this thread: "workload" opens under
            // the caller's span, "kernel" under "workload". Declaration
            // order makes them close in reverse.
            let _workload_span = obs.as_ref().map(|ctx| ctx.span("workload"));
            let kernel_span = obs.as_ref().map(|ctx| {
                use cnc_obs::Counter as C;
                ctx.add(C::DriverTasks, tasks.len() as u64);
                ctx.add(C::ScheduleTasks, tasks.len() as u64);
                ctx.add(C::ScheduleEstCostMax, schedule.est_cost_max());
                ctx.add(C::ScheduleEstCostMin, schedule.est_cost_min());
                ctx.span("kernel")
            });
            let parent = kernel_span.as_ref().map(|s| s.id());
            let obs = &obs;
            let shared_ref = &shared;
            let run = || {
                (0..tasks.len())
                    .into_par_iter()
                    .map(|k| {
                        let range = tasks[k].clone();
                        let _task_span = obs.as_ref().map(|ctx| {
                            let mut s = ctx.span_under("task", parent);
                            s.set_items(range.len() as u64);
                            s
                        });
                        let mut kernel = factory.acquire();
                        let mut acc = workload.new_accum(g);
                        let (work, tally) = if metered {
                            let mut meter = CountingMeter::new();
                            let tally = run_range(
                                g,
                                range,
                                workload,
                                shared_ref,
                                &mut acc,
                                &mut kernel,
                                &mut meter,
                            );
                            (meter.counts, tally)
                        } else {
                            let tally = run_range(
                                g,
                                range,
                                workload,
                                shared_ref,
                                &mut acc,
                                &mut kernel,
                                &mut NullMeter,
                            );
                            (WorkCounts::default(), tally)
                        };
                        factory.release(kernel);
                        (acc, work, tally)
                    })
                    .reduce(
                        || {
                            (
                                workload.new_accum(g),
                                WorkCounts::default(),
                                RangeTally::default(),
                            )
                        },
                        |mut a, b| {
                            workload.merge(&mut a.0, b.0);
                            a.1.merge(&b.1);
                            a.2.accumulate(&b.2);
                            a
                        },
                    )
            };
            let (acc, work, tally) = crate::with_threads(cfg.threads, run);
            Self::record_tally(obs, &tally);
            merged = acc;
            total = work;
        }
        (workload.finish(g, shared, merged), total)
    }
}

/// The platform-side algorithm dispatch: one value selects the kernel for
/// every execution mode. The named driver functions (`seq_mps`, `par_bmp`,
/// …) are thin wrappers over this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuKernel {
    /// Baseline plain merge (**M**).
    Merge,
    /// Hybrid pivot-skip / vectorized block merge (**MPS**).
    Mps(MpsConfig),
    /// Dynamic bitmap index (**BMP**), optionally range-filtered.
    Bmp(BmpMode),
}

impl CpuKernel {
    /// Check configuration that the type system cannot (the RF ratio).
    pub fn validate(&self) -> Result<(), RfRatioError> {
        match self {
            CpuKernel::Bmp(mode) => mode.validate(),
            _ => Ok(()),
        }
    }

    /// The cost model the balanced scheduler prices this kernel with.
    pub fn cost_model(&self) -> CostModel {
        match self {
            CpuKernel::Merge => CostModel::Merge,
            CpuKernel::Mps(cfg) => CostModel::Mps {
                skew_threshold: cfg.skew_threshold,
            },
            CpuKernel::Bmp(_) => CostModel::Bmp,
        }
    }

    /// Sequential execution of any workload on `g`, work reported to
    /// `meter`.
    pub fn run_seq_workload<W: Workload, M: Meter>(
        &self,
        workload: &W,
        g: &CsrGraph,
        meter: &mut M,
    ) -> W::Output {
        let drv = EdgeRangeDriver::new(g);
        match self {
            CpuKernel::Merge => drv.run_seq_workload(workload, &mut MergeKernel, meter),
            CpuKernel::Mps(cfg) => drv.run_seq_workload(workload, &mut MpsKernel::new(*cfg), meter),
            CpuKernel::Bmp(BmpMode::Plain) => {
                drv.run_seq_workload(workload, &mut BmpKernel::new(g.num_vertices()), meter)
            }
            CpuKernel::Bmp(BmpMode::RangeFiltered { ratio }) => {
                let mut k = RfKernel::prevalidated(g.num_vertices().max(1), *ratio);
                drv.run_seq_workload(workload, &mut k, meter)
            }
        }
    }

    /// Sequential CNC execution on `g`, work reported to `meter`.
    pub fn run_seq<M: Meter>(&self, g: &CsrGraph, meter: &mut M) -> Vec<u32> {
        self.run_seq_workload(&CncWorkload, g, meter)
    }

    /// Sequential execution of one edge-offset `range` of `g` through
    /// [`run_range`], with caller-owned shared / accumulator state. This is
    /// the shard worker's entry point: the coordinator cuts the edge range
    /// on source boundaries ([`cut_source_blocks`](crate::cut_source_blocks))
    /// and each worker process drives exactly its block, so every kernel
    /// sees the same source-aligned ranges a balanced thread schedule would.
    pub fn run_range_workload<W: Workload, M: Meter>(
        &self,
        workload: &W,
        g: &CsrGraph,
        range: Range<usize>,
        shared: &W::Shared,
        acc: &mut W::Accum,
        meter: &mut M,
    ) -> RangeTally {
        match self {
            CpuKernel::Merge => run_range(g, range, workload, shared, acc, &mut MergeKernel, meter),
            CpuKernel::Mps(cfg) => run_range(
                g,
                range,
                workload,
                shared,
                acc,
                &mut MpsKernel::new(*cfg),
                meter,
            ),
            CpuKernel::Bmp(BmpMode::Plain) => run_range(
                g,
                range,
                workload,
                shared,
                acc,
                &mut BmpKernel::new(g.num_vertices()),
                meter,
            ),
            CpuKernel::Bmp(BmpMode::RangeFiltered { ratio }) => {
                let mut k = RfKernel::prevalidated(g.num_vertices().max(1), *ratio);
                run_range(g, range, workload, shared, acc, &mut k, meter)
            }
        }
    }

    /// Parallel execution of any workload on `g` (Algorithm 3), unmetered.
    pub fn run_par_workload<W: Workload>(
        &self,
        workload: &W,
        g: &CsrGraph,
        cfg: &ParConfig,
    ) -> W::Output {
        let drv = EdgeRangeDriver::new(g);
        let n = g.num_vertices();
        let model = self.cost_model();
        match self {
            CpuKernel::Merge => {
                drv.run_par_workload(workload, &CloneFactory(MergeKernel), cfg, &model)
            }
            CpuKernel::Mps(mps) => {
                drv.run_par_workload(workload, &CloneFactory(MpsKernel::new(*mps)), cfg, &model)
            }
            CpuKernel::Bmp(BmpMode::Plain) => {
                let pool = BitmapPool::new(move || BmpKernel::new(n));
                drv.run_par_workload(workload, &pool, cfg, &model)
            }
            CpuKernel::Bmp(BmpMode::RangeFiltered { ratio }) => {
                let ratio = *ratio;
                let pool = BitmapPool::new(move || RfKernel::prevalidated(n.max(1), ratio));
                drv.run_par_workload(workload, &pool, cfg, &model)
            }
        }
    }

    /// Parallel CNC execution on `g` (Algorithm 3), unmetered.
    pub fn run_par(&self, g: &CsrGraph, cfg: &ParConfig) -> Vec<u32> {
        self.run_par_workload(&CncWorkload, g, cfg)
    }

    /// Parallel execution of any workload with merged per-task work
    /// tallies.
    pub fn run_par_metered_workload<W: Workload>(
        &self,
        workload: &W,
        g: &CsrGraph,
        cfg: &ParConfig,
    ) -> (W::Output, WorkCounts) {
        let drv = EdgeRangeDriver::new(g);
        let n = g.num_vertices();
        let model = self.cost_model();
        match self {
            CpuKernel::Merge => {
                drv.run_par_metered_workload(workload, &CloneFactory(MergeKernel), cfg, &model)
            }
            CpuKernel::Mps(mps) => drv.run_par_metered_workload(
                workload,
                &CloneFactory(MpsKernel::new(*mps)),
                cfg,
                &model,
            ),
            CpuKernel::Bmp(BmpMode::Plain) => {
                let pool = BitmapPool::new(move || BmpKernel::new(n));
                drv.run_par_metered_workload(workload, &pool, cfg, &model)
            }
            CpuKernel::Bmp(BmpMode::RangeFiltered { ratio }) => {
                let ratio = *ratio;
                let pool = BitmapPool::new(move || RfKernel::prevalidated(n.max(1), ratio));
                drv.run_par_metered_workload(workload, &pool, cfg, &model)
            }
        }
    }

    /// Parallel CNC execution with merged per-task work tallies.
    pub fn run_par_metered(&self, g: &CsrGraph, cfg: &ParConfig) -> (Vec<u32>, WorkCounts) {
        self.run_par_metered_workload(&CncWorkload, g, cfg)
    }

    /// Sequential execution of the workload described by `kind`, dispatched
    /// to the matching strategy object and type-erased into a
    /// [`WorkloadOutput`].
    pub fn run_seq_kind<M: Meter>(
        &self,
        g: &CsrGraph,
        kind: WorkloadKind,
        meter: &mut M,
    ) -> WorkloadOutput {
        match kind {
            WorkloadKind::Cnc => {
                WorkloadOutput::EdgeCounts(self.run_seq_workload(&CncWorkload, g, meter))
            }
            WorkloadKind::Triangle => {
                WorkloadOutput::Global(self.run_seq_workload(&TriangleWorkload, g, meter))
            }
            WorkloadKind::KClique { k } => {
                let w = KCliqueWorkload::new(k).expect("clique size validated at plan time");
                WorkloadOutput::CliqueCounts {
                    k,
                    counts: self.run_seq_workload(&w, g, meter),
                }
            }
        }
    }

    /// Parallel execution of the workload described by `kind`, type-erased
    /// into a [`WorkloadOutput`].
    pub fn run_par_kind(
        &self,
        g: &CsrGraph,
        cfg: &ParConfig,
        kind: WorkloadKind,
    ) -> WorkloadOutput {
        match kind {
            WorkloadKind::Cnc => {
                WorkloadOutput::EdgeCounts(self.run_par_workload(&CncWorkload, g, cfg))
            }
            WorkloadKind::Triangle => {
                WorkloadOutput::Global(self.run_par_workload(&TriangleWorkload, g, cfg))
            }
            WorkloadKind::KClique { k } => {
                let w = KCliqueWorkload::new(k).expect("clique size validated at plan time");
                WorkloadOutput::CliqueCounts {
                    k,
                    counts: self.run_par_workload(&w, g, cfg),
                }
            }
        }
    }

    /// Parallel metered execution of the workload described by `kind`,
    /// type-erased into a [`WorkloadOutput`].
    pub fn run_par_metered_kind(
        &self,
        g: &CsrGraph,
        cfg: &ParConfig,
        kind: WorkloadKind,
    ) -> (WorkloadOutput, WorkCounts) {
        match kind {
            WorkloadKind::Cnc => {
                let (c, w) = self.run_par_metered_workload(&CncWorkload, g, cfg);
                (WorkloadOutput::EdgeCounts(c), w)
            }
            WorkloadKind::Triangle => {
                let (t, w) = self.run_par_metered_workload(&TriangleWorkload, g, cfg);
                (WorkloadOutput::Global(t), w)
            }
            WorkloadKind::KClique { k } => {
                let wl = KCliqueWorkload::new(k).expect("clique size validated at plan time");
                let (counts, w) = self.run_par_metered_workload(&wl, g, cfg);
                (WorkloadOutput::CliqueCounts { k, counts }, w)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::{generators, EdgeList};

    fn oracle(g: &CsrGraph) -> Vec<u32> {
        let mut cnt = vec![0u32; g.num_directed_edges()];
        for (eid, u, v) in g.iter_edges() {
            cnt[eid] = cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v));
        }
        cnt
    }

    #[test]
    fn every_kernel_every_mode_is_exact() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(250, 5.0, 2, 0.5, 2));
        let want = oracle(&g);
        for cfg in [ParConfig::with_task_size(53), ParConfig::balanced(7)] {
            for kernel in [
                CpuKernel::Merge,
                CpuKernel::Mps(MpsConfig::default()),
                CpuKernel::Bmp(BmpMode::Plain),
                CpuKernel::Bmp(BmpMode::rf_scaled(g.num_vertices())),
            ] {
                assert_eq!(kernel.run_seq(&g, &mut NullMeter), want, "{kernel:?} seq");
                assert_eq!(kernel.run_par(&g, &cfg), want, "{kernel:?} par {cfg:?}");
                let (counts, work) = kernel.run_par_metered(&g, &cfg);
                assert_eq!(counts, want, "{kernel:?} par_metered {cfg:?}");
                assert!(work.total_ops() > 0, "{kernel:?} reported no work");
            }
        }
    }

    #[test]
    fn seq_and_metered_par_report_identical_work() {
        // Uniform metering: meter_reverse and kernel work are recorded on
        // every path, so for kernels without per-source state the parallel
        // decomposition must not change a single tally.
        let g = CsrGraph::from_edge_list(&generators::chung_lu(200, 9.0, 2.2, 6));
        let kernel = CpuKernel::Mps(MpsConfig::default());
        let mut seq_meter = CountingMeter::new();
        kernel.run_seq(&g, &mut seq_meter);
        for cfg in [ParConfig::with_task_size(61), ParConfig::balanced(9)] {
            let (_, par_work) = kernel.run_par_metered(&g, &cfg);
            assert_eq!(par_work, seq_meter.counts, "{cfg:?}");
        }
    }

    #[test]
    fn reverse_index_removes_random_probe_metering() {
        // Acceptance: on a graph carrying the prepared reverse-edge index
        // the mirror store is a streamed O(1) load — the merge kernel does
        // no other random accesses, so the whole tally must show zero.
        let mut g = CsrGraph::from_edge_list(&generators::hub_web(200, 5.0, 2, 0.5, 4));
        let mut searched = CountingMeter::new();
        CpuKernel::Merge.run_seq(&g, &mut searched);
        g.build_reverse_index();
        let mut indexed = CountingMeter::new();
        let counts = CpuKernel::Merge.run_seq(&g, &mut indexed);
        assert_eq!(counts, oracle(&g));
        assert!(
            searched.counts.rand_accesses > 0,
            "binary-search fallback must meter random probes"
        );
        assert_eq!(
            indexed.counts.rand_accesses, 0,
            "reverse index must eliminate every random probe"
        );
        assert!(indexed.counts.seq_bytes > searched.counts.seq_bytes);
    }

    #[test]
    fn empty_range_never_touches_kernel() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        for kernel in [CpuKernel::Merge, CpuKernel::Bmp(BmpMode::Plain)] {
            assert!(kernel.run_seq(&g, &mut NullMeter).is_empty());
            assert!(kernel.run_par(&g, &ParConfig::default()).is_empty());
        }
    }

    #[test]
    fn validate_rejects_bad_rf_ratios() {
        assert!(CpuKernel::Bmp(BmpMode::RangeFiltered { ratio: 0 })
            .validate()
            .is_err());
        assert!(CpuKernel::Bmp(BmpMode::RangeFiltered { ratio: 48 })
            .validate()
            .is_err());
        assert!(CpuKernel::Bmp(BmpMode::rf_default()).validate().is_ok());
        assert!(CpuKernel::Merge.validate().is_ok());
        assert!(BmpMode::range_filtered(100).is_err());
        assert_eq!(
            BmpMode::range_filtered(64),
            Ok(BmpMode::RangeFiltered { ratio: 64 })
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn run_with_bad_ratio_panics_with_clear_message() {
        // Invalid ratios are a plan-construction bug (Plan::validate rejects
        // them); the kernel constructor still refuses to build a broken
        // filter if one slips through.
        let g = CsrGraph::from_edge_list(&generators::gnm(20, 40, 1));
        let _ =
            CpuKernel::Bmp(BmpMode::RangeFiltered { ratio: 3 }).run_par(&g, &ParConfig::default());
    }
}
