//! A shared pool of reusable bitmaps.
//!
//! BMP's per-task bitmap has `|V|` bits: allocating one per task would
//! dominate runtime, and one per OS thread is awkward to express safely with
//! rayon's work stealing. A small lock-protected pool (mirroring the GPU
//! kernel's `B_A`/`BS_A` bitmap pool, Algorithm 6) hands clean bitmaps to
//! tasks and takes them back cleared; at steady state it holds one bitmap
//! per worker thread.

use std::sync::Mutex;

/// Statistics of pool usage (exported for tests and the memory tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Bitmaps created over the pool's lifetime.
    pub created: usize,
    /// Acquire calls served from the free list.
    pub reused: usize,
}

/// Free list and usage statistics, guarded together: acquire and release
/// each take exactly one lock.
struct PoolInner<T> {
    free: Vec<T>,
    stats: PoolStats,
}

/// A pool of `T` values (bitmaps) created on demand by a factory.
pub struct BitmapPool<T> {
    inner: Mutex<PoolInner<T>>,
    factory: Box<dyn Fn() -> T + Send + Sync>,
}

impl<T> BitmapPool<T> {
    /// An empty pool whose bitmaps are built by `factory`.
    pub fn new(factory: impl Fn() -> T + Send + Sync + 'static) -> Self {
        Self {
            inner: Mutex::new(PoolInner {
                free: Vec::new(),
                stats: PoolStats::default(),
            }),
            factory: Box::new(factory),
        }
    }

    /// Take a value from the pool, creating one if none is free.
    ///
    /// The caller must return the value *clean* (all-zero bitmap) via
    /// [`BitmapPool::release`].
    pub fn acquire(&self) -> T {
        {
            let mut inner = self.inner.lock().expect("pool lock poisoned");
            if let Some(v) = inner.free.pop() {
                inner.stats.reused += 1;
                return v;
            }
            inner.stats.created += 1;
            // Drop the lock before running the factory: building a |V|-bit
            // bitmap is the expensive path and must not serialize peers.
        }
        (self.factory)()
    }

    /// Return a (clean) value to the pool.
    pub fn release(&self, v: T) {
        self.inner.lock().expect("pool lock poisoned").free.push(v);
    }

    /// Usage statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().expect("pool lock poisoned").stats
    }

    /// Number of values currently on the free list.
    pub fn idle(&self) -> usize {
        self.inner.lock().expect("pool lock poisoned").free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_intersect::Bitmap;
    use rayon::prelude::*;

    #[test]
    fn acquire_creates_then_reuses() {
        let pool = BitmapPool::new(|| Bitmap::new(128));
        let a = pool.acquire();
        assert_eq!(pool.stats().created, 1);
        pool.release(a);
        let _b = pool.acquire();
        let s = pool.stats();
        assert_eq!(s.created, 1);
        assert_eq!(s.reused, 1);
    }

    #[test]
    fn steady_state_bounded_by_concurrency() {
        let pool = BitmapPool::new(|| Bitmap::new(64));
        (0..1000).into_par_iter().for_each(|_| {
            let bm = pool.acquire();
            // ... would use the bitmap here ...
            pool.release(bm);
        });
        let s = pool.stats();
        assert!(s.created <= rayon::current_num_threads() * 2 + 1);
        assert_eq!(pool.idle(), s.created);
    }

    #[test]
    fn released_bitmaps_must_be_clean_contract() {
        // The pool does not scrub: this test documents the contract by
        // showing a dirty release is observable (and thus testable upstream).
        let pool = BitmapPool::new(|| Bitmap::new(32));
        let mut bm = pool.acquire();
        bm.set(5);
        pool.release(bm);
        let back = pool.acquire();
        assert!(
            !back.is_empty(),
            "pool hands back exactly what was released"
        );
    }
}
