//! Metered variants of the parallel drivers: same Algorithm 3 skeleton,
//! but every task records its work into a per-task `CountingMeter` and
//! the tallies are merged at the end.
//!
//! Used by the simulated processors to collect whole-graph work profiles
//! faster than the sequential instrumented drivers when the host has
//! multiple cores, and by tests to check that parallel decomposition does
//! not change the algorithmic work (beyond per-task amortization effects).
//!
//! Thin [`CpuKernel`] instantiations of the unified
//! [`EdgeRangeDriver`](crate::EdgeRangeDriver), like everything else in
//! this crate.

use cnc_graph::CsrGraph;
use cnc_intersect::{MpsConfig, WorkCounts};

use crate::driver::{BmpMode, CpuKernel};
use crate::ParConfig;

/// Parallel MPS with work metering: returns counts plus the merged tallies.
pub fn par_mps_metered(g: &CsrGraph, mps: &MpsConfig, cfg: &ParConfig) -> (Vec<u32>, WorkCounts) {
    CpuKernel::Mps(*mps).run_par_metered(g, cfg)
}

/// Parallel BMP with work metering.
pub fn par_bmp_metered(g: &CsrGraph, mode: BmpMode, cfg: &ParConfig) -> (Vec<u32>, WorkCounts) {
    CpuKernel::Bmp(mode).run_par_metered(g, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{seq_bmp, seq_merge_baseline, seq_mps};
    use cnc_graph::generators;
    use cnc_intersect::NullMeter;

    #[test]
    fn metered_parallel_matches_sequential_counts() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(400, 6.0, 2, 0.4, 7));
        let want = seq_merge_baseline(&g, &mut NullMeter);
        let cfg = ParConfig::with_task_size(97);
        let (mps_counts, mps_work) = par_mps_metered(&g, &MpsConfig::default(), &cfg);
        assert_eq!(mps_counts, want);
        assert!(mps_work.total_ops() > 0);
        let (bmp_counts, bmp_work) = par_bmp_metered(&g, BmpMode::Plain, &cfg);
        assert_eq!(bmp_counts, want);
        assert!(bmp_work.rand_accesses > 0);
        let (rf_counts, _) = par_bmp_metered(&g, BmpMode::rf_scaled(400), &cfg);
        assert_eq!(rf_counts, want);
    }

    #[test]
    fn metered_work_equals_sequential_work() {
        // The unified driver meters every path uniformly (kernel work plus
        // the reverse-offset search), and MPS has no per-task state beyond
        // FindSrc: the parallel decomposition must not change one tally.
        let g = CsrGraph::from_edge_list(&generators::chung_lu(300, 10.0, 2.2, 4));
        let mut seq_meter = cnc_intersect::CountingMeter::new();
        seq_mps(&g, &MpsConfig::default(), &mut seq_meter);
        let (_, par_work) =
            par_mps_metered(&g, &MpsConfig::default(), &ParConfig::with_task_size(4096));
        assert_eq!(par_work, seq_meter.counts);
    }

    #[test]
    fn bmp_task_boundaries_cost_bounded_reindexing() {
        let g = CsrGraph::from_edge_list(&generators::gnm(200, 2000, 3));
        let mut seq_meter = cnc_intersect::CountingMeter::new();
        seq_bmp(&g, BmpMode::Plain, &mut seq_meter);
        let (_, big_tasks) =
            par_bmp_metered(&g, BmpMode::Plain, &ParConfig::with_task_size(100_000));
        let (_, tiny_tasks) = par_bmp_metered(&g, BmpMode::Plain, &ParConfig::with_task_size(8));
        // Tiny tasks re-index the same u many times: strictly more writes.
        assert!(tiny_tasks.write_bytes > big_tasks.write_bytes);
        // A single whole-range task does exactly the sequential work.
        let (_, one_task) =
            par_bmp_metered(&g, BmpMode::Plain, &ParConfig::with_task_size(usize::MAX));
        assert_eq!(one_task, seq_meter.counts);
        // Balanced cuts land on source boundaries, so no source is ever
        // re-indexed: the bitmap writes equal the sequential run's exactly.
        let (_, balanced) = par_bmp_metered(&g, BmpMode::Plain, &ParConfig::balanced(8));
        assert_eq!(balanced.write_bytes, seq_meter.counts.write_bytes);
    }
}
