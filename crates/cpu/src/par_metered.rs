//! Metered variants of the parallel drivers: same Algorithm 3 skeleton,
//! but every task records its work into a per-task [`CountingMeter`] and
//! the tallies are merged at the end.
//!
//! Used by the simulated processors to collect whole-graph work profiles
//! faster than the sequential instrumented drivers when the host has
//! multiple cores, and by tests to check that parallel decomposition does
//! not change the algorithmic work (beyond per-task amortization effects).

use cnc_graph::CsrGraph;
use cnc_intersect::{
    bmp_count, mps_count_cfg, rf_count, Bitmap, CountingMeter, MpsConfig, RfBitmap, WorkCounts,
};
use parking_lot::Mutex;
use rayon::prelude::*;

use crate::pool::BitmapPool;
use crate::scatter::ScatterVec;
use crate::seq::BmpMode;
use crate::ParConfig;

/// Parallel MPS with work metering: returns counts plus the merged tallies.
pub fn par_mps_metered(g: &CsrGraph, mps: &MpsConfig, cfg: &ParConfig) -> (Vec<u32>, WorkCounts) {
    let m = g.num_directed_edges();
    let cnt = ScatterVec::new(m);
    let total = Mutex::new(WorkCounts::default());
    if m > 0 {
        let t = cfg.task_size.max(1);
        let tasks = m.div_ceil(t);
        let run = || {
            (0..tasks).into_par_iter().for_each(|k| {
                let mut meter = CountingMeter::new();
                let mut u_tls = 0u32;
                for eid in (k * t)..((k * t) + t).min(m) {
                    let u = g.find_src(eid, &mut u_tls);
                    let v = g.dst()[eid];
                    if u < v {
                        let c = mps_count_cfg(g.neighbors(u), g.neighbors(v), mps, &mut meter);
                        cnt.set(eid, c);
                        cnt.set(g.reverse_offset(u, eid), c);
                    }
                }
                total.lock().merge(&meter.counts);
            });
        };
        crate::with_threads(cfg.threads, run);
    }
    (cnt.into_vec(), total.into_inner())
}

/// Parallel BMP with work metering.
pub fn par_bmp_metered(g: &CsrGraph, mode: BmpMode, cfg: &ParConfig) -> (Vec<u32>, WorkCounts) {
    let m = g.num_directed_edges();
    let n = g.num_vertices();
    let cnt = ScatterVec::new(m);
    let total = Mutex::new(WorkCounts::default());
    if m > 0 {
        let t = cfg.task_size.max(1);
        let tasks = m.div_ceil(t);
        match mode {
            BmpMode::Plain => {
                let pool = BitmapPool::new(move || Bitmap::new(n));
                let run = || {
                    (0..tasks).into_par_iter().for_each(|k| {
                        let mut meter = CountingMeter::new();
                        let mut bm = pool.acquire();
                        let mut pu: Option<u32> = None;
                        let mut u_tls = 0u32;
                        for eid in (k * t)..((k * t) + t).min(m) {
                            let u = g.find_src(eid, &mut u_tls);
                            let v = g.dst()[eid];
                            if u >= v {
                                continue;
                            }
                            if pu != Some(u) {
                                if let Some(p) = pu {
                                    bm.clear_list(g.neighbors(p), &mut meter);
                                }
                                bm.set_list(g.neighbors(u), &mut meter);
                                pu = Some(u);
                            }
                            let c = bmp_count(&bm, g.neighbors(v), &mut meter);
                            cnt.set(eid, c);
                            cnt.set(g.reverse_offset(u, eid), c);
                        }
                        if let Some(p) = pu {
                            bm.clear_list(g.neighbors(p), &mut meter);
                        }
                        pool.release(bm);
                        total.lock().merge(&meter.counts);
                    });
                };
                crate::with_threads(cfg.threads, run);
            }
            BmpMode::RangeFiltered { ratio } => {
                let pool = BitmapPool::new(move || RfBitmap::with_ratio(n.max(1), ratio));
                let run = || {
                    (0..tasks).into_par_iter().for_each(|k| {
                        let mut meter = CountingMeter::new();
                        let mut rf = pool.acquire();
                        let mut pu: Option<u32> = None;
                        let mut u_tls = 0u32;
                        for eid in (k * t)..((k * t) + t).min(m) {
                            let u = g.find_src(eid, &mut u_tls);
                            let v = g.dst()[eid];
                            if u >= v {
                                continue;
                            }
                            if pu != Some(u) {
                                if let Some(p) = pu {
                                    rf.clear_list(g.neighbors(p), &mut meter);
                                }
                                rf.set_list(g.neighbors(u), &mut meter);
                                pu = Some(u);
                            }
                            let c = rf_count(&rf, g.neighbors(v), &mut meter);
                            cnt.set(eid, c);
                            cnt.set(g.reverse_offset(u, eid), c);
                        }
                        if let Some(p) = pu {
                            rf.clear_list(g.neighbors(p), &mut meter);
                        }
                        pool.release(rf);
                        total.lock().merge(&meter.counts);
                    });
                };
                crate::with_threads(cfg.threads, run);
            }
        }
    }
    (cnt.into_vec(), total.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{seq_bmp, seq_merge_baseline, seq_mps};
    use cnc_graph::generators;
    use cnc_intersect::NullMeter;

    #[test]
    fn metered_parallel_matches_sequential_counts() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(400, 6.0, 2, 0.4, 7));
        let want = seq_merge_baseline(&g, &mut NullMeter);
        let cfg = ParConfig::with_task_size(97);
        let (mps_counts, mps_work) = par_mps_metered(&g, &MpsConfig::default(), &cfg);
        assert_eq!(mps_counts, want);
        assert!(mps_work.total_ops() > 0);
        let (bmp_counts, bmp_work) = par_bmp_metered(&g, BmpMode::Plain, &cfg);
        assert_eq!(bmp_counts, want);
        assert!(bmp_work.rand_accesses > 0);
        let (rf_counts, _) = par_bmp_metered(&g, BmpMode::rf_scaled(400), &cfg);
        assert_eq!(rf_counts, want);
    }

    #[test]
    fn metered_work_close_to_sequential_work() {
        // The intersection work (ops) is identical; only the per-task bitmap
        // reconstruction differs (a u spanning a task boundary is indexed
        // twice). With reasonably large tasks the overhead stays small.
        let g = CsrGraph::from_edge_list(&generators::chung_lu(300, 10.0, 2.2, 4));
        let mut seq_meter = cnc_intersect::CountingMeter::new();
        seq_mps(&g, &MpsConfig::default(), &mut seq_meter);
        let (_, par_work) = par_mps_metered(
            &g,
            &MpsConfig::default(),
            &ParConfig::with_task_size(4096),
        );
        // MPS has no per-task state beyond FindSrc: ops match exactly
        // except the reverse-offset metering lives in the seq driver only.
        assert!(
            par_work.total_ops() <= seq_meter.counts.total_ops(),
            "par {} vs seq {}",
            par_work.total_ops(),
            seq_meter.counts.total_ops()
        );
        assert!(par_work.total_ops() * 2 > seq_meter.counts.total_ops());
    }

    #[test]
    fn bmp_task_boundaries_cost_bounded_reindexing() {
        let g = CsrGraph::from_edge_list(&generators::gnm(200, 2000, 3));
        let mut seq_meter = cnc_intersect::CountingMeter::new();
        seq_bmp(&g, BmpMode::Plain, &mut seq_meter);
        let (_, big_tasks) = par_bmp_metered(&g, BmpMode::Plain, &ParConfig::with_task_size(100_000));
        let (_, tiny_tasks) = par_bmp_metered(&g, BmpMode::Plain, &ParConfig::with_task_size(8));
        // Tiny tasks re-index the same u many times: strictly more writes.
        assert!(tiny_tasks.write_bytes > big_tasks.write_bytes);
    }
}
