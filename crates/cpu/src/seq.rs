//! Sequential drivers — the starting points of the paper's technique
//! evaluation (Table 4's `T_M`, `T_MPS`, `T_BMP` rows).
//!
//! Each function is a thin instantiation of the unified
//! [`EdgeRangeDriver`](crate::EdgeRangeDriver) (via [`CpuKernel`]): the
//! whole edge range runs as a single task, so per-source state is amortized
//! exactly as in the paper's sequential algorithms, and all work is
//! reported to the caller's [`Meter`].

use cnc_graph::CsrGraph;
use cnc_intersect::{Meter, MpsConfig};

use crate::driver::{BmpMode, CpuKernel};

/// Baseline **M**: plain merge for every `u < v` edge, symmetric assignment
/// for the rest (Figure 3 / Table 4 baseline).
pub fn seq_merge_baseline<M: Meter>(g: &CsrGraph, meter: &mut M) -> Vec<u32> {
    CpuKernel::Merge.run_seq(g, meter)
}

/// **MPS** (Algorithm 1): hybrid pivot-skip / vectorized block merge.
pub fn seq_mps<M: Meter>(g: &CsrGraph, cfg: &MpsConfig, meter: &mut M) -> Vec<u32> {
    CpuKernel::Mps(*cfg).run_seq(g, meter)
}

/// **BMP** (Algorithm 2): per-vertex dynamic bitmap index, amortized over
/// all of `u`'s intersections, optionally range-filtered.
///
/// Works on any CSR; for the paper's `O(min(d_u, d_v))` bound the graph
/// should be degree-descending reordered first (see `cnc_graph::reorder`).
pub fn seq_bmp<M: Meter>(g: &CsrGraph, mode: BmpMode, meter: &mut M) -> Vec<u32> {
    CpuKernel::Bmp(mode).run_seq(g, meter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::{generators, reorder, EdgeList};
    use cnc_intersect::{CountingMeter, NullMeter, SimdLevel};

    /// Independent oracle: brute-force common neighbor counts.
    fn oracle(g: &CsrGraph) -> Vec<u32> {
        let mut cnt = vec![0u32; g.num_directed_edges()];
        for (eid, u, v) in g.iter_edges() {
            cnt[eid] = cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v));
        }
        cnt
    }

    fn check_all_drivers(g: &CsrGraph) {
        let want = oracle(g);
        let mut m = NullMeter;
        assert_eq!(seq_merge_baseline(g, &mut m), want, "baseline M");
        for simd in [SimdLevel::Scalar, SimdLevel::Avx2] {
            let cfg = MpsConfig::with_simd(simd);
            assert_eq!(seq_mps(g, &cfg, &mut m), want, "MPS {simd:?}");
        }
        assert_eq!(seq_bmp(g, BmpMode::Plain, &mut m), want, "BMP");
        assert_eq!(seq_bmp(g, BmpMode::rf_default(), &mut m), want, "BMP-RF");
        assert_eq!(
            seq_bmp(g, BmpMode::RangeFiltered { ratio: 64 }, &mut m),
            want,
            "BMP-RF/64"
        );
    }

    #[test]
    fn triangle_counts() {
        // Triangle 0-1-2 plus tail 2-3: each triangle edge has one common
        // neighbor, the tail has none.
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (0, 2), (1, 2), (2, 3)]));
        let want = oracle(&g);
        let mut m = NullMeter;
        let got = seq_merge_baseline(&g, &mut m);
        assert_eq!(got, want);
        // Spot-check: edge (0,1) sees common neighbor 2.
        let e01 = g.edge_offset(0, 1).unwrap();
        assert_eq!(got[e01], 1);
        let e23 = g.edge_offset(2, 3).unwrap();
        assert_eq!(got[e23], 0);
    }

    #[test]
    fn complete_graph_counts() {
        let g = CsrGraph::from_edge_list(&generators::complete(8));
        let mut m = NullMeter;
        let got = seq_bmp(&g, BmpMode::Plain, &mut m);
        // In K_8 every edge has exactly n-2 = 6 common neighbors.
        assert!(got.iter().all(|&c| c == 6));
    }

    #[test]
    fn path_and_star_have_zero_counts() {
        let mut m = NullMeter;
        for el in [generators::path(20), generators::star(20)] {
            let g = CsrGraph::from_edge_list(&el);
            assert!(seq_mps(&g, &MpsConfig::default(), &mut m)
                .iter()
                .all(|&c| c == 0));
        }
    }

    #[test]
    fn all_drivers_agree_on_random_graphs() {
        for seed in 0..4u64 {
            let g = CsrGraph::from_edge_list(&generators::gnm(120, 600, seed));
            check_all_drivers(&g);
        }
        let g = CsrGraph::from_edge_list(&generators::chung_lu(200, 10.0, 2.1, 5));
        check_all_drivers(&g);
        let g = CsrGraph::from_edge_list(&generators::hub_web(150, 6.0, 2, 0.5, 6));
        check_all_drivers(&g);
    }

    #[test]
    fn drivers_agree_on_reordered_graph() {
        let g = CsrGraph::from_edge_list(&generators::chung_lu(150, 8.0, 2.2, 9));
        let r = reorder::degree_descending(&g);
        check_all_drivers(&r.graph);
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let mut m = NullMeter;
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        assert!(seq_bmp(&g, BmpMode::Plain, &mut m).is_empty());
        let g = CsrGraph::from_edge_list(&EdgeList::new(5));
        assert!(seq_mps(&g, &MpsConfig::default(), &mut m).is_empty());
    }

    #[test]
    fn skew_handling_reduces_metered_work_on_skewed_graph() {
        // A hub-heavy graph: MPS (with pivot-skip) must do far less work
        // than the baseline merge — the essence of Figure 3.
        let g = CsrGraph::from_edge_list(&generators::hub_web(2000, 4.0, 2, 0.6, 3));
        let mut m_base = CountingMeter::new();
        seq_merge_baseline(&g, &mut m_base);
        let mut m_mps = CountingMeter::new();
        seq_mps(&g, &MpsConfig::with_simd(SimdLevel::Scalar), &mut m_mps);
        assert!(
            m_mps.counts.total_ops() < m_base.counts.total_ops() / 2,
            "MPS {} vs M {}",
            m_mps.counts.total_ops(),
            m_base.counts.total_ops()
        );
    }

    #[test]
    fn bmp_work_is_min_degree_bound_on_reordered_graph() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(2000, 4.0, 2, 0.6, 3));
        let r = reorder::degree_descending(&g);
        let mut m_bmp = CountingMeter::new();
        seq_bmp(&r.graph, BmpMode::Plain, &mut m_bmp);
        let mut m_base = CountingMeter::new();
        seq_merge_baseline(&r.graph, &mut m_base);
        assert!(
            m_bmp.counts.total_ops() < m_base.counts.total_ops(),
            "BMP must beat baseline on skewed graphs"
        );
    }

    #[test]
    fn rf_reduces_big_bitmap_traffic_on_uniform_graph() {
        // FR-like regime: near-uniform sparse graph — RF's win case
        // (Figure 6's FR panel).
        let g = CsrGraph::from_edge_list(&generators::gnm(4000, 12_000, 8));
        let r = reorder::degree_descending(&g);
        let mut plain = CountingMeter::new();
        seq_bmp(&r.graph, BmpMode::Plain, &mut plain);
        let mut rf = CountingMeter::new();
        seq_bmp(
            &r.graph,
            BmpMode::rf_scaled(r.graph.num_vertices()),
            &mut rf,
        );
        // The paper reports 1.9–2.1× on FR; construction and reverse-offset
        // accesses are incompressible, so require at least a 1.5× reduction.
        assert!(
            rf.counts.rand_accesses * 3 < plain.counts.rand_accesses * 2,
            "RF {} vs plain {}",
            rf.counts.rand_accesses,
            plain.counts.rand_accesses
        );
    }
}
