//! Multicore CPU drivers for all-edge common neighbor counting.
//!
//! This crate ports the paper's OpenMP skeleton (Algorithm 3) to rayon:
//! the edge-offset range `[0, |E|)` is decomposed into tasks by a
//! [`SchedulePolicy`] — fixed `|T|`-sized chunks (work stealing plays the
//! role of `schedule(dynamic, |T|)`) or cost-balanced source-aligned cuts —
//! and each task amortizes two pieces of state exactly like the paper's
//! thread-locals:
//!
//! * the previously found source vertex (`FindSrc` stash), and
//! * for BMP, the bitmap index of the current source's neighbor list,
//!   rebuilt only when the source changes.
//!
//! That skeleton is written exactly once — [`run_range`], wrapped by the
//! generic [`EdgeRangeDriver`] — and instantiated per algorithm through the
//! `PairKernel` strategies of `cnc-intersect`. [`CpuKernel`] is the
//! platform-side dispatch; the named drivers are thin wrappers over it,
//! provided in sequential and parallel forms:
//!
//! | driver | paper name | kernel |
//! |--------|------------|--------|
//! | [`seq_merge_baseline`] / [`par_merge_baseline`] | **M** | plain merge |
//! | [`seq_mps`] / [`par_mps`] | **MPS** | hybrid VB / pivot-skip |
//! | [`seq_bmp`] / [`par_bmp`] | **BMP** (+**RF**) | dynamic bitmap index |
//!
//! All drivers return one `u32` count per *directed* edge slot of the CSR
//! (`cnt[e(u,v)]` for every `(u,v)`), with the symmetric assignment
//! technique applied: only `u < v` pairs are intersected and the result is
//! mirrored to `e(v,u)`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod batch;
mod driver;
mod par;
mod par_metered;
mod pool;
mod schedule;
mod seq;

pub use batch::{pair_task_ranges, run_pairs, BatchCounter};
pub use driver::{
    run_range, BmpMode, CloneFactory, CpuKernel, EdgeRangeDriver, KernelFactory, RangeTally,
};
pub use par::{par_bmp, par_merge_baseline, par_mps, ParConfig};
pub use par_metered::{par_bmp_metered, par_mps_metered};
pub use pool::{BitmapPool, PoolStats};
// The scatter target moved to `cnc-workload` (it is the CNC workload's
// shared state); re-exported here for source compatibility.
pub use cnc_workload::ScatterVec;
pub use schedule::{cut_source_blocks, RangeBlock, Schedule, SchedulePolicy, DEFAULT_TASK_SIZE};
pub use seq::{seq_bmp, seq_merge_baseline, seq_mps};

/// Run a closure on a dedicated rayon pool with `threads` workers.
///
/// Used by benchmarks and the thread-scaling experiments; `None` uses the
/// global pool.
pub fn with_threads<R: Send>(threads: Option<usize>, f: impl FnOnce() -> R + Send) -> R {
    match threads {
        None => f(),
        Some(t) => rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("failed to build rayon pool")
            .install(f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_runs_closure() {
        assert_eq!(with_threads(None, || 41 + 1), 42);
        assert_eq!(with_threads(Some(2), rayon::current_num_threads), 2);
    }
}
