//! Parallel drivers — the rayon port of Algorithm 3.
//!
//! The edge-offset range is split into tasks of `|T|` consecutive offsets.
//! Each task walks its range with the amortized `FindSrc` stash, computes
//! counts for `u < v` edges and scatters both `cnt[e(u,v)]` and the mirrored
//! `cnt[e(v,u)]` into a shared [`ScatterVec`]. BMP tasks borrow a bitmap
//! from a shared [`BitmapPool`] and rebuild the index only when the source
//! vertex changes (`ComputeCntBMP`'s `pu_tls` logic).

use cnc_graph::CsrGraph;
use cnc_intersect::{
    bmp_count, merge_count, mps_count_cfg, rf_count, Bitmap, MpsConfig, NullMeter, RfBitmap,
};
use rayon::prelude::*;

use crate::pool::BitmapPool;
use crate::scatter::ScatterVec;
use crate::seq::BmpMode;

/// Parallel execution parameters for the Algorithm 3 skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Task size `|T|`: edge offsets per dynamically scheduled task.
    /// The trade-off of Section 4: large tasks amortize scheduling, small
    /// tasks balance load. Default 8192.
    pub task_size: usize,
    /// Worker threads; `None` uses the ambient rayon pool.
    pub threads: Option<usize>,
}

impl Default for ParConfig {
    fn default() -> Self {
        Self {
            task_size: 8192,
            threads: None,
        }
    }
}

impl ParConfig {
    /// Config with an explicit task size.
    pub fn with_task_size(task_size: usize) -> Self {
        Self {
            task_size: task_size.max(1),
            threads: None,
        }
    }
}

/// Run `body(task_range)` over all edge-offset tasks in parallel.
fn run_tasks(
    g: &CsrGraph,
    cfg: &ParConfig,
    body: impl Fn(std::ops::Range<usize>) + Sync,
) {
    let m = g.num_directed_edges();
    if m == 0 {
        return;
    }
    let t = cfg.task_size.max(1);
    let tasks = m.div_ceil(t);
    let run = || {
        (0..tasks).into_par_iter().for_each(|k| {
            let start = k * t;
            let end = (start + t).min(m);
            body(start..end);
        });
    };
    crate::with_threads(cfg.threads, run);
}

/// One task of the MPS / baseline skeleton: walk the range, count, scatter.
fn merge_family_task(
    g: &CsrGraph,
    cnt: &ScatterVec,
    range: std::ops::Range<usize>,
    kernel: &(impl Fn(&[u32], &[u32]) -> u32 + Sync),
) {
    let mut u_tls = 0u32; // FindSrc stash (Algorithm 3 line 8)
    for eid in range {
        let u = g.find_src(eid, &mut u_tls);
        let v = g.dst()[eid];
        if u < v {
            let c = kernel(g.neighbors(u), g.neighbors(v));
            cnt.set(eid, c);
            cnt.set(g.reverse_offset(u, eid), c);
        }
    }
}

/// Parallel baseline **M** (plain merge in the skeleton) — Table 4 ablation.
pub fn par_merge_baseline(g: &CsrGraph, cfg: &ParConfig) -> Vec<u32> {
    let cnt = ScatterVec::new(g.num_directed_edges());
    let kernel = |a: &[u32], b: &[u32]| merge_count(a, b, &mut NullMeter);
    run_tasks(g, cfg, |range| merge_family_task(g, &cnt, range, &kernel));
    cnt.into_vec()
}

/// Parallel **MPS** (Algorithm 3 with `ComputeCntMPS`).
pub fn par_mps(g: &CsrGraph, mps: &MpsConfig, cfg: &ParConfig) -> Vec<u32> {
    let cnt = ScatterVec::new(g.num_directed_edges());
    let kernel = |a: &[u32], b: &[u32]| mps_count_cfg(a, b, mps, &mut NullMeter);
    run_tasks(g, cfg, |range| merge_family_task(g, &cnt, range, &kernel));
    cnt.into_vec()
}

/// Parallel **BMP** (Algorithm 3 with `ComputeCntBMP`), optionally with
/// range filtering.
///
/// Each task acquires a bitmap from a shared pool; the index is rebuilt only
/// when the task's source vertex changes, and the bitmap is returned clean.
pub fn par_bmp(g: &CsrGraph, mode: BmpMode, cfg: &ParConfig) -> Vec<u32> {
    let n = g.num_vertices();
    let cnt = ScatterVec::new(g.num_directed_edges());
    match mode {
        BmpMode::Plain => {
            let pool = BitmapPool::new(move || Bitmap::new(n));
            run_tasks(g, cfg, |range| {
                let mut bm = pool.acquire();
                debug_assert!(bm.is_empty(), "pool must hand out clean bitmaps");
                let mut pu: Option<u32> = None; // pu_tls (Algorithm 3 line 19)
                let mut u_tls = 0u32;
                for eid in range {
                    let u = g.find_src(eid, &mut u_tls);
                    let v = g.dst()[eid];
                    if u >= v {
                        continue;
                    }
                    if pu != Some(u) {
                        if let Some(p) = pu {
                            bm.clear_list(g.neighbors(p), &mut NullMeter);
                        }
                        bm.set_list(g.neighbors(u), &mut NullMeter);
                        pu = Some(u);
                    }
                    let c = bmp_count(&bm, g.neighbors(v), &mut NullMeter);
                    cnt.set(eid, c);
                    cnt.set(g.reverse_offset(u, eid), c);
                }
                if let Some(p) = pu {
                    bm.clear_list(g.neighbors(p), &mut NullMeter);
                }
                pool.release(bm);
            });
        }
        BmpMode::RangeFiltered { ratio } => {
            let pool = BitmapPool::new(move || RfBitmap::with_ratio(n.max(1), ratio));
            run_tasks(g, cfg, |range| {
                let mut rf = pool.acquire();
                debug_assert!(rf.is_empty(), "pool must hand out clean bitmaps");
                let mut pu: Option<u32> = None;
                let mut u_tls = 0u32;
                for eid in range {
                    let u = g.find_src(eid, &mut u_tls);
                    let v = g.dst()[eid];
                    if u >= v {
                        continue;
                    }
                    if pu != Some(u) {
                        if let Some(p) = pu {
                            rf.clear_list(g.neighbors(p), &mut NullMeter);
                        }
                        rf.set_list(g.neighbors(u), &mut NullMeter);
                        pu = Some(u);
                    }
                    let c = rf_count(&rf, g.neighbors(v), &mut NullMeter);
                    cnt.set(eid, c);
                    cnt.set(g.reverse_offset(u, eid), c);
                }
                if let Some(p) = pu {
                    rf.clear_list(g.neighbors(p), &mut NullMeter);
                }
                pool.release(rf);
            });
        }
    }
    cnt.into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{seq_merge_baseline, BmpMode};
    use cnc_graph::{datasets, generators, reorder, EdgeList};
    use cnc_intersect::NullMeter;

    fn oracle(g: &CsrGraph) -> Vec<u32> {
        seq_merge_baseline(g, &mut NullMeter)
    }

    fn check_parallel(g: &CsrGraph, task_size: usize) {
        let want = oracle(g);
        let cfg = ParConfig::with_task_size(task_size);
        assert_eq!(par_merge_baseline(g, &cfg), want, "par M, |T|={task_size}");
        assert_eq!(
            par_mps(g, &MpsConfig::default(), &cfg),
            want,
            "par MPS, |T|={task_size}"
        );
        assert_eq!(
            par_bmp(g, BmpMode::Plain, &cfg),
            want,
            "par BMP, |T|={task_size}"
        );
        assert_eq!(
            par_bmp(g, BmpMode::rf_default(), &cfg),
            want,
            "par BMP-RF, |T|={task_size}"
        );
    }

    #[test]
    fn parallel_matches_sequential_small_tasks() {
        let g = CsrGraph::from_edge_list(&generators::gnm(100, 500, 3));
        // Tiny tasks stress the cross-task scatter writes and pool churn.
        for t in [1, 3, 17, 100, 10_000] {
            check_parallel(&g, t);
        }
    }

    #[test]
    fn parallel_on_skewed_and_reordered_graphs() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(300, 6.0, 2, 0.5, 1));
        check_parallel(&g, 64);
        let r = reorder::degree_descending(&g);
        check_parallel(&r.graph, 64);
    }

    #[test]
    fn parallel_on_dataset_analogues() {
        for d in datasets::Dataset::ALL {
            let g = d.build(datasets::Scale::Tiny);
            check_parallel(&g, 257);
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        assert!(par_mps(&g, &MpsConfig::default(), &ParConfig::default()).is_empty());
    }

    #[test]
    fn explicit_thread_counts() {
        let g = CsrGraph::from_edge_list(&generators::gnm(80, 300, 5));
        let want = oracle(&g);
        for threads in [1, 2, 4] {
            let cfg = ParConfig {
                task_size: 37,
                threads: Some(threads),
            };
            assert_eq!(par_bmp(&g, BmpMode::Plain, &cfg), want, "threads={threads}");
        }
    }

    #[test]
    fn task_size_zero_is_clamped() {
        let g = CsrGraph::from_edge_list(&generators::gnm(20, 40, 6));
        let cfg = ParConfig::with_task_size(0);
        assert_eq!(cfg.task_size, 1);
        assert_eq!(par_mps(&g, &MpsConfig::default(), &cfg), oracle(&g));
    }
}
