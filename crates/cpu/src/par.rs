//! Parallel drivers — the rayon port of Algorithm 3.
//!
//! The edge-offset range is split into tasks of `|T|` consecutive offsets.
//! Each task walks its range with the amortized `FindSrc` stash, computes
//! counts for `u < v` edges and scatters both `cnt[e(u,v)]` and the mirrored
//! `cnt[e(v,u)]` into a shared `ScatterVec`. BMP tasks borrow a bitmap
//! kernel from a shared pool and rebuild the index only when the source
//! vertex changes (`ComputeCntBMP`'s `pu_tls` logic).
//!
//! All of that lives in the unified [`EdgeRangeDriver`](crate::EdgeRangeDriver);
//! each function here is a thin [`CpuKernel`] instantiation.

use cnc_graph::CsrGraph;
use cnc_intersect::MpsConfig;

use crate::driver::{BmpMode, CpuKernel};
use crate::schedule::SchedulePolicy;

/// Parallel execution parameters for the Algorithm 3 skeleton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParConfig {
    /// How the edge range is decomposed into tasks. The uniform policy is
    /// the Section 4 trade-off (large tasks amortize scheduling, small
    /// tasks balance load); the balanced policy prices sources with the
    /// kernel's cost model and cuts on source boundaries.
    pub schedule: SchedulePolicy,
    /// Worker threads; `None` uses the ambient rayon pool.
    pub threads: Option<usize>,
}

impl ParConfig {
    /// Uniform chunks with an explicit task size (clamped to ≥ 1).
    pub fn with_task_size(task_size: usize) -> Self {
        Self {
            schedule: SchedulePolicy::uniform(task_size),
            threads: None,
        }
    }

    /// Cost-balanced, source-aligned decomposition into at most `tasks`
    /// tasks (clamped to ≥ 1).
    pub fn balanced(tasks: usize) -> Self {
        Self {
            schedule: SchedulePolicy::balanced(tasks),
            threads: None,
        }
    }
}

/// Parallel baseline **M** (plain merge in the skeleton) — Table 4 ablation.
pub fn par_merge_baseline(g: &CsrGraph, cfg: &ParConfig) -> Vec<u32> {
    CpuKernel::Merge.run_par(g, cfg)
}

/// Parallel **MPS** (Algorithm 3 with `ComputeCntMPS`).
pub fn par_mps(g: &CsrGraph, mps: &MpsConfig, cfg: &ParConfig) -> Vec<u32> {
    CpuKernel::Mps(*mps).run_par(g, cfg)
}

/// Parallel **BMP** (Algorithm 3 with `ComputeCntBMP`), optionally with
/// range filtering.
///
/// Each task acquires a bitmap kernel from a shared pool; the index is
/// rebuilt only when the task's source vertex changes, and the kernel is
/// returned clean.
pub fn par_bmp(g: &CsrGraph, mode: BmpMode, cfg: &ParConfig) -> Vec<u32> {
    CpuKernel::Bmp(mode).run_par(g, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::seq_merge_baseline;
    use cnc_graph::{datasets, generators, reorder, EdgeList};
    use cnc_intersect::NullMeter;

    fn oracle(g: &CsrGraph) -> Vec<u32> {
        seq_merge_baseline(g, &mut NullMeter)
    }

    fn check_parallel(g: &CsrGraph, task_size: usize) {
        let want = oracle(g);
        let cfg = ParConfig::with_task_size(task_size);
        assert_eq!(par_merge_baseline(g, &cfg), want, "par M, |T|={task_size}");
        assert_eq!(
            par_mps(g, &MpsConfig::default(), &cfg),
            want,
            "par MPS, |T|={task_size}"
        );
        assert_eq!(
            par_bmp(g, BmpMode::Plain, &cfg),
            want,
            "par BMP, |T|={task_size}"
        );
        assert_eq!(
            par_bmp(g, BmpMode::rf_default(), &cfg),
            want,
            "par BMP-RF, |T|={task_size}"
        );
    }

    #[test]
    fn parallel_matches_sequential_small_tasks() {
        let g = CsrGraph::from_edge_list(&generators::gnm(100, 500, 3));
        // Tiny tasks stress the cross-task scatter writes and pool churn.
        for t in [1, 3, 17, 100, 10_000] {
            check_parallel(&g, t);
        }
    }

    #[test]
    fn parallel_on_skewed_and_reordered_graphs() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(300, 6.0, 2, 0.5, 1));
        check_parallel(&g, 64);
        let r = reorder::degree_descending(&g);
        check_parallel(&r.graph, 64);
    }

    #[test]
    fn parallel_on_dataset_analogues() {
        for d in datasets::Dataset::ALL {
            let g = d.build(datasets::Scale::Tiny);
            check_parallel(&g, 257);
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        assert!(par_mps(&g, &MpsConfig::default(), &ParConfig::default()).is_empty());
    }

    #[test]
    fn explicit_thread_counts() {
        let g = CsrGraph::from_edge_list(&generators::gnm(80, 300, 5));
        let want = oracle(&g);
        for threads in [1, 2, 4] {
            let cfg = ParConfig {
                schedule: SchedulePolicy::uniform(37),
                threads: Some(threads),
            };
            assert_eq!(par_bmp(&g, BmpMode::Plain, &cfg), want, "threads={threads}");
        }
    }

    #[test]
    fn task_size_zero_is_clamped() {
        let g = CsrGraph::from_edge_list(&generators::gnm(20, 40, 6));
        let cfg = ParConfig::with_task_size(0);
        assert_eq!(cfg.schedule, SchedulePolicy::Uniform { task_size: 1 });
        assert_eq!(par_mps(&g, &MpsConfig::default(), &cfg), oracle(&g));
    }

    #[test]
    fn balanced_schedule_matches_sequential() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(300, 6.0, 2, 0.5, 1));
        let want = oracle(&g);
        for tasks in [1, 2, 8, 1_000_000] {
            let cfg = ParConfig::balanced(tasks);
            assert_eq!(par_merge_baseline(&g, &cfg), want, "balanced M, {tasks}");
            assert_eq!(
                par_mps(&g, &MpsConfig::default(), &cfg),
                want,
                "balanced MPS, {tasks}"
            );
            assert_eq!(par_bmp(&g, BmpMode::Plain, &cfg), want, "balanced BMP");
            assert_eq!(
                par_bmp(&g, BmpMode::rf_default(), &cfg),
                want,
                "balanced BMP-RF"
            );
        }
    }
}
