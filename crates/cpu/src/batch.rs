//! Batch-of-edges execution: the serve layer's point-query executor.
//!
//! An all-edge pass visits every `u < v` pair exactly once, grouped by the
//! source `u`, so per-source kernel state (BMP's bitmap) is built once per
//! source. A flood of *point* queries answered one at a time loses that
//! amortization: every `count(u, v)` request pays its own `begin_source` /
//! `end_source` round trip. This module restores the bulk-pass shape for an
//! arbitrary *list* of pairs:
//!
//! * [`run_pairs`] is the sequential loop — the pair-list analogue of
//!   [`run_range`](crate::run_range): walk a source-grouped pair list,
//!   rebuild kernel state only when the source changes;
//! * [`pair_task_ranges`] cuts the list into cost-balanced tasks whose
//!   boundaries always land between source groups (the same pricing the
//!   balanced edge-range schedule uses, applied to the batch);
//! * [`BatchCounter`] owns the kernel dispatch **and the kernel pool**, so
//!   consecutive batches reuse the same `|V|`-bit bitmaps instead of
//!   reallocating them per batch — at steady state the pool holds one
//!   kernel per worker, however many batches have been served.
//!
//! Pairs are counted as given: `count(u, v) = |N(u) ∩ N(v)|` with `u` as
//! the kernel's source vertex. Callers wanting the edge-range driver's cost
//! profile should canonicalize to `u < v` and sort by `u` (the serve layer
//! does both); the functions here only require *grouping* by source.

use std::ops::Range;

use cnc_graph::CsrGraph;
use cnc_intersect::{
    BmpKernel, CostModel, MergeKernel, Meter, MpsKernel, NullMeter, PairKernel, RfKernel,
};
use rayon::prelude::*;

use crate::driver::{BmpMode, CloneFactory, CpuKernel, KernelFactory, RangeTally};
use crate::pool::{BitmapPool, PoolStats};

/// Count every `(u, v)` pair of a source-grouped list, amortizing
/// per-source kernel state across each group exactly like the edge-range
/// loop. Results land in `out` (same length as `pairs`); the returned
/// [`RangeTally`] reports visits and `begin_source` rebuilds.
///
/// # Panics
/// If `out.len() != pairs.len()` (debug builds).
pub fn run_pairs<K: PairKernel, M: Meter>(
    g: &CsrGraph,
    pairs: &[(u32, u32)],
    kernel: &mut K,
    meter: &mut M,
    out: &mut [u32],
) -> RangeTally {
    debug_assert_eq!(pairs.len(), out.len());
    let mut pu: Option<u32> = None;
    let mut tally = RangeTally::default();
    for (i, &(u, v)) in pairs.iter().enumerate() {
        if pu != Some(u) {
            if let Some(p) = pu {
                kernel.end_source(g.neighbors(p), meter);
            }
            kernel.begin_source(g.neighbors(u), meter);
            tally.rebuilds += 1;
            pu = Some(u);
        }
        out[i] = kernel.count(g.neighbors(u), g.neighbors(v), meter);
        tally.visited += 1;
    }
    if let Some(p) = pu {
        kernel.end_source(g.neighbors(p), meter);
    }
    tally
}

/// Cost-balanced, source-aligned decomposition of a source-grouped pair
/// list into at most `want` contiguous tasks.
///
/// Each pair is priced with the kernel's [`CostModel`] (`pair_cost` plus
/// one unit of loop overhead), the once-per-source setup cost is charged at
/// every group start, and cut points snap forward to the next group
/// boundary — so no task ever re-pays `begin_source` for a source another
/// task already indexed. Degenerate (empty) tasks are merged away.
pub fn pair_task_ranges(
    g: &CsrGraph,
    pairs: &[(u32, u32)],
    model: &CostModel,
    want: usize,
) -> Vec<Range<usize>> {
    let n = pairs.len();
    if n == 0 {
        return Vec::new();
    }
    let want = want.max(1);
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0u64);
    for (i, &(u, v)) in pairs.iter().enumerate() {
        let mut cost = 1 + model.pair_cost(g.degree(u), g.degree(v));
        if i == 0 || pairs[i - 1].0 != u {
            cost = cost.saturating_add(model.source_cost(g.degree(u)));
        }
        prefix.push(prefix[i].saturating_add(cost));
    }
    let total = prefix[n];
    let mut bounds: Vec<usize> = vec![0];
    for k in 1..want {
        let target = ((total as u128 * k as u128) / want as u128) as u64;
        let mut cut = prefix.partition_point(|&c| c < target).min(n);
        while cut > 0 && cut < n && pairs[cut].0 == pairs[cut - 1].0 {
            cut += 1;
        }
        if cut > *bounds.last().expect("bounds starts non-empty") && cut < n {
            bounds.push(cut);
        }
    }
    bounds.push(n);
    bounds.windows(2).map(|w| w[0]..w[1]).collect()
}

/// Which kernel pool a [`BatchCounter`] persists across batches.
enum PoolVariant {
    Merge(CloneFactory<MergeKernel>),
    Mps(CloneFactory<MpsKernel>),
    Bmp(BitmapPool<BmpKernel>),
    Rf(BitmapPool<RfKernel>),
}

/// A resident batch executor: one kernel dispatch plus one long-lived
/// kernel pool, shared by every batch it counts.
///
/// The edge-range driver builds its [`BitmapPool`] per call — fine for one
/// bulk pass, wasteful for a server answering thousands of small batches.
/// A `BatchCounter` is built once per (graph, plan) and reused: bitmaps are
/// allocated the first time a worker needs one and then recycled, so
/// [`pool_stats`](BatchCounter::pool_stats) stays bounded by the worker
/// count however many batches run.
pub struct BatchCounter {
    kernel: CpuKernel,
    pool: PoolVariant,
}

impl std::fmt::Debug for BatchCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchCounter")
            .field("kernel", &self.kernel)
            .finish()
    }
}

impl BatchCounter {
    /// An executor for `kernel` over graphs of `num_vertices` vertices.
    ///
    /// # Panics
    /// On an invalid RF ratio — validate the kernel at plan time.
    pub fn new(kernel: CpuKernel, num_vertices: usize) -> Self {
        let pool = match kernel {
            CpuKernel::Merge => PoolVariant::Merge(CloneFactory(MergeKernel)),
            CpuKernel::Mps(cfg) => PoolVariant::Mps(CloneFactory(MpsKernel::new(cfg))),
            CpuKernel::Bmp(BmpMode::Plain) => {
                PoolVariant::Bmp(BitmapPool::new(move || BmpKernel::new(num_vertices)))
            }
            CpuKernel::Bmp(BmpMode::RangeFiltered { ratio }) => {
                PoolVariant::Rf(BitmapPool::new(move || {
                    RfKernel::prevalidated(num_vertices.max(1), ratio)
                }))
            }
        };
        Self { kernel, pool }
    }

    /// The kernel this executor dispatches to.
    pub fn kernel(&self) -> CpuKernel {
        self.kernel
    }

    /// Pool usage so far, for kernels with per-source state (`None` for
    /// the stateless merge family). `created` staying at the worker count
    /// across many batches is the reuse evidence.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        match &self.pool {
            PoolVariant::Merge(_) | PoolVariant::Mps(_) => None,
            PoolVariant::Bmp(p) => Some(p.stats()),
            PoolVariant::Rf(p) => Some(p.stats()),
        }
    }

    /// Count one source-grouped batch of pairs, decomposed into at most
    /// `tasks` cost-balanced source-aligned tasks run in parallel. Returns
    /// one count per pair, in order; the reduced tally is recorded into the
    /// ambient observability context, if any.
    pub fn count_pairs(&self, g: &CsrGraph, pairs: &[(u32, u32)], tasks: usize) -> Vec<u32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let ranges = pair_task_ranges(g, pairs, &self.kernel.cost_model(), tasks);
        let (out, tally) = match &self.pool {
            PoolVariant::Merge(f) => run_tasks(g, pairs, &ranges, f),
            PoolVariant::Mps(f) => run_tasks(g, pairs, &ranges, f),
            PoolVariant::Bmp(p) => run_tasks(g, pairs, &ranges, p),
            PoolVariant::Rf(p) => run_tasks(g, pairs, &ranges, p),
        };
        if let Some(ctx) = cnc_obs::ObsContext::current() {
            use cnc_obs::Counter as C;
            ctx.add(C::DriverTasks, ranges.len() as u64);
            ctx.add(C::KernelSourceRebuilds, tally.rebuilds);
            ctx.add(C::WorkloadEdgesVisited, tally.visited);
        }
        out
    }
}

/// Run every task range of a batch in parallel, borrowing one kernel per
/// task from `factory`, and stitch the per-task outputs back into pair
/// order.
fn run_tasks<F: KernelFactory>(
    g: &CsrGraph,
    pairs: &[(u32, u32)],
    ranges: &[Range<usize>],
    factory: &F,
) -> (Vec<u32>, RangeTally) {
    let parts: Vec<(usize, Vec<u32>, RangeTally)> = (0..ranges.len())
        .into_par_iter()
        .map(|k| {
            let r = ranges[k].clone();
            let mut kernel = factory.acquire();
            let mut out = vec![0u32; r.len()];
            let tally = run_pairs(g, &pairs[r.clone()], &mut kernel, &mut NullMeter, &mut out);
            factory.release(kernel);
            (r.start, out, tally)
        })
        .collect();
    let mut out = vec![0u32; pairs.len()];
    let mut tally = RangeTally::default();
    for (start, part, t) in parts {
        out[start..start + part.len()].copy_from_slice(&part);
        tally.accumulate(&t);
    }
    (out, tally)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::generators;
    use cnc_intersect::MpsConfig;
    use rand::{Rng, SeedableRng, StdRng};

    fn test_graph() -> CsrGraph {
        CsrGraph::from_edge_list(&generators::hub_web(300, 6.0, 3, 0.5, 11))
    }

    /// Every canonical edge of `g` as a source-grouped pair list.
    fn all_pairs(g: &CsrGraph) -> Vec<(u32, u32)> {
        g.iter_edges()
            .filter(|&(_, u, v)| u < v)
            .map(|(_, u, v)| (u, v))
            .collect()
    }

    fn kernels(n: usize) -> [CpuKernel; 4] {
        [
            CpuKernel::Merge,
            CpuKernel::Mps(MpsConfig::default()),
            CpuKernel::Bmp(BmpMode::Plain),
            CpuKernel::Bmp(BmpMode::rf_scaled(n)),
        ]
    }

    #[test]
    fn run_pairs_matches_reference_for_every_kernel() {
        let g = test_graph();
        let pairs = all_pairs(&g);
        let want: Vec<u32> = pairs
            .iter()
            .map(|&(u, v)| cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v)))
            .collect();
        for kernel in kernels(g.num_vertices()) {
            let counter = BatchCounter::new(kernel, g.num_vertices());
            for tasks in [1usize, 4, 64] {
                assert_eq!(
                    counter.count_pairs(&g, &pairs, tasks),
                    want,
                    "{kernel:?} tasks={tasks}"
                );
            }
        }
    }

    #[test]
    fn unsorted_subset_batches_are_exact() {
        // The contract is grouping, not global order: a shuffled batch
        // regrouped by source still counts exactly.
        let g = test_graph();
        let mut rng = StdRng::seed_from_u64(7);
        let all = all_pairs(&g);
        let mut pairs: Vec<(u32, u32)> =
            (0..200).map(|_| all[rng.gen_range(0..all.len())]).collect();
        pairs.sort_unstable();
        pairs.dedup();
        let want: Vec<u32> = pairs
            .iter()
            .map(|&(u, v)| cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v)))
            .collect();
        for kernel in kernels(g.num_vertices()) {
            let counter = BatchCounter::new(kernel, g.num_vertices());
            assert_eq!(counter.count_pairs(&g, &pairs, 8), want, "{kernel:?}");
        }
    }

    #[test]
    fn task_ranges_tile_and_respect_groups() {
        let g = test_graph();
        let pairs = all_pairs(&g);
        for want in [1usize, 2, 7, 16, 10_000] {
            for model in [CostModel::Merge, CostModel::Bmp] {
                let ranges = pair_task_ranges(&g, &pairs, &model, want);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(r.end > r.start, "no empty tasks");
                    // Interior cuts never split a source group.
                    if r.start > 0 {
                        assert_ne!(
                            pairs[r.start].0,
                            pairs[r.start - 1].0,
                            "cut at {} splits source {}",
                            r.start,
                            pairs[r.start].0
                        );
                    }
                    next = r.end;
                }
                assert_eq!(next, pairs.len());
                assert!(ranges.len() <= want);
            }
        }
        assert!(pair_task_ranges(&g, &[], &CostModel::Merge, 8).is_empty());
    }

    #[test]
    fn batched_execution_rebuilds_once_per_source_group() {
        let g = test_graph();
        let pairs = all_pairs(&g);
        let sources: std::collections::HashSet<u32> = pairs.iter().map(|&(u, _)| u).collect();
        let mut kernel = BmpKernel::new(g.num_vertices());
        let mut out = vec![0u32; pairs.len()];
        let tally = run_pairs(&g, &pairs, &mut kernel, &mut NullMeter, &mut out);
        assert_eq!(tally.rebuilds, sources.len() as u64);
        assert_eq!(tally.visited, pairs.len() as u64);
        assert!(kernel.is_reset(), "last source must be torn down");
    }

    #[test]
    fn pool_is_reused_across_batches() {
        // The serve-layer satellite: bitmaps are allocated once per worker,
        // not once per batch. 50 consecutive batches on one counter must
        // not grow `created` beyond the worker bound.
        let g = test_graph();
        let pairs = all_pairs(&g);
        let counter = BatchCounter::new(CpuKernel::Bmp(BmpMode::Plain), g.num_vertices());
        for _ in 0..50 {
            counter.count_pairs(&g, &pairs[..100.min(pairs.len())], 4);
        }
        let stats = counter.pool_stats().expect("bmp pools report stats");
        let bound = rayon::current_num_threads() * 2 + 1;
        assert!(
            stats.created <= bound,
            "{} bitmaps created across 50 batches (worker bound {bound})",
            stats.created
        );
        assert!(stats.reused > stats.created, "batches must recycle kernels");
        assert!(BatchCounter::new(CpuKernel::Merge, 8)
            .pool_stats()
            .is_none());
    }
}
