//! Observability-level checks of the schedule policies: the counters a
//! metered run emits must show *why* balanced scheduling wins — fewer
//! `begin_source` rebuilds than mid-source-cutting uniform tasks, and a
//! flatter estimated cost spread.

use std::sync::Arc;

use cnc_cpu::{BmpMode, CpuKernel, ParConfig};
use cnc_graph::generators;
use cnc_graph::CsrGraph;
use cnc_obs::{Counter, ObsContext};

/// Run `kernel` under an installed context and return its counter snapshot.
fn observed_run(g: &CsrGraph, kernel: CpuKernel, cfg: &ParConfig) -> cnc_obs::CounterSnapshot {
    let ctx = Arc::new(ObsContext::new());
    let guard = ctx.install();
    let _ = kernel.run_par(g, cfg);
    drop(guard);
    ctx.counters()
}

#[test]
fn balanced_rebuilds_strictly_fewer_sources_than_mid_source_uniform() {
    // A hub-web analogue: a few huge sources. Uniform 64-edge tasks cut
    // straight through the hubs, re-indexing the same source once per task;
    // balanced cuts never split a source.
    let g = CsrGraph::from_edge_list(&generators::hub_web(400, 6.0, 3, 0.6, 11));
    let kernel = CpuKernel::Bmp(BmpMode::Plain);

    let uniform = observed_run(&g, kernel, &ParConfig::with_task_size(64));
    let balanced = observed_run(&g, kernel, &ParConfig::balanced(8));

    let u = uniform.get(Counter::KernelSourceRebuilds);
    let b = balanced.get(Counter::KernelSourceRebuilds);
    assert!(
        u > 0 && b > 0,
        "both runs must count rebuilds (u={u}, b={b})"
    );
    assert!(
        b < u,
        "balanced must rebuild strictly fewer sources: balanced={b}, uniform={u}"
    );

    // Source-aligned cuts mean one rebuild per source that has at least one
    // counted (u < v) pair — the minimum possible.
    let sources_with_pairs = (0..g.num_vertices())
        .filter(|&u| g.neighbors(u as u32).iter().any(|&v| v > u as u32))
        .count() as u64;
    assert_eq!(b, sources_with_pairs);
}

#[test]
fn schedule_counters_describe_the_decomposition() {
    let g = CsrGraph::from_edge_list(&generators::hub_web(300, 5.0, 2, 0.5, 3));
    let kernel = CpuKernel::Merge;

    for cfg in [ParConfig::with_task_size(97), ParConfig::balanced(6)] {
        let snap = observed_run(&g, kernel, &cfg);
        let tasks = snap.get(Counter::ScheduleTasks);
        assert!(tasks > 0, "{cfg:?}");
        assert_eq!(tasks, snap.get(Counter::DriverTasks), "{cfg:?}");
        let max = snap.get(Counter::ScheduleEstCostMax);
        let min = snap.get(Counter::ScheduleEstCostMin);
        assert!(max >= min && max > 0, "{cfg:?}: max={max}, min={min}");
    }
}

#[test]
fn balanced_flattens_observed_cost_spread() {
    let g = CsrGraph::from_edge_list(&generators::hub_web(400, 6.0, 3, 0.6, 11));
    let kernel = CpuKernel::Bmp(BmpMode::Plain);
    let m = g.num_directed_edges();

    // Same task count for a fair comparison.
    let uniform = observed_run(&g, kernel, &ParConfig::with_task_size(m.div_ceil(8)));
    let balanced = observed_run(&g, kernel, &ParConfig::balanced(8));
    assert!(
        balanced.get(Counter::ScheduleEstCostMax) <= uniform.get(Counter::ScheduleEstCostMax),
        "balanced straggler estimate must not exceed uniform's"
    );
}
