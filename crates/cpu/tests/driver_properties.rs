//! Property-based tests for the unified edge-range driver: the task
//! decomposition and the meter choice must never change the answer.
//!
//! For any random graph, any task size (including degenerate ones: a task
//! per edge, or one task far larger than `|E|`), and every kernel, the
//! parallel driver with a [`NullMeter`] and the metered parallel driver
//! with a [`CountingMeter`] must both produce counts byte-identical to the
//! sequential whole-range run.

use cnc_cpu::{BmpMode, CpuKernel, ParConfig};
use cnc_graph::{generators, CsrGraph};
use cnc_intersect::{MpsConfig, NullMeter};
use proptest::prelude::*;

fn kernels(num_vertices: usize) -> Vec<CpuKernel> {
    vec![
        CpuKernel::Merge,
        CpuKernel::Mps(MpsConfig::default()),
        CpuKernel::Bmp(BmpMode::Plain),
        CpuKernel::Bmp(BmpMode::rf_scaled(num_vertices)),
    ]
}

/// Strategy: a task size spanning the degenerate and the ordinary —
/// one edge per task, a handful of interior splits, and one task far
/// larger than any test graph's `|E|`.
fn task_size() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![1usize, 2, 7, 61, 256, 1023, 4096, usize::MAX])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decomposition_and_metering_never_change_counts(
        n in 2usize..120,
        edge_factor in 1usize..6,
        seed in 0u64..1_000,
        t in task_size(),
    ) {
        let g = CsrGraph::from_edge_list(&generators::gnm(n, n * edge_factor, seed));
        let cfg = ParConfig::with_task_size(t);
        for kernel in kernels(g.num_vertices()) {
            let seq = kernel.run_seq(&g, &mut NullMeter);
            let par = kernel.run_par(&g, &cfg);
            let (metered, work) = kernel.run_par_metered(&g, &cfg);
            prop_assert_eq!(&par, &seq, "NullMeter par diverged: {:?} t={}", kernel, t);
            prop_assert_eq!(&metered, &seq, "CountingMeter par diverged: {:?} t={}", kernel, t);
            // Any split of the range does the same intersections.
            prop_assert!(work.total_ops() > 0 || g.num_directed_edges() == 0);
        }
    }

    #[test]
    fn skewed_graphs_agree_across_task_sizes(
        hubs in 1usize..4,
        seed in 0u64..100,
        t in task_size(),
    ) {
        // Hub-heavy graphs exercise the pivot-skip path and uneven
        // source-run lengths across task boundaries.
        let g = CsrGraph::from_edge_list(&generators::hub_web(80, 4.0, hubs, 0.5, seed));
        let cfg = ParConfig::with_task_size(t);
        for kernel in kernels(g.num_vertices()) {
            let seq = kernel.run_seq(&g, &mut NullMeter);
            let (metered, _) = kernel.run_par_metered(&g, &cfg);
            prop_assert_eq!(&kernel.run_par(&g, &cfg), &seq);
            prop_assert_eq!(&metered, &seq);
        }
    }
}
