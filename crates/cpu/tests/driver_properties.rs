//! Property-based tests for the unified edge-range driver: the task
//! decomposition and the meter choice must never change the answer.
//!
//! For any random graph, any task size (including degenerate ones: a task
//! per edge, or one task far larger than `|E|`), and every kernel, the
//! parallel driver with a [`NullMeter`] and the metered parallel driver
//! with a [`CountingMeter`] must both produce counts byte-identical to the
//! sequential whole-range run.

use cnc_cpu::{BmpMode, CpuKernel, ParConfig, Schedule, SchedulePolicy};
use cnc_graph::{generators, CsrGraph};
use cnc_intersect::{MpsConfig, NullMeter};
use proptest::prelude::*;

fn kernels(num_vertices: usize) -> Vec<CpuKernel> {
    vec![
        CpuKernel::Merge,
        CpuKernel::Mps(MpsConfig::default()),
        CpuKernel::Bmp(BmpMode::Plain),
        CpuKernel::Bmp(BmpMode::rf_scaled(num_vertices)),
    ]
}

/// Strategy: any schedule policy — uniform chunks spanning the degenerate
/// and the ordinary (one edge per task up to one task far larger than any
/// test graph's `|E|`), and balanced decompositions from one task to far
/// more tasks than any test graph has sources.
fn policy() -> impl Strategy<Value = SchedulePolicy> {
    let mut policies: Vec<SchedulePolicy> = vec![1usize, 2, 7, 61, 256, 1023, 4096, usize::MAX]
        .into_iter()
        .map(SchedulePolicy::uniform)
        .collect();
    policies.extend(
        vec![1usize, 2, 3, 8, 17, 64, 100_000]
            .into_iter()
            .map(SchedulePolicy::balanced),
    );
    prop::sample::select(policies)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decomposition_and_metering_never_change_counts(
        n in 2usize..120,
        edge_factor in 1usize..6,
        seed in 0u64..1_000,
        p in policy(),
    ) {
        let g = CsrGraph::from_edge_list(&generators::gnm(n, n * edge_factor, seed));
        let cfg = ParConfig { schedule: p, threads: None };
        for kernel in kernels(g.num_vertices()) {
            let seq = kernel.run_seq(&g, &mut NullMeter);
            let par = kernel.run_par(&g, &cfg);
            let (metered, work) = kernel.run_par_metered(&g, &cfg);
            prop_assert_eq!(&par, &seq, "NullMeter par diverged: {:?} {:?}", kernel, p);
            prop_assert_eq!(&metered, &seq, "CountingMeter par diverged: {:?} {:?}", kernel, p);
            // Any split of the range does the same intersections.
            prop_assert!(work.total_ops() > 0 || g.num_directed_edges() == 0);
        }
    }

    #[test]
    fn skewed_graphs_agree_across_schedules(
        hubs in 1usize..4,
        seed in 0u64..100,
        p in policy(),
    ) {
        // Hub-heavy graphs exercise the pivot-skip path and uneven
        // source-run lengths across task boundaries.
        let g = CsrGraph::from_edge_list(&generators::hub_web(80, 4.0, hubs, 0.5, seed));
        let cfg = ParConfig { schedule: p, threads: None };
        for kernel in kernels(g.num_vertices()) {
            let seq = kernel.run_seq(&g, &mut NullMeter);
            let (metered, _) = kernel.run_par_metered(&g, &cfg);
            prop_assert_eq!(&kernel.run_par(&g, &cfg), &seq);
            prop_assert_eq!(&metered, &seq);
        }
    }

    #[test]
    fn schedules_tile_the_edge_range(
        n in 2usize..150,
        edge_factor in 1usize..6,
        seed in 0u64..1_000,
        p in policy(),
    ) {
        // Schedule invariants, independent of any kernel run: tasks are
        // disjoint, in order, cover 0..m exactly, and the balanced policy
        // never exceeds the requested count and cuts only on source
        // boundaries.
        let g = CsrGraph::from_edge_list(&generators::gnm(n, n * edge_factor, seed));
        let m = g.num_directed_edges();
        for kernel in kernels(g.num_vertices()) {
            let s = Schedule::compute(&g, p, &kernel.cost_model(), &cnc_workload::CncWorkload, true);
            let mut next = 0usize;
            for r in s.tasks() {
                prop_assert_eq!(r.start, next);
                prop_assert!(r.end > r.start);
                next = r.end;
            }
            prop_assert_eq!(next, m);
            if let SchedulePolicy::Balanced { tasks } = p {
                prop_assert!(s.tasks().len() <= tasks);
                for r in s.tasks() {
                    prop_assert!(g.offsets().binary_search(&r.start).is_ok(),
                        "balanced cut at {} not on a source boundary", r.start);
                }
            }
        }
    }
}
