//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so real criterion cannot be
//! fetched. This shim keeps `cargo bench` working with the same bench
//! sources: it runs each benchmark for a bounded number of timed iterations
//! and prints a one-line mean/min report. No statistics, no HTML reports,
//! no comparison against saved baselines.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group (printed only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (for groups benching one function over inputs).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name: `&str`, `String`, or [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, discarding its output via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Sample until either the sample count or the time budget is hit.
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if measure_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// Shared run configuration.
#[derive(Debug, Clone)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Set the per-benchmark warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Set the target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            throughput: None,
            _parent: self,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &self.config, None, id.into_label(), f);
        self
    }
}

/// A named collection of benchmarks sharing throughput/config settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput (printed with results).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Override the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &self.config,
            self.throughput,
            id.into_label(),
            f,
        );
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &self.config,
            self.throughput,
            id.into_label(),
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (report separator; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    config: &Config,
    throughput: Option<Throughput>,
    label: String,
    mut f: F,
) {
    let full = if group.is_empty() {
        label
    } else {
        format!("{group}/{label}")
    };
    let mut b = Bencher {
        warm_up_time: config.warm_up_time,
        measurement_time: config.measurement_time,
        sample_size: config.sample_size,
        samples: Vec::with_capacity(config.sample_size),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{full:<50} (no samples: closure never called iter)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = *b.samples.iter().min().expect("non-empty samples");
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Throughput::Bytes(n) => {
                format!(
                    "  {:>12.0} MiB/s",
                    n as f64 / mean.as_secs_f64() / (1 << 20) as f64
                )
            }
        })
        .unwrap_or_default();
    println!(
        "{full:<50} mean {mean:>12.3?}  min {min:>12.3?}  ({} samples){rate}",
        b.samples.len()
    );
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.throughput(Throughput::Elements(100));
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
