//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so the real rayon cannot be
//! fetched. This shim reimplements the (small) slice of rayon's API that the
//! workspace actually uses on top of `std::thread::scope`:
//!
//! * `(range).into_par_iter().for_each(..)` / `.map(..).collect::<Vec<_>>()`
//! * `slice.par_iter()` / `slice.par_iter_mut()` with `.for_each(..)`
//! * `slice.par_chunks_mut(n)` with `.enumerate().for_each(..)`
//! * `ThreadPoolBuilder::new().num_threads(t).build()?.install(f)`
//! * `current_num_threads()`
//!
//! Work is split into at most `current_num_threads()` contiguous chunks, one
//! scoped thread per chunk (none when a single chunk suffices). `install`
//! sets a thread-local worker-count override so nested parallel calls issued
//! from the installed closure honor the requested pool size, matching how the
//! callers here use dedicated pools (thread-scaling experiments).
//!
//! This is not a work-stealing scheduler; it trades scheduling quality for
//! zero dependencies. The contiguous split preserves the cache-friendliness
//! assumptions of the edge-range drivers (tasks near each other share a
//! source vertex), which is what the paper's `schedule(dynamic, |T|)` loop
//! relies on.

#![warn(missing_docs)]

use std::cell::Cell;
use std::error::Error;
use std::fmt;
use std::ops::Range;
use std::panic::resume_unwind;
use std::thread;

/// The traits a `use rayon::prelude::*;` caller expects in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

thread_local! {
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads parallel calls on this thread will use.
///
/// Inside [`ThreadPool::install`] this is the pool's configured size;
/// elsewhere it is `std::thread::available_parallelism()`.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|c| c.get())
        .unwrap_or_else(default_threads)
}

/// Builder for a [`ThreadPool`]; only `num_threads` is supported.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

/// Error type returned by [`ThreadPoolBuilder::build`]; never produced, but
/// kept so call sites can `.expect(..)` exactly as with real rayon.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Start building a pool with the default worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request `n` workers (0 means the default count, as in real rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Finish building. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: self.threads.unwrap_or_else(default_threads),
        })
    }
}

/// A pool of a fixed number of workers. In this shim a pool is only a
/// worker-count override: threads are spawned per parallel call.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// The pool's configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Run `f` with this pool's worker count governing nested parallel calls.
    pub fn install<R: Send>(&self, f: impl FnOnce() -> R + Send) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0;
                POOL_THREADS.with(|c| c.set(prev));
            }
        }
        let _restore = Restore(POOL_THREADS.with(|c| c.replace(Some(self.threads))));
        f()
    }
}

/// Contiguous sub-ranges of `0..len`, at most `current_num_threads()` many.
fn split_ranges(len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = current_num_threads().clamp(1, len);
    let per = len.div_ceil(chunks);
    (0..len)
        .step_by(per)
        .map(|s| s..(s + per).min(len))
        .collect()
}

/// Run `work` over each sub-range of `0..len` (one scoped thread per range
/// when more than one), returning per-range results in range order. Worker
/// panics are re-raised on the caller with their original payload.
fn run_split<T, F>(len: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    let ranges = split_ranges(len);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(&work).collect();
    }
    let results: Vec<thread::Result<T>> = thread::scope(|s| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| {
                let work = &work;
                s.spawn(move || work(r))
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|payload| resume_unwind(payload)))
        .collect()
}

/// Like [`run_split`] but over owned per-range payloads (used for `&mut`
/// splits, which must be carved up before spawning).
fn run_parts<P, T, F>(parts: Vec<P>, work: F) -> Vec<T>
where
    P: Send,
    T: Send,
    F: Fn(P) -> T + Sync,
{
    if parts.len() <= 1 {
        return parts.into_iter().map(&work).collect();
    }
    let results: Vec<thread::Result<T>> = thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|p| {
                let work = &work;
                s.spawn(move || work(p))
            })
            .collect();
        handles.into_iter().map(|h| h.join()).collect()
    });
    results
        .into_iter()
        .map(|r| r.unwrap_or_else(|payload| resume_unwind(payload)))
        .collect()
}

/// Index types a parallel range can iterate over.
pub trait ParIndex: Copy + Send + Sync + 'static {
    /// Number of values in `r`.
    fn range_len(r: &Range<Self>) -> usize;
    /// `start + offset`.
    fn offset(start: Self, offset: usize) -> Self;
}

macro_rules! par_index {
    ($($t:ty),*) => {$(
        impl ParIndex for $t {
            fn range_len(r: &Range<Self>) -> usize {
                if r.end > r.start { (r.end - r.start) as usize } else { 0 }
            }
            fn offset(start: Self, offset: usize) -> Self {
                start + offset as $t
            }
        }
    )*};
}
par_index!(usize, u32, u64, i32, i64);

/// Conversion into a parallel iterator (ranges only in this shim).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Convert `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: ParIndex> IntoParallelIterator for Range<I> {
    type Iter = ParRange<I>;
    fn into_par_iter(self) -> ParRange<I> {
        ParRange {
            len: I::range_len(&self),
            start: self.start,
        }
    }
}

/// Parallel iterator over a numeric range.
#[derive(Debug, Clone, Copy)]
pub struct ParRange<I> {
    start: I,
    len: usize,
}

impl<I: ParIndex> ParRange<I> {
    /// Apply `f` to every index in the range.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        run_split(self.len, |r| {
            for off in r {
                f(I::offset(self.start, off));
            }
        });
    }

    /// Map every index through `f`; finish with [`ParRangeMap::collect`].
    pub fn map<R, F>(self, f: F) -> ParRangeMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParRangeMap { range: self, f }
    }
}

/// A mapped parallel range (result of [`ParRange::map`]).
#[derive(Debug)]
pub struct ParRangeMap<I, F> {
    range: ParRange<I>,
    f: F,
}

impl<I: ParIndex, F> ParRangeMap<I, F> {
    /// Collect the mapped values in index order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(I) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        let start = self.range.start;
        let f = &self.f;
        let parts = run_split(self.range.len, |r| {
            r.map(|off| f(I::offset(start, off))).collect::<Vec<R>>()
        });
        C::from_ordered_parts(parts)
    }

    /// Apply the mapped function for its effect only.
    pub fn for_each<R>(self)
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        let start = self.range.start;
        let f = &self.f;
        run_split(self.range.len, |r| {
            for off in r {
                f(I::offset(start, off));
            }
        });
    }

    /// Fold the mapped values into one, rayon-style: each worker folds its
    /// own contiguous chunk into a thread-local accumulator seeded from
    /// `identity` (no shared state, no lock), and the per-worker partials
    /// are combined on the caller in chunk order. `op` must be associative
    /// and `identity()` its neutral element for the result to be
    /// split-invariant.
    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        R: Send,
        F: Fn(I) -> R + Sync,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let start = self.range.start;
        let f = &self.f;
        let parts = run_split(self.range.len, |r| {
            r.fold(identity(), |acc, off| op(acc, f(I::offset(start, off))))
        });
        parts.into_iter().fold(identity(), &op)
    }
}

/// Collections that can be assembled from ordered per-chunk parts.
pub trait FromParallelIterator<T> {
    /// Concatenate `parts` (already in iteration order).
    fn from_ordered_parts(parts: Vec<Vec<T>>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_parts(parts: Vec<Vec<T>>) -> Self {
        let total = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend(p);
        }
        out
    }
}

/// `slice.par_iter()` support.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `&T` items.
    fn par_iter(&self) -> ParSliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParSliceIter<'_, T> {
        ParSliceIter { slice: self }
    }
}

/// Parallel shared-slice iterator.
#[derive(Debug)]
pub struct ParSliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSliceIter<'a, T> {
    /// Apply `f` to every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let slice = self.slice;
        run_split(slice.len(), |r| {
            for item in &slice[r] {
                f(item);
            }
        });
    }
}

/// `slice.par_iter_mut()` / `slice.par_chunks_mut(n)` support.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over `&mut T` items.
    fn par_iter_mut(&mut self) -> ParSliceIterMut<'_, T>;
    /// Parallel iterator over non-overlapping `&mut [T]` chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParSliceIterMut<'_, T> {
        ParSliceIterMut { slice: self }
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Split `slice` at the given item boundaries (ascending, exclusive ends).
fn carve<'a, T>(mut slice: &'a mut [T], ranges: &[Range<usize>]) -> Vec<&'a mut [T]> {
    let mut parts = Vec::with_capacity(ranges.len());
    let mut consumed = 0;
    for r in ranges {
        let (head, tail) = slice.split_at_mut(r.end - consumed);
        consumed = r.end;
        parts.push(head);
        slice = tail;
    }
    parts
}

/// Parallel exclusive-slice iterator.
#[derive(Debug)]
pub struct ParSliceIterMut<'a, T> {
    slice: &'a mut [T],
}

impl<T: Send> ParSliceIterMut<'_, T> {
    /// Apply `f` to every element.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let ranges = split_ranges(self.slice.len());
        let parts = carve(self.slice, &ranges);
        run_parts(parts, |part| {
            for item in part {
                f(item);
            }
        });
    }
}

/// Parallel iterator over mutable chunks.
#[derive(Debug)]
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair every chunk with its chunk index.
    pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
        ParChunksMutEnumerate(self)
    }

    /// Split into per-worker runs of whole chunks: `(first chunk index,
    /// items)` per run.
    fn runs(self) -> Vec<(usize, &'a mut [T])> {
        let n_chunks = self.slice.len().div_ceil(self.chunk_size);
        let chunk_ranges = split_ranges(n_chunks);
        let item_ranges: Vec<Range<usize>> = chunk_ranges
            .iter()
            .map(|r| (r.start * self.chunk_size)..(r.end * self.chunk_size).min(self.slice.len()))
            .collect();
        let parts = carve(self.slice, &item_ranges);
        chunk_ranges
            .into_iter()
            .map(|r| r.start)
            .zip(parts)
            .collect()
    }

    /// Apply `f` to every chunk.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        let chunk_size = self.chunk_size;
        run_parts(self.runs(), |(_, items)| {
            for chunk in items.chunks_mut(chunk_size) {
                f(chunk);
            }
        });
    }
}

/// Enumerated variant of [`ParChunksMut`].
#[derive(Debug)]
pub struct ParChunksMutEnumerate<'a, T>(ParChunksMut<'a, T>);

impl<T: Send> ParChunksMutEnumerate<'_, T> {
    /// Apply `f` to every `(chunk_index, chunk)` pair.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.0.chunk_size;
        run_parts(self.0.runs(), |(first_chunk, items)| {
            for (i, chunk) in items.chunks_mut(chunk_size).enumerate() {
                f((first_chunk + i, chunk));
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_for_each_covers_every_index() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        (0..1000usize)
            .into_par_iter()
            .for_each(|i| drop(hits[i].fetch_add(1, Ordering::Relaxed)));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..257u64).into_par_iter().map(|i| i * i).collect();
        assert_eq!(v, (0..257u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_enumerate_matches_serial() {
        let mut a = vec![0usize; 1003];
        a.par_chunks_mut(10)
            .enumerate()
            .for_each(|(ci, chunk)| chunk.iter_mut().for_each(|x| *x = ci));
        for (i, &x) in a.iter().enumerate() {
            assert_eq!(x, i / 10);
        }
    }

    #[test]
    fn map_reduce_matches_serial_fold() {
        let sum: u64 = (0..10_001u64)
            .into_par_iter()
            .map(|i| i * 3)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, (0..10_001u64).map(|i| i * 3).sum::<u64>());
        // Empty range yields the identity.
        let empty: u64 = (5..5u64)
            .into_par_iter()
            .map(|i| i + 1)
            .reduce(|| 7, |a, b| a + b);
        assert_eq!(empty, 7);
    }

    #[test]
    fn par_iter_mut_touches_all() {
        let mut a: Vec<u32> = (0..500).collect();
        a.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(a, (1..501).collect::<Vec<u32>>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // Restored afterwards.
        assert_eq!(current_num_threads(), default_threads());
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let r = std::panic::catch_unwind(|| {
            pool.install(|| (0..100usize).into_par_iter().for_each(|i| assert!(i < 50)));
        });
        assert!(r.is_err());
    }
}
