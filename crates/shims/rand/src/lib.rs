//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real rand cannot be
//! fetched. This shim provides the exact surface the workspace uses —
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool` —
//! backed by xoshiro256++ with splitmix64 seeding.
//!
//! The stream differs from real rand's `StdRng` (ChaCha12); all callers here
//! only rely on *determinism per seed*, which this shim provides, not on a
//! specific stream.

#![warn(missing_docs)]

use std::ops::Range;

/// Common RNG re-exports.
pub mod rngs {
    pub use crate::StdRng;
}

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is supported).
pub trait SeedableRng: Sized {
    /// Build an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the type;
    /// `bool`: fair coin).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open; must be non-empty).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from `rng`, uniform over the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant for the graph
                // generators and tests this backs.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The standard seedable RNG: xoshiro256++ seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0..7usize);
            assert!(y < 7);
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "samples never reached the interval ends");
    }
}
