//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real proptest cannot
//! be fetched. This shim keeps the property tests runnable by providing the
//! surface they use — the `proptest!` / `prop_assert*` / `prop_assume!`
//! macros, `Strategy` with `prop_map`, range/tuple/`any` strategies,
//! `prop::collection::{vec, btree_set}` and `prop::sample::select`, and
//! `ProptestConfig::with_cases` — driven by a deterministic splitmix64 case
//! generator.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the failure message only; rerun
//!   with the printed case seed if minimization-by-hand is needed.
//! * **Fixed seeding.** Cases are generated from a fixed per-case seed, so a
//!   given binary always tests the same inputs (CI-stable).

#![warn(missing_docs)]

use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Everything a `use proptest::prelude::*;` caller expects in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirror of real proptest's `prelude::prop` module of strategy builders.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Deterministic splitmix64 source driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Error produced by a single test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions (`prop_assume!`) did not hold; try another.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection from a message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the only supported knob).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(S0.0);
tuple_strategy!(S0.0, S1.1);
tuple_strategy!(S0.0, S1.1, S2.2);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6);
tuple_strategy!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7);

/// Types with a canonical default strategy (used by [`any`]).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// The canonical strategy for `T` (`any::<bool>()` and friends).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::*;

    /// `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` of `element` values; at most `size.end - 1` elements (the
    /// shim draws a target count from `size` and deduplicates, so collisions
    /// may yield fewer — the same contract real proptest documents).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.generate(rng);
            (0..target).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::*`).
pub mod sample {
    use super::*;

    /// Pick uniformly from a fixed list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// Drive one property: run `body` on generated inputs until `config.cases`
/// accepted cases pass, panicking on the first failure. Rejections
/// (`prop_assume!`) retry with fresh inputs, up to a global cap.
pub fn run_property(config: &ProptestConfig, mut body: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let mut accepted = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (config.cases as u64).max(1) * 64;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "gave up after {attempts} attempts: too many rejected cases \
             ({accepted}/{} accepted)",
            config.cases
        );
        let mut rng = TestRng::new(attempts);
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property failed (case seed {attempts}): {msg}")
            }
        }
    }
}

/// Define property tests. Supports the subset of real proptest syntax used
/// here: an optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_property(&config, |prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), prop_rng);)*
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a property body; failure aborts only the current case
/// runner with a message (no unwinding through generated values).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discard the current case (retry with new inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs(n: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
        prop::collection::vec((0..n, 0..n), 0..max_len)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5, z in -2i32..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-2..9).contains(&z), "z out of bounds: {}", z);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(ps in pairs(40, 30)) {
            prop_assert!(ps.len() < 30);
            for &(a, b) in &ps {
                prop_assert!(a < 40 && b < 40);
            }
        }

        #[test]
        fn maps_and_assume_work(v in (any::<bool>(), 0u32..10).prop_map(|(b, x)| if b { x } else { 0 })) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
            prop_assert_eq!(v.min(9), v);
        }

        #[test]
        fn btree_set_is_sorted_unique(s in prop::collection::btree_set(0u32..1000, 0..50)) {
            let v: Vec<u32> = s.iter().copied().collect();
            prop_assert!(v.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(v.len() < 50);
        }

        #[test]
        fn select_picks_from_options(t in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!(t == 2 || t == 4 || t == 8);
        }
    }

    #[test]
    fn failures_panic_with_message() {
        let r = std::panic::catch_unwind(|| {
            crate::run_property(&ProptestConfig::with_cases(5), |rng| {
                let x = crate::Strategy::generate(&(0u32..100), rng);
                prop_assert!(x > 1000, "x was {}", x);
                Ok(())
            });
        });
        assert!(r.is_err());
    }
}
