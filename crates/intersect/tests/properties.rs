//! Property-based tests: every intersection kernel must agree with a
//! `BTreeSet` intersection oracle on arbitrary strictly-sorted inputs.

use std::collections::BTreeSet;

use cnc_intersect::{
    bmp_count, merge_count, mps_count, ps_count, rf_count, vb_count, Bitmap, CountingMeter,
    NullMeter, RfBitmap, SimdLevel,
};
use proptest::prelude::*;

/// Oracle: set intersection size via BTreeSet.
fn oracle(a: &[u32], b: &[u32]) -> u32 {
    let sa: BTreeSet<u32> = a.iter().copied().collect();
    let sb: BTreeSet<u32> = b.iter().copied().collect();
    sa.intersection(&sb).count() as u32
}

/// Strategy: a strictly increasing u32 vector with values below `max`.
fn sorted_set(max: u32, len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..max, 0..len).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn merge_matches_oracle(a in sorted_set(2_000, 300), b in sorted_set(2_000, 300)) {
        let mut m = NullMeter;
        prop_assert_eq!(merge_count(&a, &b, &mut m), oracle(&a, &b));
    }

    #[test]
    fn ps_matches_oracle(a in sorted_set(50_000, 400), b in sorted_set(50_000, 40)) {
        let mut m = NullMeter;
        prop_assert_eq!(ps_count(&a, &b, &mut m), oracle(&a, &b));
        prop_assert_eq!(ps_count(&b, &a, &mut m), oracle(&a, &b));
    }

    #[test]
    fn vb_matches_oracle_all_levels(a in sorted_set(3_000, 300), b in sorted_set(3_000, 300)) {
        let want = oracle(&a, &b);
        let mut m = NullMeter;
        for level in [SimdLevel::Scalar, SimdLevel::Sse4, SimdLevel::Avx2, SimdLevel::Avx512] {
            prop_assert_eq!(vb_count(&a, &b, level, &mut m), want);
        }
    }

    #[test]
    fn mps_matches_oracle(
        a in sorted_set(10_000, 500),
        b in sorted_set(10_000, 500),
        t in 0u32..100,
    ) {
        let mut m = NullMeter;
        prop_assert_eq!(mps_count(&a, &b, t, SimdLevel::Avx2, &mut m), oracle(&a, &b));
    }

    #[test]
    fn bmp_matches_oracle(a in sorted_set(5_000, 300), b in sorted_set(5_000, 300)) {
        let mut m = NullMeter;
        let mut bm = Bitmap::new(5_000);
        bm.set_list(&a, &mut m);
        prop_assert_eq!(bmp_count(&bm, &b, &mut m), oracle(&a, &b));
        // Clearing restores the all-zero invariant for reuse.
        bm.clear_list(&a, &mut m);
        prop_assert!(bm.is_empty());
    }

    #[test]
    fn rf_matches_oracle_any_ratio(
        a in sorted_set(100_000, 200),
        b in sorted_set(100_000, 200),
        ratio_log2 in 1u32..14,
    ) {
        let mut m = NullMeter;
        let mut rf = RfBitmap::with_ratio(100_000, 1usize << ratio_log2);
        rf.set_list(&a, &mut m);
        prop_assert_eq!(rf_count(&rf, &b, &mut m), oracle(&a, &b));
        rf.clear_list(&a, &mut m);
        prop_assert!(rf.is_empty());
    }

    #[test]
    fn all_kernels_agree_with_each_other(
        a in sorted_set(20_000, 400),
        b in sorted_set(20_000, 400),
    ) {
        let mut m = NullMeter;
        let r_merge = merge_count(&a, &b, &mut m);
        let r_ps = ps_count(&a, &b, &mut m);
        let r_vb = vb_count(&a, &b, SimdLevel::Avx2, &mut m);
        let mut bm = Bitmap::new(20_000);
        bm.set_list(&a, &mut m);
        let r_bmp = bmp_count(&bm, &b, &mut m);
        prop_assert_eq!(r_merge, r_ps);
        prop_assert_eq!(r_merge, r_vb);
        prop_assert_eq!(r_merge, r_bmp);
    }

    #[test]
    fn meter_totals_are_monotone_in_input(a in sorted_set(4_000, 300), b in sorted_set(4_000, 300)) {
        // Sanity on instrumentation: work on (a,b) is at least the work on
        // the prefix halves — catches accidental double-resets of meters.
        let mut full = CountingMeter::new();
        merge_count(&a, &b, &mut full);
        let mut half = CountingMeter::new();
        merge_count(&a[..a.len() / 2], &b[..b.len() / 2], &mut half);
        prop_assert!(full.counts.seq_bytes >= half.counts.seq_bytes);
    }

    #[test]
    fn intersection_is_commutative_and_bounded(
        a in sorted_set(8_000, 300),
        b in sorted_set(8_000, 300),
    ) {
        let mut m = NullMeter;
        let ab = mps_count(&a, &b, 50, SimdLevel::Avx2, &mut m);
        let ba = mps_count(&b, &a, 50, SimdLevel::Avx2, &mut m);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab as usize <= a.len().min(b.len()));
    }
}
