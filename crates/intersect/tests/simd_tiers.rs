//! Bit-identity property tests for the vectorized kernels: every
//! [`SimdTier`] must return exactly what the scalar oracle loop returns, on
//! inputs crafted to stress the places vector code goes wrong — 64-bit word
//! boundaries, values with the sign bit set (where a signed vector compare
//! silently flips), galloping starts landing in every phase, and short
//! end-of-array windows.
//!
//! These run through the explicit `_tier` entry points rather than
//! `SimdTier::force`, which mutates process-global state and would race
//! across the parallel test harness. The environment-variable path is
//! exercised end to end by the CI matrix (`CNC_SIMD=scalar|portable|avx2`).

use std::collections::BTreeSet;

use cnc_intersect::{
    bmp_count_tier, gallop_lower_bound_tier, linear_lower_bound_tier, lower_bound, Bitmap,
    CountingMeter, NullMeter, SimdTier,
};
use proptest::prelude::*;

/// The tiers to sweep. Unsupported hardware tiers are skipped inside the
/// kernels themselves (`use_avx2`/`use_avx512` re-check at runtime), so the
/// sweep is safe on any host.
const TIERS: [SimdTier; 4] = SimdTier::ALL;

/// Strategy: a strictly increasing u32 vector with values below `max`.
fn sorted_set(max: u32, len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set(0..max, 0..len).prop_map(|s| s.into_iter().collect())
}

/// Strategy: strictly increasing values clustered *around 64-bit word
/// boundaries* — each element is `64 * word + bit` with `bit` drawn from the
/// corners `{0, 1, 62, 63}`. Gather-based probes index `words[v >> 6]` and
/// shift by `v & 63`; an off-by-one in either shows up here first.
fn word_boundary_set(words: u32, len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set((0..words, 0usize..4), 0..len).prop_map(|s| {
        let corners = [0u32, 1, 62, 63];
        let set: BTreeSet<u32> = s.into_iter().map(|(w, b)| w * 64 + corners[b]).collect();
        set.into_iter().collect()
    })
}

/// Strategy: strictly increasing values in the top half of the u32 range
/// (sign bit set when reinterpreted as i32). The AVX2 path compares unsigned
/// keys with a signed instruction via the sign-bias trick; these inputs
/// catch a missing bias immediately.
fn high_bit_set(len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::btree_set((1u32 << 31)..u32::MAX, 0..len)
        .prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// BMP probes: all tiers agree with the scalar oracle on word-boundary
    /// probe sets, and the architecture-neutral meter events are identical.
    #[test]
    fn bmp_tiers_bit_identical_on_word_boundaries(
        set in word_boundary_set(200, 300),
        probe in word_boundary_set(200, 300),
    ) {
        let mut m = NullMeter;
        let mut bm = Bitmap::new(200 * 64);
        bm.set_list(&set, &mut m);
        let mut scalar = CountingMeter::new();
        let want = bmp_count_tier(&bm, &probe, SimdTier::Scalar, &mut scalar);
        for tier in TIERS {
            let mut got = CountingMeter::new();
            prop_assert_eq!(bmp_count_tier(&bm, &probe, tier, &mut got), want, "tier={}", tier.label());
            // Tier-invariant events: the modeled machines must see the same
            // work regardless of which host ISA executed the probes.
            prop_assert_eq!(got.counts.scalar_ops, scalar.counts.scalar_ops);
            prop_assert_eq!(got.counts.seq_bytes, scalar.counts.seq_bytes);
            prop_assert_eq!(got.counts.rand_accesses, scalar.counts.rand_accesses);
            prop_assert_eq!(got.counts.intersections, scalar.counts.intersections);
        }
        bm.clear_list(&set, &mut m);
        prop_assert!(bm.is_empty());
    }

    /// BMP probes over arbitrary (non-boundary-biased) sets, larger domain so
    /// the probe array exercises both full vector blocks and scalar tails.
    #[test]
    fn bmp_tiers_bit_identical_random(
        set in sorted_set(40_000, 400),
        probe in sorted_set(40_000, 400),
    ) {
        let mut m = NullMeter;
        let mut bm = Bitmap::new(40_000);
        bm.set_list(&set, &mut m);
        let want = bmp_count_tier(&bm, &probe, SimdTier::Scalar, &mut m);
        for tier in TIERS {
            prop_assert_eq!(bmp_count_tier(&bm, &probe, tier, &mut m), want, "tier={}", tier.label());
        }
    }

    /// Galloping lower bound: every tier lands on the same index as the
    /// scalar oracle from every start offset, so the exponential phase, the
    /// multi-step wide phase, and the final window resolution all agree.
    #[test]
    fn gallop_tiers_bit_identical(
        a in sorted_set(1 << 20, 600),
        start_frac in 0u32..100,
        target in 0u32..(1 << 20),
    ) {
        let start = a.len() * start_frac as usize / 100;
        let mut m = NullMeter;
        let want = gallop_lower_bound_tier(&a, start, target, SimdTier::Scalar, &mut m);
        for tier in TIERS {
            prop_assert_eq!(
                gallop_lower_bound_tier(&a, start, target, tier, &mut m),
                want,
                "tier={} start={} target={}", tier.label(), start, target
            );
        }
        // The index is a true lower bound.
        prop_assert_eq!(want.max(start), lower_bound(&a, target).max(start));
    }

    /// Galloping over values with the sign bit set: unsigned/signed compare
    /// confusion in the vector probe would misdirect the search here.
    #[test]
    fn gallop_tiers_high_bit_values(
        a in high_bit_set(500),
        target in 0u32..u32::MAX,
    ) {
        let mut m = NullMeter;
        let want = gallop_lower_bound_tier(&a, 0, target, SimdTier::Scalar, &mut m);
        for tier in TIERS {
            prop_assert_eq!(
                gallop_lower_bound_tier(&a, 0, target, tier, &mut m),
                want,
                "tier={} target={}", tier.label(), target
            );
        }
    }

    /// The vectorized linear prefix handles short end-of-array windows
    /// (fewer than 16 elements left) identically to the scalar scan.
    #[test]
    fn linear_prefix_tiers_bit_identical(
        a in sorted_set(10_000, 64),
        start_frac in 0u32..101,
        target in 0u32..10_000,
    ) {
        let start = a.len() * start_frac as usize / 100;
        let mut m = NullMeter;
        let want = linear_lower_bound_tier(&a, start, target, SimdTier::Scalar, &mut m);
        for tier in TIERS {
            prop_assert_eq!(
                linear_lower_bound_tier(&a, start, target, tier, &mut m),
                want,
                "tier={} start={} target={}", tier.label(), start, target
            );
        }
    }

    /// High-bit probe values through the BMP path: bitmap large enough to
    /// cover them is too big for a test, so probe a window offset near the
    /// top of a small domain instead — keys at `2^31 + k` against a bitmap
    /// of matching cardinality would OOB-panic identically at every tier,
    /// which the in-crate unit tests cover; here we pin the guard boundary:
    /// the last representable id of the bitmap, at the end of its last word.
    #[test]
    fn bmp_last_word_boundary(card_words in 1usize..64, probe in sorted_set(4_096, 200)) {
        let card = card_words * 64;
        let probe: Vec<u32> = probe.into_iter().filter(|&v| (v as usize) < card).collect();
        let mut m = NullMeter;
        let mut bm = Bitmap::new(card);
        // Set exactly the last id so every hit is at the final bit of the
        // final word — the far edge of the gather's valid range.
        let last = (card - 1) as u32;
        bm.set_list(&[last], &mut m);
        let want = u32::from(probe.contains(&last));
        for tier in TIERS {
            prop_assert_eq!(bmp_count_tier(&bm, &probe, tier, &mut m), want, "tier={}", tier.label());
        }
    }
}

/// Deterministic gallop sweep: targets placed to stop the search in every
/// phase — inside the 16-element linear prefix, in each of the first few
/// exponential steps of the wide phase (8 pivots per step, skip ×256 per
/// full step), and past the end of the array.
#[test]
fn gallop_every_phase_deterministic() {
    let a: Vec<u32> = (0..200_000u32).map(|x| x * 3).collect();
    let starts = [0usize, 1, 7, 15, 16, 17, 100, 199_990, 199_999, 200_000];
    // Distances from start chosen to land in: prefix (0..16), first wide
    // step (16..16+15*skip), deep multi-step territory (>16*255), and OOB.
    let distances = [0usize, 1, 15, 16, 17, 100, 1_000, 5_000, 70_000, 500_000];
    let mut m = NullMeter;
    for &start in &starts {
        for &d in &distances {
            let idx = (start + d).min(a.len());
            let target = if idx < a.len() { a[idx] } else { u32::MAX };
            let want = gallop_lower_bound_tier(&a, start, target, SimdTier::Scalar, &mut m);
            for tier in TIERS {
                assert_eq!(
                    gallop_lower_bound_tier(&a, start, target, tier, &mut m),
                    want,
                    "tier={} start={start} dist={d}",
                    tier.label()
                );
                // Also probe target-1 and target+1 to land between elements.
                for t in [target.saturating_sub(1), target.saturating_add(1)] {
                    let w = gallop_lower_bound_tier(&a, start, t, SimdTier::Scalar, &mut m);
                    assert_eq!(
                        gallop_lower_bound_tier(&a, start, t, tier, &mut m),
                        w,
                        "tier={} start={start} dist={d} t={t}",
                        tier.label()
                    );
                }
            }
        }
    }
}

/// Deterministic word-boundary sweep for the bitmap probe: ids exactly at
/// 63/64/127/128 and the neighbors of every probed word edge.
#[test]
fn bmp_word_boundaries_deterministic() {
    let ids = [
        0u32, 1, 62, 63, 64, 65, 126, 127, 128, 191, 192, 255, 256, 319,
    ];
    let mut m = NullMeter;
    let mut bm = Bitmap::new(512);
    bm.set_list(&ids, &mut m);
    // Probe every id in 0..512 in one sorted array: 8 full vector blocks.
    let probe: Vec<u32> = (0..512).collect();
    for tier in TIERS {
        assert_eq!(
            bmp_count_tier(&bm, &probe, tier, &mut m),
            ids.len() as u32,
            "tier={}",
            tier.label()
        );
    }
    // Probe arrays of every length 1..=40 starting at each boundary, so
    // every (block, tail) split crosses a word edge somewhere.
    for &edge in &[62u32, 63, 64, 127, 128] {
        for len in 1..=40usize {
            let probe: Vec<u32> = (0..len as u32).map(|k| edge + k).collect();
            let want = bmp_count_tier(&bm, &probe, SimdTier::Scalar, &mut m);
            for tier in TIERS {
                assert_eq!(
                    bmp_count_tier(&bm, &probe, tier, &mut m),
                    want,
                    "tier={} edge={edge} len={len}",
                    tier.label()
                );
            }
        }
    }
}
