//! Hybrid merge / pivot-skip selection (**MPS**, Algorithm 1 top level).
//!
//! When the two degrees are similar, PS may advance only one element per
//! pivot and pays search overhead for nothing, whereas VB advances a whole
//! block per step. When the degrees are highly skewed, VB degenerates to
//! `O(d_u + d_v)` while PS skips. MPS chooses per edge using a tunable
//! degree-ratio threshold `t` (the paper uses the empirical value 50).

use crate::meter::Meter;
use crate::pivot_skip::ps_count;
use crate::simd::SimdLevel;
use crate::vb::vb_count;

/// Configuration of the hybrid MPS kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpsConfig {
    /// Degree-skew ratio above which PS is used instead of VB.
    /// The paper's empirical default is 50 (footnote 1).
    pub skew_threshold: u32,
    /// Vector lane configuration for the VB path.
    pub simd: SimdLevel,
}

impl Default for MpsConfig {
    fn default() -> Self {
        Self {
            skew_threshold: 50,
            simd: SimdLevel::detect(),
        }
    }
}

impl MpsConfig {
    /// Config with a specific SIMD level and the paper-default threshold.
    pub fn with_simd(simd: SimdLevel) -> Self {
        Self {
            skew_threshold: 50,
            simd,
        }
    }

    /// Should this pair take the pivot-skip path?
    #[inline]
    pub fn is_skewed(&self, da: usize, db: usize) -> bool {
        let (s, l) = if da < db { (da, db) } else { (db, da) };
        // d_l / d_s > t, robust to s == 0 (degenerate empty sets: not skewed,
        // both paths are trivial).
        s > 0 && l > (self.skew_threshold as usize).saturating_mul(s)
    }
}

/// Count `|a ∩ b|` with the hybrid MPS kernel (Algorithm 1 lines 2–4).
#[inline]
pub fn mps_count<M: Meter>(
    a: &[u32],
    b: &[u32],
    skew_threshold: u32,
    simd: SimdLevel,
    meter: &mut M,
) -> u32 {
    let cfg = MpsConfig {
        skew_threshold,
        simd,
    };
    mps_count_cfg(a, b, &cfg, meter)
}

/// [`mps_count`] taking an [`MpsConfig`].
#[inline]
pub fn mps_count_cfg<M: Meter>(a: &[u32], b: &[u32], cfg: &MpsConfig, meter: &mut M) -> u32 {
    if cfg.is_skewed(a.len(), b.len()) {
        ps_count(a, b, meter)
    } else {
        vb_count(a, b, cfg.simd, meter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};
    use crate::reference_count;

    #[test]
    fn skew_predicate() {
        let cfg = MpsConfig {
            skew_threshold: 50,
            simd: SimdLevel::Scalar,
        };
        assert!(!cfg.is_skewed(10, 10));
        assert!(!cfg.is_skewed(10, 500)); // exactly 50x is NOT skewed (strict >)
        assert!(cfg.is_skewed(10, 501));
        assert!(cfg.is_skewed(501, 10));
        assert!(!cfg.is_skewed(0, 1000)); // empty side: trivial either way
    }

    #[test]
    fn default_threshold_is_paper_value() {
        assert_eq!(MpsConfig::default().skew_threshold, 50);
    }

    #[test]
    fn hybrid_matches_reference_both_regimes() {
        // Balanced pair → VB path.
        let a: Vec<u32> = (0..200).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..220).map(|x| x * 3).collect();
        // Skewed pair → PS path.
        let big: Vec<u32> = (0..50_000).collect();
        let small = [1u32, 7, 40_000];
        let mut m = NullMeter;
        for simd in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
            assert_eq!(mps_count(&a, &b, 50, simd, &mut m), reference_count(&a, &b));
            assert_eq!(
                mps_count(&big, &small, 50, simd, &mut m),
                reference_count(&big, &small)
            );
        }
    }

    #[test]
    fn skewed_pair_takes_sublinear_path() {
        let big: Vec<u32> = (0..500_000).collect();
        let small = [3u32, 250_000, 499_999];
        let mut m = CountingMeter::new();
        mps_count(&big, &small, 50, SimdLevel::Avx2, &mut m);
        assert!(
            m.counts.total_ops() < 2_000,
            "skewed pair must gallop, used {}",
            m.counts.total_ops()
        );
    }

    #[test]
    fn threshold_zero_always_ps_threshold_huge_always_vb() {
        let a: Vec<u32> = (0..64).collect();
        let b: Vec<u32> = (0..128).map(|x| x * 2).collect();
        let mut m = NullMeter;
        let want = reference_count(&a, &b);
        assert_eq!(mps_count(&a, &b, 0, SimdLevel::Scalar, &mut m), want);
        assert_eq!(mps_count(&a, &b, u32::MAX, SimdLevel::Avx2, &mut m), want);
    }
}
