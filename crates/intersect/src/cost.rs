//! Kernel-aware work estimation for workload-balanced scheduling.
//!
//! The parallel edge-range driver cuts `[0, |E|)` into tasks. Uniform cuts
//! ignore power-law skew: a task that lands on a hub source can carry orders
//! of magnitude more intersection work than its neighbors. [`CostModel`]
//! estimates, per kernel family, how expensive a single `(u, v)` pair is
//! (`pair_cost`) and how expensive the once-per-source setup is
//! (`source_cost`), in abstract work units. The scheduler prefix-sums these
//! over sources and picks cut points of near-equal estimated cost.
//!
//! The estimates mirror the asymptotics the paper establishes:
//!
//! * **M / VB** — the two-pointer/blocked merge walks both lists:
//!   `O(d_u + d_v)`.
//! * **MPS** — above the skew threshold `t` the pivot-skip path gallops the
//!   long list from the short one: `O(d_s · log d_l)`; below it, the VB
//!   merge cost applies (Algorithm 1, footnote 1).
//! * **BMP / RF** — the `|V|`-bit bitmap costs `O(d_u)` to build and clear
//!   once per source (the amortized rebuild the schedule tries not to
//!   repeat), then each pair probes the bitmap in `O(d_v)`.
//!
//! Units are "abstract scalar ops", comparable only within one model; the
//! scheduler only ever compares costs produced by the same model, so no
//! cross-family calibration is needed.

use crate::mps::MpsConfig;

/// Per-kernel-family cost estimator used by the balanced scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostModel {
    /// Merge-family kernels (M and VB): both lists are walked.
    Merge,
    /// The hybrid MPS kernel: pivot-skip above the skew threshold,
    /// blocked merge below it.
    Mps {
        /// Degree-skew ratio above which the pivot-skip path is taken
        /// (the paper's empirical default is 50).
        skew_threshold: u32,
    },
    /// Bitmap kernels (BMP and BMP-RF): per-source build/clear plus a
    /// per-pair probe of the short list.
    Bmp,
}

impl CostModel {
    /// Estimated once-per-source setup cost for a source of degree `du`.
    ///
    /// Only the bitmap family pays this: building and later clearing the
    /// `|V|`-bit bitmap touches each of the source's `du` neighbors twice.
    #[inline]
    pub fn source_cost(&self, du: usize) -> u64 {
        match self {
            CostModel::Merge | CostModel::Mps { .. } => 0,
            CostModel::Bmp => 2 * du as u64,
        }
    }

    /// Estimated cost of intersecting one `(u, v)` pair with degrees
    /// `(du, dv)`.
    ///
    /// Always at least 1, so even degenerate pairs carry the per-edge loop
    /// overhead and a schedule over an all-isolated-vertex graph still
    /// spreads edges across tasks.
    #[inline]
    pub fn pair_cost(&self, du: usize, dv: usize) -> u64 {
        let cost = match self {
            CostModel::Merge => (du + dv) as u64,
            CostModel::Mps { skew_threshold } => {
                let cfg = MpsConfig {
                    skew_threshold: *skew_threshold,
                    simd: crate::simd::SimdLevel::Scalar,
                };
                if cfg.is_skewed(du, dv) {
                    let (s, l) = if du < dv { (du, dv) } else { (dv, du) };
                    s as u64 * (l.max(2).ilog2() as u64 + 1)
                } else {
                    (du + dv) as u64
                }
            }
            // The source bitmap is already built; each pair probes it once
            // per neighbor of the non-source endpoint.
            CostModel::Bmp => dv as u64,
        };
        cost.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_symmetric_and_linear() {
        let m = CostModel::Merge;
        assert_eq!(m.pair_cost(10, 30), m.pair_cost(30, 10));
        assert_eq!(m.pair_cost(10, 30), 40);
        assert_eq!(m.source_cost(1000), 0);
    }

    #[test]
    fn degenerate_pairs_still_cost_one() {
        for model in [
            CostModel::Merge,
            CostModel::Mps { skew_threshold: 50 },
            CostModel::Bmp,
        ] {
            assert_eq!(model.pair_cost(0, 0), 1, "{model:?}");
        }
    }

    #[test]
    fn mps_skewed_pairs_are_sublinear() {
        let m = CostModel::Mps { skew_threshold: 50 };
        // 3 vs 100_000 is far above the threshold: galloping, not merging.
        let skewed = m.pair_cost(3, 100_000);
        let merged = CostModel::Merge.pair_cost(3, 100_000);
        assert!(
            skewed < merged / 100,
            "skewed {skewed} should be far below merge {merged}"
        );
        // Balanced pairs fall back to the merge estimate.
        assert_eq!(m.pair_cost(64, 64), 128);
        // Exactly t*s is NOT skewed (strict >), matching MpsConfig.
        assert_eq!(m.pair_cost(10, 500), 510);
    }

    #[test]
    fn bmp_charges_source_build_and_per_pair_probe() {
        let m = CostModel::Bmp;
        assert_eq!(m.source_cost(40), 80);
        assert_eq!(m.pair_cost(40, 7), 7);
        // The probe depends only on the non-source endpoint.
        assert_eq!(m.pair_cost(9999, 7), 7);
    }
}
