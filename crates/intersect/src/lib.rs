//! Set-intersection kernels for all-edge common neighbor counting.
//!
//! This crate implements the two algorithm families studied in
//! *Accelerating All-Edge Common Neighbor Counting on Three Processors*
//! (Che et al., ICPP 2019):
//!
//! * **Merge-based** kernels over sorted arrays:
//!   * [`merge_count`] — the plain two-pointer merge, the paper's baseline **M**
//!     (Algorithm 1, `IntersectM`);
//!   * [`ps_count`] — the pivot-skip merge **PS** for degree-skewed pairs
//!     (Algorithm 1, `IntersectPS`), built on a galloping lower-bound search
//!     with a vectorized linear-search prefix;
//!   * [`vb_count`] — the vectorized block-wise merge **VB** (Inoue et al.)
//!     with an emulated lane width of 4/8/16 and real AVX2/AVX-512 paths;
//!   * [`mps_count`] — the hybrid **MPS** that picks PS above a degree-skew
//!     ratio threshold `t` and VB otherwise.
//! * **Index-based** kernels:
//!   * [`Bitmap`] — a `|V|`-bit bitmap with set/test/clear-by-list operations,
//!     the dynamic index of algorithm **BMP** (Algorithm 2);
//!   * [`RfBitmap`] — the *range-filtered* bitmap: a small cache-resident
//!     bitmap whose bits summarize ranges of the big bitmap, skipping probes
//!     of all-zero ranges (the paper's **RF** technique).
//!
//! Every kernel comes in a metered flavor: it is generic over a [`Meter`]
//! through which it reports the work it performed (comparisons, vector ops,
//! sequential bytes, random accesses). [`NullMeter`] compiles to nothing, so
//! production callers pay zero overhead; [`CountingMeter`] records exact
//! operation counts which the machine models (`cnc-machine`) turn into
//! modeled elapsed times for the simulated KNL and GPU processors.
//!
//! Wide-vector hot loops (BMP word probes, the galloping stages, VB block
//! compares) dispatch on a process-wide [`SimdTier`] resolved once from the
//! `CNC_SIMD` environment variable / `--simd` CLI flag / host detection.
//! Forcing `scalar` runs the bit-pinned oracle loops; `portable` runs the
//! same 8-wide block shape without vector instructions; `avx2`/`avx512` use
//! real intrinsics. Per-edge counts and the architecture-neutral meter
//! events are identical at every tier.
//!
//! # Preconditions
//!
//! All array inputs are neighbor lists: **strictly increasing** `u32` slices.
//! The kernels `debug_assert!` this; behavior on unsorted input is
//! unspecified (but memory-safe).
//!
//! # Example
//!
//! ```
//! use cnc_intersect::{merge_count, ps_count, mps_count, NullMeter, SimdLevel};
//!
//! let a = [1u32, 3, 5, 7, 9];
//! let b = [2u32, 3, 4, 7, 8];
//! let mut m = NullMeter;
//! assert_eq!(merge_count(&a, &b, &mut m), 2);
//! assert_eq!(ps_count(&a, &b, &mut m), 2);
//! assert_eq!(mps_count(&a, &b, 50, SimdLevel::detect(), &mut m), 2);
//! ```

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod bitmap;
mod bsr;
mod collect;
mod cost;
mod hash_index;
mod kernel;
mod merge;
mod meter;
mod mps;
mod pivot_skip;
mod range_filter;
mod search;
mod simd;
mod vb;

pub use bitmap::{bmp_count, bmp_count_tier, Bitmap};
pub use bsr::{bsr_count, bsr_intersect, BsrSet};
pub use collect::{merge_collect, mps_collect, ps_collect};
pub use cost::CostModel;
pub use hash_index::{hash_count, HashIndex};
pub use kernel::{BmpKernel, MergeKernel, MpsKernel, PairKernel, RfKernel};
pub use merge::merge_count;
pub use meter::{CountingMeter, Meter, NullMeter, WorkCounts};
pub use mps::{mps_count, mps_count_cfg, MpsConfig};
pub use pivot_skip::ps_count;
pub use range_filter::{
    rf_count, scaled_rf_ratio, validate_rf_ratio, RfBitmap, RfRatioError, DEFAULT_RF_RATIO,
};
pub use search::{
    gallop_lower_bound, gallop_lower_bound_no_prefix, gallop_lower_bound_tier, linear_lower_bound,
    linear_lower_bound_tier, lower_bound,
};
pub use simd::{SimdLevel, SimdTier, SimdTierError};
pub use vb::{vb_count, vb_count_lanes};

/// Reference intersection count via a fresh two-pointer walk.
///
/// This is an intentionally independent implementation used by tests and the
/// verification module of `cnc-core`; it shares no code with the optimized
/// kernels above.
pub fn reference_count(a: &[u32], b: &[u32]) -> u32 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u32);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(debug_assertions)]
pub(crate) fn debug_check_sorted(a: &[u32]) {
    debug_assert!(
        a.windows(2).all(|w| w[0] < w[1]),
        "intersection input must be strictly increasing"
    );
}

#[cfg(not(debug_assertions))]
#[inline(always)]
pub(crate) fn debug_check_sorted(_a: &[u32]) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_count_basic() {
        assert_eq!(reference_count(&[1, 2, 3], &[2, 3, 4]), 2);
        assert_eq!(reference_count(&[], &[1]), 0);
        assert_eq!(reference_count(&[5], &[5]), 1);
        assert_eq!(reference_count(&[1, 9], &[2, 8]), 0);
    }
}
