//! Value-collecting intersection: return the common neighbors themselves,
//! not just their count.
//!
//! The counting kernels are the paper's subject, but downstream analytics
//! (explaining a recommendation, materializing triangle lists) need the
//! actual common-neighbor sets for *selected* edges. These helpers share
//! the hybrid structure of the counting kernels: a merge walk for balanced
//! pairs, pivot-skip for skewed ones.

use crate::meter::Meter;
use crate::search::gallop_lower_bound;

/// Collect `a ∩ b` into `out` (cleared first) with a two-pointer merge.
pub fn merge_collect<M: Meter>(a: &[u32], b: &[u32], out: &mut Vec<u32>, meter: &mut M) {
    crate::debug_check_sorted(a);
    crate::debug_check_sorted(b);
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    let mut iters = 0u64;
    while i < a.len() && j < b.len() {
        iters += 1;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    meter.scalar_ops(iters);
    meter.seq_bytes(4 * (i + j) as u64);
    meter.intersection_done();
}

/// Collect `a ∩ b` with the pivot-skip strategy (efficient when one side is
/// much longer).
pub fn ps_collect<M: Meter>(a: &[u32], b: &[u32], out: &mut Vec<u32>, meter: &mut M) {
    crate::debug_check_sorted(a);
    crate::debug_check_sorted(b);
    out.clear();
    if a.is_empty() || b.is_empty() {
        meter.intersection_done();
        return;
    }
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        i = gallop_lower_bound(a, i, b[j], meter);
        if i >= a.len() {
            break;
        }
        j = gallop_lower_bound(b, j, a[i], meter);
        if j >= b.len() {
            break;
        }
        if a[i] == b[j] {
            out.push(a[i]);
            i += 1;
            j += 1;
            if i >= a.len() || j >= b.len() {
                break;
            }
        }
        meter.scalar_ops(1);
    }
    meter.intersection_done();
}

/// Hybrid collection mirroring [`crate::mps_count`]'s selection rule.
pub fn mps_collect<M: Meter>(
    a: &[u32],
    b: &[u32],
    skew_threshold: u32,
    out: &mut Vec<u32>,
    meter: &mut M,
) {
    let (s, l) = if a.len() < b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    if s > 0 && l > (skew_threshold as usize).saturating_mul(s) {
        ps_collect(a, b, out, meter);
    } else {
        merge_collect(a, b, out, meter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::NullMeter;
    use crate::reference_count;

    fn reference_collect(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    #[test]
    fn merge_collect_basic() {
        let mut out = Vec::new();
        let mut m = NullMeter;
        merge_collect(&[1, 3, 5, 7], &[3, 4, 5, 8], &mut out, &mut m);
        assert_eq!(out, vec![3, 5]);
        merge_collect(&[], &[1], &mut out, &mut m);
        assert!(out.is_empty());
    }

    #[test]
    fn collect_reuses_buffer() {
        let mut out = vec![99, 98, 97];
        let mut m = NullMeter;
        merge_collect(&[1, 2], &[2, 3], &mut out, &mut m);
        assert_eq!(out, vec![2], "buffer must be cleared first");
    }

    #[test]
    fn ps_collect_on_skewed_input() {
        let big: Vec<u32> = (0..100_000).collect();
        let small = [9u32, 50_000, 99_999];
        let mut out = Vec::new();
        let mut m = NullMeter;
        ps_collect(&big, &small, &mut out, &mut m);
        assert_eq!(out, vec![9, 50_000, 99_999]);
        ps_collect(&small, &big, &mut out, &mut m);
        assert_eq!(out, vec![9, 50_000, 99_999]);
    }

    #[test]
    fn collected_values_match_counts_randomized() {
        let mut x = 0xabcdef12345u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut out = Vec::new();
        let mut m = NullMeter;
        for _ in 0..40 {
            let mut a: Vec<u32> = (0..(next() % 300)).map(|_| (next() % 800) as u32).collect();
            let mut b: Vec<u32> = (0..(next() % 60)).map(|_| (next() % 800) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            for f in [merge_collect::<NullMeter>, ps_collect::<NullMeter>] {
                f(&a, &b, &mut out, &mut m);
                assert_eq!(out, reference_collect(&a, &b));
                assert_eq!(out.len() as u32, reference_count(&a, &b));
                assert!(out.windows(2).all(|w| w[0] < w[1]), "output stays sorted");
            }
            mps_collect(&a, &b, 50, &mut out, &mut m);
            assert_eq!(out, reference_collect(&a, &b));
        }
    }
}
