//! Dynamic bitmap index (**BMP**, Algorithm 2).
//!
//! A bitmap of cardinality `|V|` (one bit per vertex id) is constructed for
//! `N(u)`, reused for every intersection `N(u) ∩ N(v)` with `v ∈ N(u)`, and
//! then cleared by resetting exactly the bits that were set — an amortized
//! constant cost per intersection. Lookup and insert are single word
//! operations, which is why the paper picks a bitmap over hash/skip/tree
//! indexes.

use crate::meter::Meter;

/// A fixed-cardinality bitmap over vertex ids `[0, cardinality)`.
#[derive(Debug, Clone)]
pub struct Bitmap {
    words: Vec<u64>,
    cardinality: usize,
}

impl Bitmap {
    /// An all-zero bitmap able to hold ids `< cardinality`.
    pub fn new(cardinality: usize) -> Self {
        Self {
            words: vec![0u64; cardinality.div_ceil(64)],
            cardinality,
        }
    }

    /// Number of ids this bitmap can hold.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Memory footprint in bytes (the paper's `|V|/8`, rounded to words).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Set the bit for `v`.
    #[inline]
    pub fn set(&mut self, v: u32) {
        debug_assert!((v as usize) < self.cardinality);
        self.words[v as usize >> 6] |= 1u64 << (v & 63);
    }

    /// Test the bit for `v`.
    #[inline]
    pub fn test(&self, v: u32) -> bool {
        debug_assert!((v as usize) < self.cardinality);
        (self.words[v as usize >> 6] >> (v & 63)) & 1 != 0
    }

    /// Clear the bit for `v`.
    #[inline]
    pub fn clear(&mut self, v: u32) {
        debug_assert!((v as usize) < self.cardinality);
        self.words[v as usize >> 6] &= !(1u64 << (v & 63));
    }

    /// Set the bits of every id in `list` (bitmap construction, Algorithm 2
    /// lines 3–4). Reports one random access + 8 written bytes per element.
    pub fn set_list<M: Meter>(&mut self, list: &[u32], meter: &mut M) {
        for &v in list {
            self.set(v);
        }
        meter.rand_accesses(list.len() as u64);
        meter.write_bytes(8 * list.len() as u64);
        meter.seq_bytes(4 * list.len() as u64);
    }

    /// Clear the bits of every id in `list` (Algorithm 2 lines 8–9).
    ///
    /// Uses explicit clears rather than flips so the operation is idempotent;
    /// the result is all-zero again provided only `list`'s bits were set.
    pub fn clear_list<M: Meter>(&mut self, list: &[u32], meter: &mut M) {
        for &v in list {
            self.clear(v);
        }
        meter.rand_accesses(list.len() as u64);
        meter.write_bytes(8 * list.len() as u64);
        meter.seq_bytes(4 * list.len() as u64);
    }

    /// True if no bit is set (used to validate pool recycling).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Bitmap–array intersection count (Algorithm 2, `IntersectBMP`): loop over
/// the sorted array and count hits in the bitmap. `O(|arr|)` probes.
#[inline]
pub fn bmp_count<M: Meter>(bitmap: &Bitmap, arr: &[u32], meter: &mut M) -> u32 {
    crate::debug_check_sorted(arr);
    let mut c = 0u32;
    for &w in arr {
        c += u32::from(bitmap.test(w));
    }
    meter.seq_bytes(4 * arr.len() as u64);
    meter.rand_accesses(arr.len() as u64);
    meter.scalar_ops(arr.len() as u64);
    meter.intersection_done();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};
    use crate::reference_count;

    #[test]
    fn set_test_clear_roundtrip() {
        let mut bm = Bitmap::new(200);
        assert!(!bm.test(63));
        bm.set(63);
        bm.set(64);
        bm.set(0);
        bm.set(199);
        assert!(bm.test(63) && bm.test(64) && bm.test(0) && bm.test(199));
        assert_eq!(bm.count_ones(), 4);
        bm.clear(63);
        assert!(!bm.test(63));
        assert!(bm.test(64));
    }

    #[test]
    fn bytes_matches_paper_formula() {
        // |V|/8 bytes, rounded up to 8-byte words.
        let bm = Bitmap::new(1 << 20);
        assert_eq!(bm.bytes(), (1 << 20) / 8);
        let bm2 = Bitmap::new(100);
        assert_eq!(bm2.bytes(), 16);
    }

    #[test]
    fn set_list_then_clear_list_is_identity() {
        let mut m = NullMeter;
        let mut bm = Bitmap::new(1000);
        let list = [5u32, 77, 128, 512, 999];
        bm.set_list(&list, &mut m);
        assert_eq!(bm.count_ones(), 5);
        bm.clear_list(&list, &mut m);
        assert!(bm.is_empty());
    }

    #[test]
    fn clear_list_idempotent_unlike_flip() {
        let mut m = NullMeter;
        let mut bm = Bitmap::new(100);
        bm.set_list(&[1, 2, 3], &mut m);
        bm.clear_list(&[1, 2, 3], &mut m);
        bm.clear_list(&[1, 2, 3], &mut m); // double clear must not resurrect bits
        assert!(bm.is_empty());
    }

    #[test]
    fn bmp_count_matches_reference() {
        let mut m = NullMeter;
        let a: Vec<u32> = (0..150).map(|x| x * 3).collect(); // the indexed set N(u)
        let b: Vec<u32> = (0..150).map(|x| x * 2).collect(); // the probing set N(v)
        let mut bm = Bitmap::new(500);
        bm.set_list(&a, &mut m);
        assert_eq!(bmp_count(&bm, &b, &mut m), reference_count(&a, &b));
    }

    #[test]
    fn bmp_probe_cost_is_linear_in_probe_array() {
        let mut m0 = NullMeter;
        let a: Vec<u32> = (0..10_000).collect();
        let mut bm = Bitmap::new(10_000);
        bm.set_list(&a, &mut m0);
        let probe = [1u32, 5_000, 9_999];
        let mut m = CountingMeter::new();
        assert_eq!(bmp_count(&bm, &probe, &mut m), 3);
        assert_eq!(m.counts.rand_accesses, 3);
        assert_eq!(m.counts.scalar_ops, 3);
    }

    #[test]
    fn empty_probe_array() {
        let mut m = NullMeter;
        let bm = Bitmap::new(64);
        assert_eq!(bmp_count(&bm, &[], &mut m), 0);
    }
}
