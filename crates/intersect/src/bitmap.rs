//! Dynamic bitmap index (**BMP**, Algorithm 2).
//!
//! A bitmap of cardinality `|V|` (one bit per vertex id) is constructed for
//! `N(u)`, reused for every intersection `N(u) ∩ N(v)` with `v ∈ N(u)`, and
//! then cleared by resetting exactly the bits that were set — an amortized
//! constant cost per intersection. Lookup and insert are single word
//! operations, which is why the paper picks a bitmap over hash/skip/tree
//! indexes.
//!
//! The probe loop is the BMP hot path and is vectorized per the resolved
//! [`SimdTier`]: 8 keys per step with AVX2 (two 4-wide `vpgatherdq` of the
//! `words[v >> 6]` words, `vpsrlvq` by `v & 63`, mask bit 0, 64-bit lane
//! accumulate), 16 keys per step with AVX-512F, and an 8-wide chunked-scalar
//! fallback on the portable tier. The plain per-key loop is kept as the
//! bit-pinned oracle (`SimdTier::Scalar`). Construction (`set_list` /
//! `clear_list`) is not gather-friendly — it is a scatter, and pre-AVX-512
//! x86 has no scatter instruction — so it instead folds consecutive ids
//! sharing a 64-bit word into a single read-modify-write, which is where
//! sorted neighbor lists actually spend their construction time.

use crate::meter::Meter;
use crate::simd::SimdTier;

/// A fixed-cardinality bitmap over vertex ids `[0, cardinality)`.
#[derive(Debug, Clone)]
pub struct Bitmap {
    words: Vec<u64>,
    cardinality: usize,
}

impl Bitmap {
    /// An all-zero bitmap able to hold ids `< cardinality`.
    pub fn new(cardinality: usize) -> Self {
        Self {
            words: vec![0u64; cardinality.div_ceil(64)],
            cardinality,
        }
    }

    /// Number of ids this bitmap can hold.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Memory footprint in bytes (the paper's `|V|/8`, rounded to words).
    pub fn bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Set the bit for `v`.
    #[inline]
    pub fn set(&mut self, v: u32) {
        debug_assert!((v as usize) < self.cardinality);
        self.words[v as usize >> 6] |= 1u64 << (v & 63);
    }

    /// Test the bit for `v`.
    #[inline]
    pub fn test(&self, v: u32) -> bool {
        debug_assert!((v as usize) < self.cardinality);
        (self.words[v as usize >> 6] >> (v & 63)) & 1 != 0
    }

    /// Clear the bit for `v`.
    #[inline]
    pub fn clear(&mut self, v: u32) {
        debug_assert!((v as usize) < self.cardinality);
        self.words[v as usize >> 6] &= !(1u64 << (v & 63));
    }

    /// Set the bits of every id in `list` (bitmap construction, Algorithm 2
    /// lines 3–4). Reports one random access + 8 written bytes per element.
    ///
    /// Consecutive ids that land in the same 64-bit word are folded into one
    /// read-modify-write; bit-identical to calling [`Bitmap::set`] per id.
    pub fn set_list<M: Meter>(&mut self, list: &[u32], meter: &mut M) {
        self.fold_words::<true>(list);
        meter.rand_accesses(list.len() as u64);
        meter.write_bytes(8 * list.len() as u64);
        meter.seq_bytes(4 * list.len() as u64);
    }

    /// Clear the bits of every id in `list` (Algorithm 2 lines 8–9).
    ///
    /// Uses explicit clears rather than flips so the operation is idempotent;
    /// the result is all-zero again provided only `list`'s bits were set.
    /// Word-folded like [`Bitmap::set_list`].
    pub fn clear_list<M: Meter>(&mut self, list: &[u32], meter: &mut M) {
        self.fold_words::<false>(list);
        meter.rand_accesses(list.len() as u64);
        meter.write_bytes(8 * list.len() as u64);
        meter.seq_bytes(4 * list.len() as u64);
    }

    /// Apply `list`'s bits with one read-modify-write per *run* of ids
    /// sharing a 64-bit word. After degree reordering, sorted neighbor lists
    /// are dense in the low ids, so runs of 8–64 ids per word are common and
    /// the fold removes most of the per-id memory traffic.
    fn fold_words<const SET: bool>(&mut self, list: &[u32]) {
        let mut i = 0;
        while i < list.len() {
            let v = list[i];
            debug_assert!((v as usize) < self.cardinality);
            let w = (v >> 6) as usize;
            let mut bits = 1u64 << (v & 63);
            i += 1;
            while i < list.len() && (list[i] >> 6) as usize == w {
                debug_assert!((list[i] as usize) < self.cardinality);
                bits |= 1u64 << (list[i] & 63);
                i += 1;
            }
            if SET {
                self.words[w] |= bits;
            } else {
                self.words[w] &= !bits;
            }
        }
    }

    /// True if no bit is set (used to validate pool recycling).
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Bitmap–array intersection count (Algorithm 2, `IntersectBMP`): loop over
/// the sorted array and count hits in the bitmap. `O(|arr|)` probes,
/// executed at the process-wide resolved [`SimdTier`].
#[inline]
pub fn bmp_count<M: Meter>(bitmap: &Bitmap, arr: &[u32], meter: &mut M) -> u32 {
    bmp_count_tier(bitmap, arr, SimdTier::resolve(), meter)
}

/// [`bmp_count`] at an explicit [`SimdTier`] — lets benchmarks and
/// differential tests sweep tiers inside one process. A tier the host cannot
/// execute silently degrades to the portable path (never to an illegal
/// instruction).
///
/// The architecture-neutral meter events (`seq_bytes`, `rand_accesses`,
/// `scalar_ops`, `intersection_done`) are identical at every tier, so the
/// modeled KNL/GPU platforms stay reproducible; only the tier-attribution
/// events (`simd_blocks`, `simd_tail_elems`) vary.
pub fn bmp_count_tier<M: Meter>(
    bitmap: &Bitmap,
    arr: &[u32],
    tier: SimdTier,
    meter: &mut M,
) -> u32 {
    crate::debug_check_sorted(arr);
    debug_assert!(
        arr.iter().all(|&v| (v as usize) < bitmap.cardinality),
        "probe ids must be < bitmap cardinality"
    );
    let (c, blocks, tail) = bmp_hits(bitmap, arr, tier);
    meter.seq_bytes(4 * arr.len() as u64);
    meter.rand_accesses(arr.len() as u64);
    meter.scalar_ops(arr.len() as u64);
    meter.simd_blocks(blocks);
    meter.simd_tail_elems(tail);
    meter.intersection_done();
    c
}

/// Tier dispatch for the probe loop. Returns `(hits, wide_blocks, tail)`.
fn bmp_hits(bitmap: &Bitmap, arr: &[u32], tier: SimdTier) -> (u32, u64, u64) {
    #[cfg(target_arch = "x86_64")]
    {
        if tier.use_avx512() {
            // SAFETY: `use_avx512` re-checks host support; the intrinsics
            // guard their own gather bounds.
            return unsafe { crate::simd::bmp_count_avx512(&bitmap.words, arr) };
        }
        if tier.use_avx2() {
            // SAFETY: as above for AVX2.
            return unsafe { crate::simd::bmp_count_avx2(&bitmap.words, arr) };
        }
    }
    match tier {
        SimdTier::Scalar => (bmp_hits_scalar(bitmap, arr), 0, 0),
        _ => bmp_hits_portable(bitmap, arr),
    }
}

/// The bit-pinned oracle: one probe per key, in order.
fn bmp_hits_scalar(bitmap: &Bitmap, arr: &[u32]) -> u32 {
    let mut c = 0u32;
    for &w in arr {
        c += u32::from(bitmap.test(w));
    }
    c
}

/// Portable wide path: 8 keys per block with independent accumulator
/// chains (manual ILP), same block/tail shape as the vector paths.
fn bmp_hits_portable(bitmap: &Bitmap, arr: &[u32]) -> (u32, u64, u64) {
    let words = &bitmap.words;
    let mut acc = [0u32; 8];
    let mut chunks = arr.chunks_exact(8);
    let mut blocks = 0u64;
    for ch in chunks.by_ref() {
        for l in 0..8 {
            acc[l] += ((words[(ch[l] >> 6) as usize] >> (ch[l] & 63)) & 1) as u32;
        }
        blocks += 1;
    }
    let tail = chunks.remainder();
    let mut c: u32 = acc.iter().sum();
    for &k in tail {
        c += ((words[(k >> 6) as usize] >> (k & 63)) & 1) as u32;
    }
    (c, blocks, tail.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};
    use crate::reference_count;

    #[test]
    fn set_test_clear_roundtrip() {
        let mut bm = Bitmap::new(200);
        assert!(!bm.test(63));
        bm.set(63);
        bm.set(64);
        bm.set(0);
        bm.set(199);
        assert!(bm.test(63) && bm.test(64) && bm.test(0) && bm.test(199));
        assert_eq!(bm.count_ones(), 4);
        bm.clear(63);
        assert!(!bm.test(63));
        assert!(bm.test(64));
    }

    #[test]
    fn bytes_matches_paper_formula() {
        // |V|/8 bytes, rounded up to 8-byte words.
        let bm = Bitmap::new(1 << 20);
        assert_eq!(bm.bytes(), (1 << 20) / 8);
        let bm2 = Bitmap::new(100);
        assert_eq!(bm2.bytes(), 16);
    }

    #[test]
    fn set_list_then_clear_list_is_identity() {
        let mut m = NullMeter;
        let mut bm = Bitmap::new(1000);
        let list = [5u32, 77, 128, 512, 999];
        bm.set_list(&list, &mut m);
        assert_eq!(bm.count_ones(), 5);
        bm.clear_list(&list, &mut m);
        assert!(bm.is_empty());
    }

    #[test]
    fn clear_list_idempotent_unlike_flip() {
        let mut m = NullMeter;
        let mut bm = Bitmap::new(100);
        bm.set_list(&[1, 2, 3], &mut m);
        bm.clear_list(&[1, 2, 3], &mut m);
        bm.clear_list(&[1, 2, 3], &mut m); // double clear must not resurrect bits
        assert!(bm.is_empty());
    }

    #[test]
    fn word_fold_matches_per_key_oracle() {
        // set_list/clear_list fold runs of ids sharing a word; the per-key
        // set/clear loops are the oracle they must match bit for bit.
        let lists: [&[u32]; 5] = [
            &[0, 1, 2, 3, 62, 63, 64, 65, 127, 128, 129, 700],
            &[63],
            &[64, 191, 192],
            &[0, 64, 128, 192, 256], // one id per word: no folding possible
            &(0..640).collect::<Vec<u32>>(), // dense: maximal folding
        ];
        for list in lists {
            let mut m = NullMeter;
            let mut folded = Bitmap::new(1024);
            folded.set_list(list, &mut m);
            let mut oracle = Bitmap::new(1024);
            for &v in list {
                oracle.set(v);
            }
            assert_eq!(folded.words, oracle.words, "set_list {list:?}");
            folded.clear_list(list, &mut m);
            assert!(folded.is_empty(), "clear_list {list:?}");
        }
    }

    #[test]
    fn bmp_count_matches_reference() {
        let mut m = NullMeter;
        let a: Vec<u32> = (0..150).map(|x| x * 3).collect(); // the indexed set N(u)
        let b: Vec<u32> = (0..150).map(|x| x * 2).collect(); // the probing set N(v)
        let mut bm = Bitmap::new(500);
        bm.set_list(&a, &mut m);
        assert_eq!(bmp_count(&bm, &b, &mut m), reference_count(&a, &b));
    }

    #[test]
    fn all_tiers_agree_with_scalar_oracle() {
        let mut m = NullMeter;
        // Bits straddling word boundaries plus a long dense run.
        let a: Vec<u32> = (0..400)
            .map(|x| x * 7 % 2000)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut bm = Bitmap::new(2048);
        bm.set_list(&a, &mut m);
        // Probe lengths exercising the tail (0..=17 extra keys past a block).
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 150] {
            let probe: Vec<u32> = (0..len as u32)
                .map(|x| x * 13 % 2048)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let want = bmp_count_tier(&bm, &probe, SimdTier::Scalar, &mut m);
            for tier in SimdTier::ALL {
                let got = bmp_count_tier(&bm, &probe, tier, &mut m);
                assert_eq!(got, want, "tier={tier:?} len={len}");
            }
        }
    }

    #[test]
    fn tier_counters_attribute_blocks_and_tail() {
        let mut m0 = NullMeter;
        let a: Vec<u32> = (0..100).collect();
        let mut bm = Bitmap::new(128);
        bm.set_list(&a, &mut m0);
        let probe: Vec<u32> = (0..27).collect(); // 3 blocks of 8 + tail of 3
        let mut scalar = CountingMeter::new();
        bmp_count_tier(&bm, &probe, SimdTier::Scalar, &mut scalar);
        assert_eq!(scalar.counts.simd_blocks, 0);
        assert_eq!(scalar.counts.simd_tail_elems, 0);
        let mut wide = CountingMeter::new();
        bmp_count_tier(&bm, &probe, SimdTier::Portable, &mut wide);
        assert_eq!(wide.counts.simd_blocks, 3);
        assert_eq!(wide.counts.simd_tail_elems, 3);
        // Architecture-neutral events are identical across tiers.
        assert_eq!(scalar.counts.scalar_ops, wide.counts.scalar_ops);
        assert_eq!(scalar.counts.rand_accesses, wide.counts.rand_accesses);
        assert_eq!(scalar.counts.seq_bytes, wide.counts.seq_bytes);
    }

    #[test]
    fn bmp_probe_cost_is_linear_in_probe_array() {
        let mut m0 = NullMeter;
        let a: Vec<u32> = (0..10_000).collect();
        let mut bm = Bitmap::new(10_000);
        bm.set_list(&a, &mut m0);
        let probe = [1u32, 5_000, 9_999];
        let mut m = CountingMeter::new();
        assert_eq!(bmp_count(&bm, &probe, &mut m), 3);
        assert_eq!(m.counts.rand_accesses, 3);
        assert_eq!(m.counts.scalar_ops, 3);
    }

    #[test]
    fn empty_probe_array() {
        let mut m = NullMeter;
        let bm = Bitmap::new(64);
        assert_eq!(bmp_count(&bm, &[], &mut m), 0);
        for tier in SimdTier::ALL {
            let mut m = NullMeter;
            assert_eq!(bmp_count_tier(&bm, &[], tier, &mut m), 0);
        }
    }
}
