//! The per-pair counting strategy behind every CPU-side driver.
//!
//! All of the paper's CPU/KNL algorithms share one shape: walk `u < v`
//! neighbor pairs grouped by the source vertex `u`, with optional
//! *per-source* state amortized across all of `u`'s pairs (BMP's dynamic
//! bitmap index, Algorithm 2 line 3). [`PairKernel`] captures exactly that
//! shape, so the edge-range task loop in `cnc-cpu` can be written once and
//! instantiated per algorithm:
//!
//! | kernel | paper name | per-source state |
//! |--------|------------|------------------|
//! | [`MergeKernel`] | **M** | none |
//! | [`MpsKernel`] | **MPS** | none |
//! | [`BmpKernel`] | **BMP** | `\|V\|`-bit bitmap of `N(u)` |
//! | [`RfKernel`] | **BMP-RF** | range-filtered bitmap of `N(u)` |
//!
//! Every method is generic over a [`Meter`], so the same kernel serves the
//! un-instrumented production drivers ([`NullMeter`](crate::NullMeter)
//! compiles to nothing) and the exact work profiling that feeds the KNL and
//! GPU machine models.

use crate::bitmap::{bmp_count, Bitmap};
use crate::merge::merge_count;
use crate::meter::Meter;
use crate::mps::{mps_count_cfg, MpsConfig};
use crate::range_filter::{rf_count, RfBitmap, RfRatioError};

/// A per-source-amortized intersection-counting strategy.
///
/// # Contract
///
/// The driver calls, for each source vertex `u` that has at least one
/// `u < v` pair in its range:
///
/// 1. [`begin_source`](PairKernel::begin_source)`(N(u))` once;
/// 2. [`count`](PairKernel::count)`(N(u), N(v))` for each pair;
/// 3. [`end_source`](PairKernel::end_source)`(N(u))` once, before the next
///    `begin_source` or when the range ends.
///
/// After `end_source` the kernel must be *reset* (all per-source state
/// cleared, [`is_reset`](PairKernel::is_reset) true) so it can be reused —
/// possibly by another task, via a kernel pool.
pub trait PairKernel {
    /// Build per-source state for `nu = N(u)` (no-op for merge kernels).
    fn begin_source<M: Meter>(&mut self, nu: &[u32], meter: &mut M);

    /// Tear down per-source state for `nu = N(u)` (no-op for merge kernels).
    fn end_source<M: Meter>(&mut self, nu: &[u32], meter: &mut M);

    /// Count `|N(u) ∩ N(v)|` for the current source.
    ///
    /// `nu` is the same slice last passed to `begin_source`; index kernels
    /// ignore it and probe their per-source structure instead.
    fn count<M: Meter>(&mut self, nu: &[u32], nv: &[u32], meter: &mut M) -> u32;

    /// True if all per-source state is cleared (the pool-release contract).
    fn is_reset(&self) -> bool {
        true
    }
}

/// The plain two-pointer merge — the paper's baseline **M**.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeKernel;

impl PairKernel for MergeKernel {
    #[inline]
    fn begin_source<M: Meter>(&mut self, _nu: &[u32], _meter: &mut M) {}

    #[inline]
    fn end_source<M: Meter>(&mut self, _nu: &[u32], _meter: &mut M) {}

    #[inline]
    fn count<M: Meter>(&mut self, nu: &[u32], nv: &[u32], meter: &mut M) -> u32 {
        merge_count(nu, nv, meter)
    }
}

/// The hybrid pivot-skip / vectorized block merge — **MPS** (Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct MpsKernel {
    /// Skew threshold and SIMD level.
    pub cfg: MpsConfig,
}

impl MpsKernel {
    /// An MPS kernel with the given configuration.
    pub fn new(cfg: MpsConfig) -> Self {
        Self { cfg }
    }
}

impl PairKernel for MpsKernel {
    #[inline]
    fn begin_source<M: Meter>(&mut self, _nu: &[u32], _meter: &mut M) {}

    #[inline]
    fn end_source<M: Meter>(&mut self, _nu: &[u32], _meter: &mut M) {}

    #[inline]
    fn count<M: Meter>(&mut self, nu: &[u32], nv: &[u32], meter: &mut M) -> u32 {
        mps_count_cfg(nu, nv, &self.cfg, meter)
    }
}

/// The dynamic bitmap index — **BMP** (Algorithm 2).
#[derive(Debug, Clone)]
pub struct BmpKernel {
    bm: Bitmap,
}

impl BmpKernel {
    /// A BMP kernel for vertex ids `< cardinality`, bitmap zeroed.
    pub fn new(cardinality: usize) -> Self {
        Self {
            bm: Bitmap::new(cardinality),
        }
    }
}

impl PairKernel for BmpKernel {
    #[inline]
    fn begin_source<M: Meter>(&mut self, nu: &[u32], meter: &mut M) {
        self.bm.set_list(nu, meter);
    }

    #[inline]
    fn end_source<M: Meter>(&mut self, nu: &[u32], meter: &mut M) {
        self.bm.clear_list(nu, meter);
    }

    #[inline]
    fn count<M: Meter>(&mut self, _nu: &[u32], nv: &[u32], meter: &mut M) -> u32 {
        bmp_count(&self.bm, nv, meter)
    }

    fn is_reset(&self) -> bool {
        self.bm.is_empty()
    }
}

/// The range-filtered bitmap index — **BMP-RF** (Section 4.3).
#[derive(Debug, Clone)]
pub struct RfKernel {
    rf: RfBitmap,
}

impl RfKernel {
    /// An RF kernel for vertex ids `< cardinality` with the given
    /// big-to-small ratio. Fails on a zero / non-power-of-two ratio.
    pub fn new(cardinality: usize, ratio: usize) -> Result<Self, RfRatioError> {
        Ok(Self {
            rf: RfBitmap::try_with_ratio(cardinality, ratio)?,
        })
    }

    /// An RF kernel for a ratio the caller has already validated (plan
    /// construction runs [`validate_rf_ratio`](crate::validate_rf_ratio)
    /// before any kernel is built). Debug builds assert the contract; the
    /// underlying bitmap still refuses a broken ratio rather than silently
    /// mis-filtering.
    pub fn prevalidated(cardinality: usize, ratio: usize) -> Self {
        debug_assert!(
            crate::validate_rf_ratio(ratio).is_ok(),
            "RF ratio {ratio} must be a power of two >= 2 — validate at plan time"
        );
        Self {
            rf: RfBitmap::with_ratio(cardinality, ratio),
        }
    }
}

impl PairKernel for RfKernel {
    #[inline]
    fn begin_source<M: Meter>(&mut self, nu: &[u32], meter: &mut M) {
        self.rf.set_list(nu, meter);
    }

    #[inline]
    fn end_source<M: Meter>(&mut self, nu: &[u32], meter: &mut M) {
        self.rf.clear_list(nu, meter);
    }

    #[inline]
    fn count<M: Meter>(&mut self, _nu: &[u32], nv: &[u32], meter: &mut M) -> u32 {
        rf_count(&self.rf, nv, meter)
    }

    fn is_reset(&self) -> bool {
        self.rf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};
    use crate::reference_count;

    fn drive<K: PairKernel>(kernel: &mut K, nu: &[u32], probes: &[&[u32]]) -> Vec<u32> {
        let mut m = NullMeter;
        kernel.begin_source(nu, &mut m);
        let out = probes
            .iter()
            .map(|nv| kernel.count(nu, nv, &mut m))
            .collect();
        kernel.end_source(nu, &mut m);
        assert!(kernel.is_reset(), "kernel must be clean after end_source");
        out
    }

    #[test]
    fn all_kernels_agree_with_reference() {
        let nu: Vec<u32> = vec![1, 3, 5, 7, 9, 40, 80];
        let probes: Vec<Vec<u32>> = vec![
            vec![2, 3, 4, 7, 8],
            vec![],
            vec![40, 41, 80, 99],
            (0..100).collect(),
        ];
        let probe_refs: Vec<&[u32]> = probes.iter().map(|p| p.as_slice()).collect();
        let want: Vec<u32> = probes.iter().map(|nv| reference_count(&nu, nv)).collect();
        assert_eq!(drive(&mut MergeKernel, &nu, &probe_refs), want);
        assert_eq!(
            drive(&mut MpsKernel::new(MpsConfig::default()), &nu, &probe_refs),
            want
        );
        assert_eq!(drive(&mut BmpKernel::new(100), &nu, &probe_refs), want);
        assert_eq!(
            drive(&mut RfKernel::new(100, 8).unwrap(), &nu, &probe_refs),
            want
        );
    }

    #[test]
    fn index_kernels_reusable_across_sources() {
        let mut k = BmpKernel::new(64);
        for round in 0..3u32 {
            let nu: Vec<u32> = (0..10).map(|x| x * 5 + round).collect();
            let got = drive(&mut k, &nu, &[&nu]);
            assert_eq!(got, vec![10]);
        }
    }

    #[test]
    fn rf_kernel_rejects_bad_ratios() {
        assert!(RfKernel::new(100, 0).is_err());
        assert!(RfKernel::new(100, 100).is_err());
        assert!(RfKernel::new(100, 64).is_ok());
    }

    #[test]
    fn merge_kernels_report_no_reset_state() {
        assert!(MergeKernel.is_reset());
        assert!(MpsKernel::default().is_reset());
    }

    #[test]
    fn kernels_meter_their_work() {
        let nu: Vec<u32> = (0..50).collect();
        let nv: Vec<u32> = (25..75).collect();
        let mut m = CountingMeter::new();
        let mut k = BmpKernel::new(100);
        k.begin_source(&nu, &mut m);
        k.count(&nu, &nv, &mut m);
        k.end_source(&nu, &mut m);
        assert!(m.counts.rand_accesses > 0);
        assert!(m.counts.write_bytes > 0);
        assert_eq!(m.counts.intersections, 1);
    }
}
