//! Lower-bound search family used by the pivot-skip merge.
//!
//! The paper's `LowerBound` (Algorithm 1) is implemented as a staged search:
//! a short *vectorized linear search* over the next few elements (cheap when
//! the lower bound is nearby, the common case), then *galloping* with
//! exponentially growing skips starting at 2⁴ (Baeza-Yates / Demaine et al.),
//! and finally a branchless *binary search* inside the last gallop window.

use crate::meter::Meter;

/// Number of elements covered by the vectorized linear-search prefix.
///
/// Two 8-lane SIMD comparisons (or the scalar equivalent) cover 16 elements —
/// the same 2⁴ threshold at which the paper starts galloping.
pub const LINEAR_PREFIX: usize = 16;

/// First galloping skip is `2^GALLOP_FIRST_SHIFT`, matching the paper's 2⁴.
const GALLOP_FIRST_SHIFT: u32 = 4;

/// Branchless binary lower bound: smallest index `i` with `a[i] >= target`,
/// or `a.len()` if no such element exists.
///
/// Uses the classic half-interval reduction with conditional moves instead of
/// branches, which avoids mispredictions on random probes.
#[inline]
pub fn lower_bound(a: &[u32], target: u32) -> usize {
    let mut base = 0usize;
    let mut size = a.len();
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        // Safety by construction: mid < base + size <= a.len().
        if a[mid] < target {
            base = mid;
        }
        size -= half;
    }
    // `base` now points at the last candidate; step over it if it is small.
    base + usize::from(!a.is_empty() && a[base] < target)
}

/// Linear lower bound over at most `LINEAR_PREFIX` (16) elements starting at
/// `start`. Returns `Some(index)` if found within the prefix, `None` to tell
/// the caller to continue with galloping.
///
/// On x86-64 with AVX2 the scan is performed with two 8-lane vector
/// comparisons; elsewhere an unrolled scalar scan is used. Both report one
/// `vector_op` per 8 elements scanned so the machine models see identical
/// work regardless of host ISA.
#[inline]
pub fn linear_lower_bound<M: Meter>(
    a: &[u32],
    start: usize,
    target: u32,
    meter: &mut M,
) -> Option<usize> {
    let end = a.len().min(start + LINEAR_PREFIX);
    if start >= end {
        return if start >= a.len() {
            Some(a.len())
        } else {
            None
        };
    }
    let window = &a[start..end];
    meter.vector_ops(window.len().div_ceil(8) as u64);
    meter.seq_bytes(4 * window.len() as u64);
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::avx2_available() && window.len() == LINEAR_PREFIX {
            // SAFETY: avx2 presence checked at runtime; window length is 16.
            let lt = unsafe { crate::simd::count_less_than_16(window, target) };
            return if lt < LINEAR_PREFIX {
                Some(start + lt)
            } else {
                None
            };
        }
    }
    match window.iter().position(|&x| x >= target) {
        Some(p) => Some(start + p),
        None => {
            if end == a.len() {
                Some(a.len())
            } else {
                None
            }
        }
    }
}

/// Galloping (exponential) lower bound of `target` in `a[start..]`.
///
/// Stages: vectorized linear prefix → exponential skips `2^4, 2^5, …` →
/// binary search in the final window. This is the paper's `LowerBound`
/// implementation for `IntersectPS` (Section 3.1).
#[inline]
pub fn gallop_lower_bound<M: Meter>(a: &[u32], start: usize, target: u32, meter: &mut M) -> usize {
    crate::debug_check_sorted(a);
    if start >= a.len() {
        return a.len();
    }
    if let Some(idx) = linear_lower_bound(a, start, target, meter) {
        return idx;
    }
    // The linear prefix (16 = 2^4 elements) was all < target.
    let mut lo = start + LINEAR_PREFIX; // first unchecked index
    let mut skip = 1usize << GALLOP_FIRST_SHIFT;
    let mut steps = 0u64;
    loop {
        steps += 1;
        let probe = lo + skip - 1; // last index of this window
        if probe >= a.len() {
            break;
        }
        if a[probe] >= target {
            break;
        }
        lo += skip;
        skip <<= 1;
    }
    meter.scalar_ops(steps);
    meter.rand_accesses(steps);
    let hi = a.len().min(lo + skip);
    let window = &a[lo..hi];
    let w = lower_bound(window, target);
    let probes = (window.len().max(1)).ilog2() as u64 + 1;
    meter.scalar_ops(probes);
    meter.rand_accesses(probes);
    lo + w
}

/// Galloping lower bound *without* the vectorized linear-search prefix —
/// the ablation comparator for the staged search (pure
/// Baeza-Yates/Demaine-style gallop from the first element).
#[inline]
pub fn gallop_lower_bound_no_prefix<M: Meter>(
    a: &[u32],
    start: usize,
    target: u32,
    meter: &mut M,
) -> usize {
    crate::debug_check_sorted(a);
    if start >= a.len() {
        return a.len();
    }
    let mut lo = start;
    let mut skip = 1usize;
    let mut steps = 0u64;
    loop {
        steps += 1;
        let probe = lo + skip - 1;
        if probe >= a.len() || a[probe] >= target {
            break;
        }
        lo += skip;
        skip <<= 1;
    }
    meter.scalar_ops(steps);
    meter.rand_accesses(steps);
    let hi = a.len().min(lo + skip);
    let window = &a[lo..hi];
    let w = lower_bound(window, target);
    let probes = (window.len().max(1)).ilog2() as u64 + 1;
    meter.scalar_ops(probes);
    meter.rand_accesses(probes);
    lo + w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};

    fn reference_lower_bound(a: &[u32], t: u32) -> usize {
        a.iter().position(|&x| x >= t).unwrap_or(a.len())
    }

    #[test]
    fn lower_bound_matches_reference_exhaustive() {
        let a: Vec<u32> = (0..64).map(|x| x * 3 + 1).collect();
        for t in 0..200 {
            assert_eq!(lower_bound(&a, t), reference_lower_bound(&a, t), "t={t}");
        }
    }

    #[test]
    fn lower_bound_empty_and_singleton() {
        assert_eq!(lower_bound(&[], 5), 0);
        assert_eq!(lower_bound(&[3], 2), 0);
        assert_eq!(lower_bound(&[3], 3), 0);
        assert_eq!(lower_bound(&[3], 4), 1);
    }

    #[test]
    fn linear_prefix_finds_nearby() {
        let a: Vec<u32> = (0..100).collect();
        let mut m = NullMeter;
        assert_eq!(linear_lower_bound(&a, 10, 12, &mut m), Some(12));
        assert_eq!(linear_lower_bound(&a, 10, 10, &mut m), Some(10));
        // Beyond the prefix: caller must gallop.
        assert_eq!(linear_lower_bound(&a, 10, 90, &mut m), None);
    }

    #[test]
    fn linear_prefix_end_of_array() {
        let a: Vec<u32> = (0..10).collect();
        let mut m = NullMeter;
        // Window reaches the end of the array and everything is < target:
        // the answer is definitive (a.len()), not a request to gallop.
        assert_eq!(linear_lower_bound(&a, 4, 99, &mut m), Some(10));
        assert_eq!(linear_lower_bound(&a, 10, 5, &mut m), Some(10));
    }

    #[test]
    fn gallop_matches_reference_on_grid() {
        let a: Vec<u32> = (0..500).map(|x| x * 2).collect();
        let mut m = NullMeter;
        for start in [0usize, 1, 5, 17, 100, 499, 500] {
            for t in [0u32, 1, 2, 33, 34, 600, 998, 999, 1000, 2000] {
                let got = gallop_lower_bound(&a, start, t, &mut m);
                let want = start + reference_lower_bound(&a[start.min(a.len())..], t);
                assert_eq!(got, want, "start={start} t={t}");
            }
        }
    }

    #[test]
    fn gallop_far_target_uses_few_probes() {
        // The whole point of galloping: reaching an element 10^5 away takes
        // O(log) probes, not 10^5 iterations.
        let a: Vec<u32> = (0..200_000).collect();
        let mut m = CountingMeter::new();
        let idx = gallop_lower_bound(&a, 0, 150_000, &mut m);
        assert_eq!(idx, 150_000);
        assert!(
            m.counts.scalar_ops + m.counts.vector_ops < 100,
            "gallop should be logarithmic, used {} ops",
            m.counts.total_ops()
        );
    }

    #[test]
    fn gallop_random_against_reference() {
        let mut x = 88172645463325252u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..50 {
            let mut a: Vec<u32> = (0..300).map(|_| (next() % 10_000) as u32).collect();
            a.sort_unstable();
            a.dedup();
            let start = (next() as usize) % (a.len() + 1);
            let t = (next() % 11_000) as u32;
            let mut m = NullMeter;
            let got = gallop_lower_bound(&a, start, t, &mut m);
            let want = start + reference_lower_bound(&a[start..], t);
            assert_eq!(got, want);
        }
    }
}

#[cfg(test)]
mod no_prefix_tests {
    use super::*;
    use crate::meter::NullMeter;

    #[test]
    fn no_prefix_matches_reference() {
        let a: Vec<u32> = (0..300).map(|x| x * 2).collect();
        let mut m = NullMeter;
        for start in [0usize, 1, 7, 150, 299, 300] {
            for t in [0u32, 1, 2, 100, 301, 598, 599, 600, 1000] {
                let want = start
                    + a[start.min(a.len())..]
                        .iter()
                        .position(|&x| x >= t)
                        .unwrap_or(a.len() - start.min(a.len()));
                let got = gallop_lower_bound_no_prefix(&a, start, t, &mut m);
                assert_eq!(got, want, "start={start} t={t}");
            }
        }
    }

    #[test]
    fn agrees_with_staged_variant() {
        let a: Vec<u32> = (0..1000).map(|x| x * 3 + 1).collect();
        let mut m = NullMeter;
        for t in (0..3200).step_by(37) {
            assert_eq!(
                gallop_lower_bound_no_prefix(&a, 0, t, &mut m),
                gallop_lower_bound(&a, 0, t, &mut m)
            );
        }
    }
}
