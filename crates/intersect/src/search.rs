//! Lower-bound search family used by the pivot-skip merge.
//!
//! The paper's `LowerBound` (Algorithm 1) is implemented as a staged search:
//! a short *vectorized linear search* over the next few elements (cheap when
//! the lower bound is nearby, the common case), then *galloping* with
//! exponentially growing skips starting at 2⁴ (Baeza-Yates / Demaine et al.),
//! and finally a lower bound inside the last gallop window.
//!
//! At the wide [`SimdTier`]s the gallop stages are themselves vectorized:
//! the exponential phase probes the next **8 pivot positions per step** with
//! one 8-wide gather + compare (covering up to `skip·255` elements per
//! step), and the final window is halved branchlessly to ≤16 elements and
//! resolved with a single masked vector compare instead of a branchy binary
//! search. The scalar staged loop is kept verbatim as the oracle
//! (`SimdTier::Scalar`), and every tier reports identical
//! architecture-neutral meter events — the vector phases compute the same
//! `steps`/`probes` tallies the scalar loop would have counted, so the
//! modeled platforms are unaffected by the host's tier.

use crate::meter::Meter;
use crate::simd::SimdTier;

/// Number of elements covered by the vectorized linear-search prefix.
///
/// Two 8-lane SIMD comparisons (or the scalar equivalent) cover 16 elements —
/// the same 2⁴ threshold at which the paper starts galloping.
pub const LINEAR_PREFIX: usize = 16;

/// First galloping skip is `2^GALLOP_FIRST_SHIFT`, matching the paper's 2⁴.
const GALLOP_FIRST_SHIFT: u32 = 4;

/// Pivots probed per vectorized exponential-phase step.
const GALLOP_PIVOTS: usize = 8;

/// Branchless binary lower bound: smallest index `i` with `a[i] >= target`,
/// or `a.len()` if no such element exists.
///
/// Uses the classic half-interval reduction with conditional moves instead of
/// branches, which avoids mispredictions on random probes.
#[inline]
pub fn lower_bound(a: &[u32], target: u32) -> usize {
    let mut base = 0usize;
    let mut size = a.len();
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        // Safety by construction: mid < base + size <= a.len().
        if a[mid] < target {
            base = mid;
        }
        size -= half;
    }
    // `base` now points at the last candidate; step over it if it is small.
    base + usize::from(!a.is_empty() && a[base] < target)
}

/// Linear lower bound over at most `LINEAR_PREFIX` (16) elements starting at
/// `start`, at the process-wide resolved [`SimdTier`]. Returns `Some(index)`
/// if found within the prefix, `None` to tell the caller to continue with
/// galloping.
#[inline]
pub fn linear_lower_bound<M: Meter>(
    a: &[u32],
    start: usize,
    target: u32,
    meter: &mut M,
) -> Option<usize> {
    linear_lower_bound_tier(a, start, target, SimdTier::resolve(), meter)
}

/// [`linear_lower_bound`] at an explicit [`SimdTier`].
///
/// On the AVX2/AVX-512 tiers the scan is two 8-lane vector comparisons;
/// windows shorter than 16 (end of array) are padded with `u32::MAX` — a pad
/// lane can never satisfy `x < target`, so short windows vectorize too
/// instead of falling back to the scalar scan. Every tier reports one
/// `vector_op` per 8 elements scanned so the machine models see identical
/// work regardless of host ISA.
#[inline]
pub fn linear_lower_bound_tier<M: Meter>(
    a: &[u32],
    start: usize,
    target: u32,
    tier: SimdTier,
    meter: &mut M,
) -> Option<usize> {
    let end = a.len().min(start + LINEAR_PREFIX);
    if start >= end {
        return if start >= a.len() {
            Some(a.len())
        } else {
            None
        };
    }
    let window = &a[start..end];
    meter.vector_ops(window.len().div_ceil(8) as u64);
    meter.seq_bytes(4 * window.len() as u64);
    #[cfg(target_arch = "x86_64")]
    {
        if tier.use_avx2() {
            // SAFETY: `use_avx2` re-checks host support; the helper pads
            // short windows to the fixed 16-lane width.
            let lt = unsafe { count_less_than_upto_16(window, target) };
            meter.simd_blocks(1);
            return if lt < window.len() {
                Some(start + lt)
            } else if end == a.len() {
                Some(a.len())
            } else {
                None
            };
        }
    }
    let _ = tier;
    match window.iter().position(|&x| x >= target) {
        Some(p) => Some(start + p),
        None => {
            if end == a.len() {
                Some(a.len())
            } else {
                None
            }
        }
    }
}

/// `count_less_than_16` for windows of 1..=16 sorted elements: short windows
/// are copied into a `u32::MAX`-padded buffer (pads never compare below the
/// target, so they are never counted).
///
/// # Safety
/// Caller must ensure AVX2 is available and `1 <= window.len() <= 16`.
#[cfg(target_arch = "x86_64")]
unsafe fn count_less_than_upto_16(window: &[u32], target: u32) -> usize {
    debug_assert!(!window.is_empty() && window.len() <= 16);
    if window.len() == 16 {
        // SAFETY: AVX2 per caller contract; window length is exactly 16.
        unsafe { crate::simd::count_less_than_16(window, target) }
    } else {
        let mut buf = [u32::MAX; 16];
        buf[..window.len()].copy_from_slice(window);
        // SAFETY: AVX2 per caller contract; `buf` is exactly 16 elements.
        unsafe { crate::simd::count_less_than_16(&buf, target) }
    }
}

/// Galloping (exponential) lower bound of `target` in `a[start..]` at the
/// process-wide resolved [`SimdTier`].
///
/// Stages: vectorized linear prefix → exponential skips `2^4, 2^5, …` →
/// lower bound in the final window. This is the paper's `LowerBound`
/// implementation for `IntersectPS` (Section 3.1).
#[inline]
pub fn gallop_lower_bound<M: Meter>(a: &[u32], start: usize, target: u32, meter: &mut M) -> usize {
    gallop_lower_bound_tier(a, start, target, SimdTier::resolve(), meter)
}

/// [`gallop_lower_bound`] at an explicit [`SimdTier`] — lets benchmarks and
/// differential tests sweep tiers inside one process.
///
/// The architecture-neutral meter events are identical at every tier: the
/// wide exponential phase tallies the `steps` the scalar loop would have
/// executed (passed windows + the breaking probe), and the final window
/// reports the same `ilog2(len)+1` probe count as the scalar binary search.
#[inline]
pub fn gallop_lower_bound_tier<M: Meter>(
    a: &[u32],
    start: usize,
    target: u32,
    tier: SimdTier,
    meter: &mut M,
) -> usize {
    crate::debug_check_sorted(a);
    if start >= a.len() {
        return a.len();
    }
    if let Some(idx) = linear_lower_bound_tier(a, start, target, tier, meter) {
        return idx;
    }
    // The linear prefix (16 = 2^4 elements) was all < target.
    let lo = start + LINEAR_PREFIX;
    // The gather path uses signed 32-bit offsets; arrays that large fall
    // back to the scalar oracle (never hit by u32-vertex neighbor lists).
    if tier == SimdTier::Scalar || a.len() > i32::MAX as usize {
        gallop_tail_scalar(a, lo, target, meter)
    } else {
        gallop_tail_wide(a, lo, target, tier, meter)
    }
}

/// The scalar exponential phase + branchless binary search — the bit-pinned
/// oracle for [`gallop_tail_wide`] and the `SimdTier::Scalar` path.
fn gallop_tail_scalar<M: Meter>(a: &[u32], start_lo: usize, target: u32, meter: &mut M) -> usize {
    let mut lo = start_lo; // first unchecked index
    let mut skip = 1usize << GALLOP_FIRST_SHIFT;
    let mut steps = 0u64;
    loop {
        steps += 1;
        let probe = lo + skip - 1; // last index of this window
        if probe >= a.len() {
            break;
        }
        if a[probe] >= target {
            break;
        }
        lo += skip;
        skip <<= 1;
    }
    meter.scalar_ops(steps);
    meter.rand_accesses(steps);
    let hi = a.len().min(lo + skip);
    let window = &a[lo..hi];
    let w = lower_bound(window, target);
    let probes = (window.len().max(1)).ilog2() as u64 + 1;
    meter.scalar_ops(probes);
    meter.rand_accesses(probes);
    lo + w
}

/// The wide exponential phase: probe the next [`GALLOP_PIVOTS`] gallop pivot
/// positions with one gather + compare per step, then resolve the bracketing
/// window with a masked vector compare.
///
/// Pivot `k` of a step sits where scalar iteration `k` would probe:
/// `lo + skip·(2^(k+1) − 1) − 1`. For sorted input the pass lanes form a
/// prefix, so the pass count `c` identifies the bracketing window directly:
/// `c = 8` consumes all 8 windows (advance `lo` by `skip·255`, scale `skip`
/// by 256 and repeat — each step covers 255× more than the last), while
/// `c < 8` means the target lies in window `c`.
fn gallop_tail_wide<M: Meter>(
    a: &[u32],
    start_lo: usize,
    target: u32,
    tier: SimdTier,
    meter: &mut M,
) -> usize {
    let len = a.len() as u64;
    let mut lo = start_lo as u64;
    let mut skip = 1u64 << GALLOP_FIRST_SHIFT;
    let mut steps = 0u64;
    let mut blocks = 0u64;
    let (win_lo, win_len) = loop {
        let mut idx = [0i32; GALLOP_PIVOTS];
        let mut nvalid = 0u32;
        for (k, slot) in idx.iter_mut().enumerate() {
            let p = lo + skip * ((1u64 << (k + 1)) - 1) - 1;
            if p < len {
                nvalid = k as u32 + 1;
                *slot = p as i32;
            } else {
                // Clamp for the gather; masked off via `nvalid`.
                *slot = (len - 1) as i32;
            }
        }
        let c = count_pass(a, &idx, nvalid, target, tier);
        blocks += 1;
        if c as usize == GALLOP_PIVOTS {
            // All 8 probes passed — the scalar loop would have taken these
            // 8 iterations and kept going.
            steps += GALLOP_PIVOTS as u64;
            lo += skip * 255;
            skip *= 256;
            continue;
        }
        // c passed iterations plus the breaking probe.
        steps += c as u64 + 1;
        let wl = lo + skip * ((1u64 << c) - 1);
        let ws = skip << c;
        break (wl, ws.min(len - wl));
    };
    meter.scalar_ops(steps);
    meter.rand_accesses(steps);
    let window = &a[win_lo as usize..(win_lo + win_len) as usize];
    let probes = (window.len().max(1)).ilog2() as u64 + 1;
    meter.scalar_ops(probes);
    meter.rand_accesses(probes);
    let w = resolve_window(window, target, tier, &mut blocks);
    meter.simd_blocks(blocks);
    win_lo as usize + w
}

/// Pass count of one pivot block: how many *leading* pivots satisfy
/// `k < nvalid && a[idx[k]] < target`.
#[inline]
fn count_pass(
    a: &[u32],
    idx: &[i32; GALLOP_PIVOTS],
    nvalid: u32,
    target: u32,
    tier: SimdTier,
) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if tier.use_avx2() {
            // SAFETY: `use_avx2` re-checks host support; every index is
            // clamped below `a.len()`, which the caller bounds by i32::MAX.
            return unsafe { crate::simd::gather_count_less_than_8(a, idx, nvalid, target) };
        }
    }
    let _ = tier;
    // Portable: the pass lanes form a prefix, so stop at the first failing
    // probe — lanes past it cannot change the count, and skipping them
    // avoids the far-away wasted reads a real gather has to issue.
    let mut c = 0u32;
    while c < nvalid && a[idx[c as usize] as usize] < target {
        c += 1;
    }
    c
}

/// Lower bound inside the final gallop window: halve branchlessly until at
/// most 16 candidates remain, then count them with one masked vector compare
/// (or the portable equivalent) instead of finishing the binary search.
fn resolve_window(window: &[u32], target: u32, tier: SimdTier, blocks: &mut u64) -> usize {
    let mut base = 0usize;
    let mut size = window.len();
    while size > LINEAR_PREFIX {
        let half = size / 2;
        let mid = base + half;
        // Invariant: the lower bound stays within [base, base + size].
        if window[mid] < target {
            base = mid;
        }
        size -= half;
    }
    let sub = &window[base..base + size];
    if sub.is_empty() {
        return base;
    }
    *blocks += 1;
    #[cfg(target_arch = "x86_64")]
    {
        if tier.use_avx2() {
            // SAFETY: `use_avx2` re-checks host support; 1 <= len <= 16.
            return base + unsafe { count_less_than_upto_16(sub, target) };
        }
    }
    let _ = tier;
    base + sub.iter().filter(|&&x| x < target).count()
}

/// Galloping lower bound *without* the vectorized linear-search prefix —
/// the ablation comparator for the staged search (pure
/// Baeza-Yates/Demaine-style gallop from the first element).
#[inline]
pub fn gallop_lower_bound_no_prefix<M: Meter>(
    a: &[u32],
    start: usize,
    target: u32,
    meter: &mut M,
) -> usize {
    crate::debug_check_sorted(a);
    if start >= a.len() {
        return a.len();
    }
    let mut lo = start;
    let mut skip = 1usize;
    let mut steps = 0u64;
    loop {
        steps += 1;
        let probe = lo + skip - 1;
        if probe >= a.len() || a[probe] >= target {
            break;
        }
        lo += skip;
        skip <<= 1;
    }
    meter.scalar_ops(steps);
    meter.rand_accesses(steps);
    let hi = a.len().min(lo + skip);
    let window = &a[lo..hi];
    let w = lower_bound(window, target);
    let probes = (window.len().max(1)).ilog2() as u64 + 1;
    meter.scalar_ops(probes);
    meter.rand_accesses(probes);
    lo + w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};

    fn reference_lower_bound(a: &[u32], t: u32) -> usize {
        a.iter().position(|&x| x >= t).unwrap_or(a.len())
    }

    #[test]
    fn lower_bound_matches_reference_exhaustive() {
        let a: Vec<u32> = (0..64).map(|x| x * 3 + 1).collect();
        for t in 0..200 {
            assert_eq!(lower_bound(&a, t), reference_lower_bound(&a, t), "t={t}");
        }
    }

    #[test]
    fn lower_bound_empty_and_singleton() {
        assert_eq!(lower_bound(&[], 5), 0);
        assert_eq!(lower_bound(&[3], 2), 0);
        assert_eq!(lower_bound(&[3], 3), 0);
        assert_eq!(lower_bound(&[3], 4), 1);
    }

    #[test]
    fn linear_prefix_finds_nearby() {
        let a: Vec<u32> = (0..100).collect();
        let mut m = NullMeter;
        assert_eq!(linear_lower_bound(&a, 10, 12, &mut m), Some(12));
        assert_eq!(linear_lower_bound(&a, 10, 10, &mut m), Some(10));
        // Beyond the prefix: caller must gallop.
        assert_eq!(linear_lower_bound(&a, 10, 90, &mut m), None);
    }

    #[test]
    fn linear_prefix_end_of_array() {
        let a: Vec<u32> = (0..10).collect();
        let mut m = NullMeter;
        // Window reaches the end of the array and everything is < target:
        // the answer is definitive (a.len()), not a request to gallop.
        assert_eq!(linear_lower_bound(&a, 4, 99, &mut m), Some(10));
        assert_eq!(linear_lower_bound(&a, 10, 5, &mut m), Some(10));
    }

    #[test]
    fn linear_prefix_short_windows_all_tiers() {
        // The satellite fix: end-of-array windows shorter than 16 must give
        // the same answers on the vector path (padded compare) as scalar.
        let mut m = NullMeter;
        for n in 1usize..=20 {
            let a: Vec<u32> = (0..n as u32).map(|x| x * 3).collect();
            for start in 0..=n {
                for t in 0..(3 * n as u32 + 2) {
                    let want = linear_lower_bound_tier(&a, start, t, SimdTier::Scalar, &mut m);
                    for tier in SimdTier::ALL {
                        let got = linear_lower_bound_tier(&a, start, t, tier, &mut m);
                        assert_eq!(got, want, "n={n} start={start} t={t} tier={tier:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn gallop_matches_reference_on_grid() {
        let a: Vec<u32> = (0..500).map(|x| x * 2).collect();
        let mut m = NullMeter;
        for start in [0usize, 1, 5, 17, 100, 499, 500] {
            for t in [0u32, 1, 2, 33, 34, 600, 998, 999, 1000, 2000] {
                let got = gallop_lower_bound(&a, start, t, &mut m);
                let want = start + reference_lower_bound(&a[start.min(a.len())..], t);
                assert_eq!(got, want, "start={start} t={t}");
            }
        }
    }

    #[test]
    fn gallop_all_tiers_agree_with_scalar() {
        // Targets landing in every phase: linear prefix, first/late
        // exponential windows, past-the-end, plus multi-step gallops that
        // exhaust one full 8-pivot block (needs > 16·255 elements).
        let a: Vec<u32> = (0..10_000).map(|x| x * 3 + 7).collect();
        let mut m = NullMeter;
        for start in [0usize, 1, 13, 16, 17, 100, 5000, 9999, 10_000] {
            for t in [
                0u32, 7, 8, 40, 55, 56, 100, 500, 1000, 5000, 12_345, 29_999, 30_004, 30_005,
                40_000,
            ] {
                let want = gallop_lower_bound_tier(&a, start, t, SimdTier::Scalar, &mut m);
                for tier in SimdTier::ALL {
                    let got = gallop_lower_bound_tier(&a, start, t, tier, &mut m);
                    assert_eq!(got, want, "start={start} t={t} tier={tier:?}");
                }
            }
        }
    }

    #[test]
    fn gallop_meter_events_are_tier_invariant() {
        // The wide exponential phase must tally exactly the steps/probes the
        // scalar loop counts, so the machine models see identical work.
        let a: Vec<u32> = (0..50_000).map(|x| x * 2).collect();
        for t in [40u32, 700, 5_000, 33_333, 99_998, 100_000, 200_000] {
            let mut ms = CountingMeter::new();
            let ws = gallop_lower_bound_tier(&a, 0, t, SimdTier::Scalar, &mut ms);
            for tier in [SimdTier::Portable, SimdTier::Avx2, SimdTier::Avx512] {
                let mut mw = CountingMeter::new();
                let ww = gallop_lower_bound_tier(&a, 0, t, tier, &mut mw);
                assert_eq!(ws, ww, "t={t} tier={tier:?}");
                assert_eq!(
                    ms.counts.scalar_ops, mw.counts.scalar_ops,
                    "t={t} tier={tier:?}"
                );
                assert_eq!(
                    ms.counts.vector_ops, mw.counts.vector_ops,
                    "t={t} tier={tier:?}"
                );
                assert_eq!(
                    ms.counts.rand_accesses, mw.counts.rand_accesses,
                    "t={t} tier={tier:?}"
                );
                assert_eq!(
                    ms.counts.seq_bytes, mw.counts.seq_bytes,
                    "t={t} tier={tier:?}"
                );
            }
        }
    }

    #[test]
    fn gallop_far_target_uses_few_probes() {
        // The whole point of galloping: reaching an element 10^5 away takes
        // O(log) probes, not 10^5 iterations.
        let a: Vec<u32> = (0..200_000).collect();
        let mut m = CountingMeter::new();
        let idx = gallop_lower_bound(&a, 0, 150_000, &mut m);
        assert_eq!(idx, 150_000);
        assert!(
            m.counts.scalar_ops + m.counts.vector_ops < 100,
            "gallop should be logarithmic, used {} ops",
            m.counts.total_ops()
        );
    }

    #[test]
    fn gallop_random_against_reference() {
        let mut x = 88172645463325252u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..50 {
            let mut a: Vec<u32> = (0..300).map(|_| (next() % 10_000) as u32).collect();
            a.sort_unstable();
            a.dedup();
            let start = (next() as usize) % (a.len() + 1);
            let t = (next() % 11_000) as u32;
            let mut m = NullMeter;
            let got = gallop_lower_bound(&a, start, t, &mut m);
            let want = start + reference_lower_bound(&a[start..], t);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn gallop_high_bit_values_all_tiers() {
        // Values above i32::MAX exercise the unsigned-compare bias in both
        // the gather compare and the masked window compare.
        let a: Vec<u32> = (0..2000).map(|x| u32::MAX - 4000 + x * 2).collect();
        let mut m = NullMeter;
        for t in [
            0u32,
            u32::MAX - 4001,
            u32::MAX - 4000,
            u32::MAX - 1999,
            u32::MAX - 2,
            u32::MAX - 1,
            u32::MAX,
        ] {
            let want = gallop_lower_bound_tier(&a, 0, t, SimdTier::Scalar, &mut m);
            for tier in SimdTier::ALL {
                let got = gallop_lower_bound_tier(&a, 0, t, tier, &mut m);
                assert_eq!(got, want, "t={t} tier={tier:?}");
            }
        }
    }
}

#[cfg(test)]
mod no_prefix_tests {
    use super::*;
    use crate::meter::NullMeter;

    #[test]
    fn no_prefix_matches_reference() {
        let a: Vec<u32> = (0..300).map(|x| x * 2).collect();
        let mut m = NullMeter;
        for start in [0usize, 1, 7, 150, 299, 300] {
            for t in [0u32, 1, 2, 100, 301, 598, 599, 600, 1000] {
                let want = start
                    + a[start.min(a.len())..]
                        .iter()
                        .position(|&x| x >= t)
                        .unwrap_or(a.len() - start.min(a.len()));
                let got = gallop_lower_bound_no_prefix(&a, start, t, &mut m);
                assert_eq!(got, want, "start={start} t={t}");
            }
        }
    }

    #[test]
    fn agrees_with_staged_variant() {
        let a: Vec<u32> = (0..1000).map(|x| x * 3 + 1).collect();
        let mut m = NullMeter;
        for t in (0..3200).step_by(37) {
            assert_eq!(
                gallop_lower_bound_no_prefix(&a, 0, t, &mut m),
                gallop_lower_bound(&a, 0, t, &mut m)
            );
        }
    }
}
