//! Pivot-skip merge (**PS**, Algorithm 1 procedure `IntersectPS`).
//!
//! For degree-skewed pairs (`d_u ≫ d_v`), a plain merge wastes `O(d_u)` work
//! walking the long array. PS instead fixes a *pivot* in one array and skips
//! the other array directly to the lower bound of that pivot via
//! [`gallop_lower_bound`], alternating sides. The time complexity is
//! `O(Σ log(skip_i) + d_s)` — in practice `O(c · d_s)` with `d_s` the smaller
//! degree (Section 3.1).

use crate::meter::Meter;
use crate::search::gallop_lower_bound_tier;
use crate::simd::SimdTier;

/// Count `|a ∩ b|` with the pivot-skip merge.
///
/// Mirrors Algorithm 1 lines 13–22: alternately advance each side to the
/// lower bound of the other side's current element; on a match advance both
/// and increment the count. The [`SimdTier`] is resolved once per
/// intersection and governs the staged lower-bound search.
pub fn ps_count<M: Meter>(a: &[u32], b: &[u32], meter: &mut M) -> u32 {
    crate::debug_check_sorted(a);
    crate::debug_check_sorted(b);
    let tier = SimdTier::resolve();
    let mut c = 0u32;
    let (mut i, mut j) = (0usize, 0usize);
    if a.is_empty() || b.is_empty() {
        meter.intersection_done();
        return 0;
    }
    loop {
        // Advance i to the lower bound of b[j] in a.
        i = gallop_lower_bound_tier(a, i, b[j], tier, meter);
        if i >= a.len() {
            break;
        }
        // Advance j to the lower bound of a[i] in b.
        j = gallop_lower_bound_tier(b, j, a[i], tier, meter);
        if j >= b.len() {
            break;
        }
        if a[i] == b[j] {
            c += 1;
            i += 1;
            j += 1;
            if i >= a.len() || j >= b.len() {
                break;
            }
        }
        meter.scalar_ops(1);
    }
    meter.intersection_done();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};
    use crate::reference_count;

    #[test]
    fn empty_inputs() {
        let mut m = NullMeter;
        assert_eq!(ps_count(&[], &[], &mut m), 0);
        assert_eq!(ps_count(&[1], &[], &mut m), 0);
        assert_eq!(ps_count(&[], &[1], &mut m), 0);
    }

    #[test]
    fn small_cases() {
        let mut m = NullMeter;
        assert_eq!(ps_count(&[1, 2, 3], &[2, 3, 4], &mut m), 2);
        assert_eq!(ps_count(&[5], &[5], &mut m), 1);
        assert_eq!(ps_count(&[1, 3, 5], &[2, 4, 6], &mut m), 0);
        assert_eq!(ps_count(&[1, 100, 200], &[100], &mut m), 1);
    }

    #[test]
    fn extreme_skew_matches_reference() {
        let big: Vec<u32> = (0..100_000).collect();
        let small = [7u32, 5_000, 99_999];
        let mut m = NullMeter;
        assert_eq!(ps_count(&big, &small, &mut m), 3);
        assert_eq!(ps_count(&small, &big, &mut m), 3);
    }

    #[test]
    fn skewed_work_is_sublinear_in_big_side() {
        let big: Vec<u32> = (0..1_000_000).collect();
        let small: Vec<u32> = (0..10).map(|x| x * 100_000).collect();
        let mut m = CountingMeter::new();
        ps_count(&big, &small, &mut m);
        // The whole point of PS: work is O(d_small * log skip), nowhere near
        // the 1M elements of the big side.
        assert!(
            m.counts.total_ops() < 5_000,
            "PS should skip, used {} ops",
            m.counts.total_ops()
        );
    }

    #[test]
    fn randomized_against_reference() {
        let mut x = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for round in 0..60 {
            let alen = 1 + (next() % 400) as usize;
            let blen = 1 + (next() % 40) as usize;
            let range = 1 + next() % 2_000;
            let mut a: Vec<u32> = (0..alen).map(|_| (next() % range) as u32).collect();
            let mut b: Vec<u32> = (0..blen).map(|_| (next() % range) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let mut m = NullMeter;
            assert_eq!(
                ps_count(&a, &b, &mut m),
                reference_count(&a, &b),
                "round={round}"
            );
        }
    }

    #[test]
    fn identical_long_arrays() {
        let a: Vec<u32> = (0..1000).map(|x| x * 3 + 1).collect();
        let mut m = NullMeter;
        assert_eq!(ps_count(&a, &a, &mut m), 1000);
    }
}
