//! Bitmap **range filtering** (Section 4.3).
//!
//! Matches in real-world neighbor-set intersections are sparse: most probes
//! of the big `|V|`-bit bitmap miss. RF adds a *small* bitmap in which one
//! bit summarizes a whole range of the big bitmap (the paper's size ratio is
//! 4096, chosen so the small bitmap fits in L1 on the CPU/KNL and in shared
//! memory on the GPU). A probe first peeks at the small bitmap and touches
//! the big one only when the range is known non-empty, trading a cheap
//! cache-resident lookup for an expensive memory access.

use crate::bitmap::Bitmap;
use crate::meter::Meter;

/// The paper's default big-to-small size ratio (bits per small-bitmap bit).
pub const DEFAULT_RF_RATIO: usize = 4096;

/// A scale-aware RF ratio: the paper picks 4096 so that the small bitmap of
/// a ~40M-vertex graph fits in L1. At smaller |V| the same ratio collapses
/// the small bitmap to a handful of bits and the filter stops filtering, so
/// this helper targets a small bitmap of ~8K bits (1 KiB — L1-resident on
/// any machine) and clamps to the paper's 4096 at billion-scale.
///
/// For the paper's twitter graph (|V| = 41.6M) this returns exactly 4096.
pub fn scaled_rf_ratio(cardinality: usize) -> usize {
    const TARGET_SMALL_BITS: usize = 8192;
    let raw = cardinality.div_ceil(TARGET_SMALL_BITS).max(2);
    raw.next_power_of_two().clamp(2, DEFAULT_RF_RATIO)
}

/// Why an RF ratio was rejected (see [`RfBitmap::try_with_ratio`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RfRatioError {
    /// The ratio is zero or not a power of two, so range boundaries cannot
    /// be computed with a shift.
    NotPowerOfTwo(usize),
    /// The ratio is 1 (or 0): the small bitmap would be as big as the big
    /// one and filter nothing.
    TooSmall(usize),
}

impl std::fmt::Display for RfRatioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RfRatioError::NotPowerOfTwo(r) => {
                write!(f, "RF ratio must be a power of two, got {r}")
            }
            RfRatioError::TooSmall(r) => write!(f, "RF ratio must be at least 2, got {r}"),
        }
    }
}

impl std::error::Error for RfRatioError {}

/// Check an RF big-to-small ratio: a power of two, at least 2.
pub fn validate_rf_ratio(ratio: usize) -> Result<(), RfRatioError> {
    if !ratio.is_power_of_two() {
        return Err(RfRatioError::NotPowerOfTwo(ratio));
    }
    if ratio < 2 {
        return Err(RfRatioError::TooSmall(ratio));
    }
    Ok(())
}

/// A range-filtered bitmap: the big per-vertex bitmap plus the small
/// summarizing filter.
#[derive(Debug, Clone)]
pub struct RfBitmap {
    big: Bitmap,
    small: Bitmap,
    shift: u32,
}

impl RfBitmap {
    /// A zeroed RF bitmap for ids `< cardinality` with the paper-default
    /// ratio of 4096.
    pub fn new(cardinality: usize) -> Self {
        Self::with_ratio(cardinality, DEFAULT_RF_RATIO)
    }

    /// A zeroed RF bitmap with an explicit range size `ratio` (power of two).
    ///
    /// # Panics
    /// On an invalid ratio; use [`RfBitmap::try_with_ratio`] to validate
    /// untrusted configuration instead.
    pub fn with_ratio(cardinality: usize, ratio: usize) -> Self {
        Self::try_with_ratio(cardinality, ratio).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A zeroed RF bitmap with an explicit range size `ratio`, rejecting
    /// zero / one / non-power-of-two ratios with a descriptive error.
    pub fn try_with_ratio(cardinality: usize, ratio: usize) -> Result<Self, RfRatioError> {
        validate_rf_ratio(ratio)?;
        let shift = ratio.trailing_zeros();
        Ok(Self {
            big: Bitmap::new(cardinality),
            small: Bitmap::new(cardinality.div_ceil(ratio).max(1)),
            shift,
        })
    }

    /// Cardinality of the underlying big bitmap.
    pub fn cardinality(&self) -> usize {
        self.big.cardinality()
    }

    /// The configured range size (big bits per small bit).
    pub fn ratio(&self) -> usize {
        1usize << self.shift
    }

    /// Memory footprint of (big, small) in bytes — Table 3's two columns.
    pub fn bytes(&self) -> (usize, usize) {
        (self.big.bytes(), self.small.bytes())
    }

    /// Set the bits for every id in `list` in both bitmaps.
    pub fn set_list<M: Meter>(&mut self, list: &[u32], meter: &mut M) {
        self.big.set_list(list, meter);
        for &v in list {
            self.small.set(v >> self.shift);
        }
        meter.rand_accesses_small(list.len() as u64);
        meter.write_bytes(8 * list.len() as u64);
    }

    /// Clear the bits for every id in `list` in both bitmaps.
    ///
    /// Small-bitmap bits are *cleared*, not flipped: several ids of `list`
    /// may share a small bit, and clearing is idempotent.
    pub fn clear_list<M: Meter>(&mut self, list: &[u32], meter: &mut M) {
        self.big.clear_list(list, meter);
        for &v in list {
            self.small.clear(v >> self.shift);
        }
        meter.rand_accesses_small(list.len() as u64);
        meter.write_bytes(8 * list.len() as u64);
    }

    /// Probe for `v`: small bitmap first, big bitmap only on a range hit.
    #[inline]
    pub fn test<M: Meter>(&self, v: u32, meter: &mut M) -> bool {
        meter.rand_accesses_small(1);
        if !self.small.test(v >> self.shift) {
            return false;
        }
        meter.rand_accesses(1);
        self.big.test(v)
    }

    /// True if both bitmaps are all-zero.
    pub fn is_empty(&self) -> bool {
        self.big.is_empty() && self.small.is_empty()
    }

    /// Direct read-only access to the big bitmap (used by tests and the GPU
    /// simulator's shared-memory variant).
    pub fn big(&self) -> &Bitmap {
        &self.big
    }

    /// Direct read-only access to the small filter bitmap.
    pub fn small(&self) -> &Bitmap {
        &self.small
    }
}

/// Range-filtered bitmap–array intersection count.
///
/// Same contract as [`crate::bmp_count`] but probes through the filter, so
/// sparse-match workloads touch the big bitmap far less often.
#[inline]
pub fn rf_count<M: Meter>(rf: &RfBitmap, arr: &[u32], meter: &mut M) -> u32 {
    crate::debug_check_sorted(arr);
    let mut c = 0u32;
    for &w in arr {
        c += u32::from(rf.test(w, meter));
    }
    meter.seq_bytes(4 * arr.len() as u64);
    meter.scalar_ops(arr.len() as u64);
    meter.intersection_done();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};
    use crate::reference_count;

    #[test]
    fn ratio_and_sizes() {
        let rf = RfBitmap::with_ratio(1 << 22, 4096);
        assert_eq!(rf.ratio(), 4096);
        let (big, small) = rf.bytes();
        assert_eq!(big, (1 << 22) / 8);
        assert_eq!(small, (1 << 22) / 4096 / 8);
        // Size ratio between the two bitmaps is exactly the configured ratio.
        assert_eq!(big / small, 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_ratio_rejected() {
        let _ = RfBitmap::with_ratio(1000, 100);
    }

    #[test]
    fn try_with_ratio_reports_clear_errors() {
        assert_eq!(
            RfBitmap::try_with_ratio(1000, 0).unwrap_err(),
            RfRatioError::NotPowerOfTwo(0)
        );
        assert_eq!(
            RfBitmap::try_with_ratio(1000, 1).unwrap_err(),
            RfRatioError::TooSmall(1)
        );
        assert_eq!(
            RfBitmap::try_with_ratio(1000, 100).unwrap_err(),
            RfRatioError::NotPowerOfTwo(100)
        );
        assert_eq!(
            RfRatioError::NotPowerOfTwo(100).to_string(),
            "RF ratio must be a power of two, got 100"
        );
        assert!(RfBitmap::try_with_ratio(1000, 64).is_ok());
        assert!(validate_rf_ratio(4096).is_ok());
    }

    #[test]
    fn scaled_ratio_regimes() {
        // Paper scale: twitter's 41.6M vertices → the paper's ratio.
        assert_eq!(scaled_rf_ratio(41_652_230), 4096);
        // Laptop scale: a useful filter remains (small bitmap ~8K bits).
        assert_eq!(scaled_rf_ratio(40_000), 8);
        assert_eq!(scaled_rf_ratio(100), 2);
        // Billion scale clamps at the paper value.
        assert_eq!(scaled_rf_ratio(2_000_000_000), 4096);
    }

    #[test]
    fn probe_agrees_with_plain_bitmap() {
        let mut m = NullMeter;
        let ids = [3u32, 4096, 4097, 100_000, 250_001];
        let mut rf = RfBitmap::with_ratio(300_000, 4096);
        rf.set_list(&ids, &mut m);
        for v in [
            0u32, 3, 4, 4095, 4096, 4097, 99_999, 100_000, 250_001, 299_999,
        ] {
            assert_eq!(rf.test(v, &mut m), ids.contains(&v), "v={v}");
        }
    }

    #[test]
    fn rf_count_matches_reference() {
        let mut m = NullMeter;
        let a: Vec<u32> = (0..500).map(|x| x * 977).collect(); // sparse over 500k
        let b: Vec<u32> = (0..500).map(|x| x * 991).collect();
        let mut rf = RfBitmap::new(500_000);
        rf.set_list(&a, &mut m);
        assert_eq!(rf_count(&rf, &b, &mut m), reference_count(&a, &b));
    }

    #[test]
    fn filter_reduces_big_bitmap_accesses_on_sparse_matches() {
        let mut m0 = NullMeter;
        // N(u) clustered in one small range; probes scattered everywhere.
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (0..1000).map(|x| x * 4096).collect();
        let mut rf = RfBitmap::with_ratio(1 << 22, 4096);
        rf.set_list(&a, &mut m0);
        let mut m = CountingMeter::new();
        rf_count(&rf, &b, &mut m);
        // Only probes landing in the single non-empty range touch the big
        // bitmap: that's the probe at id 0 only.
        assert_eq!(m.counts.rand_accesses, 1);
        assert_eq!(m.counts.rand_accesses_small, 1000);
    }

    #[test]
    fn clear_list_resets_shared_small_bits() {
        let mut m = NullMeter;
        let mut rf = RfBitmap::with_ratio(10_000, 64);
        // 5 and 6 share a small bit (range 64).
        rf.set_list(&[5, 6], &mut m);
        rf.clear_list(&[5, 6], &mut m);
        assert!(rf.is_empty(), "shared small bit must clear idempotently");
    }

    #[test]
    fn set_clear_cycles_reusable() {
        let mut m = NullMeter;
        let mut rf = RfBitmap::new(50_000);
        for round in 0..5u32 {
            let ids: Vec<u32> = (0..64).map(|x| x * 631 + round).collect();
            rf.set_list(&ids, &mut m);
            assert_eq!(rf_count(&rf, &ids, &mut m), 64);
            rf.clear_list(&ids, &mut m);
            assert!(rf.is_empty());
        }
    }
}
