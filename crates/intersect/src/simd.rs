//! Runtime-dispatched SIMD support.
//!
//! The paper vectorizes the block-wise merge with AVX2 on the CPU and
//! AVX-512 on the KNL. `std::simd` is nightly-only, so this crate uses the
//! stable `core::arch::x86_64` intrinsics behind runtime feature detection,
//! with portable scalar *lane emulation* as a fallback. The emulated kernels
//! perform the same block-structured work (and report identical meter
//! events), which is what the KNL machine model keys on; the real intrinsics
//! give the wall-clock speedups measured on the host CPU.
//!
//! Two orthogonal notions live here:
//!
//! * [`SimdLevel`] — the *lane width* of a block-structured kernel (how the
//!   work is shaped). Any level can be emulated on any host; the machine
//!   models request specific levels regardless of host ISA.
//! * [`SimdTier`] — the *instruction tier* actually used to execute wide
//!   operations on this host. Resolved once per process from `CNC_SIMD` /
//!   `--simd` / feature detection; every intrinsics call site is gated on
//!   the resolved tier so a forced `scalar` or `portable` run never executes
//!   a vector instruction.

use std::sync::atomic::{AtomicU8, Ordering};

/// Vector lane configuration for 32-bit integer kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// No vectorization: scalar merge blocks of 4 (paper's plain `MPS`).
    Scalar,
    /// 128-bit vectors, 4 × u32 lanes (SSE-class; always emulatable).
    Sse4,
    /// 256-bit vectors, 8 × u32 lanes (the paper's CPU: AVX2).
    Avx2,
    /// 512-bit vectors, 16 × u32 lanes (the paper's KNL: AVX-512).
    Avx512,
}

impl SimdLevel {
    /// Number of 32-bit lanes at this level.
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse4 => 4,
            SimdLevel::Avx2 => 8,
            SimdLevel::Avx512 => 16,
        }
    }

    /// Lane width matching the process-wide [`SimdTier`].
    ///
    /// Emulated execution works at any level on any host; `detect` is about
    /// the default work shape for the real CPU backend. It follows the
    /// resolved tier so `CNC_SIMD=scalar` also degrades the block-structured
    /// kernels, keeping forced runs honest end to end.
    pub fn detect() -> Self {
        match SimdTier::resolve() {
            SimdTier::Scalar => SimdLevel::Scalar,
            // The portable tier keeps the paper's CPU block shape (8 lanes)
            // and emulates it with scalar instructions.
            SimdTier::Portable => SimdLevel::Avx2,
            SimdTier::Avx2 => SimdLevel::Avx2,
            SimdTier::Avx512 => SimdLevel::Avx512,
        }
    }

    /// Human-readable name matching the paper's labels (`MPS-AVX2`, …).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse4 => "sse4",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// The instruction tier the wide kernels dispatch to, resolved once per
/// process.
///
/// Ordering is by capability: every tier can execute the work of the tiers
/// below it. `Scalar` runs the bit-pinned oracle loops; `Portable` runs the
/// same 8-wide block shape with chunked scalar code (manual ILP, no ISA
/// requirement); `Avx2`/`Avx512` use real intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdTier {
    /// Plain scalar loops — the oracle paths every vector path is tested
    /// against bit for bit.
    Scalar,
    /// ISA-free chunked-scalar fallback with the same 8-wide block shape as
    /// the vector paths (what non-x86 targets run).
    Portable,
    /// Real AVX2 intrinsics: 8 × u32 probes, 4 × u64 gathers.
    Avx2,
    /// Real AVX-512F intrinsics: 16 × u32 probes, 8 × u64 gathers.
    Avx512,
}

/// Error returned when a [`SimdTier`] cannot be forced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimdTierError {
    /// The name did not parse; holds the offending string.
    Unknown(String),
    /// The tier parsed but the host CPU lacks the instructions.
    Unsupported(SimdTier),
}

impl std::fmt::Display for SimdTierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimdTierError::Unknown(s) => write!(
                f,
                "unknown SIMD tier {s:?} (expected scalar|portable|avx2|avx512)"
            ),
            SimdTierError::Unsupported(t) => {
                write!(f, "SIMD tier '{}' is not supported by this CPU", t.label())
            }
        }
    }
}

impl std::error::Error for SimdTierError {}

/// 0 = unresolved; otherwise `SimdTier::encode`.
static RESOLVED_TIER: AtomicU8 = AtomicU8::new(0);

impl SimdTier {
    /// All tiers, narrowest first (useful for sweeps in tests and benches).
    pub const ALL: [SimdTier; 4] = [
        SimdTier::Scalar,
        SimdTier::Portable,
        SimdTier::Avx2,
        SimdTier::Avx512,
    ];

    /// Name used by `CNC_SIMD` / `--simd` and reported in metrics.
    pub fn label(self) -> &'static str {
        match self {
            SimdTier::Scalar => "scalar",
            SimdTier::Portable => "portable",
            SimdTier::Avx2 => "avx2",
            SimdTier::Avx512 => "avx512",
        }
    }

    /// Parse a tier name as accepted by `CNC_SIMD` / `--simd`.
    pub fn from_name(name: &str) -> Option<SimdTier> {
        match name.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(SimdTier::Scalar),
            "portable" => Some(SimdTier::Portable),
            "avx2" => Some(SimdTier::Avx2),
            "avx512" => Some(SimdTier::Avx512),
            _ => None,
        }
    }

    /// Whether this host can execute the tier.
    pub fn supported(self) -> bool {
        match self {
            SimdTier::Scalar | SimdTier::Portable => true,
            SimdTier::Avx2 => avx2_available(),
            // The AVX-512 paths also lean on AVX2 helpers (e.g. the
            // 16-element window compare), so require both.
            SimdTier::Avx512 => avx512_available() && avx2_available(),
        }
    }

    /// Best tier the host supports (`Portable` when no x86 vector ISA is
    /// present, so every target gets the same code shape).
    pub fn detect_host() -> SimdTier {
        if SimdTier::Avx512.supported() {
            SimdTier::Avx512
        } else if SimdTier::Avx2.supported() {
            SimdTier::Avx2
        } else {
            SimdTier::Portable
        }
    }

    /// The process-wide tier: `CNC_SIMD` if set and valid, else host
    /// detection. Resolved once; later calls return the cached value.
    ///
    /// An unknown or unsupported `CNC_SIMD` value warns on stderr and falls
    /// back to detection (the env var is advisory); the `--simd` CLI flag
    /// goes through [`SimdTier::force`], which fails loudly instead.
    pub fn resolve() -> SimdTier {
        if let Some(t) = SimdTier::decode(RESOLVED_TIER.load(Ordering::Relaxed)) {
            return t;
        }
        let t = SimdTier::from_env_or_detect();
        match RESOLVED_TIER.compare_exchange(0, t.encode(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => t,
            // Another thread resolved first; agree with it.
            Err(prev) => SimdTier::decode(prev).unwrap_or(t),
        }
    }

    /// Force the process-wide tier (the `--simd` flag, and tier sweeps in
    /// benchmarks). Fails if the host cannot execute the tier.
    pub fn force(tier: SimdTier) -> Result<(), SimdTierError> {
        if !tier.supported() {
            return Err(SimdTierError::Unsupported(tier));
        }
        RESOLVED_TIER.store(tier.encode(), Ordering::Relaxed);
        Ok(())
    }

    /// [`SimdTier::force`] by name (CLI plumbing).
    pub fn force_named(name: &str) -> Result<SimdTier, SimdTierError> {
        let tier =
            SimdTier::from_name(name).ok_or_else(|| SimdTierError::Unknown(name.to_string()))?;
        SimdTier::force(tier)?;
        Ok(tier)
    }

    /// Whether call sites may execute AVX2 intrinsics under this tier.
    ///
    /// Availability is re-checked so a hand-constructed tier value (tests,
    /// `_tier` APIs) can never reach an illegal instruction.
    #[inline]
    pub(crate) fn use_avx2(self) -> bool {
        self >= SimdTier::Avx2 && avx2_available()
    }

    /// Whether call sites may execute AVX-512F intrinsics under this tier.
    #[inline]
    pub(crate) fn use_avx512(self) -> bool {
        self == SimdTier::Avx512 && avx512_available() && avx2_available()
    }

    fn encode(self) -> u8 {
        match self {
            SimdTier::Scalar => 1,
            SimdTier::Portable => 2,
            SimdTier::Avx2 => 3,
            SimdTier::Avx512 => 4,
        }
    }

    fn decode(v: u8) -> Option<SimdTier> {
        match v {
            1 => Some(SimdTier::Scalar),
            2 => Some(SimdTier::Portable),
            3 => Some(SimdTier::Avx2),
            4 => Some(SimdTier::Avx512),
            _ => None,
        }
    }

    fn from_env_or_detect() -> SimdTier {
        match std::env::var("CNC_SIMD") {
            Ok(raw) => match SimdTier::from_name(&raw) {
                Some(t) if t.supported() => t,
                Some(t) => {
                    eprintln!(
                        "warning: CNC_SIMD={} is not supported by this CPU; using {}",
                        t.label(),
                        SimdTier::detect_host().label()
                    );
                    SimdTier::detect_host()
                }
                None => {
                    eprintln!(
                        "warning: unrecognized CNC_SIMD value {raw:?} \
                         (expected scalar|portable|avx2|avx512); using {}",
                        SimdTier::detect_host().label()
                    );
                    SimdTier::detect_host()
                }
            },
            Err(_) => SimdTier::detect_host(),
        }
    }
}

/// Whether real AVX2 intrinsics can be used on this host.
#[inline]
pub(crate) fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static CACHED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *CACHED.get_or_init(|| is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether real AVX-512F intrinsics can be used on this host.
#[inline]
pub(crate) fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static CACHED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *CACHED.get_or_init(|| is_x86_feature_detected!("avx512f"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Count elements of a 16-element window that are `< target`, assuming
    /// the window is sorted ascending (so the result is also the lower-bound
    /// offset).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `window.len() == 16`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_less_than_16(window: &[u32], target: u32) -> usize {
        debug_assert_eq!(window.len(), 16);
        // SAFETY: caller guarantees 16 readable u32s; loadu has no alignment
        // requirement.
        unsafe {
            let ptr = window.as_ptr();
            let t = _mm256_set1_epi32(target as i32);
            let lo = _mm256_loadu_si256(ptr.cast());
            let hi = _mm256_loadu_si256(ptr.add(8).cast());
            // Unsigned `x < t` via the signed-compare bias trick: flip the
            // sign bit of both operands, then signed gt.
            let bias = _mm256_set1_epi32(i32::MIN);
            let tb = _mm256_xor_si256(t, bias);
            let lob = _mm256_xor_si256(lo, bias);
            let hib = _mm256_xor_si256(hi, bias);
            let lt_lo = _mm256_cmpgt_epi32(tb, lob);
            let lt_hi = _mm256_cmpgt_epi32(tb, hib);
            let m_lo = _mm256_movemask_ps(_mm256_castsi256_ps(lt_lo)) as u32;
            let m_hi = _mm256_movemask_ps(_mm256_castsi256_ps(lt_hi)) as u32;
            (m_lo.count_ones() + m_hi.count_ones()) as usize
        }
    }

    /// All-pairs equality count of two 8-element blocks using 8 rotations.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and both slices have length 8.
    #[target_feature(enable = "avx2")]
    pub unsafe fn block_pairs_eq_8(a: &[u32], b: &[u32]) -> u32 {
        debug_assert_eq!(a.len(), 8);
        debug_assert_eq!(b.len(), 8);
        // SAFETY: 8 readable u32s on both sides.
        unsafe {
            let va = _mm256_loadu_si256(a.as_ptr().cast());
            let mut vb = _mm256_loadu_si256(b.as_ptr().cast());
            let rot = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
            let mut mask = 0u32;
            // 8 rotations cover all 64 lane pairs.
            for _ in 0..8 {
                let eq = _mm256_cmpeq_epi32(va, vb);
                mask |= _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
                vb = _mm256_permutevar8x32_epi32(vb, rot);
            }
            // Each element of `a` matches at most one element of `b`
            // (strictly sorted inputs), so OR-ing masks then popcount is the
            // number of matched `a` lanes.
            mask.count_ones()
        }
    }

    /// All-pairs equality count of two 16-element blocks with AVX-512.
    ///
    /// # Safety
    /// Caller must ensure AVX-512F is available and both slices have length 16.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn block_pairs_eq_16(a: &[u32], b: &[u32]) -> u32 {
        debug_assert_eq!(a.len(), 16);
        debug_assert_eq!(b.len(), 16);
        // SAFETY: 16 readable u32s on both sides.
        unsafe {
            let va = _mm512_loadu_si512(a.as_ptr().cast());
            let mut vb = _mm512_loadu_si512(b.as_ptr().cast());
            let rot = _mm512_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0);
            let mut mask = 0u32;
            for _ in 0..16 {
                let eq: u16 = _mm512_cmpeq_epi32_mask(va, vb);
                mask |= eq as u32;
                vb = _mm512_permutexvar_epi32(rot, vb);
            }
            mask.count_ones()
        }
    }

    /// Bitmap probe loop, AVX2: for each 8-key chunk of `arr`, gather the
    /// `words[key >> 6]` 64-bit words (two 4-wide `vpgatherdq`), shift by
    /// `key & 63` (`vpsrlvq`), mask bit 0 and accumulate in 64-bit lanes.
    ///
    /// Returns `(hits, wide_blocks, tail_elems)`. A chunk containing a key
    /// whose word index would fall outside `words` is probed with the scalar
    /// loop instead, which panics via slice indexing exactly like the scalar
    /// oracle (inputs are only debug-checked for sortedness, so the vector
    /// path must stay memory-safe on arbitrary release-mode input).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn bmp_count_avx2(words: &[u64], arr: &[u32]) -> (u32, u64, u64) {
        // Largest exclusive key bound with an in-range word index; keys are
        // u32 so a bound above u32::MAX means no key can be out of range.
        let no_oob = words.len() >= (1usize << 26);
        let limit = (words.len() as u64 * 64).min(u32::MAX as u64 + 1) as i64;
        let mut chunks = arr.chunks_exact(8);
        let mut hits = 0u32;
        let mut blocks = 0u64;
        // SAFETY: loads read 8 in-bounds u32s per chunk; gathers are guarded
        // by the `limit` compare so every word index is < words.len().
        unsafe {
            let base = words.as_ptr().cast::<i64>();
            let bias = _mm256_set1_epi32(i32::MIN);
            let limit_b = _mm256_xor_si256(_mm256_set1_epi32(limit as u32 as i32), bias);
            let sh_mask = _mm256_set1_epi32(63);
            let one = _mm256_set1_epi64x(1);
            let mut acc = _mm256_setzero_si256();
            for chunk in chunks.by_ref() {
                let kv = _mm256_loadu_si256(chunk.as_ptr().cast());
                if !no_oob {
                    // Unsigned `key >= limit` via the bias trick: any lane
                    // out of range sends the whole chunk to the scalar loop.
                    let kb = _mm256_xor_si256(kv, bias);
                    let ge = _mm256_cmpgt_epi32(kb, limit_b);
                    let eq = _mm256_cmpeq_epi32(kb, limit_b);
                    let oob = _mm256_or_si256(ge, eq);
                    if _mm256_movemask_ps(_mm256_castsi256_ps(oob)) != 0 {
                        for &k in chunk {
                            hits += ((words[(k >> 6) as usize] >> (k & 63)) & 1) as u32;
                        }
                        blocks += 1;
                        continue;
                    }
                }
                let idx = _mm256_srli_epi32::<6>(kv);
                let idx_lo = _mm256_castsi256_si128(idx);
                let idx_hi = _mm256_extracti128_si256::<1>(idx);
                let w_lo = _mm256_i32gather_epi64::<8>(base, idx_lo);
                let w_hi = _mm256_i32gather_epi64::<8>(base, idx_hi);
                let sh = _mm256_and_si256(kv, sh_mask);
                let sh_lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(sh));
                let sh_hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256::<1>(sh));
                let b_lo = _mm256_and_si256(_mm256_srlv_epi64(w_lo, sh_lo), one);
                let b_hi = _mm256_and_si256(_mm256_srlv_epi64(w_hi, sh_hi), one);
                acc = _mm256_add_epi64(acc, _mm256_add_epi64(b_lo, b_hi));
                blocks += 1;
            }
            // Horizontal sum of the four 64-bit lanes.
            let lo = _mm256_castsi256_si128(acc);
            let hi = _mm256_extracti128_si256::<1>(acc);
            let s = _mm_add_epi64(lo, hi);
            let s = _mm_add_epi64(s, _mm_unpackhi_epi64(s, s));
            hits += _mm_cvtsi128_si64(s) as u32;
        }
        let tail = chunks.remainder();
        for &k in tail {
            hits += ((words[(k >> 6) as usize] >> (k & 63)) & 1) as u32;
        }
        (hits, blocks, tail.len() as u64)
    }

    /// Bitmap probe loop, AVX-512F: 16 keys per iteration via two 8-wide
    /// 64-bit gathers. Same contract as [`bmp_count_avx2`].
    ///
    /// # Safety
    /// Caller must ensure AVX-512F is available.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn bmp_count_avx512(words: &[u64], arr: &[u32]) -> (u32, u64, u64) {
        let no_oob = words.len() >= (1usize << 26);
        let limit = (words.len() as u64 * 64).min(u32::MAX as u64 + 1) as u32 as i32;
        let mut chunks = arr.chunks_exact(16);
        let mut hits = 0u32;
        let mut blocks = 0u64;
        // SAFETY: loads read 16 in-bounds u32s per chunk; gathers are
        // guarded by the unsigned `limit` compare mask.
        unsafe {
            let base = words.as_ptr().cast::<i64>();
            let limit_v = _mm512_set1_epi32(limit);
            let sh_mask = _mm512_set1_epi32(63);
            let one = _mm512_set1_epi64(1);
            let mut acc = _mm512_setzero_si512();
            for chunk in chunks.by_ref() {
                let kv = _mm512_loadu_si512(chunk.as_ptr().cast());
                if !no_oob {
                    // _MM_CMPINT_NLT: unsigned `key >= limit`.
                    let oob = _mm512_cmp_epu32_mask::<5>(kv, limit_v);
                    if oob != 0 {
                        for &k in chunk {
                            hits += ((words[(k >> 6) as usize] >> (k & 63)) & 1) as u32;
                        }
                        blocks += 1;
                        continue;
                    }
                }
                let idx = _mm512_srli_epi32::<6>(kv);
                let idx_lo = _mm512_castsi512_si256(idx);
                let idx_hi = _mm512_extracti64x4_epi64::<1>(idx);
                let w_lo = _mm512_i32gather_epi64::<8>(idx_lo, base);
                let w_hi = _mm512_i32gather_epi64::<8>(idx_hi, base);
                let sh = _mm512_and_si512(kv, sh_mask);
                let sh_lo = _mm512_cvtepu32_epi64(_mm512_castsi512_si256(sh));
                let sh_hi = _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64::<1>(sh));
                let b_lo = _mm512_and_si512(_mm512_srlv_epi64(w_lo, sh_lo), one);
                let b_hi = _mm512_and_si512(_mm512_srlv_epi64(w_hi, sh_hi), one);
                acc = _mm512_add_epi64(acc, _mm512_add_epi64(b_lo, b_hi));
                blocks += 1;
            }
            hits += _mm512_reduce_add_epi64(acc) as u32;
        }
        let tail = chunks.remainder();
        for &k in tail {
            hits += ((words[(k >> 6) as usize] >> (k & 63)) & 1) as u32;
        }
        (hits, blocks, tail.len() as u64)
    }

    /// Gather `a[idx[k]]` for 8 indices and return how many *leading* lanes
    /// satisfy `k < nvalid && a[idx[k]] < target`.
    ///
    /// Used by the galloping exponential phase: the indices are the probe
    /// positions of 8 consecutive scalar gallop iterations (clamped into
    /// bounds; lanes at or past `a.len()` are excluded via `nvalid`). For
    /// sorted input the pass lanes form a prefix, so the count tells the
    /// caller exactly which gallop window the target falls in.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available, every `idx[k] < a.len()`, and
    /// `a.len() <= i32::MAX as usize` (gather offsets are signed 32-bit).
    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_count_less_than_8(
        a: &[u32],
        idx: &[i32; 8],
        nvalid: u32,
        target: u32,
    ) -> u32 {
        debug_assert!(nvalid <= 8);
        // SAFETY: caller guarantees all 8 indices are in bounds for `a`.
        unsafe {
            let iv = _mm256_loadu_si256(idx.as_ptr().cast());
            let vals = _mm256_i32gather_epi32::<4>(a.as_ptr().cast::<i32>(), iv);
            let bias = _mm256_set1_epi32(i32::MIN);
            let tb = _mm256_xor_si256(_mm256_set1_epi32(target as i32), bias);
            let vb = _mm256_xor_si256(vals, bias);
            let lt = _mm256_cmpgt_epi32(tb, vb);
            let m = _mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32;
            // Keep only valid lanes, then count the contiguous pass prefix.
            let m = m & ((1u32 << nvalid) - 1);
            m.trailing_ones()
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{
    block_pairs_eq_16, block_pairs_eq_8, bmp_count_avx2, bmp_count_avx512, count_less_than_16,
    gather_count_less_than_8,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_and_labels() {
        assert_eq!(SimdLevel::Scalar.lanes(), 1);
        assert_eq!(SimdLevel::Sse4.lanes(), 4);
        assert_eq!(SimdLevel::Avx2.lanes(), 8);
        assert_eq!(SimdLevel::Avx512.lanes(), 16);
        assert_eq!(SimdLevel::Avx2.label(), "avx2");
    }

    #[test]
    fn detect_is_stable() {
        // Whatever the host supports, repeated calls agree.
        assert_eq!(SimdLevel::detect(), SimdLevel::detect());
        assert_eq!(SimdTier::resolve(), SimdTier::resolve());
    }

    #[test]
    fn tier_names_roundtrip() {
        for t in SimdTier::ALL {
            assert_eq!(SimdTier::from_name(t.label()), Some(t));
        }
        assert_eq!(SimdTier::from_name(" AVX2 "), Some(SimdTier::Avx2));
        assert_eq!(SimdTier::from_name("neon"), None);
    }

    #[test]
    fn scalar_and_portable_always_supported() {
        assert!(SimdTier::Scalar.supported());
        assert!(SimdTier::Portable.supported());
        assert!(SimdTier::detect_host() >= SimdTier::Portable);
    }

    #[test]
    fn tier_gates_respect_availability() {
        // A hand-constructed wide tier never claims intrinsics the host
        // lacks — `_tier` APIs rely on this for memory safety.
        assert!(!SimdTier::Scalar.use_avx2());
        assert!(!SimdTier::Portable.use_avx2());
        assert_eq!(SimdTier::Avx2.use_avx2(), avx2_available());
        assert_eq!(
            SimdTier::Avx512.use_avx512(),
            avx512_available() && avx2_available()
        );
    }

    #[test]
    fn unknown_tier_error_is_descriptive() {
        let e = SimdTierError::Unknown("fast".into());
        assert!(e.to_string().contains("fast"));
        let e = SimdTierError::Unsupported(SimdTier::Avx512);
        assert!(e.to_string().contains("avx512"));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn count_less_than_matches_scalar() {
        if !avx2_available() {
            return;
        }
        let w: Vec<u32> = (0..16).map(|x| x * 5 + 2).collect();
        for t in 0..90 {
            let want = w.iter().filter(|&&x| x < t).count();
            // SAFETY: avx2 checked, length is 16.
            let got = unsafe { count_less_than_16(&w, t) };
            assert_eq!(got, want, "t={t}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn count_less_than_handles_high_bit_values() {
        if !avx2_available() {
            return;
        }
        // Values above i32::MAX exercise the unsigned-compare bias trick.
        let w: Vec<u32> = (0..16).map(|x| u32::MAX - 160 + x * 10).collect();
        for t in [0u32, u32::MAX - 155, u32::MAX - 5, u32::MAX] {
            let want = w.iter().filter(|&&x| x < t).count();
            let got = unsafe { count_less_than_16(&w, t) };
            assert_eq!(got, want, "t={t}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn block_pairs_eq_8_counts_matches() {
        if !avx2_available() {
            return;
        }
        let a = [1u32, 3, 5, 7, 9, 11, 13, 15];
        let b = [0u32, 3, 4, 7, 8, 11, 14, 20];
        // matches: 3, 7, 11
        let got = unsafe { block_pairs_eq_8(&a, &b) };
        assert_eq!(got, 3);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn block_pairs_eq_16_counts_matches() {
        if !avx512_available() {
            return;
        }
        let a: Vec<u32> = (0..16).map(|x| x * 2).collect(); // evens 0..30
        let b: Vec<u32> = (0..16).map(|x| x * 3).collect(); // multiples of 3
        let want = a.iter().filter(|x| b.contains(x)).count() as u32;
        let got = unsafe { block_pairs_eq_16(&a, &b) };
        assert_eq!(got, want);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn gather_count_prefix_semantics() {
        if !avx2_available() {
            return;
        }
        let a: Vec<u32> = (0..100).map(|x| x * 2).collect();
        let idx = [0i32, 3, 7, 15, 31, 63, 90, 99];
        for t in [0u32, 1, 15, 40, 128, 200, 500] {
            let want = idx.iter().take_while(|&&i| a[i as usize] < t).count() as u32;
            let got = unsafe { gather_count_less_than_8(&a, &idx, 8, t) };
            assert_eq!(got, want, "t={t}");
        }
        // nvalid masks off trailing lanes.
        let got = unsafe { gather_count_less_than_8(&a, &idx, 3, u32::MAX) };
        assert_eq!(got, 3);
    }
}
