//! Runtime-dispatched SIMD support.
//!
//! The paper vectorizes the block-wise merge with AVX2 on the CPU and
//! AVX-512 on the KNL. `std::simd` is nightly-only, so this crate uses the
//! stable `core::arch::x86_64` intrinsics behind runtime feature detection,
//! with portable scalar *lane emulation* as a fallback. The emulated kernels
//! perform the same block-structured work (and report identical meter
//! events), which is what the KNL machine model keys on; the real intrinsics
//! give the wall-clock speedups measured on the host CPU.

/// Vector lane configuration for 32-bit integer kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// No vectorization: scalar merge blocks of 4 (paper's plain `MPS`).
    Scalar,
    /// 128-bit vectors, 4 × u32 lanes (SSE-class; always emulatable).
    Sse4,
    /// 256-bit vectors, 8 × u32 lanes (the paper's CPU: AVX2).
    Avx2,
    /// 512-bit vectors, 16 × u32 lanes (the paper's KNL: AVX-512).
    Avx512,
}

impl SimdLevel {
    /// Number of 32-bit lanes at this level.
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse4 => 4,
            SimdLevel::Avx2 => 8,
            SimdLevel::Avx512 => 16,
        }
    }

    /// Best level for which the *host* has real vector instructions.
    ///
    /// Emulated execution works at any level on any host; `detect` is about
    /// wall-clock performance of the real CPU backend.
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return SimdLevel::Avx512;
            }
            if is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
            if is_x86_feature_detected!("sse4.1") {
                return SimdLevel::Sse4;
            }
        }
        SimdLevel::Scalar
    }

    /// Human-readable name matching the paper's labels (`MPS-AVX2`, …).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse4 => "sse4",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// Whether real AVX2 intrinsics can be used on this host.
#[inline]
pub(crate) fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static CACHED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *CACHED.get_or_init(|| is_x86_feature_detected!("avx2"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether real AVX-512F intrinsics can be used on this host.
#[inline]
pub(crate) fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static CACHED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *CACHED.get_or_init(|| is_x86_feature_detected!("avx512f"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Count elements of a 16-element window that are `< target`, assuming
    /// the window is sorted ascending (so the result is also the lower-bound
    /// offset).
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and `window.len() == 16`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn count_less_than_16(window: &[u32], target: u32) -> usize {
        debug_assert_eq!(window.len(), 16);
        // SAFETY: caller guarantees 16 readable u32s; loadu has no alignment
        // requirement.
        unsafe {
            let ptr = window.as_ptr();
            let t = _mm256_set1_epi32(target as i32);
            let lo = _mm256_loadu_si256(ptr.cast());
            let hi = _mm256_loadu_si256(ptr.add(8).cast());
            // Unsigned `x < t` via the signed-compare bias trick: flip the
            // sign bit of both operands, then signed gt.
            let bias = _mm256_set1_epi32(i32::MIN);
            let tb = _mm256_xor_si256(t, bias);
            let lob = _mm256_xor_si256(lo, bias);
            let hib = _mm256_xor_si256(hi, bias);
            let lt_lo = _mm256_cmpgt_epi32(tb, lob);
            let lt_hi = _mm256_cmpgt_epi32(tb, hib);
            let m_lo = _mm256_movemask_ps(_mm256_castsi256_ps(lt_lo)) as u32;
            let m_hi = _mm256_movemask_ps(_mm256_castsi256_ps(lt_hi)) as u32;
            (m_lo.count_ones() + m_hi.count_ones()) as usize
        }
    }

    /// All-pairs equality count of two 8-element blocks using 8 rotations.
    ///
    /// # Safety
    /// Caller must ensure AVX2 is available and both slices have length 8.
    #[target_feature(enable = "avx2")]
    pub unsafe fn block_pairs_eq_8(a: &[u32], b: &[u32]) -> u32 {
        debug_assert_eq!(a.len(), 8);
        debug_assert_eq!(b.len(), 8);
        // SAFETY: 8 readable u32s on both sides.
        unsafe {
            let va = _mm256_loadu_si256(a.as_ptr().cast());
            let mut vb = _mm256_loadu_si256(b.as_ptr().cast());
            let rot = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
            let mut mask = 0u32;
            // 8 rotations cover all 64 lane pairs.
            for _ in 0..8 {
                let eq = _mm256_cmpeq_epi32(va, vb);
                mask |= _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32;
                vb = _mm256_permutevar8x32_epi32(vb, rot);
            }
            // Each element of `a` matches at most one element of `b`
            // (strictly sorted inputs), so OR-ing masks then popcount is the
            // number of matched `a` lanes.
            mask.count_ones()
        }
    }

    /// All-pairs equality count of two 16-element blocks with AVX-512.
    ///
    /// # Safety
    /// Caller must ensure AVX-512F is available and both slices have length 16.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn block_pairs_eq_16(a: &[u32], b: &[u32]) -> u32 {
        debug_assert_eq!(a.len(), 16);
        debug_assert_eq!(b.len(), 16);
        // SAFETY: 16 readable u32s on both sides.
        unsafe {
            let va = _mm512_loadu_si512(a.as_ptr().cast());
            let mut vb = _mm512_loadu_si512(b.as_ptr().cast());
            let rot = _mm512_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0);
            let mut mask = 0u32;
            for _ in 0..16 {
                let eq: u16 = _mm512_cmpeq_epi32_mask(va, vb);
                mask |= eq as u32;
                vb = _mm512_permutexvar_epi32(rot, vb);
            }
            mask.count_ones()
        }
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use x86::{block_pairs_eq_16, block_pairs_eq_8, count_less_than_16};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_and_labels() {
        assert_eq!(SimdLevel::Scalar.lanes(), 1);
        assert_eq!(SimdLevel::Sse4.lanes(), 4);
        assert_eq!(SimdLevel::Avx2.lanes(), 8);
        assert_eq!(SimdLevel::Avx512.lanes(), 16);
        assert_eq!(SimdLevel::Avx2.label(), "avx2");
    }

    #[test]
    fn detect_is_stable() {
        // Whatever the host supports, repeated calls agree.
        assert_eq!(SimdLevel::detect(), SimdLevel::detect());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn count_less_than_matches_scalar() {
        if !avx2_available() {
            return;
        }
        let w: Vec<u32> = (0..16).map(|x| x * 5 + 2).collect();
        for t in 0..90 {
            let want = w.iter().filter(|&&x| x < t).count();
            // SAFETY: avx2 checked, length is 16.
            let got = unsafe { count_less_than_16(&w, t) };
            assert_eq!(got, want, "t={t}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn count_less_than_handles_high_bit_values() {
        if !avx2_available() {
            return;
        }
        // Values above i32::MAX exercise the unsigned-compare bias trick.
        let w: Vec<u32> = (0..16).map(|x| u32::MAX - 160 + x * 10).collect();
        for t in [0u32, u32::MAX - 155, u32::MAX - 5, u32::MAX] {
            let want = w.iter().filter(|&&x| x < t).count();
            let got = unsafe { count_less_than_16(&w, t) };
            assert_eq!(got, want, "t={t}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn block_pairs_eq_8_counts_matches() {
        if !avx2_available() {
            return;
        }
        let a = [1u32, 3, 5, 7, 9, 11, 13, 15];
        let b = [0u32, 3, 4, 7, 8, 11, 14, 20];
        // matches: 3, 7, 11
        let got = unsafe { block_pairs_eq_8(&a, &b) };
        assert_eq!(got, 3);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn block_pairs_eq_16_counts_matches() {
        if !avx512_available() {
            return;
        }
        let a: Vec<u32> = (0..16).map(|x| x * 2).collect(); // evens 0..30
        let b: Vec<u32> = (0..16).map(|x| x * 3).collect(); // multiples of 3
        let want = a.iter().filter(|x| b.contains(x)).count() as u32;
        let got = unsafe { block_pairs_eq_16(&a, &b) };
        assert_eq!(got, want);
    }
}
