//! Vectorized block-wise merge (**VB**, Section 3.1 / Figure 1 of the paper,
//! after Inoue et al., PVLDB 2014).
//!
//! The merge advances a *block* of `L` elements per side at a time. For each
//! pair of blocks it performs an all-pair equality comparison (with SIMD: `L`
//! rotations of one register, one vector compare each), accumulates the match
//! count, and then advances the block whose last element is smaller. The tail
//! (fewer than `L` elements remaining on either side) falls back to the
//! scalar merge.

use crate::merge::merge_count;
use crate::meter::Meter;
use crate::simd::{SimdLevel, SimdTier};

/// All-pair equality count of `a[i..i+L]` vs `b[j..j+L]`, portable version.
#[inline]
fn block_pairs_eq_scalar(a: &[u32], b: &[u32]) -> u32 {
    let mut c = 0u32;
    for &x in a {
        // Strictly sorted inputs: each x matches at most once.
        c += u32::from(b.contains(&x));
    }
    c
}

/// The block-advance loop at one lane width. Returns the updated offsets
/// and the matches found. Stops when either side has fewer than `LANES`
/// elements left.
#[inline]
fn block_loop<const LANES: usize, M: Meter>(
    a: &[u32],
    b: &[u32],
    mut i: usize,
    mut j: usize,
    meter: &mut M,
) -> (usize, usize, u32) {
    let tier = SimdTier::resolve();
    let mut c = 0u32;
    let mut blocks = 0u64;
    while i + LANES <= a.len() && j + LANES <= b.len() {
        let ab = &a[i..i + LANES];
        let bb = &b[j..j + LANES];
        c += dispatch_block::<LANES>(ab, bb, tier);
        blocks += 1;
        let (alast, blast) = (ab[LANES - 1], bb[LANES - 1]);
        // Advance the exhausted side(s); on equal last elements both move.
        i += LANES * usize::from(alast <= blast);
        j += LANES * usize::from(blast <= alast);
    }
    // Each block comparison is LANES vector ops (one per rotation) plus two
    // block loads.
    meter.vector_ops(blocks * LANES as u64);
    meter.seq_bytes(blocks * 2 * 4 * LANES as u64);
    (i, j, c)
}

/// Block-wise merge with a compile-time lane count, scalar-emulated.
///
/// Performs exactly the block structure of the SIMD kernel — same block
/// advances, same number of all-pair block comparisons — so the metered work
/// is identical to the hardware path. Used both as the portable fallback and
/// as the "what would a 16-lane machine do" oracle for the KNL model.
///
/// Blocks *cascade*: after the full-width loop exhausts, remaining elements
/// are merged with 4-lane blocks (a narrower vector still beats the scalar
/// loop on short tails — important on real graphs where most neighbor lists
/// are shorter than a 512-bit register) and finally a scalar tail.
pub fn vb_count_lanes<const LANES: usize, M: Meter>(a: &[u32], b: &[u32], meter: &mut M) -> u32 {
    crate::debug_check_sorted(a);
    crate::debug_check_sorted(b);
    let (mut i, mut j, mut c) = block_loop::<LANES, M>(a, b, 0, 0, meter);
    if LANES > 4 {
        let (i2, j2, c2) = block_loop::<4, M>(a, b, i, j, meter);
        i = i2;
        j = j2;
        c += c2;
    }
    // Scalar tail.
    c + tail_merge(&a[i..], &b[j..], meter)
}

/// Tail merge that does not emit an extra `intersection_done`.
fn tail_merge<M: Meter>(a: &[u32], b: &[u32], meter: &mut M) -> u32 {
    struct NoDone<'m, M: Meter>(&'m mut M);
    impl<M: Meter> Meter for NoDone<'_, M> {
        #[inline]
        fn scalar_ops(&mut self, n: u64) {
            self.0.scalar_ops(n)
        }
        #[inline]
        fn vector_ops(&mut self, n: u64) {
            self.0.vector_ops(n)
        }
        #[inline]
        fn seq_bytes(&mut self, n: u64) {
            self.0.seq_bytes(n)
        }
        #[inline]
        fn rand_accesses(&mut self, n: u64) {
            self.0.rand_accesses(n)
        }
        #[inline]
        fn rand_accesses_small(&mut self, n: u64) {
            self.0.rand_accesses_small(n)
        }
        #[inline]
        fn write_bytes(&mut self, n: u64) {
            self.0.write_bytes(n)
        }
        #[inline]
        fn intersection_done(&mut self) {}
        #[inline]
        fn simd_blocks(&mut self, n: u64) {
            self.0.simd_blocks(n)
        }
        #[inline]
        fn simd_tail_elems(&mut self, n: u64) {
            self.0.simd_tail_elems(n)
        }
    }
    merge_count(a, b, &mut NoDone(meter))
}

/// Pick the fastest implementation for one block pair that the resolved
/// [`SimdTier`] permits. The lane count is the *work shape* (any level can
/// be emulated anywhere); the tier decides whether real intrinsics run, so a
/// forced `scalar`/`portable` run executes the same blocks without vector
/// instructions.
#[inline]
fn dispatch_block<const LANES: usize>(ab: &[u32], bb: &[u32], tier: SimdTier) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if LANES == 8 && tier.use_avx2() {
            // SAFETY: tier gate re-checks AVX2; slices have length LANES == 8.
            return unsafe { crate::simd::block_pairs_eq_8(ab, bb) };
        }
        if LANES == 16 && tier.use_avx512() {
            // SAFETY: tier gate re-checks AVX-512F; slices have length LANES == 16.
            return unsafe { crate::simd::block_pairs_eq_16(ab, bb) };
        }
    }
    let _ = tier;
    block_pairs_eq_scalar(ab, bb)
}

/// Vectorized block-wise merge at a runtime-selected [`SimdLevel`].
///
/// `SimdLevel::Scalar` degrades to the plain merge (the paper's
/// un-vectorized `MPS` still uses pivot-skip but merges scalar-wise).
#[inline]
pub fn vb_count<M: Meter>(a: &[u32], b: &[u32], level: SimdLevel, meter: &mut M) -> u32 {
    match level {
        SimdLevel::Scalar => {
            // merge_count emits intersection_done; callers of vb_count expect
            // a single completion event, which merge_count already provides.
            merge_count(a, b, meter)
        }
        SimdLevel::Sse4 => {
            let c = vb_count_lanes::<4, M>(a, b, meter);
            meter.intersection_done();
            c
        }
        SimdLevel::Avx2 => {
            let c = vb_count_lanes::<8, M>(a, b, meter);
            meter.intersection_done();
            c
        }
        SimdLevel::Avx512 => {
            let c = vb_count_lanes::<16, M>(a, b, meter);
            meter.intersection_done();
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};
    use crate::reference_count;

    fn sorted_unique(seed: u64, len: usize, range: u64) -> Vec<u32> {
        let mut x = seed | 1;
        let mut v: Vec<u32> = (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % range) as u32
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn block_pairs_scalar_counts() {
        let a = [1u32, 3, 5, 9];
        let b = [3u32, 4, 5, 10];
        assert_eq!(block_pairs_eq_scalar(&a, &b), 2);
    }

    #[test]
    fn all_levels_match_reference() {
        for seed in 1..=10u64 {
            let a = sorted_unique(seed, 100, 400);
            let b = sorted_unique(seed.wrapping_mul(7919), 140, 400);
            let want = reference_count(&a, &b);
            let mut m = NullMeter;
            for level in [
                SimdLevel::Scalar,
                SimdLevel::Sse4,
                SimdLevel::Avx2,
                SimdLevel::Avx512,
            ] {
                assert_eq!(vb_count(&a, &b, level, &mut m), want, "level={level:?}");
            }
        }
    }

    #[test]
    fn short_inputs_hit_tail_path() {
        let mut m = NullMeter;
        let a = [1u32, 2, 3];
        let b = [2u32, 3, 4];
        for level in [SimdLevel::Sse4, SimdLevel::Avx2, SimdLevel::Avx512] {
            assert_eq!(vb_count(&a, &b, level, &mut m), 2);
        }
        assert_eq!(vb_count(&[], &b, SimdLevel::Avx2, &mut m), 0);
    }

    #[test]
    fn wider_lanes_use_fewer_vector_calls_per_element() {
        let a: Vec<u32> = (0..4096).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..4096).map(|x| x * 2 + 1).collect();
        let mut m8 = CountingMeter::new();
        vb_count_lanes::<8, _>(&a, &b, &mut m8);
        let mut m16 = CountingMeter::new();
        vb_count_lanes::<16, _>(&a, &b, &mut m16);
        // 16-lane blocks: half as many block steps but each costs 16
        // rotations vs 8 → total vector ops comparable, block count halves.
        // The win shows in seq_bytes per op and fewer iterations; check the
        // block count via seq_bytes: 2*4*L bytes per block.
        let blocks8 = m8.counts.seq_bytes / (2 * 4 * 8);
        let blocks16 = m16.counts.seq_bytes / (2 * 4 * 16);
        assert!(blocks16 * 2 <= blocks8 + 1);
    }

    #[test]
    fn exact_block_boundary() {
        // Lengths exactly divisible by lane width exercise the "no tail" path.
        let a: Vec<u32> = (0..32).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..32).map(|x| x * 2).collect();
        let want = reference_count(&a, &b);
        let mut m = NullMeter;
        assert_eq!(vb_count_lanes::<8, _>(&a, &b, &mut m), want);
        assert_eq!(vb_count_lanes::<16, _>(&a, &b, &mut m), want);
        assert_eq!(vb_count_lanes::<4, _>(&a, &b, &mut m), want);
    }

    #[test]
    fn identical_arrays_all_match() {
        let a: Vec<u32> = (0..100).map(|x| x * 7).collect();
        let mut m = NullMeter;
        for level in [SimdLevel::Sse4, SimdLevel::Avx2, SimdLevel::Avx512] {
            assert_eq!(vb_count(&a, &a, level, &mut m), 100);
        }
    }
}
