//! Sparse bitmap set representation (**BSR** — base and state), the third
//! intersection family of the paper's related work (Section 2.2.1,
//! citations [1, 13, 16]: EmptyHeaded, Han et al.'s SIGMOD'18 study,
//! Roaring).
//!
//! A sorted set is stored as two aligned arrays: `base[i]` is a word index
//! (element value divided by the word width) and `state[i]` is the 32-bit
//! occupancy mask of that word. Intersecting two BSRs merges the base
//! arrays and ANDs the states on base matches — very fast when neighbor ids
//! cluster (the bits share words), degenerating gracefully to a plain merge
//! when they do not.
//!
//! The paper chose the dynamic dense bitmap over BSR because BSR "requires
//! graph reordering … performed offline" to make states compact; this
//! implementation exists as the faithful comparator (see the
//! `ablation_bsr` bench).

use crate::meter::Meter;

/// Word width of the state mask.
const BITS: u32 = 32;

/// A set of `u32`s in base-and-state form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BsrSet {
    base: Vec<u32>,
    state: Vec<u32>,
}

impl BsrSet {
    /// Build from a strictly increasing slice.
    pub fn from_sorted(values: &[u32]) -> Self {
        crate::debug_check_sorted(values);
        let mut base = Vec::new();
        let mut state = Vec::new();
        for &v in values {
            let b = v / BITS;
            let bit = 1u32 << (v % BITS);
            // `base` and `state` grow in lockstep, so matching on both
            // lets the compiler see the pair exists together.
            match (base.last(), state.last_mut()) {
                (Some(&last), Some(s)) if last == b => *s |= bit,
                _ => {
                    base.push(b);
                    state.push(bit);
                }
            }
        }
        Self { base, state }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.state.iter().map(|s| s.count_ones() as usize).sum()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Number of (base, state) words — the compression unit count.
    pub fn words(&self) -> usize {
        self.base.len()
    }

    /// Memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.base.len() * 8
    }

    /// Decompress back to a sorted vector.
    pub fn to_sorted_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        for (&b, &s) in self.base.iter().zip(&self.state) {
            let mut bits = s;
            while bits != 0 {
                let tz = bits.trailing_zeros();
                out.push(b * BITS + tz);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Does the set contain `v`?
    pub fn contains(&self, v: u32) -> bool {
        match self.base.binary_search(&(v / BITS)) {
            Ok(i) => self.state[i] & (1 << (v % BITS)) != 0,
            Err(_) => false,
        }
    }
}

/// Count `|a ∩ b|` of two BSR sets: merge the base arrays, popcount the
/// ANDed states on matches.
pub fn bsr_count<M: Meter>(a: &BsrSet, b: &BsrSet, meter: &mut M) -> u32 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u32);
    let mut iters = 0u64;
    while i < a.base.len() && j < b.base.len() {
        iters += 1;
        let (x, y) = (a.base[i], b.base[j]);
        if x == y {
            c += (a.state[i] & b.state[j]).count_ones();
        }
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    meter.scalar_ops(iters);
    meter.seq_bytes(8 * (i + j) as u64);
    meter.intersection_done();
    c
}

/// Materialize `a ∩ b` as a new BSR set.
pub fn bsr_intersect<M: Meter>(a: &BsrSet, b: &BsrSet, meter: &mut M) -> BsrSet {
    let mut out = BsrSet::default();
    let (mut i, mut j) = (0usize, 0usize);
    let mut iters = 0u64;
    while i < a.base.len() && j < b.base.len() {
        iters += 1;
        let (x, y) = (a.base[i], b.base[j]);
        if x == y {
            let s = a.state[i] & b.state[j];
            if s != 0 {
                out.base.push(x);
                out.state.push(s);
            }
        }
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    meter.scalar_ops(iters);
    meter.seq_bytes(8 * (i + j) as u64);
    meter.intersection_done();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};
    use crate::reference_count;

    #[test]
    fn roundtrip() {
        let v = vec![0u32, 1, 31, 32, 33, 64, 1000, 1001, 1031];
        let s = BsrSet::from_sorted(&v);
        assert_eq!(s.to_sorted_vec(), v);
        assert_eq!(s.len(), v.len());
        // 0,1,31 share word 0; 32,33 word 1; 64 word 2; 1000.. words 31/32.
        assert_eq!(s.words(), 5);
        assert!(s.contains(31));
        assert!(!s.contains(30));
        assert!(!s.contains(5000));
    }

    #[test]
    fn empty_set() {
        let s = BsrSet::from_sorted(&[]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        let mut m = NullMeter;
        assert_eq!(bsr_count(&s, &BsrSet::from_sorted(&[1, 2]), &mut m), 0);
    }

    #[test]
    fn count_matches_reference_randomized() {
        let mut x = 0x1234_5678_9abcu64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut m = NullMeter;
        for round in 0..50 {
            // Alternate clustered and scattered universes: BSR's best and
            // worst cases.
            let range = if round % 2 == 0 { 600 } else { 100_000 };
            let mut a: Vec<u32> = (0..200).map(|_| (next() % range) as u32).collect();
            let mut b: Vec<u32> = (0..200).map(|_| (next() % range) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let (sa, sb) = (BsrSet::from_sorted(&a), BsrSet::from_sorted(&b));
            assert_eq!(bsr_count(&sa, &sb, &mut m), reference_count(&a, &b));
            let inter = bsr_intersect(&sa, &sb, &mut m);
            let want: Vec<u32> = a.iter().filter(|x| b.contains(x)).copied().collect();
            assert_eq!(inter.to_sorted_vec(), want);
        }
    }

    #[test]
    fn clustered_ids_compress_and_speed_up() {
        // Dense run of 320 consecutive ids starting mid-word → 11 words
        // (1000/32 = 31.25: words 31 through 41) instead of 320 elements.
        let dense: Vec<u32> = (1000..1320).collect();
        let s = BsrSet::from_sorted(&dense);
        assert_eq!(s.words(), 11);
        // Intersection work is word-level, not element-level.
        let mut m = CountingMeter::new();
        bsr_count(&s, &s, &mut m);
        assert!(m.counts.scalar_ops <= 11);
        assert_eq!(bsr_count(&s, &s, &mut NullMeter), 320);
    }

    #[test]
    fn scattered_ids_degenerate_to_merge() {
        let sparse: Vec<u32> = (0..100).map(|x| x * 1000).collect();
        let s = BsrSet::from_sorted(&sparse);
        assert_eq!(s.words(), 100, "one word per element when scattered");
    }
}
