//! Hash-index intersection — the other index-based family from the related
//! work (Section 2.2.1, citations [5, 12, 20]): invest memory in an
//! auxiliary structure, then run an indexed nested-loop join.
//!
//! The paper argues the dynamic bitmap beats hash tables because put/lookup
//! are "actual constant time … via simple bit operations"; this module is
//! the comparator that lets the claim be benchmarked (`ablation_index`
//! bench). The table is open-addressed with linear probing and a
//! power-of-two capacity, rebuilt per indexed set like BMP's bitmap.

use crate::meter::Meter;

/// Sentinel for an empty slot (vertex ids are `< u32::MAX` by construction:
/// ids live in `[0, |V|)` and `|V| ≤ u32::MAX`).
const EMPTY: u32 = u32::MAX;

/// An open-addressing hash set of `u32`s with linear probing.
#[derive(Debug, Clone)]
pub struct HashIndex {
    slots: Vec<u32>,
    mask: usize,
    len: usize,
}

impl HashIndex {
    /// An empty index able to hold `capacity` elements at ≤ 50% load.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        Self {
            slots: vec![EMPTY; slots],
            mask: slots - 1,
            len: 0,
        }
    }

    /// Fibonacci hashing: cheap and good enough for vertex ids.
    #[inline]
    fn slot_of(&self, v: u32) -> usize {
        (v.wrapping_mul(2654435769) as usize) & self.mask
    }

    /// Insert `v` (ignoring duplicates). Panics if the table is full.
    pub fn insert(&mut self, v: u32) {
        debug_assert_ne!(v, EMPTY);
        let mut s = self.slot_of(v);
        loop {
            match self.slots[s] {
                x if x == EMPTY => {
                    self.slots[s] = v;
                    self.len += 1;
                    return;
                }
                x if x == v => return,
                _ => s = (s + 1) & self.mask,
            }
        }
    }

    /// Build the index over a list (BMP-style dynamic construction).
    pub fn build<M: Meter>(&mut self, list: &[u32], meter: &mut M) {
        for &v in list {
            self.insert(v);
        }
        meter.rand_accesses(list.len() as u64);
        meter.write_bytes(4 * list.len() as u64);
        meter.seq_bytes(4 * list.len() as u64);
    }

    /// Membership probe.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        let mut s = self.slot_of(v);
        loop {
            match self.slots[s] {
                x if x == v => return true,
                x if x == EMPTY => return false,
                _ => s = (s + 1) & self.mask,
            }
        }
    }

    /// Remove all entries of `list` (the amortized clearing trick — the
    /// table stays allocated like BMP's bitmap). Uses backward-shift
    /// deletion to keep probe chains intact.
    pub fn clear_list<M: Meter>(&mut self, list: &[u32], meter: &mut M) {
        for &v in list {
            self.remove(v);
        }
        meter.rand_accesses(list.len() as u64);
        meter.write_bytes(4 * list.len() as u64);
    }

    fn remove(&mut self, v: u32) {
        let mut s = self.slot_of(v);
        loop {
            match self.slots[s] {
                x if x == v => break,
                x if x == EMPTY => return, // absent
                _ => s = (s + 1) & self.mask,
            }
        }
        self.len -= 1;
        // Backward-shift: re-seat the rest of the cluster.
        let mut hole = s;
        let mut probe = (s + 1) & self.mask;
        while self.slots[probe] != EMPTY {
            let ideal = self.slot_of(self.slots[probe]);
            // Move candidate back if its ideal slot is "at or before" the
            // hole along the probe order.
            let between = if hole <= probe {
                ideal <= hole || ideal > probe
            } else {
                ideal <= hole && ideal > probe
            };
            if between {
                self.slots[hole] = self.slots[probe];
                hole = probe;
            }
            probe = (probe + 1) & self.mask;
        }
        self.slots[hole] = EMPTY;
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.slots.len() * 4
    }
}

/// Indexed nested-loop count: probe each element of `arr` against the index
/// (the hash-table analogue of `bmp_count`).
pub fn hash_count<M: Meter>(index: &HashIndex, arr: &[u32], meter: &mut M) -> u32 {
    crate::debug_check_sorted(arr);
    let mut c = 0u32;
    for &w in arr {
        c += u32::from(index.contains(w));
    }
    meter.seq_bytes(4 * arr.len() as u64);
    meter.rand_accesses(arr.len() as u64);
    meter.scalar_ops(arr.len() as u64);
    meter.intersection_done();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::NullMeter;
    use crate::reference_count;

    #[test]
    fn insert_contains_basic() {
        let mut h = HashIndex::with_capacity(8);
        for v in [3u32, 7, 1000, 3] {
            h.insert(v);
        }
        assert_eq!(h.len(), 3, "duplicates ignored");
        assert!(h.contains(3) && h.contains(7) && h.contains(1000));
        assert!(!h.contains(4));
    }

    #[test]
    fn build_probe_clear_cycle() {
        let mut m = NullMeter;
        let mut h = HashIndex::with_capacity(64);
        let list: Vec<u32> = (0..50).map(|x| x * 17).collect();
        h.build(&list, &mut m);
        assert_eq!(h.len(), 50);
        h.clear_list(&list, &mut m);
        assert!(h.is_empty());
        // Reusable after clearing.
        h.build(&[5, 6, 7], &mut m);
        assert!(h.contains(6));
        assert!(!h.contains(0));
    }

    #[test]
    fn backward_shift_preserves_cluster_members() {
        // Force collisions: capacity 4 → 8 slots; insert ids that collide.
        let mut h = HashIndex::with_capacity(4);
        let vals = [1u32, 9, 17, 25, 33]; // many will cluster
        for &v in &vals {
            h.insert(v);
        }
        h.remove(9);
        for &v in &vals {
            assert_eq!(h.contains(v), v != 9, "v={v}");
        }
    }

    #[test]
    fn hash_count_matches_reference_randomized() {
        let mut x = 77u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut m = NullMeter;
        for _ in 0..40 {
            let mut a: Vec<u32> = (0..150).map(|_| (next() % 2000) as u32).collect();
            let mut b: Vec<u32> = (0..150).map(|_| (next() % 2000) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let mut h = HashIndex::with_capacity(a.len());
            h.build(&a, &mut m);
            assert_eq!(hash_count(&h, &b, &mut m), reference_count(&a, &b));
            h.clear_list(&a, &mut m);
            assert!(h.is_empty());
        }
    }

    #[test]
    fn heavy_collision_stress() {
        let mut h = HashIndex::with_capacity(256);
        let vals: Vec<u32> = (0..256).collect();
        for &v in &vals {
            h.insert(v);
        }
        // Remove every other element, verify the rest still resolve.
        for v in vals.iter().step_by(2) {
            h.remove(*v);
        }
        for &v in &vals {
            assert_eq!(h.contains(v), v % 2 == 1, "v={v}");
        }
    }
}
