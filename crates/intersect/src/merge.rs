//! Plain two-pointer merge — the paper's baseline algorithm **M**
//! (Algorithm 1, procedure `IntersectM`).

use crate::meter::Meter;

/// Count `|a ∩ b|` by merging the two sorted arrays.
///
/// This is the unoptimized baseline **M** used as the reference point of
/// Table 4 and Figure 3 of the paper. Time complexity `O(|a| + |b|)`
/// regardless of skew, which is exactly why it loses badly on degree-skewed
/// graphs like Twitter.
///
/// Meter events: one `scalar_op` per loop iteration and 4 sequential bytes
/// per pointer advance (each element is read once as the pointers stream
/// forward).
#[inline]
pub fn merge_count<M: Meter>(a: &[u32], b: &[u32], meter: &mut M) -> u32 {
    crate::debug_check_sorted(a);
    crate::debug_check_sorted(b);
    let (mut i, mut j) = (0usize, 0usize);
    let mut c = 0u32;
    let mut iters = 0u64;
    while i < a.len() && j < b.len() {
        iters += 1;
        let (x, y) = (a[i], b[j]);
        // Branch-reduced advance: both pointers move on equality.
        i += usize::from(x <= y);
        j += usize::from(y <= x);
        c += u32::from(x == y);
    }
    meter.scalar_ops(iters);
    meter.seq_bytes(4 * (i as u64 + j as u64));
    meter.intersection_done();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::{CountingMeter, NullMeter};
    use crate::reference_count;

    #[test]
    fn empty_inputs() {
        let mut m = NullMeter;
        assert_eq!(merge_count(&[], &[], &mut m), 0);
        assert_eq!(merge_count(&[1, 2], &[], &mut m), 0);
        assert_eq!(merge_count(&[], &[1, 2], &mut m), 0);
    }

    #[test]
    fn disjoint_and_identical() {
        let mut m = NullMeter;
        assert_eq!(merge_count(&[1, 3, 5], &[2, 4, 6], &mut m), 0);
        assert_eq!(merge_count(&[1, 3, 5], &[1, 3, 5], &mut m), 3);
    }

    #[test]
    fn interleaved_matches() {
        let mut m = NullMeter;
        let a = [0u32, 4, 8, 12, 16, 20];
        let b = [4u32, 5, 6, 12, 13, 20, 21];
        assert_eq!(merge_count(&a, &b, &mut m), reference_count(&a, &b));
    }

    #[test]
    fn subset_relation() {
        let mut m = NullMeter;
        let a = [2u32, 4, 6, 8];
        let b = [0u32, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(merge_count(&a, &b, &mut m), 4);
        assert_eq!(merge_count(&b, &a, &mut m), 4);
    }

    #[test]
    fn meter_records_linear_work() {
        let a: Vec<u32> = (0..100).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..100).map(|x| x * 2 + 1).collect();
        let mut m = CountingMeter::new();
        merge_count(&a, &b, &mut m);
        // A full merge of disjoint interleaved arrays touches nearly all of
        // both arrays: between |a| and |a|+|b| iterations.
        assert!(m.counts.scalar_ops >= 100);
        assert!(m.counts.scalar_ops <= 200);
        assert_eq!(m.counts.intersections, 1);
        assert!(m.counts.seq_bytes >= 4 * 100);
    }

    #[test]
    fn large_random_against_reference() {
        // Deterministic pseudo-random without external crates.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..20 {
            let mut a: Vec<u32> = (0..200).map(|_| (next() % 500) as u32).collect();
            let mut b: Vec<u32> = (0..300).map(|_| (next() % 500) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let mut m = NullMeter;
            assert_eq!(merge_count(&a, &b, &mut m), reference_count(&a, &b));
        }
    }
}
