//! Work instrumentation for the intersection kernels.
//!
//! The simulated processors (`cnc-knl`, `cnc-gpu`) need exact operation and
//! byte counts to drive their performance models. Rather than maintaining
//! instrumented copies of every kernel, each kernel is generic over a
//! [`Meter`]. The [`NullMeter`] implementation has empty inlined methods, so
//! the un-instrumented specialization is identical to hand-written
//! un-instrumented code after optimization.

/// Sink for work events emitted by intersection kernels.
///
/// Counts are *architecture neutral*: they describe algorithmic work
/// (comparisons performed, bytes streamed, random lookups issued), and the
/// machine models assign costs per event.
pub trait Meter {
    /// `n` scalar comparisons / branchy loop iterations.
    fn scalar_ops(&mut self, n: u64);
    /// `n` SIMD block operations (one per all-pair comparison of one rotation).
    fn vector_ops(&mut self, n: u64);
    /// `n` bytes read with a streaming / sequential pattern.
    fn seq_bytes(&mut self, n: u64);
    /// `n` random accesses whose working set is the *large* structure
    /// (the `|V|`-bit bitmap or a binary-search over a long array).
    fn rand_accesses(&mut self, n: u64);
    /// `n` random accesses guaranteed to hit a small cache-resident
    /// structure (the RF small bitmap, galloping within a cache line).
    fn rand_accesses_small(&mut self, n: u64);
    /// `n` bytes written (count stores, bitmap construction).
    fn write_bytes(&mut self, n: u64);
    /// One neighbor-set intersection completed.
    fn intersection_done(&mut self);
    /// `n` wide probe blocks (8/16 keys each) executed by a vector or
    /// chunked-portable path (BMP word probes, gallop pivot blocks).
    ///
    /// Unlike the counts above, this event is **tier-dependent**: it
    /// attributes measured wall-clock to the [`SimdTier`] that actually ran
    /// and is deliberately *not* consumed by the machine models, whose
    /// inputs must be identical on every host.
    ///
    /// [`SimdTier`]: crate::SimdTier
    #[inline]
    fn simd_blocks(&mut self, n: u64) {
        let _ = n;
    }
    /// `n` keys handled by the scalar tail after a wide probe loop ran out
    /// of full blocks. Tier-dependent, like [`Meter::simd_blocks`].
    #[inline]
    fn simd_tail_elems(&mut self, n: u64) {
        let _ = n;
    }
}

/// A meter that ignores everything; compiles to no code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMeter;

impl Meter for NullMeter {
    #[inline(always)]
    fn scalar_ops(&mut self, _n: u64) {}
    #[inline(always)]
    fn vector_ops(&mut self, _n: u64) {}
    #[inline(always)]
    fn seq_bytes(&mut self, _n: u64) {}
    #[inline(always)]
    fn rand_accesses(&mut self, _n: u64) {}
    #[inline(always)]
    fn rand_accesses_small(&mut self, _n: u64) {}
    #[inline(always)]
    fn write_bytes(&mut self, _n: u64) {}
    #[inline(always)]
    fn intersection_done(&mut self) {}
}

/// Exact tallies of the work a kernel performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounts {
    /// Scalar comparisons / branchy iterations.
    pub scalar_ops: u64,
    /// SIMD block operations.
    pub vector_ops: u64,
    /// Bytes streamed sequentially.
    pub seq_bytes: u64,
    /// Random accesses into large working sets.
    pub rand_accesses: u64,
    /// Random accesses into small cache-resident structures.
    pub rand_accesses_small: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Number of completed set intersections.
    pub intersections: u64,
    /// Wide probe blocks executed (tier-dependent; see
    /// [`Meter::simd_blocks`]).
    pub simd_blocks: u64,
    /// Keys handled by scalar tails after wide probe loops
    /// (tier-dependent; see [`Meter::simd_tail_elems`]).
    pub simd_tail_elems: u64,
}

impl WorkCounts {
    /// Merge another tally into this one (used when combining per-task meters).
    pub fn merge(&mut self, other: &WorkCounts) {
        self.scalar_ops += other.scalar_ops;
        self.vector_ops += other.vector_ops;
        self.seq_bytes += other.seq_bytes;
        self.rand_accesses += other.rand_accesses;
        self.rand_accesses_small += other.rand_accesses_small;
        self.write_bytes += other.write_bytes;
        self.intersections += other.intersections;
        self.simd_blocks += other.simd_blocks;
        self.simd_tail_elems += other.simd_tail_elems;
    }

    /// Total dynamic operations (scalar + vector), a rough work measure.
    pub fn total_ops(&self) -> u64 {
        self.scalar_ops + self.vector_ops
    }

    /// Record these tallies into a metrics sink under the `kernel.*`
    /// counters — the bridge from per-run meters to the structured
    /// observability registry.
    pub fn record_to(&self, sink: &dyn cnc_obs::MetricsSink) {
        use cnc_obs::Counter as C;
        sink.add(C::KernelScalarOps, self.scalar_ops);
        sink.add(C::KernelVectorOps, self.vector_ops);
        sink.add(C::KernelSeqBytes, self.seq_bytes);
        sink.add(C::KernelRandAccesses, self.rand_accesses);
        sink.add(C::KernelRandAccessesSmall, self.rand_accesses_small);
        sink.add(C::KernelWriteBytes, self.write_bytes);
        sink.add(C::KernelIntersections, self.intersections);
        sink.add(C::KernelSimdBlocks, self.simd_blocks);
        sink.add(C::KernelSimdTailElems, self.simd_tail_elems);
    }
}

/// A meter that records exact [`WorkCounts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingMeter {
    /// The tallies recorded so far.
    pub counts: WorkCounts,
}

impl CountingMeter {
    /// A fresh meter with zeroed tallies.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Meter for CountingMeter {
    #[inline]
    fn scalar_ops(&mut self, n: u64) {
        self.counts.scalar_ops += n;
    }
    #[inline]
    fn vector_ops(&mut self, n: u64) {
        self.counts.vector_ops += n;
    }
    #[inline]
    fn seq_bytes(&mut self, n: u64) {
        self.counts.seq_bytes += n;
    }
    #[inline]
    fn rand_accesses(&mut self, n: u64) {
        self.counts.rand_accesses += n;
    }
    #[inline]
    fn rand_accesses_small(&mut self, n: u64) {
        self.counts.rand_accesses_small += n;
    }
    #[inline]
    fn write_bytes(&mut self, n: u64) {
        self.counts.write_bytes += n;
    }
    #[inline]
    fn intersection_done(&mut self) {
        self.counts.intersections += 1;
    }
    #[inline]
    fn simd_blocks(&mut self, n: u64) {
        self.counts.simd_blocks += n;
    }
    #[inline]
    fn simd_tail_elems(&mut self, n: u64) {
        self.counts.simd_tail_elems += n;
    }
}

impl Meter for &mut CountingMeter {
    #[inline]
    fn scalar_ops(&mut self, n: u64) {
        (**self).scalar_ops(n)
    }
    #[inline]
    fn vector_ops(&mut self, n: u64) {
        (**self).vector_ops(n)
    }
    #[inline]
    fn seq_bytes(&mut self, n: u64) {
        (**self).seq_bytes(n)
    }
    #[inline]
    fn rand_accesses(&mut self, n: u64) {
        (**self).rand_accesses(n)
    }
    #[inline]
    fn rand_accesses_small(&mut self, n: u64) {
        (**self).rand_accesses_small(n)
    }
    #[inline]
    fn write_bytes(&mut self, n: u64) {
        (**self).write_bytes(n)
    }
    #[inline]
    fn intersection_done(&mut self) {
        (**self).intersection_done()
    }
    #[inline]
    fn simd_blocks(&mut self, n: u64) {
        (**self).simd_blocks(n)
    }
    #[inline]
    fn simd_tail_elems(&mut self, n: u64) {
        (**self).simd_tail_elems(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_meter_accumulates() {
        let mut m = CountingMeter::new();
        m.scalar_ops(3);
        m.scalar_ops(4);
        m.vector_ops(2);
        m.seq_bytes(16);
        m.rand_accesses(5);
        m.rand_accesses_small(6);
        m.write_bytes(8);
        m.intersection_done();
        m.simd_blocks(9);
        m.simd_tail_elems(10);
        assert_eq!(
            m.counts,
            WorkCounts {
                scalar_ops: 7,
                vector_ops: 2,
                seq_bytes: 16,
                rand_accesses: 5,
                rand_accesses_small: 6,
                write_bytes: 8,
                intersections: 1,
                simd_blocks: 9,
                simd_tail_elems: 10,
            }
        );
    }

    #[test]
    fn merge_combines_fields() {
        let a = WorkCounts {
            scalar_ops: 1,
            vector_ops: 2,
            seq_bytes: 3,
            rand_accesses: 4,
            rand_accesses_small: 5,
            write_bytes: 6,
            intersections: 7,
            simd_blocks: 8,
            simd_tail_elems: 9,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.scalar_ops, 2);
        assert_eq!(b.intersections, 14);
        assert_eq!(b.simd_blocks, 16);
        assert_eq!(b.simd_tail_elems, 18);
        assert_eq!(b.total_ops(), 6);
    }

    #[test]
    fn record_to_maps_every_field() {
        use cnc_obs::{Counter as C, MetricsSink, ShardedRegistry};
        let r = ShardedRegistry::new();
        let w = WorkCounts {
            scalar_ops: 1,
            vector_ops: 2,
            seq_bytes: 3,
            rand_accesses: 4,
            rand_accesses_small: 5,
            write_bytes: 6,
            intersections: 7,
            simd_blocks: 8,
            simd_tail_elems: 9,
        };
        w.record_to(&r);
        let s = r.snapshot();
        assert_eq!(s.get(C::KernelScalarOps), 1);
        assert_eq!(s.get(C::KernelVectorOps), 2);
        assert_eq!(s.get(C::KernelSeqBytes), 3);
        assert_eq!(s.get(C::KernelRandAccesses), 4);
        assert_eq!(s.get(C::KernelRandAccessesSmall), 5);
        assert_eq!(s.get(C::KernelWriteBytes), 6);
        assert_eq!(s.get(C::KernelIntersections), 7);
        assert_eq!(s.get(C::KernelSimdBlocks), 8);
        assert_eq!(s.get(C::KernelSimdTailElems), 9);
    }

    #[test]
    fn mut_ref_meter_forwards() {
        let mut m = CountingMeter::new();
        {
            let mut r: &mut CountingMeter = &mut m;
            let r = &mut r;
            r.scalar_ops(5);
            r.intersection_done();
        }
        assert_eq!(m.counts.scalar_ops, 5);
        assert_eq!(m.counts.intersections, 1);
    }
}
