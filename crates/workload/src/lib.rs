//! The workload abstraction over the edge-range driver.
//!
//! The paper's machinery — the `FindSrc` stash, per-source kernel state,
//! source-aligned cost-balanced scheduling — is workload-agnostic in shape:
//! nothing in the traversal skeleton cares that the per-pair result is a
//! common-neighbor count scattered into a per-edge array. This crate makes
//! that latent genericity explicit. A [`Workload`] owns three things the
//! driver used to hard-code:
//!
//! 1. **The per-pair visit** — what happens for each canonical (`u < v`)
//!    pair: CNC intersects through the [`PairKernel`] and mirrors the count
//!    into both directed slots; triangle counting accumulates a global sum;
//!    k-clique counting recurses through the collect-flavored intersection
//!    kernels.
//! 2. **The accumulator shape** — a shared scatter target
//!    ([`Workload::Shared`], written disjointly by all tasks) plus a
//!    per-task accumulator ([`Workload::Accum`], merged pairwise by the
//!    parallel reduction). CNC uses `Shared = ScatterVec, Accum = ()`;
//!    the global counters invert that.
//! 3. **Cost-model hooks** — [`Workload::covers`] prunes pairs before they
//!    are priced or visited, and [`Workload::pair_cost`] /
//!    [`Workload::source_cost`] let a workload reshape the balanced
//!    schedule's per-source pricing (k-clique multiplies by its recursion
//!    depth; triangle counting prices only cover edges).
//!
//! The driver in `cnc-cpu` stays the *only* edge-range loop; it is generic
//! over this trait. [`WorkloadKind`] is the plan-level value describing
//! which workload runs, and [`WorkloadOutput`] the type-erased result that
//! flows through `Backend::execute` and the CLI.

#![forbid(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod cnc;
mod kclique;
mod kind;
mod scatter;
mod triangle;

pub use cnc::{meter_reverse, CncWorkload};
pub use kclique::{KCliqueAccum, KCliqueWorkload};
pub use kind::{WorkloadError, WorkloadKind, WorkloadOutput};
pub use scatter::ScatterVec;
pub use triangle::TriangleWorkload;

use cnc_graph::CsrGraph;
use cnc_intersect::{CostModel, Meter, PairKernel};

/// A counting workload executed by the edge-range driver.
///
/// The driver walks a contiguous range of directed edge offsets, skips
/// non-canonical (`u >= v`) slots, maintains the kernel's per-source state,
/// and calls [`visit`](Workload::visit) for every covered canonical pair.
/// Implementations must be cheap to share across rayon tasks (`Sync`) and
/// must keep [`visit`](Workload::visit) free of cross-task coordination:
/// all mutation goes through the task-local `Accum` or the disjoint-write
/// `Shared` state.
pub trait Workload: Sync {
    /// Per-run state shared by every task. Writes must be disjoint across
    /// tasks (CNC's [`ScatterVec`] mirror stores); workloads without shared
    /// state use `()`.
    type Shared: Sync;
    /// Per-task accumulator, merged pairwise by the parallel reduction.
    /// May carry scratch buffers — only the merged result survives.
    type Accum: Send;
    /// The workload's final result type.
    type Output;

    /// The plan-level descriptor of this workload.
    fn kind(&self) -> WorkloadKind;

    /// Build the per-run shared state for `g`.
    fn new_shared(&self, g: &CsrGraph) -> Self::Shared;

    /// Build one task's accumulator for `g`.
    fn new_accum(&self, g: &CsrGraph) -> Self::Accum;

    /// Whether the canonical pair `(u, v)` (guaranteed `u < v`) should be
    /// visited at all. Pairs not covered are skipped by the driver *and*
    /// carry no cost in the balanced schedule, so a pruning workload
    /// visibly reshapes the task decomposition.
    #[inline]
    fn covers(&self, _g: &CsrGraph, _u: u32, _v: u32) -> bool {
        true
    }

    /// Whether this workload consumes the driver-managed [`PairKernel`]
    /// per-source state. Workloads that never call
    /// [`PairKernel::count`] (k-clique recurses through the collect
    /// kernels instead) return `false` so the driver skips
    /// `begin_source`/`end_source` entirely — no bitmap is built for a
    /// kernel nobody probes.
    #[inline]
    fn uses_kernel(&self) -> bool {
        true
    }

    /// Process one covered canonical pair `(u, v)` at edge offset `eid`.
    ///
    /// When [`uses_kernel`](Workload::uses_kernel) is `true`, `kernel` has
    /// `begin_source(N(u))` applied. All work performed must be reported
    /// through `meter`.
    #[allow(clippy::too_many_arguments)]
    fn visit<K: PairKernel, M: Meter>(
        &self,
        g: &CsrGraph,
        shared: &Self::Shared,
        acc: &mut Self::Accum,
        eid: usize,
        u: u32,
        v: u32,
        kernel: &mut K,
        meter: &mut M,
    );

    /// Fold one task's accumulator into another (parallel reduction).
    fn merge(&self, into: &mut Self::Accum, from: Self::Accum);

    /// Produce the final output from the run's shared state and the merged
    /// accumulator.
    fn finish(&self, g: &CsrGraph, shared: Self::Shared, acc: Self::Accum) -> Self::Output;

    /// Estimated cost of visiting the covered pair `(u, v)` under `model`
    /// — the balanced scheduler prices only covered pairs through this.
    /// The default is the kernel model's pair cost unchanged (exactly the
    /// historical CNC pricing).
    #[inline]
    fn pair_cost(&self, model: &CostModel, g: &CsrGraph, u: u32, v: u32) -> u64 {
        model.pair_cost(g.degree(u), g.degree(v))
    }

    /// Estimated once-per-source setup cost, charged when a source has at
    /// least one covered pair (mirroring the driver, which only runs
    /// `begin_source` for such pairs).
    #[inline]
    fn source_cost(&self, model: &CostModel, g: &CsrGraph, u: u32) -> u64 {
        model.source_cost(g.degree(u))
    }
}
