//! Plan-level workload descriptors and the type-erased run output.

/// Why a workload configuration is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadError {
    /// The requested clique size is outside the supported `3..=5` range.
    CliqueSizeOutOfRange {
        /// The size as requested.
        k: u8,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::CliqueSizeOutOfRange { k } => write!(
                f,
                "clique size k={k} is outside the supported range {}..={}",
                WorkloadKind::MIN_CLIQUE_K,
                WorkloadKind::MAX_CLIQUE_K
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Which counting workload a plan executes.
///
/// This is the *descriptor* carried through `Plan` and the CLI; the
/// executable strategy objects live behind the [`Workload`](crate::Workload)
/// trait ([`CncWorkload`](crate::CncWorkload),
/// [`TriangleWorkload`](crate::TriangleWorkload),
/// [`KCliqueWorkload`](crate::KCliqueWorkload)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WorkloadKind {
    /// All-edge common neighbor counting — the paper's workload and the
    /// default. Output: one `u32` per directed edge slot.
    #[default]
    Cnc,
    /// Cover-edge triangle counting: canonical pairs whose endpoints both
    /// have degree ≥ 2 are intersected and the counts reduced to one global
    /// triangle total (each triangle closes exactly three cover edges).
    Triangle,
    /// k-clique counting via ordered recursion through the collect-flavored
    /// intersection kernels. Output: one count per clique size `3..=k`.
    KClique {
        /// The maximum clique size to count (`3..=5`).
        k: u8,
    },
}

impl WorkloadKind {
    /// Smallest supported clique size.
    pub const MIN_CLIQUE_K: u8 = 3;
    /// Largest supported clique size.
    pub const MAX_CLIQUE_K: u8 = 5;

    /// Check configuration the type system cannot (the clique size range).
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            WorkloadKind::Cnc | WorkloadKind::Triangle => Ok(()),
            WorkloadKind::KClique { k } => {
                if (Self::MIN_CLIQUE_K..=Self::MAX_CLIQUE_K).contains(&k) {
                    Ok(())
                } else {
                    Err(WorkloadError::CliqueSizeOutOfRange { k })
                }
            }
        }
    }

    /// Stable label for reports and metrics (`cnc`, `triangle`,
    /// `kclique(k=4)`).
    pub fn label(&self) -> String {
        match self {
            WorkloadKind::Cnc => "cnc".into(),
            WorkloadKind::Triangle => "triangle".into(),
            WorkloadKind::KClique { k } => format!("kclique(k={k})"),
        }
    }
}

/// The type-erased result of a workload run, as produced by a backend.
///
/// Downstream layers that only ever ran CNC now match on this; convenience
/// accessors keep the common per-edge path terse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadOutput {
    /// One common-neighbor count per directed edge slot (CNC).
    EdgeCounts(Vec<u32>),
    /// A single global count (triangle total).
    Global(u64),
    /// Per-clique-size counts: `counts[i]` is the number of `(i + 3)`-cliques,
    /// for sizes `3..=k`.
    CliqueCounts {
        /// The maximum clique size counted.
        k: u8,
        /// One count per clique size `3..=k`, ascending.
        counts: Vec<u64>,
    },
}

impl WorkloadOutput {
    /// The per-edge counts, when this is a CNC result.
    pub fn edge_counts(&self) -> Option<&[u32]> {
        match self {
            WorkloadOutput::EdgeCounts(c) => Some(c),
            _ => None,
        }
    }

    /// Consume into the per-edge counts, when this is a CNC result.
    pub fn into_edge_counts(self) -> Option<Vec<u32>> {
        match self {
            WorkloadOutput::EdgeCounts(c) => Some(c),
            _ => None,
        }
    }

    /// The headline global count: the triangle total, or the count of the
    /// largest clique size. `None` for per-edge outputs.
    pub fn global_count(&self) -> Option<u64> {
        match self {
            WorkloadOutput::EdgeCounts(_) => None,
            WorkloadOutput::Global(t) => Some(*t),
            WorkloadOutput::CliqueCounts { counts, .. } => counts.last().copied(),
        }
    }

    /// One-line human-readable summary of the result.
    pub fn summary(&self) -> String {
        match self {
            WorkloadOutput::EdgeCounts(c) => format!("{} edge slots", c.len()),
            WorkloadOutput::Global(t) => format!("{t} triangles"),
            WorkloadOutput::CliqueCounts { k, counts } => {
                let per_size: Vec<String> = counts
                    .iter()
                    .enumerate()
                    .map(|(i, c)| format!("{}-cliques={c}", i + 3))
                    .collect();
                format!("k={k}: {}", per_size.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_validation() {
        assert!(WorkloadKind::Cnc.validate().is_ok());
        assert!(WorkloadKind::Triangle.validate().is_ok());
        for k in 3..=5u8 {
            assert!(WorkloadKind::KClique { k }.validate().is_ok());
        }
        for k in [0u8, 1, 2, 6, 200] {
            let err = WorkloadKind::KClique { k }.validate().unwrap_err();
            assert_eq!(err, WorkloadError::CliqueSizeOutOfRange { k });
            assert!(err.to_string().contains(&format!("k={k}")));
        }
    }

    #[test]
    fn kind_labels() {
        assert_eq!(WorkloadKind::Cnc.label(), "cnc");
        assert_eq!(WorkloadKind::Triangle.label(), "triangle");
        assert_eq!(WorkloadKind::KClique { k: 4 }.label(), "kclique(k=4)");
        assert_eq!(WorkloadKind::default(), WorkloadKind::Cnc);
    }

    #[test]
    fn output_accessors() {
        let edges = WorkloadOutput::EdgeCounts(vec![1, 2, 3]);
        assert_eq!(edges.edge_counts(), Some(&[1u32, 2, 3][..]));
        assert_eq!(edges.global_count(), None);
        assert_eq!(edges.clone().into_edge_counts(), Some(vec![1, 2, 3]));

        let tri = WorkloadOutput::Global(42);
        assert_eq!(tri.edge_counts(), None);
        assert_eq!(tri.global_count(), Some(42));
        assert!(tri.summary().contains("42 triangles"));

        let cliques = WorkloadOutput::CliqueCounts {
            k: 5,
            counts: vec![10, 4, 1],
        };
        assert_eq!(cliques.global_count(), Some(1));
        let s = cliques.summary();
        assert!(
            s.contains("3-cliques=10") && s.contains("5-cliques=1"),
            "{s}"
        );
    }
}
