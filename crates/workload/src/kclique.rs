//! k-clique counting by ordered recursion through the collect kernels.

use cnc_graph::CsrGraph;
use cnc_intersect::{merge_collect, merge_count, CostModel, Meter, PairKernel};

use crate::{Workload, WorkloadError, WorkloadKind};

/// Count cliques of sizes `3..=k` (with `k` in `3..=5`).
///
/// Every k-clique `{v1 < v2 < … < vk}` is discovered exactly once, at the
/// canonical edge `(v1, v2)`: the visit intersects `N(u) ∩ N(v)`, keeps
/// only candidates greater than `v`, and expands in ascending order through
/// [`merge_collect`]/[`merge_count`] — so each level of the recursion pins
/// the next-smallest vertex of the clique.
///
/// This workload never probes the driver-managed [`PairKernel`] per-source
/// state ([`uses_kernel`](Workload::uses_kernel) is `false`); it recurses
/// through the collect-flavored merge kernels directly, because it needs the
/// intersection *sets*, not just their sizes.
#[derive(Debug, Clone, Copy)]
pub struct KCliqueWorkload {
    k: u8,
}

impl KCliqueWorkload {
    /// A workload counting cliques of sizes `3..=k`.
    ///
    /// # Errors
    /// [`WorkloadError::CliqueSizeOutOfRange`] unless `3 <= k <= 5`.
    pub fn new(k: u8) -> Result<Self, WorkloadError> {
        WorkloadKind::KClique { k }.validate()?;
        Ok(Self { k })
    }

    /// The maximum clique size counted.
    pub fn k(&self) -> u8 {
        self.k
    }
}

/// Per-task state for [`KCliqueWorkload`]: the per-size tallies plus the
/// recursion's scratch buffers (reused across visits; only the tallies
/// survive the merge).
#[derive(Debug, Default)]
pub struct KCliqueAccum {
    /// `counts[i]` tallies `(i + 3)`-cliques.
    counts: [u64; 3],
    scratch0: Vec<u32>,
    scratch1: Vec<u32>,
}

impl Workload for KCliqueWorkload {
    type Shared = ();
    type Accum = KCliqueAccum;
    type Output = Vec<u64>;

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::KClique { k: self.k }
    }

    fn new_shared(&self, _g: &CsrGraph) {}

    fn new_accum(&self, _g: &CsrGraph) -> KCliqueAccum {
        KCliqueAccum::default()
    }

    #[inline]
    fn covers(&self, g: &CsrGraph, u: u32, v: u32) -> bool {
        // The output reports every size 3..=k, so the prune bound is the one
        // for the *smallest* size: both endpoints of a triangle edge need
        // degree >= 2. A k-1 bound would drop triangles from the tally.
        let need = (WorkloadKind::MIN_CLIQUE_K - 1) as usize;
        g.degree(u) >= need && g.degree(v) >= need
    }

    #[inline]
    fn uses_kernel(&self) -> bool {
        false
    }

    #[inline]
    fn visit<K: PairKernel, M: Meter>(
        &self,
        g: &CsrGraph,
        _shared: &(),
        acc: &mut KCliqueAccum,
        _eid: usize,
        u: u32,
        v: u32,
        _kernel: &mut K,
        meter: &mut M,
    ) {
        let KCliqueAccum {
            counts,
            scratch0,
            scratch1,
        } = acc;
        merge_collect(g.neighbors(u), g.neighbors(v), scratch0, meter);
        // Candidates must extend the clique upward: keep w > v only.
        let start = scratch0.partition_point(|&w| w <= v);
        let cand = &scratch0[start..];
        counts[0] += cand.len() as u64;
        if self.k >= 4 {
            for (i, &w) in cand.iter().enumerate() {
                merge_collect(&cand[i + 1..], g.neighbors(w), scratch1, meter);
                counts[1] += scratch1.len() as u64;
                if self.k == 5 {
                    for (j, &x) in scratch1.iter().enumerate() {
                        counts[2] += merge_count(&scratch1[j + 1..], g.neighbors(x), meter) as u64;
                    }
                }
            }
        }
    }

    fn merge(&self, into: &mut KCliqueAccum, from: KCliqueAccum) {
        for (a, b) in into.counts.iter_mut().zip(from.counts) {
            *a += b;
        }
    }

    fn finish(&self, _g: &CsrGraph, _shared: (), acc: KCliqueAccum) -> Vec<u64> {
        acc.counts[..=(self.k - 3) as usize].to_vec()
    }

    #[inline]
    fn pair_cost(&self, model: &CostModel, g: &CsrGraph, u: u32, v: u32) -> u64 {
        // Each extra clique level re-intersects the shrinking candidate set;
        // charge the base intersection once per recursion level.
        model
            .pair_cost(g.degree(u), g.degree(v))
            .saturating_mul((self.k - 2) as u64)
    }

    #[inline]
    fn source_cost(&self, _model: &CostModel, _g: &CsrGraph, _u: u32) -> u64 {
        // No per-source kernel state is ever built (uses_kernel = false).
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_intersect::{MergeKernel, NullMeter};

    fn run(g: &CsrGraph, k: u8) -> Vec<u64> {
        let w = KCliqueWorkload::new(k).unwrap();
        let mut acc = w.new_accum(g);
        let mut kernel = MergeKernel;
        for (eid, u, v) in g.iter_edges() {
            if u < v && w.covers(g, u, v) {
                w.visit(g, &(), &mut acc, eid, u, v, &mut kernel, &mut NullMeter);
            }
        }
        w.finish(g, (), acc)
    }

    fn complete_graph(n: u32) -> CsrGraph {
        let mut pairs = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                pairs.push((u, v));
            }
        }
        CsrGraph::from_undirected_pairs(n as usize, pairs.into_iter())
    }

    #[test]
    fn validates_k_range() {
        assert!(KCliqueWorkload::new(2).is_err());
        assert!(KCliqueWorkload::new(6).is_err());
        assert_eq!(KCliqueWorkload::new(4).unwrap().k(), 4);
    }

    #[test]
    fn complete_graph_binomials() {
        // K6: C(6,3)=20 triangles, C(6,4)=15 4-cliques, C(6,5)=6 5-cliques.
        let g = complete_graph(6);
        assert_eq!(run(&g, 3), vec![20]);
        assert_eq!(run(&g, 4), vec![20, 15]);
        assert_eq!(run(&g, 5), vec![20, 15, 6]);
    }

    #[test]
    fn shared_edge_triangles_have_no_4_clique() {
        // Two triangles glued on edge (1,2): 2 triangles, no 4-clique
        // (vertices 0 and 3 are not adjacent).
        let g = CsrGraph::from_undirected_pairs(
            4,
            [(0u32, 1), (0, 2), (1, 2), (1, 3), (2, 3)].into_iter(),
        );
        assert_eq!(run(&g, 4), vec![2, 0]);
    }

    #[test]
    fn clique_free_graph_is_zero() {
        let g = CsrGraph::from_undirected_pairs(4, [(0u32, 1), (1, 2), (2, 3), (3, 0)].into_iter());
        assert_eq!(run(&g, 5), vec![0, 0, 0]);
    }
}
