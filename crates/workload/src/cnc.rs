//! The paper's workload: all-edge common neighbor counting.

use cnc_graph::CsrGraph;
use cnc_intersect::{Meter, PairKernel};

use crate::{ScatterVec, Workload, WorkloadKind};

/// Cost of the `e(v,u)` mirror lookup (the symmetric-assignment technique),
/// reported to the meter.
///
/// Prepared graphs carry a reverse-edge index, making the lookup a single
/// streamed load; graphs without one fall back to a binary search over
/// `N(v)` whose probes hit random cache lines.
#[inline]
pub fn meter_reverse<M: Meter>(has_rev: bool, dv: usize, meter: &mut M) {
    if has_rev {
        meter.seq_bytes(8); // one rev[eid] load, streamed with the edge walk
    } else {
        let probes = (dv.max(1)).ilog2() as u64 + 1;
        meter.scalar_ops(probes);
        meter.rand_accesses(probes);
    }
    meter.write_bytes(8); // the two count stores
}

/// All-edge common neighbor counting: `cnt[e(u,v)] = |N(u) ∩ N(v)|` for
/// every directed edge slot, with the symmetric-assignment mirror
/// (`cnt[e(v,u)] ← cnt[e(u,v)]`, computed once per canonical pair).
///
/// Shared state is the full per-edge [`ScatterVec`]; the per-task
/// accumulator is empty. Every canonical pair is covered, so the balanced
/// schedule prices sources exactly as it always has — the refactor's
/// byte-identity guarantee rests on this implementation being the old
/// driver body verbatim.
#[derive(Debug, Clone, Copy, Default)]
pub struct CncWorkload;

impl Workload for CncWorkload {
    type Shared = ScatterVec;
    type Accum = ();
    type Output = Vec<u32>;

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Cnc
    }

    fn new_shared(&self, g: &CsrGraph) -> ScatterVec {
        ScatterVec::new(g.num_directed_edges())
    }

    fn new_accum(&self, _g: &CsrGraph) {}

    #[inline]
    fn visit<K: PairKernel, M: Meter>(
        &self,
        g: &CsrGraph,
        shared: &ScatterVec,
        _acc: &mut (),
        eid: usize,
        u: u32,
        v: u32,
        kernel: &mut K,
        meter: &mut M,
    ) {
        let c = kernel.count(g.neighbors(u), g.neighbors(v), meter);
        shared.set(eid, c);
        shared.set(g.reverse_offset(u, eid), c);
        meter_reverse(g.has_reverse_index(), g.degree(v), meter);
    }

    fn merge(&self, _into: &mut (), _from: ()) {}

    fn finish(&self, _g: &CsrGraph, shared: ScatterVec, _acc: ()) -> Vec<u32> {
        shared.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_intersect::{CountingMeter, MergeKernel, NullMeter};

    fn two_triangles() -> CsrGraph {
        // 0-1-2 triangle and 1-2-3 triangle sharing edge (1,2).
        CsrGraph::from_undirected_pairs(4, [(0u32, 1), (0, 2), (1, 2), (1, 3), (2, 3)].into_iter())
    }

    #[test]
    fn visit_mirrors_both_slots() {
        let g = two_triangles();
        let w = CncWorkload;
        let shared = w.new_shared(&g);
        // CNC's accumulator is (), but the test drives the generic API.
        #[allow(clippy::let_unit_value)]
        let mut acc = w.new_accum(&g);
        let mut kernel = MergeKernel;
        for (eid, u, v) in g.iter_edges() {
            if u < v {
                assert!(w.covers(&g, u, v));
                w.visit(
                    &g,
                    &shared,
                    &mut acc,
                    eid,
                    u,
                    v,
                    &mut kernel,
                    &mut NullMeter,
                );
            }
        }
        let counts = w.finish(&g, shared, acc);
        for (eid, u, _) in g.iter_edges() {
            let rev = g.reverse_offset(u, eid);
            assert_eq!(counts[eid], counts[rev], "mirror slot must match");
        }
        // Edge (1,2) closes both triangles.
        let e12 = g.edge_offset(1, 2).unwrap();
        assert_eq!(counts[e12], 2);
    }

    #[test]
    fn meter_reverse_paths() {
        let mut with_rev = CountingMeter::new();
        meter_reverse(true, 1024, &mut with_rev);
        assert_eq!(with_rev.counts.rand_accesses, 0);
        assert_eq!(with_rev.counts.seq_bytes, 8);
        let mut without = CountingMeter::new();
        meter_reverse(false, 1024, &mut without);
        assert_eq!(without.counts.rand_accesses, 11);
    }
}
