//! Cover-edge triangle counting on the CNC traversal skeleton.

use cnc_graph::CsrGraph;
use cnc_intersect::{Meter, PairKernel};

use crate::{Workload, WorkloadKind};

/// Global triangle counting over *cover edges* (Bader-style edge cover
/// pruning specialized to triangles): a canonical pair is visited only when
/// both endpoints have degree ≥ 2, because an edge with a degree-1 endpoint
/// cannot close a triangle. Skipped edges contribute zero to the sum *and*
/// zero to the balanced schedule's per-source pricing, so on leaf-heavy
/// power-law graphs the task decomposition visibly differs from CNC's.
///
/// Each visited pair contributes `|N(u) ∩ N(v)|` through the same
/// [`PairKernel`] CNC uses; every triangle has exactly three canonical
/// edges, all covered, so the global total is the sum divided by three.
#[derive(Debug, Clone, Copy, Default)]
pub struct TriangleWorkload;

/// The degree below which an endpoint disqualifies its edges from covering
/// any triangle.
const MIN_COVER_DEGREE: usize = 2;

impl Workload for TriangleWorkload {
    type Shared = ();
    type Accum = u64;
    type Output = u64;

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Triangle
    }

    fn new_shared(&self, _g: &CsrGraph) {}

    fn new_accum(&self, _g: &CsrGraph) -> u64 {
        0
    }

    #[inline]
    fn covers(&self, g: &CsrGraph, u: u32, v: u32) -> bool {
        g.degree(u) >= MIN_COVER_DEGREE && g.degree(v) >= MIN_COVER_DEGREE
    }

    #[inline]
    fn visit<K: PairKernel, M: Meter>(
        &self,
        g: &CsrGraph,
        _shared: &(),
        acc: &mut u64,
        _eid: usize,
        u: u32,
        v: u32,
        kernel: &mut K,
        meter: &mut M,
    ) {
        *acc += kernel.count(g.neighbors(u), g.neighbors(v), meter) as u64;
    }

    fn merge(&self, into: &mut u64, from: u64) {
        *into += from;
    }

    fn finish(&self, _g: &CsrGraph, _shared: (), acc: u64) -> u64 {
        debug_assert_eq!(acc % 3, 0, "3T invariant: every triangle counted thrice");
        acc / 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_intersect::{MergeKernel, NullMeter};

    fn run(g: &CsrGraph) -> u64 {
        let w = TriangleWorkload;
        let mut acc = w.new_accum(g);
        let mut kernel = MergeKernel;
        for (eid, u, v) in g.iter_edges() {
            if u < v && w.covers(g, u, v) {
                w.visit(g, &(), &mut acc, eid, u, v, &mut kernel, &mut NullMeter);
            }
        }
        w.finish(g, (), acc)
    }

    #[test]
    fn triangle_with_pendant_edges() {
        // Triangle 0-1-2 plus pendants 3 and 4: pendant edges are not
        // covered, and the count is exactly 1.
        let g = CsrGraph::from_undirected_pairs(
            5,
            [(0u32, 1), (0, 2), (1, 2), (2, 3), (3, 4)].into_iter(),
        );
        let w = TriangleWorkload;
        assert!(!w.covers(&g, 3, 4), "degree-1 endpoint must prune");
        assert!(w.covers(&g, 0, 1));
        assert_eq!(run(&g), 1);
    }

    #[test]
    fn two_shared_triangles() {
        let g = CsrGraph::from_undirected_pairs(
            4,
            [(0u32, 1), (0, 2), (1, 2), (1, 3), (2, 3)].into_iter(),
        );
        assert_eq!(run(&g), 2);
    }

    #[test]
    fn triangle_free_is_zero() {
        let g = CsrGraph::from_undirected_pairs(4, [(0u32, 1), (1, 2), (2, 3), (3, 0)].into_iter());
        assert_eq!(run(&g), 0);
    }
}
