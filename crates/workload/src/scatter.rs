//! Race-free scatter writes into the shared counts array.
//!
//! The parallel drivers write `cnt[e(u,v)]` and the mirrored `cnt[e(v,u)]`
//! from the task that owns the edge offset `e(u,v)` (with `u < v`). The
//! offset `e(v,u)` belongs to a *different* task's range, so tasks write
//! outside their own partition — but each slot is written **exactly once**:
//!
//! * slot `e(u,v)` with `u < v` is written only by its owning task;
//! * slot `e(v,u)` with `v > u` is written only by the task owning `e(u,v)`
//!   (the task owning `e(v,u)` itself skips it because its source exceeds
//!   its destination).
//!
//! [`ScatterVec`] encapsulates the one `unsafe` block this requires, and in
//! debug builds verifies the exactly-once discipline with an atomic flag per
//! slot. It lives in this crate because it is the CNC workload's
//! [`Shared`](crate::Workload::Shared) state; `cnc-cpu` re-exports it.

use std::cell::UnsafeCell;

#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicBool, Ordering};

#[repr(transparent)]
struct SyncCell(UnsafeCell<u32>);

// SAFETY: concurrent access is governed by the exactly-once write discipline
// documented on ScatterVec; disjoint writes to different slots are data-race
// free, and no slot is read until `into_vec` takes back unique ownership.
unsafe impl Sync for SyncCell {}

/// A fixed-length `u32` array supporting disjoint scatter writes from many
/// threads.
pub struct ScatterVec {
    data: Box<[SyncCell]>,
    #[cfg(debug_assertions)]
    written: Box<[AtomicBool]>,
}

impl ScatterVec {
    /// A zero-initialized array of `len` slots.
    pub fn new(len: usize) -> Self {
        Self {
            data: (0..len).map(|_| SyncCell(UnsafeCell::new(0))).collect(),
            #[cfg(debug_assertions)]
            written: (0..len).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if there are no slots.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Write `value` into `idx`.
    ///
    /// # Panics
    /// In debug builds, panics if `idx` is written twice (which would be a
    /// data race in release builds — the exactly-once invariant is the
    /// caller's obligation).
    #[inline]
    pub fn set(&self, idx: usize, value: u32) {
        #[cfg(debug_assertions)]
        {
            let prev = self.written[idx].swap(true, Ordering::Relaxed);
            assert!(!prev, "ScatterVec slot {idx} written twice");
        }
        // SAFETY: slots are written exactly once across all threads (checked
        // in debug builds above) and never read concurrently with writes.
        unsafe { *self.data[idx].0.get() = value };
    }

    /// Consume and return the plain vector.
    pub fn into_vec(self) -> Vec<u32> {
        self.data
            .iter()
            // SAFETY: `self` is owned here; no other thread can hold a
            // reference, so reads are unaliased.
            .map(|c| unsafe { *c.0.get() })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn sequential_set_and_collect() {
        let s = ScatterVec::new(4);
        s.set(2, 7);
        s.set(0, 1);
        s.set(1, 3);
        s.set(3, 9);
        assert_eq!(s.into_vec(), vec![1, 3, 7, 9]);
    }

    #[test]
    fn parallel_disjoint_writes() {
        let n = 100_000;
        let s = ScatterVec::new(n);
        (0..n).into_par_iter().for_each(|i| s.set(i, i as u32 * 2));
        let v = s.into_vec();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u32 * 2));
    }

    #[test]
    fn unwritten_slots_default_to_zero() {
        let s = ScatterVec::new(3);
        s.set(1, 5);
        assert_eq!(s.into_vec(), vec![0, 5, 0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "written twice")]
    fn double_write_caught_in_debug() {
        let s = ScatterVec::new(2);
        s.set(0, 1);
        s.set(0, 2);
    }
}
