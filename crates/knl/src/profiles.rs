//! Exact work profiles of the counting algorithms on a concrete graph.

use cnc_cpu::{BmpMode, CpuKernel};
use cnc_graph::{CsrGraph, PreparedGraph};
use cnc_intersect::{Bitmap, CountingMeter, MpsConfig, RfBitmap, WorkCounts};
use cnc_machine::WorkProfile;

use crate::runner::ModeledAlgo;

/// The random-access working set of one execution context of `algo` on `g`:
/// the thread-local bitmap for BMP (replicated per thread), the shared
/// neighbor array for the merge family.
pub fn working_set_of(g: &CsrGraph, algo: &ModeledAlgo) -> (f64, bool) {
    match algo {
        ModeledAlgo::MergeBaseline | ModeledAlgo::Mps { .. } => {
            // Binary-search probes during pivot-skip land in the CSR
            // neighbor array, shared by all threads.
            (g.dst().len() as f64 * 4.0, false)
        }
        ModeledAlgo::Bmp { mode } => {
            let n = g.num_vertices().max(1);
            let bytes = match mode {
                BmpMode::Plain => Bitmap::new(n).bytes(),
                BmpMode::RangeFiltered { ratio } => {
                    // Only the *big* bitmap pressures the cache; the small
                    // filter is L1-resident by construction (its accesses
                    // are metered separately as `rand_accesses_small`).
                    RfBitmap::with_ratio(n, *ratio).bytes().0
                }
            };
            (bytes as f64, true)
        }
    }
}

/// Convert kernel work counts plus working-set information into the machine
/// model's input.
fn to_profile(counts: &WorkCounts, ws_bytes: f64, replicated: bool) -> WorkProfile {
    WorkProfile {
        scalar_ops: counts.scalar_ops as f64,
        vector_ops: counts.vector_ops as f64,
        seq_bytes: counts.seq_bytes as f64,
        rand_accesses: counts.rand_accesses as f64,
        rand_accesses_small: counts.rand_accesses_small as f64,
        write_bytes: counts.write_bytes as f64,
        ws_rand_bytes: ws_bytes,
        ws_replicated_per_thread: replicated,
    }
}

/// The CPU-side kernel dispatch equivalent to a modeled algorithm: modeled
/// processors execute the same unified edge-range driver as the real CPU.
pub fn cpu_kernel_of(algo: &ModeledAlgo) -> CpuKernel {
    match algo {
        ModeledAlgo::MergeBaseline => CpuKernel::Merge,
        ModeledAlgo::Mps { simd, threshold } => CpuKernel::Mps(MpsConfig {
            skew_threshold: *threshold,
            simd: *simd,
        }),
        ModeledAlgo::Bmp { mode } => CpuKernel::Bmp(*mode),
    }
}

/// Execute `algo` on `g` (sequentially, fully instrumented) and return the
/// exact counts plus the raw work tallies.
///
/// This routes through `cnc_cpu::CpuKernel::run_seq` — the same
/// `EdgeRangeDriver` loop as every real-CPU driver — with a
/// [`CountingMeter`], so profiles are deterministic and exactly match the
/// work of a single-task run.
pub fn counts_and_work_of(g: &CsrGraph, algo: &ModeledAlgo) -> (Vec<u32>, WorkCounts) {
    let mut meter = CountingMeter::new();
    let counts = cnc_obs::ObsContext::scoped("modeled_count", || {
        cpu_kernel_of(algo).run_seq(g, &mut meter)
    });
    // Modeled runs always meter; mirror the tallies into the ambient
    // observability context so `--metrics` reports agree with the profile.
    if let Some(ctx) = cnc_obs::ObsContext::current() {
        meter.counts.record_to(&*ctx);
    }
    (counts, meter.counts)
}

/// Turn raw work tallies of `algo` on `g` into the machine model's input.
pub fn profile_from_work(g: &CsrGraph, algo: &ModeledAlgo, work: &WorkCounts) -> WorkProfile {
    let (ws, repl) = working_set_of(g, algo);
    to_profile(work, ws, repl)
}

/// Execute `algo` on `g` (sequentially, fully instrumented) and return the
/// exact counts plus the machine-neutral work profile.
pub fn profile_of(g: &CsrGraph, algo: &ModeledAlgo) -> (Vec<u32>, WorkProfile) {
    let (counts, work) = counts_and_work_of(g, algo);
    (counts, profile_from_work(g, algo, &work))
}

/// The prepared-graph input `algo` should execute on: BMP takes the
/// degree-descending relabel (its complexity bound requires it) when the
/// preparation computed one; the merge family runs on the original ids.
pub fn execution_graph_of<'a>(prepared: &'a PreparedGraph, algo: &ModeledAlgo) -> &'a CsrGraph {
    prepared.execution_graph(matches!(algo, ModeledAlgo::Bmp { .. }))
}

/// [`profile_of`] over a shared preparation: the graph (and its reorder)
/// come from the [`PreparedGraph`] — no preprocessing happens here. Counts
/// are in the executed graph's offsets (the relabeled graph for BMP).
pub fn profile_of_prepared(
    prepared: &PreparedGraph,
    algo: &ModeledAlgo,
) -> (Vec<u32>, WorkProfile) {
    profile_of(execution_graph_of(prepared, algo), algo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::{Dataset, Scale};
    use cnc_graph::generators;
    use cnc_intersect::SimdLevel;

    #[test]
    fn profiles_carry_positive_work() {
        let g = CsrGraph::from_edge_list(&generators::gnm(200, 1000, 1));
        for algo in [
            ModeledAlgo::MergeBaseline,
            ModeledAlgo::mps_avx2(),
            ModeledAlgo::mps_avx512(),
            ModeledAlgo::bmp_plain(),
            ModeledAlgo::bmp_rf(g.num_vertices()),
        ] {
            let (counts, p) = profile_of(&g, &algo);
            assert_eq!(counts.len(), g.num_directed_edges());
            assert!(p.total_ops() > 0.0, "{algo:?} did no work");
            assert!(p.seq_bytes > 0.0);
        }
    }

    #[test]
    fn all_profiled_algos_agree_on_counts() {
        let g = Dataset::TwS.build(Scale::Tiny);
        let (want, _) = profile_of(&g, &ModeledAlgo::MergeBaseline);
        for algo in [
            ModeledAlgo::mps_scalar(),
            ModeledAlgo::mps_avx512(),
            ModeledAlgo::bmp_plain(),
            ModeledAlgo::bmp_rf(g.num_vertices()),
        ] {
            let (got, _) = profile_of(&g, &algo);
            assert_eq!(got, want, "{algo:?}");
        }
    }

    #[test]
    fn vectorized_mps_shifts_scalar_work_to_vector() {
        let g = Dataset::FrS.build(Scale::Tiny);
        let (_, scalar) = profile_of(&g, &ModeledAlgo::mps_scalar());
        let (_, vec512) = profile_of(&g, &ModeledAlgo::mps_avx512());
        assert!(vec512.vector_ops > 0.0);
        assert!(vec512.scalar_ops < scalar.scalar_ops);
        assert_eq!(scalar.vector_ops, 0.0);
    }

    #[test]
    fn bmp_working_set_is_bitmap_and_replicated() {
        let g = CsrGraph::from_edge_list(&generators::gnm(640, 2000, 2));
        let (ws, repl) = working_set_of(&g, &ModeledAlgo::bmp_plain());
        assert_eq!(ws, 640.0 / 8.0);
        assert!(repl);
        let (ws_m, repl_m) = working_set_of(&g, &ModeledAlgo::mps_avx2());
        assert_eq!(ws_m, g.dst().len() as f64 * 4.0);
        assert!(!repl_m);
    }

    #[test]
    fn mps_on_skewed_graph_does_less_work_than_baseline() {
        // The DSH effect (Figure 3) at the profile level.
        let g = Dataset::WiS.build(Scale::Tiny);
        let (_, base) = profile_of(&g, &ModeledAlgo::MergeBaseline);
        let (_, mps) = profile_of(
            &g,
            &ModeledAlgo::Mps {
                simd: SimdLevel::Scalar,
                threshold: 50,
            },
        );
        assert!(mps.total_ops() < base.total_ops());
    }
}
