//! The simulated Intel Xeon Phi (Knights Landing) processor backend —
//! and, more generally, any *modeled* shared-memory processor.
//!
//! No KNL is attached to this machine, so the KNL results are produced by a
//! two-step simulation (see DESIGN.md's substitution table):
//!
//! 1. **Functional execution with exact instrumentation.** The real
//!    algorithm (`cnc-cpu`'s sequential drivers with the real kernels from
//!    `cnc-intersect`) runs over the graph with a `CountingMeter`,
//!    producing both the exact common-neighbor counts *and* the exact tally
//!    of scalar/vector operations, streamed bytes and random accesses the
//!    algorithm performs. Nothing about the work is estimated.
//! 2. **Analytic timing.** The tally becomes a `cnc-machine::WorkProfile`
//!    and the machine model (`cnc_machine::estimate`) prices it on the KNL
//!    spec under the chosen thread count and MCDRAM mode.
//!
//! The same runner with the `cpu_server` spec produces the modeled CPU
//! curves of Figure 5 (the container has one core, so measured scaling is
//! impossible; single-thread *wall-clock* numbers come from `cnc-cpu`
//! directly).
//!
//! # Example
//!
//! ```
//! use cnc_graph::datasets::{Dataset, Scale};
//! use cnc_knl::{ModeledAlgo, ModeledProcessor};
//! use cnc_machine::MemMode;
//!
//! let g = Dataset::TwS.build(Scale::Tiny);
//! let knl = ModeledProcessor::knl_for(Dataset::TwS.capacity_scale(&g));
//! let run = knl.run(&g, &ModeledAlgo::mps_avx512(), 256, MemMode::McdramFlat);
//! assert_eq!(run.counts.len(), g.num_directed_edges());
//! assert!(run.report.seconds > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod profiles;
mod runner;

pub use profiles::{
    counts_and_work_of, cpu_kernel_of, execution_graph_of, profile_from_work, profile_of,
    profile_of_prepared, working_set_of,
};
pub use runner::{ModeledAlgo, ModeledProcessor, ModeledRun};
