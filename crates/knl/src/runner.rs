//! The modeled-processor runner.

use cnc_cpu::BmpMode;
use cnc_graph::CsrGraph;
use cnc_intersect::SimdLevel;
use cnc_machine::{cpu_server, estimate, knl, MachineSpec, MemMode, ModelReport, WorkProfile};

use crate::profiles::profile_of;

/// The algorithm variants a modeled processor can run. Mirrors the paper's
/// technique matrix: the baseline **M**, **MPS** at a vector level
/// (`V` toggle = `SimdLevel::Scalar` vs AVX2/AVX-512), and **BMP** with or
/// without **RF**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeledAlgo {
    /// Baseline plain merge (**M**).
    MergeBaseline,
    /// Hybrid merge/pivot-skip (**MPS**), optionally vectorized.
    Mps {
        /// Vector lane configuration for the VB path.
        simd: SimdLevel,
        /// Degree-skew threshold `t`.
        threshold: u32,
    },
    /// Dynamic bitmap index (**BMP**), optionally range-filtered.
    Bmp {
        /// Plain or range-filtered bitmap.
        mode: BmpMode,
    },
}

impl ModeledAlgo {
    /// MPS without vectorization (the `V`-off configuration).
    pub fn mps_scalar() -> Self {
        ModeledAlgo::Mps {
            simd: SimdLevel::Scalar,
            threshold: 50,
        }
    }

    /// MPS with AVX2 (the paper's CPU configuration).
    pub fn mps_avx2() -> Self {
        ModeledAlgo::Mps {
            simd: SimdLevel::Avx2,
            threshold: 50,
        }
    }

    /// MPS with AVX-512 (the paper's KNL configuration).
    pub fn mps_avx512() -> Self {
        ModeledAlgo::Mps {
            simd: SimdLevel::Avx512,
            threshold: 50,
        }
    }

    /// Plain BMP.
    pub fn bmp_plain() -> Self {
        ModeledAlgo::Bmp {
            mode: BmpMode::Plain,
        }
    }

    /// BMP with scale-aware range filtering for a graph of `num_vertices`.
    pub fn bmp_rf(num_vertices: usize) -> Self {
        ModeledAlgo::Bmp {
            mode: BmpMode::rf_scaled(num_vertices),
        }
    }

    /// Paper-style label (`M`, `MPS`, `MPS-AVX512`, `BMP`, `BMP-RF`).
    pub fn label(&self) -> String {
        match self {
            ModeledAlgo::MergeBaseline => "M".into(),
            ModeledAlgo::Mps { simd, .. } => match simd {
                SimdLevel::Scalar => "MPS".into(),
                other => format!("MPS-{}", other.label().to_uppercase()),
            },
            ModeledAlgo::Bmp { mode } => match mode {
                BmpMode::Plain => "BMP".into(),
                BmpMode::RangeFiltered { .. } => "BMP-RF".into(),
            },
        }
    }
}

/// A processor whose elapsed time is modeled rather than measured.
#[derive(Debug, Clone)]
pub struct ModeledProcessor {
    /// The machine model specification (possibly capacity-scaled).
    pub spec: MachineSpec,
}

/// The outcome of a modeled run: exact counts, the measured work profile,
/// and the modeled timing report.
#[derive(Debug, Clone)]
pub struct ModeledRun {
    /// Exact per-edge-offset common neighbor counts.
    pub counts: Vec<u32>,
    /// The exact work the algorithm performed.
    pub profile: WorkProfile,
    /// Modeled elapsed time and its breakdown.
    pub report: ModelReport,
}

impl ModeledProcessor {
    /// The paper's KNL with capacities scaled by `capacity_scale` (use
    /// `Dataset::capacity_scale` so working-set ratios match the paper).
    pub fn knl_for(capacity_scale: f64) -> Self {
        Self {
            spec: knl().scaled(capacity_scale),
        }
    }

    /// The paper's CPU server, capacity-scaled likewise. Used for the
    /// modeled CPU scaling curves of Figure 5.
    pub fn cpu_for(capacity_scale: f64) -> Self {
        Self {
            spec: cpu_server().scaled(capacity_scale),
        }
    }

    /// An unscaled processor from an explicit spec.
    pub fn from_spec(spec: MachineSpec) -> Self {
        Self { spec }
    }

    /// Execute `algo` on `g` functionally and model its elapsed time with
    /// `threads` threads in memory mode `mode`.
    pub fn run(
        &self,
        g: &CsrGraph,
        algo: &ModeledAlgo,
        threads: usize,
        mode: MemMode,
    ) -> ModeledRun {
        let (counts, profile) = profile_of(g, algo);
        let report = estimate(&self.spec, &profile, threads, mode);
        ModeledRun {
            counts,
            profile,
            report,
        }
    }

    /// [`ModeledProcessor::run`] over a shared preparation: BMP executes on
    /// the prepared degree-descending relabel, the merge family on the
    /// original graph — nothing is re-derived here.
    pub fn run_prepared(
        &self,
        prepared: &cnc_graph::PreparedGraph,
        algo: &ModeledAlgo,
        threads: usize,
        mode: MemMode,
    ) -> ModeledRun {
        self.run(
            crate::profiles::execution_graph_of(prepared, algo),
            algo,
            threads,
            mode,
        )
    }

    /// Model timing only, reusing an existing profile (cheap: lets sweeps
    /// over threads / memory modes profile the algorithm once).
    pub fn time_profile(
        &self,
        profile: &WorkProfile,
        threads: usize,
        mode: MemMode,
    ) -> ModelReport {
        estimate(&self.spec, profile, threads, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::{Dataset, Scale};

    fn tw_tiny() -> (CsrGraph, f64) {
        let g = Dataset::TwS.build(Scale::Tiny);
        let f = Dataset::TwS.capacity_scale(&g);
        (g, f)
    }

    #[test]
    fn labels() {
        assert_eq!(ModeledAlgo::MergeBaseline.label(), "M");
        assert_eq!(ModeledAlgo::mps_scalar().label(), "MPS");
        assert_eq!(ModeledAlgo::mps_avx512().label(), "MPS-AVX512");
        assert_eq!(ModeledAlgo::bmp_plain().label(), "BMP");
        assert_eq!(ModeledAlgo::bmp_rf(100).label(), "BMP-RF");
    }

    #[test]
    fn fig3_shape_dsh_speedups_on_skewed_graph() {
        // Figure 3 on the TW analogue: single-threaded M vs MPS vs BMP on
        // both modeled processors; MPS and BMP must beat M clearly, and the
        // BMP gain must exceed the MPS gain (paper: 20.1x/29.3x vs 3.6x/7.1x).
        let (g, f) = tw_tiny();
        for proc_ in [ModeledProcessor::cpu_for(f), ModeledProcessor::knl_for(f)] {
            let m = proc_.run(&g, &ModeledAlgo::MergeBaseline, 1, MemMode::Ddr);
            let mps = proc_.run(&g, &ModeledAlgo::mps_scalar(), 1, MemMode::Ddr);
            let bmp = proc_.run(&g, &ModeledAlgo::bmp_plain(), 1, MemMode::Ddr);
            assert_eq!(m.counts, mps.counts);
            assert_eq!(m.counts, bmp.counts);
            let s_mps = m.report.seconds / mps.report.seconds;
            let s_bmp = m.report.seconds / bmp.report.seconds;
            assert!(
                s_mps > 1.5,
                "{}: MPS vs M only {s_mps:.2}x",
                proc_.spec.name
            );
            assert!(
                s_bmp > s_mps,
                "{}: BMP {s_bmp:.2}x vs MPS {s_mps:.2}x",
                proc_.spec.name
            );
        }
    }

    #[test]
    fn fig4_shape_vectorization_gains() {
        let (g, f) = tw_tiny();
        let knl_p = ModeledProcessor::knl_for(f);
        let cpu_p = ModeledProcessor::cpu_for(f);
        let knl_scalar = knl_p.run(&g, &ModeledAlgo::mps_scalar(), 1, MemMode::Ddr);
        let knl_v = knl_p.time_profile(
            &profile_of(&g, &ModeledAlgo::mps_avx512()).1,
            1,
            MemMode::Ddr,
        );
        let cpu_scalar = cpu_p.run(&g, &ModeledAlgo::mps_scalar(), 1, MemMode::Ddr);
        let cpu_v =
            cpu_p.time_profile(&profile_of(&g, &ModeledAlgo::mps_avx2()).1, 1, MemMode::Ddr);
        let gain_knl = knl_scalar.report.seconds / knl_v.seconds;
        let gain_cpu = cpu_scalar.report.seconds / cpu_v.seconds;
        assert!(gain_cpu > 1.2, "cpu V gain {gain_cpu:.2}");
        assert!(
            gain_knl > gain_cpu,
            "knl {gain_knl:.2} vs cpu {gain_cpu:.2}"
        );
    }

    #[test]
    fn knl_favors_mps_cpu_favors_bmp_at_full_threads() {
        // The paper's headline finding (Summary / Figure 10).
        let (g, f) = tw_tiny();
        let knl_p = ModeledProcessor::knl_for(f);
        let cpu_p = ModeledProcessor::cpu_for(f);
        let (_, mps_prof) = profile_of(&g, &ModeledAlgo::mps_avx512());
        let (_, mps2_prof) = profile_of(&g, &ModeledAlgo::mps_avx2());
        let (_, bmp_prof) = profile_of(&g, &ModeledAlgo::bmp_rf(g.num_vertices()));
        let knl_mps = knl_p
            .time_profile(&mps_prof, 256, MemMode::McdramFlat)
            .seconds;
        let knl_bmp = knl_p
            .time_profile(&bmp_prof, 64, MemMode::McdramFlat)
            .seconds;
        let cpu_mps = cpu_p.time_profile(&mps2_prof, 56, MemMode::Ddr).seconds;
        let cpu_bmp = cpu_p.time_profile(&bmp_prof, 56, MemMode::Ddr).seconds;
        assert!(
            knl_mps < knl_bmp,
            "KNL must favor MPS: {knl_mps} vs {knl_bmp}"
        );
        assert!(
            cpu_bmp < cpu_mps,
            "CPU must favor BMP: {cpu_bmp} vs {cpu_mps}"
        );
    }

    #[test]
    fn time_profile_is_consistent_with_run() {
        let (g, f) = tw_tiny();
        let p = ModeledProcessor::knl_for(f);
        let run = p.run(&g, &ModeledAlgo::mps_avx512(), 64, MemMode::McdramFlat);
        let again = p.time_profile(&run.profile, 64, MemMode::McdramFlat);
        assert_eq!(run.report.seconds, again.seconds);
    }
}
