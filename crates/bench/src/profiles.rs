//! Cached work profiles per dataset — every algorithm is profiled once and
//! the machine models price the same profile under many configurations.

use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::{reorder, CsrGraph};
use cnc_knl::{profile_of, ModeledAlgo};
use cnc_machine::WorkProfile;

/// All the profiles the shared-memory experiments need for one dataset.
///
/// BMP profiles are taken on the degree-descending-reordered graph (the
/// paper's required preprocessing); merge-family profiles on the graph as
/// generated.
pub struct ProfileSet {
    /// The dataset.
    pub dataset: Dataset,
    /// The generated graph.
    pub graph: CsrGraph,
    /// Degree-descending relabeled graph (BMP's input).
    pub reordered: CsrGraph,
    /// Capacity scale vs the paper's original dataset.
    pub capacity_scale: f64,
    /// Baseline M.
    pub m: WorkProfile,
    /// MPS without vectorization.
    pub mps_scalar: WorkProfile,
    /// MPS with 8-lane VB (the CPU's AVX2).
    pub mps_avx2: WorkProfile,
    /// MPS with 16-lane VB (the KNL's AVX-512).
    pub mps_avx512: WorkProfile,
    /// Plain BMP.
    pub bmp: WorkProfile,
    /// Range-filtered BMP.
    pub bmp_rf: WorkProfile,
}

impl ProfileSet {
    /// Build the graph and profile all six algorithm configurations.
    pub fn build(dataset: Dataset, scale: Scale) -> Self {
        let graph = dataset.build(scale);
        let reordered = reorder::degree_descending(&graph).graph;
        let capacity_scale = dataset.capacity_scale(&graph);
        let prof = |g: &CsrGraph, a: &ModeledAlgo| profile_of(g, a).1;
        let n = graph.num_vertices();
        Self {
            capacity_scale,
            m: prof(&graph, &ModeledAlgo::MergeBaseline),
            mps_scalar: prof(&graph, &ModeledAlgo::mps_scalar()),
            mps_avx2: prof(&graph, &ModeledAlgo::mps_avx2()),
            mps_avx512: prof(&graph, &ModeledAlgo::mps_avx512()),
            bmp: prof(&reordered, &ModeledAlgo::bmp_plain()),
            bmp_rf: prof(&reordered, &ModeledAlgo::bmp_rf(n)),
            dataset,
            graph,
            reordered,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_set_builds_consistently() {
        let ps = ProfileSet::build(Dataset::LjS, Scale::Tiny);
        assert!(ps.m.total_ops() >= ps.mps_scalar.total_ops());
        assert!(ps.mps_avx512.vector_ops > 0.0);
        assert!(ps.bmp.ws_replicated_per_thread);
        assert!(!ps.m.ws_replicated_per_thread);
        assert!(ps.capacity_scale > 0.0 && ps.capacity_scale < 1.0);
        assert_eq!(
            ps.graph.num_directed_edges(),
            ps.reordered.num_directed_edges()
        );
    }
}
