//! Cached work profiles per dataset — every algorithm is profiled once and
//! the machine models price the same profile under many configurations.

use std::sync::Arc;

use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::{prepare, CsrGraph, PreparedGraph, ReorderPolicy};
use cnc_knl::{profile_of, ModeledAlgo};
use cnc_machine::WorkProfile;

/// All the profiles the shared-memory experiments need for one dataset.
///
/// The graph itself comes from the process-wide prepared-graph cache
/// (`cnc_graph::prepare`): CSR construction and the degree-descending
/// relabel happen at most once per process — and not at all when the
/// on-disk cache is warm. BMP profiles are taken on the relabeled graph
/// (the paper's required preprocessing); merge-family profiles on the
/// graph as generated.
pub struct ProfileSet {
    /// The dataset.
    pub dataset: Dataset,
    /// The shared preparation (original + relabeled CSR, remap tables,
    /// statistics).
    pub prepared: Arc<PreparedGraph>,
    /// Capacity scale vs the paper's original dataset.
    pub capacity_scale: f64,
    /// Baseline M.
    pub m: WorkProfile,
    /// MPS without vectorization.
    pub mps_scalar: WorkProfile,
    /// MPS with 8-lane VB (the CPU's AVX2).
    pub mps_avx2: WorkProfile,
    /// MPS with 16-lane VB (the KNL's AVX-512).
    pub mps_avx512: WorkProfile,
    /// Plain BMP.
    pub bmp: WorkProfile,
    /// Range-filtered BMP.
    pub bmp_rf: WorkProfile,
}

impl ProfileSet {
    /// Fetch the shared prepared graph and profile all six algorithm
    /// configurations.
    pub fn build(dataset: Dataset, scale: Scale) -> Self {
        let prepared = prepare::prepared(dataset, scale, ReorderPolicy::DegreeDescending);
        let graph = prepared.graph();
        let reordered = &prepared
            .reordered()
            .expect("prepared with ReorderPolicy::DegreeDescending")
            .graph;
        let capacity_scale = prepared.capacity_scale();
        let prof = |g: &CsrGraph, a: &ModeledAlgo| profile_of(g, a).1;
        let n = graph.num_vertices();
        Self {
            capacity_scale,
            m: prof(graph, &ModeledAlgo::MergeBaseline),
            mps_scalar: prof(graph, &ModeledAlgo::mps_scalar()),
            mps_avx2: prof(graph, &ModeledAlgo::mps_avx2()),
            mps_avx512: prof(graph, &ModeledAlgo::mps_avx512()),
            bmp: prof(reordered, &ModeledAlgo::bmp_plain()),
            bmp_rf: prof(reordered, &ModeledAlgo::bmp_rf(n)),
            dataset,
            prepared,
        }
    }

    /// The generated graph (original vertex ids).
    pub fn graph(&self) -> &CsrGraph {
        self.prepared.graph()
    }

    /// The degree-descending relabeled graph (BMP's input).
    pub fn reordered(&self) -> &CsrGraph {
        &self
            .prepared
            .reordered()
            .expect("prepared with ReorderPolicy::DegreeDescending")
            .graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_set_builds_consistently() {
        let ps = ProfileSet::build(Dataset::LjS, Scale::Tiny);
        assert!(ps.m.total_ops() >= ps.mps_scalar.total_ops());
        assert!(ps.mps_avx512.vector_ops > 0.0);
        assert!(ps.bmp.ws_replicated_per_thread);
        assert!(!ps.m.ws_replicated_per_thread);
        assert!(ps.capacity_scale > 0.0 && ps.capacity_scale < 1.0);
        assert_eq!(
            ps.graph().num_directed_edges(),
            ps.reordered().num_directed_edges()
        );
    }

    #[test]
    fn profile_sets_share_one_preparation() {
        // Two sets for the same key must share the cached Arc rather than
        // rebuilding the graph.
        let a = ProfileSet::build(Dataset::OrS, Scale::Tiny);
        let before = cnc_graph::prepare::metrics();
        let b = ProfileSet::build(Dataset::OrS, Scale::Tiny);
        let d = cnc_graph::prepare::metrics().since(&before);
        assert!(Arc::ptr_eq(&a.prepared, &b.prepared));
        assert_eq!(d.graph_builds, 0);
        assert_eq!(d.reorders, 0);
        assert_eq!(d.mem_hits, 1);
    }
}
