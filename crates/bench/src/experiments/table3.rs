//! **Table 3** — memory consumption of each thread-local bitmap (plain big
//! bitmap and the RF small bitmap).

use cnc_graph::datasets::Dataset;
use cnc_intersect::{scaled_rf_ratio, RfBitmap};

use crate::output::{fmt_bytes, ExpOutput};

use super::Ctx;

/// Produce the table.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "table3",
        "Memory consumption of each thread-local bitmap",
        &["dataset", "big bitmap", "small (RF) bitmap", "RF ratio"],
    );
    for d in Dataset::ALL {
        let ps = ctx.profiles(d);
        let n = ps.graph().num_vertices();
        let ratio = scaled_rf_ratio(n);
        let rf = RfBitmap::with_ratio(n, ratio);
        let (big, small) = rf.bytes();
        t.row(vec![
            d.name().into(),
            fmt_bytes(big as u64),
            fmt_bytes(small as u64),
            ratio.to_string(),
        ]);
    }
    t.note("paper uses ratio 4096 at |V| ≈ 40M (small bitmap fits L1); the scale-aware rule reproduces that choice at full size");
    t.note("big bitmap is |V|/8 bytes (paper: 5.2MB for TW, 15.6MB for FR)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    #[test]
    fn bitmap_bytes_follow_vertex_count() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 5);
        // FR has the most vertices, so the largest big bitmap — mirroring
        // the paper where FR's bitmap is 3x TW's.
        let fr = t.rows.iter().find(|r| r[0] == "fr-s").unwrap();
        let tw = t.rows.iter().find(|r| r[0] == "tw-s").unwrap();
        let ctx2 = Ctx::new(Scale::Tiny);
        let fr_n = ctx2.profiles(Dataset::FrS).graph().num_vertices();
        let tw_n = ctx2.profiles(Dataset::TwS).graph().num_vertices();
        assert!(fr_n > tw_n, "fr {fr:?} tw {tw:?}");
    }
}
