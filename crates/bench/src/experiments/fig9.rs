//! **Figure 9** — block size tuning: warps per thread block from 1 to 32
//! for GPU MPS and BMP.

use cnc_gpu::{GpuAlgo, GpuRunConfig, GpuRunner, LaunchConfig};

use crate::output::{fmt_secs, ExpOutput};

use super::{Ctx, TECHNIQUE_DATASETS};

/// Warps-per-block sweep points.
pub const WARP_POINTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Produce the figure's series.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "fig9",
        "Block size tuning: warps per thread block (modeled)",
        &[
            "dataset",
            "algorithm",
            "warps/block",
            "occupancy",
            "bitmaps",
            "passes",
            "kernel time",
        ],
    );
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        let gpu = GpuRunner::titan_xp_for(ps.capacity_scale);
        for (algo, label, graph) in [
            (GpuAlgo::Mps, "MPS", ps.graph()),
            (GpuAlgo::Bmp { rf: false }, "BMP", ps.reordered()),
        ] {
            for wpb in WARP_POINTS {
                let cfg = GpuRunConfig {
                    launch: LaunchConfig {
                        warps_per_block: wpb,
                        skew_threshold: 50,
                    },
                    ..GpuRunConfig::default()
                };
                let run = gpu.run(graph, algo, &cfg);
                let bitmaps = if matches!(algo, GpuAlgo::Bmp { .. }) {
                    gpu.spec.bitmap_pool_size(wpb).to_string()
                } else {
                    "-".into()
                };
                t.row(vec![
                    ps.dataset.name().into(),
                    label.into(),
                    wpb.to_string(),
                    format!("{:.0}%", 100.0 * gpu.spec.occupancy(wpb)),
                    bitmaps,
                    run.report.passes.to_string(),
                    fmt_secs(run.report.kernel.seconds),
                ]);
            }
        }
    }
    t.note("paper: MPS curves are flat (memory-bound); BMP improves 1→4 warps (occupancy), and on FR 32 warps is 2x faster than 4 (fewer bitmaps → fewer passes)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    fn secs(s: &str) -> f64 {
        if let Some(v) = s.strip_suffix("us") {
            v.parse::<f64>().unwrap() * 1e-6
        } else if let Some(v) = s.strip_suffix("ms") {
            v.parse::<f64>().unwrap() * 1e-3
        } else {
            s.trim_end_matches('s').parse().unwrap()
        }
    }

    #[test]
    fn block_size_shapes() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        let time = |ds: &str, algo: &str, wpb: usize| {
            t.rows
                .iter()
                .find(|r| r[0] == ds && r[1] == algo && r[2] == wpb.to_string())
                .map(|r| secs(&r[6]))
                .unwrap()
        };
        // BMP: 4 warps/block must beat 1 (occupancy hides probe latency) —
        // unless already bandwidth-bound, in which case they tie; require
        // no regression and a win on at least one dataset.
        let mut bmp_wins = 0;
        for ds in ["tw-s", "fr-s"] {
            assert!(
                time(ds, "BMP", 4) <= time(ds, "BMP", 1) * 1.05,
                "{ds}: BMP must not regress 1→4 warps"
            );
            if time(ds, "BMP", 4) < time(ds, "BMP", 1) * 0.9 {
                bmp_wins += 1;
            }
        }
        assert!(bmp_wins >= 1, "occupancy must matter somewhere");
        // MPS is insensitive to block size.
        for ds in ["tw-s", "fr-s"] {
            let spread = time(ds, "MPS", 32) / time(ds, "MPS", 1);
            assert!((0.5..=2.0).contains(&spread), "{ds}: MPS spread {spread}");
        }
        // Bitmap pool shrinks with bigger blocks (the Figure 9 FR effect).
        let bitmaps = |wpb: usize| -> usize {
            t.rows
                .iter()
                .find(|r| r[0] == "fr-s" && r[1] == "BMP" && r[2] == wpb.to_string())
                .map(|r| r[4].parse().unwrap())
                .unwrap()
        };
        assert!(bitmaps(32) < bitmaps(4));
    }
}
