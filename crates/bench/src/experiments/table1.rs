//! **Table 1** — real-world graph statistics, for our scaled analogues next
//! to the paper's originals.

use cnc_graph::datasets::Dataset;

use crate::output::ExpOutput;

use super::Ctx;

/// Produce the table.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "table1",
        "Graph statistics (scaled analogues vs paper originals)",
        &[
            "dataset",
            "|V|",
            "|E| (und.)",
            "avg d",
            "max d",
            "paper |V|",
            "paper |E|",
        ],
    );
    for d in Dataset::ALL {
        let ps = ctx.profiles(d);
        let s = ps.prepared.stats();
        t.row(vec![
            d.name().into(),
            s.num_vertices.to_string(),
            ps.graph().num_undirected_edges().to_string(),
            format!("{:.1}", s.avg_degree),
            s.max_degree.to_string(),
            d.paper_vertices().to_string(),
            d.paper_edges().to_string(),
        ]);
    }
    t.note("avg d counts directed edge slots per vertex, matching the paper's d̄ column");
    t.note(
        "analogues are seeded generators tuned to the paper's degree-shape regimes; see DESIGN.md",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    #[test]
    fn five_rows_with_sane_stats() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let v: usize = row[1].parse().unwrap();
            let e: usize = row[2].parse().unwrap();
            assert!(v > 0 && e > 0, "{row:?}");
            let avg: f64 = row[3].parse().unwrap();
            let max: usize = row[4].parse().unwrap();
            assert!(max as f64 >= avg);
        }
    }
}
