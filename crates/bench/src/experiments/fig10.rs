//! **Figure 10** — elapsed time of the optimized algorithms on all three
//! processors across the five datasets: the paper's headline comparison.

use cnc_gpu::{GpuAlgo, GpuRunConfig, GpuRunner};
use cnc_graph::datasets::Dataset;
use cnc_knl::ModeledProcessor;
use cnc_machine::MemMode;

use crate::output::{fmt_secs, ExpOutput};
use crate::profiles::ProfileSet;

use super::Ctx;

/// Modeled elapsed seconds of the six optimized configurations on one
/// dataset: `(CPU-MPS, CPU-BMP, KNL-MPS, KNL-BMP, GPU-MPS, GPU-BMP)`.
pub fn six_configs(ps: &ProfileSet) -> [f64; 6] {
    let cpu = ModeledProcessor::cpu_for(ps.capacity_scale);
    let knl = ModeledProcessor::knl_for(ps.capacity_scale);
    let gpu = GpuRunner::titan_xp_for(ps.capacity_scale);
    let cfg = GpuRunConfig::default();
    let cpu_mps = cpu.time_profile(&ps.mps_avx2, 56, MemMode::Ddr).seconds;
    let cpu_bmp = cpu.time_profile(&ps.bmp_rf, 56, MemMode::Ddr).seconds;
    let knl_mps = knl
        .time_profile(&ps.mps_avx512, 256, MemMode::McdramFlat)
        .seconds;
    let knl_bmp = knl
        .time_profile(&ps.bmp_rf, 64, MemMode::McdramFlat)
        .seconds;
    let gpu_mps = gpu.run(ps.graph(), GpuAlgo::Mps, &cfg).report.total_seconds;
    let gpu_bmp = gpu
        .run(ps.reordered(), GpuAlgo::Bmp { rf: true }, &cfg)
        .report
        .total_seconds;
    [cpu_mps, cpu_bmp, knl_mps, knl_bmp, gpu_mps, gpu_bmp]
}

/// Configuration labels in column order.
pub const CONFIGS: [&str; 6] = [
    "CPU-MPS", "CPU-BMP", "KNL-MPS", "KNL-BMP", "GPU-MPS", "GPU-BMP",
];

/// Produce the figure's series.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut header: Vec<&str> = vec!["dataset"];
    header.extend(CONFIGS);
    header.push("best");
    header.push("worst");
    let mut t = ExpOutput::new(
        "fig10",
        "Optimized algorithms on three processors, five datasets (modeled)",
        &header,
    );
    for d in Dataset::ALL {
        let ps = ctx.profiles(d);
        let secs = six_configs(&ps);
        let best = secs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let worst = secs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let mut row = vec![d.name().to_string()];
        row.extend(secs.iter().map(|&s| fmt_secs(s)));
        row.push(CONFIGS[best].into());
        row.push(CONFIGS[worst].into());
        t.row(row);
    }
    t.note("paper findings: CPU favors BMP; KNL favors MPS; GPU favors BMP; best overall is KNL-MPS or GPU-BMP; GPU-MPS is always slowest");
    t.note("paper: 21.5s for TW (GPU-BMP), 34s for FR (KNL-MPS); best-vs-best within 2.5x across processors");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    #[test]
    fn headline_findings_hold() {
        let ctx = Ctx::new(Scale::Tiny);
        // The per-processor preferences on the two technique datasets.
        for d in [Dataset::TwS, Dataset::FrS] {
            let ps = ctx.profiles(d);
            let [cpu_mps, cpu_bmp, knl_mps, knl_bmp, gpu_mps, gpu_bmp] = six_configs(&ps);
            assert!(knl_mps < knl_bmp, "{}: KNL favors MPS", d.name());
            assert!(gpu_bmp < gpu_mps, "{}: GPU favors BMP", d.name());
            if d == Dataset::TwS {
                // CPU favors BMP on the skewed graph (paper: 40.4 vs 70.3).
                assert!(cpu_bmp < cpu_mps, "tw-s: CPU favors BMP");
                // GPU-BMP is the overall winner (paper: 21.5 s, 1.9x over
                // CPU-BMP), GPU-MPS the overall loser.
                assert!(gpu_bmp < cpu_bmp && gpu_bmp < knl_mps, "tw-s: GPU-BMP best");
                let others = [cpu_mps, cpu_bmp, knl_mps, knl_bmp, gpu_bmp];
                assert!(
                    others.iter().all(|&o| o <= gpu_mps),
                    "tw-s: GPU-MPS must be slowest"
                );
            } else {
                // FR: the paper's crossover — KNL-MPS wins on the large
                // uniform graph (multi-pass UM migration hurts the GPU).
                assert!(knl_mps < gpu_bmp, "fr-s: KNL-MPS best (paper: 34 s)");
                assert!(knl_mps < cpu_bmp && knl_mps < cpu_mps, "fr-s: KNL-MPS best");
                // Documented deviation (EXPERIMENTS.md): on FR our modeled
                // CPU-MPS edges out CPU-BMP (the paper has them within 7%),
                // and KNL-BMP — the paper's second-worst configuration —
                // swaps ranks with GPU-MPS. Both bad configurations must
                // still be the two slowest.
                let mut all = [cpu_mps, cpu_bmp, knl_mps, knl_bmp, gpu_mps, gpu_bmp];
                all.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert!(gpu_mps >= all[4], "fr-s: GPU-MPS in the slowest two");
                assert!(knl_bmp >= all[4], "fr-s: KNL-BMP in the slowest two");
                // The O(1) reverse-edge index removed a memory cost the
                // two kernels shared, widening the modeled gap to ~2.1x.
                assert!(
                    cpu_bmp < cpu_mps * 2.5,
                    "fr-s: CPU-BMP within 2.5x of CPU-MPS (paper: within 7%)"
                );
            }
        }
    }

    #[test]
    fn five_rows_with_best_and_worst() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            assert!(CONFIGS.contains(&row[7].as_str()));
            assert!(CONFIGS.contains(&row[8].as_str()));
        }
    }
}
