//! **Table 6** — memory consumption of the GPU data structures and the
//! estimated number of passes.

use cnc_gpu::{estimate_passes, titan_xp, DeviceBitmapPool, LaunchConfig};

use crate::output::{fmt_bytes, ExpOutput};

use super::{Ctx, TECHNIQUE_DATASETS};

/// Produce the table.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "table6",
        "GPU memory consumption and estimated passes",
        &[
            "dataset",
            "algorithm",
            "Mem_CSR",
            "Mem_B_A",
            "budget/pass",
            "est. passes",
        ],
    );
    let launch = LaunchConfig::default();
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        let spec = titan_xp().scaled(ps.capacity_scale);
        for algo in ["MPS", "BMP"] {
            let bitmap_bytes = if algo == "BMP" {
                DeviceBitmapPool::new(
                    spec.bitmap_pool_size(launch.warps_per_block),
                    ps.graph().num_vertices(),
                )
                .device_bytes()
            } else {
                0
            };
            let plan = estimate_passes(ps.graph(), &spec, bitmap_bytes);
            t.row(vec![
                ps.dataset.name().into(),
                algo.into(),
                fmt_bytes(plan.csr_bytes),
                fmt_bytes(plan.bitmap_bytes),
                fmt_bytes(plan.budget_bytes),
                plan.passes.to_string(),
            ]);
        }
    }
    t.note("paper: TW fits in one pass for both algorithms; FR needs 2 (MPS) and 3 (BMP) passes");
    t.note("device capacities are scaled by the dataset's size ratio so the CSR/global-memory proportions match the paper");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    #[test]
    fn pass_shape_matches_paper() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        let passes = |ds: &str, algo: &str| -> usize {
            t.rows
                .iter()
                .find(|r| r[0] == ds && r[1] == algo)
                .map(|r| r[5].parse().unwrap())
                .unwrap()
        };
        // The Table 6 shape: FR-BMP needs the most passes; BMP never needs
        // fewer than MPS (the bitmap pool only shrinks the budget).
        assert!(passes("fr-s", "BMP") >= passes("fr-s", "MPS"));
        assert!(passes("fr-s", "BMP") >= passes("tw-s", "BMP"));
        assert!(
            passes("fr-s", "BMP") >= 2,
            "FR must not fit in one BMP pass"
        );
        assert!(passes("tw-s", "MPS") <= 2);
    }
}
