//! One module per table/figure of the paper's evaluation.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use cnc_graph::datasets::{Dataset, Scale};

use crate::output::ExpOutput;
use crate::profiles::ProfileSet;

pub mod fig10;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;

/// Shared experiment context: the scale plus a per-dataset profile cache so
/// each algorithm is executed/instrumented once per process.
pub struct Ctx {
    /// Dataset scale for this run.
    pub scale: Scale,
    cache: RefCell<HashMap<Dataset, Rc<ProfileSet>>>,
}

impl Ctx {
    /// A context at the given scale.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            cache: RefCell::new(HashMap::new()),
        }
    }

    /// The cached profile set for a dataset (built on first use).
    pub fn profiles(&self, d: Dataset) -> Rc<ProfileSet> {
        if let Some(p) = self.cache.borrow().get(&d) {
            return Rc::clone(p);
        }
        let p = Rc::new(ProfileSet::build(d, self.scale));
        self.cache.borrow_mut().insert(d, Rc::clone(&p));
        p
    }
}

/// The two datasets the paper uses for the per-technique studies.
pub const TECHNIQUE_DATASETS: [Dataset; 2] = [Dataset::TwS, Dataset::FrS];

/// All experiment ids, in paper order.
pub const ALL: &[&str] = &[
    "table1", "table2", "fig3", "fig4", "fig5", "table3", "fig6", "fig7", "table4", "table5",
    "table6", "fig8", "table7", "fig9", "fig10",
];

/// Run one experiment by id.
pub fn run(name: &str, ctx: &Ctx) -> Option<ExpOutput> {
    Some(match name {
        "table1" => table1::run(ctx),
        "table2" => table2::run(ctx),
        "table3" => table3::run(ctx),
        "table4" => table4::run(ctx),
        "table5" => table5::run(ctx),
        "table6" => table6::run(ctx),
        "table7" => table7::run(ctx),
        "fig3" => fig3::run(ctx),
        "fig4" => fig4::run(ctx),
        "fig5" => fig5::run(ctx),
        "fig6" => fig6::run(ctx),
        "fig7" => fig7::run(ctx),
        "fig8" => fig8::run(ctx),
        "fig9" => fig9::run(ctx),
        "fig10" => fig10::run(ctx),
        _ => return None,
    })
}
