//! **Figure 4** — effect of vectorization (single-threaded): MPS vs
//! vectorized MPS (AVX2 on the CPU, AVX-512 on the KNL) vs BMP.

use cnc_knl::ModeledProcessor;
use cnc_machine::MemMode;

use crate::output::{fmt_secs, fmt_x, ExpOutput};

use super::{Ctx, TECHNIQUE_DATASETS};

/// Produce the figure's series.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "fig4",
        "Vectorization, single-threaded (modeled)",
        &[
            "dataset",
            "processor",
            "MPS",
            "MPS-V",
            "BMP",
            "V gain",
            "MPS-V vs BMP",
        ],
    );
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        let rows = [
            (
                "CPU",
                ModeledProcessor::cpu_for(ps.capacity_scale),
                &ps.mps_avx2,
            ),
            (
                "KNL",
                ModeledProcessor::knl_for(ps.capacity_scale),
                &ps.mps_avx512,
            ),
        ];
        for (label, proc_, vec_profile) in rows {
            let t_mps = proc_.time_profile(&ps.mps_scalar, 1, MemMode::Ddr).seconds;
            let t_v = proc_.time_profile(vec_profile, 1, MemMode::Ddr).seconds;
            let t_bmp = proc_.time_profile(&ps.bmp, 1, MemMode::Ddr).seconds;
            t.row(vec![
                ps.dataset.name().into(),
                label.into(),
                fmt_secs(t_mps),
                fmt_secs(t_v),
                fmt_secs(t_bmp),
                fmt_x(t_mps / t_v),
                fmt_x(t_bmp / t_v),
            ]);
        }
    }
    t.note("paper: AVX2 gains 1.9-2.0x on the CPU; AVX-512 gains 2.5-2.6x on the KNL");
    t.note("paper: vectorized MPS still loses to BMP on TW but beats it ~2.1x on FR (KNL)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    fn parse_x(s: &str) -> f64 {
        s.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn vectorization_gains_and_knl_advantage() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        let mut cpu_gain = 0.0;
        let mut knl_gain = 0.0;
        for row in &t.rows {
            let gain = parse_x(&row[5]);
            assert!(gain > 1.1, "vectorization must help: {row:?}");
            if row[0] == "fr-s" {
                match row[1].as_str() {
                    "CPU" => cpu_gain = gain,
                    "KNL" => knl_gain = gain,
                    _ => {}
                }
            }
        }
        assert!(
            knl_gain > cpu_gain,
            "wider registers gain more on KNL: {knl_gain} vs {cpu_gain}"
        );
    }
}
