//! **Table 4** — cumulative technique comparison against the baseline M:
//! `T_M`, `T_MPS`, `T_MPS+V`, `T_MPS+V+P`, `T_MPS+V+P+HBW`, `T_BMP`,
//! `T_BMP+P`, `T_BMP+P+RF`, `T_BMP+P+RF+HBW`, plus the best speedups.

use cnc_knl::ModeledProcessor;
use cnc_machine::MemMode;

use crate::output::{fmt_secs, fmt_x, ExpOutput};
use crate::profiles::ProfileSet;

use super::{Ctx, TECHNIQUE_DATASETS};

/// The modeled seconds for every Table 4 row on one processor.
pub struct Column {
    /// Processor label.
    pub processor: &'static str,
    /// `(row label, seconds)` in paper order; HBW rows are `None` on the
    /// CPU (no MCDRAM).
    pub rows: Vec<(&'static str, Option<f64>)>,
}

/// Compute one Table 4 column.
pub fn column(ps: &ProfileSet, processor: &'static str) -> Column {
    let (proc_, full_threads, vec_profile, has_hbw, bmp_threads) = match processor {
        "CPU" => (
            ModeledProcessor::cpu_for(ps.capacity_scale),
            56usize,
            &ps.mps_avx2,
            false,
            56usize,
        ),
        "KNL" => (
            ModeledProcessor::knl_for(ps.capacity_scale),
            256,
            &ps.mps_avx512,
            true,
            64,
        ),
        _ => panic!("unknown processor {processor}"),
    };
    let tp = |p, threads, mode| proc_.time_profile(p, threads, mode).seconds;
    let rows = vec![
        ("T_M", Some(tp(&ps.m, 1, MemMode::Ddr))),
        ("T_MPS", Some(tp(&ps.mps_scalar, 1, MemMode::Ddr))),
        ("T_MPS+V", Some(tp(vec_profile, 1, MemMode::Ddr))),
        (
            "T_MPS+V+P",
            Some(tp(vec_profile, full_threads, MemMode::Ddr)),
        ),
        (
            "T_MPS+V+P+HBW",
            has_hbw.then(|| tp(vec_profile, full_threads, MemMode::McdramFlat)),
        ),
        ("T_BMP", Some(tp(&ps.bmp, 1, MemMode::Ddr))),
        ("T_BMP+P", Some(tp(&ps.bmp, bmp_threads, MemMode::Ddr))),
        (
            "T_BMP+P+RF",
            Some(tp(&ps.bmp_rf, bmp_threads, MemMode::Ddr)),
        ),
        (
            "T_BMP+P+RF+HBW",
            has_hbw.then(|| tp(&ps.bmp_rf, bmp_threads, MemMode::McdramFlat)),
        ),
    ];
    Column { processor, rows }
}

/// Produce the table.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "table4",
        "Cumulative technique comparison vs baseline M (modeled seconds)",
        &["row", "TW/CPU", "TW/KNL", "FR/CPU", "FR/KNL"],
    );
    let mut columns = Vec::new();
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        columns.push(column(&ps, "CPU"));
        columns.push(column(&ps, "KNL"));
    }
    let labels: Vec<&str> = columns[0].rows.iter().map(|(l, _)| *l).collect();
    for (i, label) in labels.iter().enumerate() {
        let mut row = vec![label.to_string()];
        for col in &columns {
            row.push(col.rows[i].1.map_or("N/A".into(), fmt_secs));
        }
        t.row(row);
    }
    // Best speedups over M, matching the table's last two rows.
    let mut mps_row = vec!["best MPS speedup".to_string()];
    let mut bmp_row = vec!["best BMP speedup".to_string()];
    for col in &columns {
        let m = col.rows[0].1.unwrap();
        let best_mps = col.rows[1..5]
            .iter()
            .filter_map(|(_, s)| *s)
            .fold(f64::INFINITY, f64::min);
        let best_bmp = col.rows[5..]
            .iter()
            .filter_map(|(_, s)| *s)
            .fold(f64::INFINITY, f64::min);
        mps_row.push(fmt_x(m / best_mps));
        bmp_row.push(fmt_x(m / best_bmp));
    }
    t.row(mps_row);
    t.row(bmp_row);
    t.note("paper (TW): best MPS speedup 286x (CPU) / 2057x (KNL); best BMP 497x / 1583x");
    t.note("paper (FR): best MPS speedup 66x / 330x; best BMP 71x / 121x");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::{Dataset, Scale};

    #[test]
    fn techniques_accumulate_monotonically_on_tw() {
        let ctx = Ctx::new(Scale::Tiny);
        let ps = ctx.profiles(Dataset::TwS);
        for proc_ in ["CPU", "KNL"] {
            let col = column(&ps, proc_);
            let sec = |label: &str| {
                col.rows
                    .iter()
                    .find(|(l, _)| *l == label)
                    .and_then(|(_, s)| *s)
            };
            // Each added technique must not slow the skewed dataset down.
            let tm = sec("T_M").unwrap();
            let tmps = sec("T_MPS").unwrap();
            let tv = sec("T_MPS+V").unwrap();
            let tp = sec("T_MPS+V+P").unwrap();
            assert!(tmps < tm, "{proc_}: DSH must help on TW");
            assert!(tv < tmps, "{proc_}: V must help");
            assert!(tp < tv, "{proc_}: P must help");
            let tbmp = sec("T_BMP").unwrap();
            let tbp = sec("T_BMP+P").unwrap();
            assert!(tbmp < tm && tbp < tbmp, "{proc_}: BMP chain");
            if proc_ == "KNL" {
                assert!(sec("T_MPS+V+P+HBW").unwrap() < tp, "HBW helps MPS");
            } else {
                assert!(sec("T_MPS+V+P+HBW").is_none());
            }
        }
    }

    #[test]
    fn full_table_has_eleven_rows() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 11); // 9 technique rows + 2 speedup rows
        assert!(t.rows[9][0].contains("MPS"));
    }
}
