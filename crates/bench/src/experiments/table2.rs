//! **Table 2** — percentage of highly skewed set intersections
//! (`d_u/d_v > 50` with `d_u > d_v`) per dataset.

use cnc_graph::datasets::Dataset;

use crate::output::ExpOutput;

use super::Ctx;

/// Produce the table.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "table2",
        "Percentage of highly skewed set intersections (ratio > 50)",
        &["dataset", "skewed %"],
    );
    for d in Dataset::ALL {
        let ps = ctx.profiles(d);
        let pct = ps.prepared.skew_pct();
        t.row(vec![d.name().into(), format!("{pct:.1}")]);
    }
    t.note("paper reports ~31% for twitter; WI/TW skew-heavy, LJ/OR/FR low");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    #[test]
    fn skew_ordering_matches_paper_regimes() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        let pct: std::collections::HashMap<String, f64> = t
            .rows
            .iter()
            .map(|r| (r[0].clone(), r[1].parse().unwrap()))
            .collect();
        assert!(pct["tw-s"] > pct["fr-s"], "{pct:?}");
        assert!(pct["wi-s"] > pct["fr-s"], "{pct:?}");
        assert!(pct["fr-s"] < 2.0, "{pct:?}");
    }
}
