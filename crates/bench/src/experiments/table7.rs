//! **Table 7** — effect of bitmap range filtering on the GPU (small bitmap
//! in shared memory).

use cnc_gpu::{GpuAlgo, GpuRunConfig, GpuRunner};

use crate::output::{fmt_secs, fmt_x, ExpOutput};

use super::{Ctx, TECHNIQUE_DATASETS};

/// Produce the table.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "table7",
        "GPU bitmap range filtering (modeled)",
        &[
            "dataset",
            "BMP",
            "BMP-RF",
            "RF speedup",
            "global probes saved",
        ],
    );
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        let gpu = GpuRunner::titan_xp_for(ps.capacity_scale);
        let cfg = GpuRunConfig::default();
        let plain = gpu.run(ps.reordered(), GpuAlgo::Bmp { rf: false }, &cfg);
        let rf = gpu.run(ps.reordered(), GpuAlgo::Bmp { rf: true }, &cfg);
        assert_eq!(plain.counts, rf.counts);
        let saved = 100.0
            * (1.0
                - rf.report.stats.scattered_trans as f64
                    / plain.report.stats.scattered_trans.max(1) as f64);
        t.row(vec![
            ps.dataset.name().into(),
            fmt_secs(plain.report.kernel.seconds),
            fmt_secs(rf.report.kernel.seconds),
            fmt_x(plain.report.kernel.seconds / rf.report.kernel.seconds),
            format!("{saved:.0}%"),
        ]);
    }
    t.note("paper: RF speeds BMP up 1.9x on both TW and FR (fewer global memory loads)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    #[test]
    fn rf_reduces_probes_and_time() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        for row in &t.rows {
            let x: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(x >= 1.0, "RF must not slow the GPU down: {row:?}");
            let saved: f64 = row[4].trim_end_matches('%').parse().unwrap();
            assert!(saved > 10.0, "RF must cut global probes: {row:?}");
        }
    }
}
