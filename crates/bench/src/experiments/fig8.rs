//! **Figure 8** — effect of the number of passes on GPU elapsed time.
//! Too few passes on the big graph → unified-memory thrashing; more passes
//! than estimated → mild re-streaming overhead.

use cnc_gpu::{GpuAlgo, GpuRunConfig, GpuRunner};

use crate::output::{fmt_secs, ExpOutput};

use super::{Ctx, TECHNIQUE_DATASETS};

/// Pass counts swept (the paper sweeps around its estimate).
pub const PASS_POINTS: [usize; 5] = [1, 2, 3, 4, 6];

/// Produce the figure's series.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "fig8",
        "GPU elapsed time vs number of passes (modeled)",
        &[
            "dataset",
            "algorithm",
            "passes",
            "estimated",
            "kernel time",
            "UM faults",
        ],
    );
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        let gpu = GpuRunner::titan_xp_for(ps.capacity_scale);
        for (algo, label, graph) in [
            (GpuAlgo::Mps, "MPS", ps.graph()),
            (GpuAlgo::Bmp { rf: false }, "BMP", ps.reordered()),
        ] {
            // Discover the estimate from a default run.
            let est = gpu
                .run(graph, algo, &GpuRunConfig::default())
                .report
                .plan
                .passes;
            for passes in PASS_POINTS {
                let run = gpu.run(
                    graph,
                    algo,
                    &GpuRunConfig {
                        passes: Some(passes),
                        ..GpuRunConfig::default()
                    },
                );
                t.row(vec![
                    ps.dataset.name().into(),
                    label.into(),
                    passes.to_string(),
                    if passes == est {
                        "<=est".into()
                    } else {
                        String::new()
                    },
                    fmt_secs(run.report.kernel.seconds),
                    run.report.faults.to_string(),
                ]);
            }
        }
    }
    t.note("paper: on TW both curves rise slightly with more passes; on FR, BMP with <3 passes thrashes (aborted after 1h)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    fn secs(s: &str) -> f64 {
        if let Some(v) = s.strip_suffix("us") {
            v.parse::<f64>().unwrap() * 1e-6
        } else if let Some(v) = s.strip_suffix("ms") {
            v.parse::<f64>().unwrap() * 1e-3
        } else {
            s.trim_end_matches('s').parse().unwrap()
        }
    }

    #[test]
    fn thrashing_cliff_on_fr_bmp() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        let time = |ds: &str, algo: &str, p: usize| {
            t.rows
                .iter()
                .find(|r| r[0] == ds && r[1] == algo && r[2] == p.to_string())
                .map(|r| secs(&r[4]))
                .unwrap()
        };
        let faults = |ds: &str, algo: &str, p: usize| -> u64 {
            t.rows
                .iter()
                .find(|r| r[0] == ds && r[1] == algo && r[2] == p.to_string())
                .map(|r| r[5].parse().unwrap())
                .unwrap()
        };
        // FR-BMP at 1 pass must fault far more than at enough passes
        // (Figure 8's failure region).
        assert!(
            faults("fr-s", "BMP", 1) > 3 * faults("fr-s", "BMP", 4),
            "thrashing must explode faults: {} vs {}",
            faults("fr-s", "BMP", 1),
            faults("fr-s", "BMP", 4)
        );
        assert!(
            time("fr-s", "BMP", 1) > 2.0 * time("fr-s", "BMP", 4),
            "thrashing must dominate elapsed time"
        );
        // On the smaller TW everything fits: pass count changes little.
        let t1 = time("tw-s", "MPS", 1);
        let t6 = time("tw-s", "MPS", 6);
        assert!(t6 < 3.0 * t1, "TW-MPS must not cliff: {t1} vs {t6}");
    }
}
