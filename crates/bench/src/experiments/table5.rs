//! **Table 5** — post-processing time on the CPU with and without the
//! co-processing technique (the reverse-offset assignment hidden under the
//! GPU kernels).

use cnc_gpu::{GpuAlgo, GpuRunConfig, GpuRunner};

use crate::output::{fmt_secs, fmt_x, ExpOutput};

use super::{Ctx, TECHNIQUE_DATASETS};

/// Produce the table.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "table5",
        "Visible post-processing time on the CPU (modeled on the paper host)",
        &["dataset", "without CP", "with CP", "reduction"],
    );
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        let gpu = GpuRunner::titan_xp_for(ps.capacity_scale);
        let algo = GpuAlgo::Bmp { rf: true };
        let without = gpu.run(
            ps.reordered(),
            algo,
            &GpuRunConfig {
                coprocess: false,
                ..GpuRunConfig::default()
            },
        );
        let with = gpu.run(ps.reordered(), algo, &GpuRunConfig::default());
        assert_eq!(with.counts, without.counts);
        t.row(vec![
            ps.dataset.name().into(),
            fmt_secs(without.report.postprocess_visible_s),
            fmt_secs(with.report.postprocess_visible_s),
            fmt_x(
                without.report.postprocess_visible_s / with.report.postprocess_visible_s.max(1e-12),
            ),
        ]);
    }
    t.note("paper: 5.6s → 0.9s (TW) and 19.0s → 3.8s (FR): >80% of post-processing hidden");
    t.note("modeled on the paper's 28-core host so it is commensurate with the kernel times; raw single-core host wall-clock is in GpuReport::{assign,final}_wall_s");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    #[test]
    fn coprocessing_reduces_visible_postprocessing() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let x: f64 = row[3].trim_end_matches('x').parse().unwrap();
            assert!(x > 1.0, "CP must reduce visible time: {row:?}");
        }
    }
}
