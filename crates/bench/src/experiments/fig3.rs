//! **Figure 3** — effect of degree-skew handling (single-threaded):
//! baseline M vs MPS (pivot-skip, no vectorization) vs BMP on the modeled
//! CPU and KNL.

use cnc_knl::ModeledProcessor;
use cnc_machine::MemMode;

use crate::output::{fmt_secs, fmt_x, ExpOutput};

use super::{Ctx, TECHNIQUE_DATASETS};

/// Produce the figure's series.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "fig3",
        "Degree-skew handling, single-threaded (modeled)",
        &[
            "dataset",
            "processor",
            "M",
            "MPS",
            "BMP",
            "MPS vs M",
            "BMP vs M",
        ],
    );
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        for (label, proc_) in [
            ("CPU", ModeledProcessor::cpu_for(ps.capacity_scale)),
            ("KNL", ModeledProcessor::knl_for(ps.capacity_scale)),
        ] {
            let tm = proc_.time_profile(&ps.m, 1, MemMode::Ddr).seconds;
            let tmps = proc_.time_profile(&ps.mps_scalar, 1, MemMode::Ddr).seconds;
            let tbmp = proc_.time_profile(&ps.bmp, 1, MemMode::Ddr).seconds;
            t.row(vec![
                ps.dataset.name().into(),
                label.into(),
                fmt_secs(tm),
                fmt_secs(tmps),
                fmt_secs(tbmp),
                fmt_x(tm / tmps),
                fmt_x(tm / tbmp),
            ]);
        }
    }
    t.note("paper (TW): MPS 3.6x/7.1x and BMP 20.1x/29.3x over M on CPU/KNL");
    t.note("paper (FR): MPS ≈ M; BMP 2.5x (CPU) and 1.1x (KNL)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    fn parse_x(s: &str) -> f64 {
        s.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn shapes_match_paper() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let mps_gain = parse_x(&row[5]);
            let bmp_gain = parse_x(&row[6]);
            match row[0].as_str() {
                // Skew-heavy: both techniques must win clearly, BMP more.
                "tw-s" => {
                    assert!(mps_gain > 1.4, "{row:?}");
                    assert!(bmp_gain > mps_gain, "{row:?}");
                }
                // Near-uniform: MPS ≈ M (no skew to exploit).
                "fr-s" => {
                    assert!((0.8..=1.6).contains(&mps_gain), "{row:?}");
                }
                _ => unreachable!(),
            }
        }
    }
}
