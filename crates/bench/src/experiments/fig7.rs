//! **Figure 7** — effect of MCDRAM utilization on the KNL: DDR vs flat vs
//! cache modes for fully-optimized MPS and BMP.

use cnc_knl::ModeledProcessor;
use cnc_machine::MemMode;

use crate::output::{fmt_secs, fmt_x, ExpOutput};

use super::{Ctx, TECHNIQUE_DATASETS};

/// Produce the figure's series.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "fig7",
        "MCDRAM utilization on the KNL (modeled)",
        &["dataset", "algorithm", "DDR", "Flat", "Cache", "Flat gain"],
    );
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        let knl = ModeledProcessor::knl_for(ps.capacity_scale);
        // Each algorithm at its operating point: MPS 256 threads, BMP 64.
        for (algo, profile, threads) in [
            ("MPS-V+P", &ps.mps_avx512, 256usize),
            ("BMP+P+RF", &ps.bmp_rf, 64),
        ] {
            let ddr = knl.time_profile(profile, threads, MemMode::Ddr).seconds;
            let flat = knl
                .time_profile(profile, threads, MemMode::McdramFlat)
                .seconds;
            let cache = knl
                .time_profile(profile, threads, MemMode::McdramCache)
                .seconds;
            t.row(vec![
                ps.dataset.name().into(),
                algo.into(),
                fmt_secs(ddr),
                fmt_secs(flat),
                fmt_secs(cache),
                fmt_x(ddr / flat),
            ]);
        }
    }
    t.note("paper: MPS-Flat 1.6x/1.8x over DDR; BMP-Flat only 1.2x/1.3x (latency-sensitive)");
    t.note("paper: cache mode slightly slower than flat (data movement overhead)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    fn parse_x(s: &str) -> f64 {
        s.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn hbw_shapes_match_paper() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        for d in ["tw-s", "fr-s"] {
            let mps = t
                .rows
                .iter()
                .find(|r| r[0] == d && r[1] == "MPS-V+P")
                .unwrap();
            let bmp = t
                .rows
                .iter()
                .find(|r| r[0] == d && r[1] == "BMP+P+RF")
                .unwrap();
            let g_mps = parse_x(&mps[5]);
            let g_bmp = parse_x(&bmp[5]);
            assert!(g_mps > 1.15, "MPS must gain from HBW on {d}: {g_mps}");
            assert!(
                g_bmp < g_mps,
                "BMP gains less from bandwidth on {d}: {g_bmp} vs {g_mps}"
            );
        }
    }
}
