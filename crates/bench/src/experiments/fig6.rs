//! **Figure 6** — effect of bitmap range filtering (parallel): BMP vs
//! BMP-RF vs MPS on the modeled CPU and KNL.

use cnc_knl::ModeledProcessor;
use cnc_machine::MemMode;

use crate::output::{fmt_secs, fmt_x, ExpOutput};

use super::{Ctx, TECHNIQUE_DATASETS};

/// Produce the figure's series.
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "fig6",
        "Bitmap range filtering, parallel (modeled)",
        &[
            "dataset",
            "processor",
            "MPS-V+P",
            "BMP+P",
            "BMP+P+RF",
            "RF gain",
        ],
    );
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        let rows = [
            (
                "CPU",
                ModeledProcessor::cpu_for(ps.capacity_scale),
                &ps.mps_avx2,
                56usize,
            ),
            (
                "KNL",
                ModeledProcessor::knl_for(ps.capacity_scale),
                &ps.mps_avx512,
                64usize,
            ),
        ];
        for (label, proc_, mps_profile, threads) in rows {
            let t_mps = proc_
                .time_profile(mps_profile, threads, MemMode::Ddr)
                .seconds;
            let t_bmp = proc_.time_profile(&ps.bmp, threads, MemMode::Ddr).seconds;
            let t_rf = proc_
                .time_profile(&ps.bmp_rf, threads, MemMode::Ddr)
                .seconds;
            t.row(vec![
                ps.dataset.name().into(),
                label.into(),
                fmt_secs(t_mps),
                fmt_secs(t_bmp),
                fmt_secs(t_rf),
                fmt_x(t_bmp / t_rf),
            ]);
        }
    }
    t.note("paper: RF ≈ 1x on TW but 1.9x (CPU) / 2.1x (KNL) on FR — uniform graphs have sparse matches across a wide id range");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    fn parse_x(s: &str) -> f64 {
        s.trim_end_matches('x').parse().unwrap()
    }

    #[test]
    fn rf_helps_most_on_uniform_graph() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        let gain = |ds: &str, p: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == ds && r[1] == p)
                .map(|r| parse_x(&r[5]))
                .unwrap()
        };
        for p in ["CPU", "KNL"] {
            assert!(
                gain("fr-s", p) > 1.15,
                "RF must pay off on the uniform graph ({p}): {}",
                gain("fr-s", p)
            );
            assert!(
                gain("fr-s", p) > gain("tw-s", p) * 0.9,
                "RF gains more (or similar) on FR than TW ({p})"
            );
        }
    }
}
