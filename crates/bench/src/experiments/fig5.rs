//! **Figure 5** — thread scalability of parallel MPS and BMP on the CPU
//! (1–64 threads) and the KNL (1–256 threads), modeled from exact profiles.

use cnc_knl::ModeledProcessor;
use cnc_machine::MemMode;

use crate::output::{fmt_x, ExpOutput};

use super::{Ctx, TECHNIQUE_DATASETS};

/// CPU thread points of the paper's sweep.
pub const CPU_THREADS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];
/// KNL thread points of the paper's sweep.
pub const KNL_THREADS: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Produce the figure's series (speedup over one thread).
pub fn run(ctx: &Ctx) -> ExpOutput {
    let mut t = ExpOutput::new(
        "fig5",
        "Thread scalability (speedup over 1 thread, modeled)",
        &["dataset", "processor", "algorithm", "threads", "speedup"],
    );
    for d in TECHNIQUE_DATASETS {
        let ps = ctx.profiles(d);
        let cpu = ModeledProcessor::cpu_for(ps.capacity_scale);
        let knl = ModeledProcessor::knl_for(ps.capacity_scale);
        for (algo, cpu_profile, knl_profile) in [
            ("MPS", &ps.mps_avx2, &ps.mps_avx512),
            ("BMP", &ps.bmp, &ps.bmp),
        ] {
            let base = cpu.time_profile(cpu_profile, 1, MemMode::Ddr).seconds;
            for threads in CPU_THREADS {
                let s = base / cpu.time_profile(cpu_profile, threads, MemMode::Ddr).seconds;
                t.row(vec![
                    ps.dataset.name().into(),
                    "CPU".into(),
                    algo.into(),
                    threads.to_string(),
                    fmt_x(s),
                ]);
            }
            let base = knl.time_profile(knl_profile, 1, MemMode::Ddr).seconds;
            for threads in KNL_THREADS {
                let s = base / knl.time_profile(knl_profile, threads, MemMode::Ddr).seconds;
                t.row(vec![
                    ps.dataset.name().into(),
                    "KNL".into(),
                    algo.into(),
                    threads.to_string(),
                    fmt_x(s),
                ]);
            }
        }
    }
    t.note("paper: CPU-MPS reaches 41.1x/36.1x at 64 threads; KNL-MPS 67-72x (saturates past 64)");
    t.note("paper: CPU-BMP reaches only 24x/15x; KNL-BMP regresses at 128/256 threads (thread-local bitmaps)");
    t.note("the host container has one core, so these curves come from the machine model driven by exact work profiles");
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::Scale;

    fn parse_x(s: &str) -> f64 {
        s.trim_end_matches('x').parse().unwrap()
    }

    fn speedup(t: &ExpOutput, ds: &str, proc_: &str, algo: &str, thr: usize) -> f64 {
        t.rows
            .iter()
            .find(|r| r[0] == ds && r[1] == proc_ && r[2] == algo && r[3] == thr.to_string())
            .map(|r| parse_x(&r[4]))
            .unwrap()
    }

    #[test]
    fn scaling_shapes_match_paper() {
        let ctx = Ctx::new(Scale::Tiny);
        let t = run(&ctx);
        // MPS scales well on both processors.
        assert!(speedup(&t, "tw-s", "CPU", "MPS", 64) > 20.0);
        assert!(speedup(&t, "tw-s", "KNL", "MPS", 256) > 30.0);
        // KNL MPS saturates: 64→256 gains little.
        let knl64 = speedup(&t, "fr-s", "KNL", "MPS", 64);
        let knl256 = speedup(&t, "fr-s", "KNL", "MPS", 256);
        assert!(knl256 / knl64 < 2.2, "{knl64} → {knl256}");
        // BMP scales worse than MPS on the CPU at 64 threads.
        assert!(
            speedup(&t, "tw-s", "CPU", "BMP", 64) < speedup(&t, "tw-s", "CPU", "MPS", 64),
            "BMP must scale worse than MPS"
        );
        // KNL BMP flattens or regresses past 64 threads.
        let b64 = speedup(&t, "tw-s", "KNL", "BMP", 64);
        let b256 = speedup(&t, "tw-s", "KNL", "BMP", 256);
        assert!(
            b256 < b64 * 1.4,
            "KNL-BMP should not keep scaling: {b64} → {b256}"
        );
    }
}
