//! Benchmark and reproduction harness.
//!
//! One module per table/figure of the paper's evaluation (Section 5); the
//! `repro` binary drives them and prints the same rows/series the paper
//! reports. Criterion benches (in `benches/`) measure real wall-clock of
//! the kernels and drivers on the host; the experiment modules here produce
//! the *modeled* cross-processor results.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;
pub mod output;
pub mod profiles;

pub use output::ExpOutput;
pub use profiles::ProfileSet;
