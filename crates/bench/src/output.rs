//! Tabular experiment output: aligned text and CSV.

use std::io::Write;
use std::path::Path;

/// One experiment's output: a named table with a header, rows, and notes
/// comparing against the paper.
#[derive(Debug, Clone, Default)]
pub struct ExpOutput {
    /// Experiment id (e.g. `table4`, `fig8`).
    pub name: String,
    /// Human title.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Row cells (each row matches the header length).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper reference values, substitutions).
    pub notes: Vec<String>,
}

impl ExpOutput {
    /// A new empty table.
    pub fn new(name: &str, title: &str, header: &[&str]) -> Self {
        Self {
            name: name.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row; panics on arity mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.name, self.title));
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("  note: {note}\n"));
        }
        out
    }

    /// Render as CSV (notes become `#` comment lines).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        for note in &self.notes {
            out.push_str(&format!("# {note}\n"));
        }
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV next to the others in `dir` as `<name>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.csv", self.name)))?;
        f.write_all(self.to_csv().as_bytes())
    }
}

/// Format seconds with sensible precision across magnitudes.
pub fn fmt_secs(s: f64) -> String {
    if s == 0.0 {
        "0".into()
    } else if s < 1e-4 {
        format!("{:.2}us", s * 1e6)
    } else if s < 0.1 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Format a speedup ratio.
pub fn fmt_x(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.1}x")
    }
}

/// Format byte counts.
pub fn fmt_bytes(b: u64) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.2}GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.2}MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{b:.0}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_aligns() {
        let mut t = ExpOutput::new("t", "demo", &["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["10".into(), "20".into(), "30".into()]);
        t.note("a note");
        let s = t.to_text();
        assert!(s.contains("## t — demo"));
        assert!(s.contains("long-header"));
        assert!(s.contains("note: a note"));
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = ExpOutput::new("t", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = ExpOutput::new("t", "demo", &["a,b", "c"]);
        t.row(vec!["x\"y".into(), "z".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"x\"\"y\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(0.0), "0");
        assert_eq!(fmt_secs(2.5e-6), "2.50us");
        assert_eq!(fmt_secs(0.0025), "2.50ms");
        assert_eq!(fmt_secs(12.3456), "12.346s");
        assert_eq!(fmt_x(3.12), "3.1x");
        assert_eq!(fmt_x(2057.0), "2057x");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KB");
        assert_eq!(fmt_bytes(5 << 20), "5.00MB");
        assert_eq!(fmt_bytes(3 << 30), "3.00GB");
    }
}
