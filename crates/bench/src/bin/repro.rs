//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--scale tiny|small|medium] [--out DIR] [--metrics FILE] [EXPERIMENT...]
//! repro all                  # everything, paper order
//! repro table4 fig10         # a subset
//! repro --list               # available experiment ids
//! ```
//!
//! Each experiment prints an aligned table (with the paper's reference
//! numbers as notes) and, when `--out` is given, writes a CSV per
//! experiment. `--metrics FILE` writes the process-wide observability
//! report (counters + span tree) as a `cnc-metrics` JSON file — the same
//! schema `cnc run --metrics` emits.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use cnc_bench::experiments::{self, Ctx};
use cnc_graph::datasets::Scale;
use cnc_obs::{Counter, MetricsFile, ObsContext, RunReport};

struct Args {
    scale: Scale,
    out: Option<PathBuf>,
    metrics: Option<PathBuf>,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut scale = Scale::Small;
    let mut out = None;
    let mut metrics = None;
    let mut experiments = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--scale" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "medium" => Scale::Medium,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out needs a value")?));
            }
            "--metrics" => {
                metrics = Some(PathBuf::from(argv.next().ok_or("--metrics needs a value")?));
            }
            "--list" => {
                for e in experiments::ALL {
                    println!("{e}");
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--scale tiny|small|medium] [--out DIR] [--metrics FILE] [EXPERIMENT...|all]"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other:?}")),
            other => experiments.push(other.to_string()),
        }
    }
    if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
        experiments = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }
    Ok(Args {
        scale,
        out,
        metrics,
        experiments,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::FAILURE;
        }
    };
    // One process-wide observability context: preparation-work evidence and
    // `--metrics` both read from this registry instead of ad-hoc printf
    // state. Experiments prepare and run on this thread, so the ambient
    // context sees every probe.
    let obs = Arc::new(ObsContext::new());
    let _obs_guard = obs.install();
    let ctx = Ctx::new(args.scale);
    println!(
        "# aecnc repro — scale={:?}, experiments: {}",
        args.scale,
        args.experiments.join(", ")
    );
    let mut failed = false;
    for name in &args.experiments {
        let t0 = Instant::now();
        match experiments::run(name, &ctx) {
            Some(table) => {
                println!("\n{}", table.to_text());
                println!(
                    "  ({} generated in {:.1}s)",
                    name,
                    t0.elapsed().as_secs_f64()
                );
                if let Some(dir) = &args.out {
                    if let Err(e) = table.write_csv(dir) {
                        eprintln!("repro: failed to write {name}.csv: {e}");
                        failed = true;
                    }
                }
            }
            None => {
                eprintln!("repro: unknown experiment {name:?} (try --list)");
                failed = true;
            }
        }
    }
    // Preparation-work evidence, read from the metrics registry:
    // graph_builds counts CSR constructions this process performed (0 on a
    // warm disk cache), mem/disk_hits count cache reuse. Each dataset is
    // prepared at most once per process. The line format is stable — CI
    // greps it.
    let report = RunReport::from_context(&obs);
    println!(
        "\n# prepare: graph_builds={} reorders={} mem_hits={} disk_hits={} disk_writes={} mmap_hits={} bytes_mapped={} spill_runs={} spill_bytes={} stream_chunks={} peak_resident_bytes={}",
        report.counter(Counter::PrepareGraphBuilds),
        report.counter(Counter::PrepareReorders),
        report.counter(Counter::PrepareMemHits),
        report.counter(Counter::PrepareDiskHits),
        report.counter(Counter::PrepareDiskWrites),
        report.counter(Counter::PrepareMmapHits),
        report.counter(Counter::PrepareBytesMapped),
        report.counter(Counter::PrepareSpillRuns),
        report.counter(Counter::PrepareSpillBytes),
        report.counter(Counter::PrepareStreamChunks),
        report.counter(Counter::PreparePeakResidentBytes),
    );
    if let Some(path) = &args.metrics {
        let mut file = MetricsFile::new();
        file.begin_run();
        file.field_str("label", "repro");
        file.field_str("scale", args.scale.name());
        let mut names = String::from("[");
        for (i, e) in args.experiments.iter().enumerate() {
            if i > 0 {
                names.push(',');
            }
            cnc_obs::json_string(&mut names, e);
        }
        names.push(']');
        file.field_raw("experiments", &names);
        file.end_run(&report);
        if let Err(e) = std::fs::write(path, file.finish()) {
            eprintln!("repro: failed to write {}: {e}", path.display());
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
