//! Wall-clock benchmarks of the whole-graph CPU drivers (the real rayon
//! backend) on the dataset analogues.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cnc_cpu::{par_bmp, par_merge_baseline, par_mps, seq_bmp, seq_mps, BmpMode, ParConfig};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::reorder;
use cnc_intersect::{MpsConfig, NullMeter};

fn bench_drivers(c: &mut Criterion) {
    for d in [Dataset::TwS, Dataset::FrS] {
        let g = reorder::degree_descending(&d.build(Scale::Tiny)).graph;
        let edges = g.num_directed_edges() as u64;
        let mut group = c.benchmark_group(format!("drivers_{}", d.name()));
        group.throughput(Throughput::Elements(edges));
        group.sample_size(20);

        group.bench_function("seq_mps", |b| {
            b.iter(|| seq_mps(&g, &MpsConfig::default(), &mut NullMeter))
        });
        group.bench_function("seq_bmp_rf", |b| {
            b.iter(|| seq_bmp(&g, BmpMode::rf_scaled(g.num_vertices()), &mut NullMeter))
        });
        let par = ParConfig::default();
        group.bench_function("par_baseline_m", |b| {
            b.iter(|| par_merge_baseline(&g, &par))
        });
        group.bench_function("par_mps", |b| {
            b.iter(|| par_mps(&g, &MpsConfig::default(), &par))
        });
        group.bench_function("par_bmp", |b| b.iter(|| par_bmp(&g, BmpMode::Plain, &par)));
        group.bench_function("par_bmp_rf", |b| {
            b.iter(|| par_bmp(&g, BmpMode::rf_scaled(g.num_vertices()), &par))
        });
        group.finish();
    }
}

fn bench_simd_levels(c: &mut Criterion) {
    use cnc_intersect::SimdLevel;
    let g = Dataset::FrS.build(Scale::Tiny);
    let mut group = c.benchmark_group("mps_simd_levels_fr");
    group.sample_size(20);
    for level in [
        SimdLevel::Scalar,
        SimdLevel::Sse4,
        SimdLevel::Avx2,
        SimdLevel::Avx512,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(level.label()),
            &level,
            |b, &level| {
                let cfg = MpsConfig::with_simd(level);
                b.iter(|| seq_mps(&g, &cfg, &mut NullMeter))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_drivers, bench_simd_levels
}
criterion_main!(benches);
