//! Wall-clock microbenchmarks of the set-intersection kernels on the host:
//! the baseline merge M, vectorized block merge VB (real AVX2/AVX-512 when
//! available), pivot-skip PS, the MPS hybrid, and the bitmap probes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cnc_intersect::{
    bmp_count, merge_count, mps_count, ps_count, rf_count, vb_count, Bitmap, NullMeter, RfBitmap,
    SimdLevel,
};

fn sorted_set(rng: &mut StdRng, len: usize, universe: u32) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len * 2).map(|_| rng.gen_range(0..universe)).collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

fn bench_balanced(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = sorted_set(&mut rng, 4096, 40_000);
    let b = sorted_set(&mut rng, 4096, 40_000);
    let mut group = c.benchmark_group("balanced_4096x4096");
    group.throughput(Throughput::Elements((a.len() + b.len()) as u64));
    group.bench_function("merge_M", |bench| {
        bench.iter(|| merge_count(&a, &b, &mut NullMeter))
    });
    for level in [SimdLevel::Sse4, SimdLevel::Avx2, SimdLevel::Avx512] {
        group.bench_with_input(
            BenchmarkId::new("vb", level.label()),
            &level,
            |bench, &level| bench.iter(|| vb_count(&a, &b, level, &mut NullMeter)),
        );
    }
    group.bench_function("ps", |bench| {
        bench.iter(|| ps_count(&a, &b, &mut NullMeter))
    });
    group.bench_function("mps_hybrid", |bench| {
        bench.iter(|| mps_count(&a, &b, 50, SimdLevel::detect(), &mut NullMeter))
    });
    group.finish();
}

fn bench_skewed(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let big = sorted_set(&mut rng, 200_000, 1_000_000);
    let small = sorted_set(&mut rng, 128, 1_000_000);
    let mut group = c.benchmark_group("skewed_200000x128");
    group.throughput(Throughput::Elements(small.len() as u64));
    group.bench_function("merge_M", |bench| {
        bench.iter(|| merge_count(&big, &small, &mut NullMeter))
    });
    group.bench_function("ps", |bench| {
        bench.iter(|| ps_count(&big, &small, &mut NullMeter))
    });
    group.bench_function("mps_hybrid", |bench| {
        bench.iter(|| mps_count(&big, &small, 50, SimdLevel::detect(), &mut NullMeter))
    });
    group.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 1_000_000usize;
    let indexed = sorted_set(&mut rng, 20_000, n as u32);
    let probe = sorted_set(&mut rng, 4096, n as u32);
    let mut bm = Bitmap::new(n);
    bm.set_list(&indexed, &mut NullMeter);
    let mut rf = RfBitmap::with_ratio(n, cnc_intersect::scaled_rf_ratio(n));
    rf.set_list(&indexed, &mut NullMeter);
    let mut group = c.benchmark_group("bitmap_probe_4096");
    group.throughput(Throughput::Elements(probe.len() as u64));
    group.bench_function("bmp", |bench| {
        bench.iter(|| bmp_count(&bm, &probe, &mut NullMeter))
    });
    group.bench_function("bmp_rf", |bench| {
        bench.iter(|| rf_count(&rf, &probe, &mut NullMeter))
    });
    group.bench_function("construct_and_clear", |bench| {
        let mut fresh = Bitmap::new(n);
        bench.iter(|| {
            fresh.set_list(&indexed, &mut NullMeter);
            fresh.clear_list(&indexed, &mut NullMeter);
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_balanced, bench_skewed, bench_bitmap
}
criterion_main!(benches);
