//! Wall-clock benchmarks of the GPU *simulator itself* — how fast the
//! functional simulation executes on the host (not the modeled device
//! times, which the `repro` binary reports).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use cnc_gpu::{GpuAlgo, GpuRunConfig, GpuRunner};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::reorder;

fn bench_kernels(c: &mut Criterion) {
    let g = reorder::degree_descending(&Dataset::TwS.build(Scale::Tiny)).graph;
    let gpu = GpuRunner::titan_xp_for(Dataset::TwS.capacity_scale(&g));
    let mut group = c.benchmark_group("gpu_sim_tw");
    group.throughput(Throughput::Elements(g.num_directed_edges() as u64));
    group.sample_size(10);
    for (algo, label) in [
        (GpuAlgo::Mps, "mps"),
        (GpuAlgo::Bmp { rf: false }, "bmp"),
        (GpuAlgo::Bmp { rf: true }, "bmp_rf"),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &algo, |b, &algo| {
            b.iter(|| gpu.run(&g, algo, &GpuRunConfig::default()))
        });
    }
    group.finish();
}

fn bench_multipass_overhead(c: &mut Criterion) {
    let g = Dataset::FrS.build(Scale::Tiny);
    let gpu = GpuRunner::titan_xp_for(Dataset::FrS.capacity_scale(&g));
    let mut group = c.benchmark_group("gpu_sim_multipass_fr");
    group.sample_size(10);
    for passes in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(passes),
            &passes,
            |b, &passes| {
                let cfg = GpuRunConfig {
                    passes: Some(passes),
                    ..GpuRunConfig::default()
                };
                b.iter(|| gpu.run(&g, GpuAlgo::Mps, &cfg))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_kernels, bench_multipass_overhead
}
criterion_main!(benches);
