//! Wall-clock benchmarks of the SIMD dispatch surface: the same kernels at
//! every forced [`SimdTier`], per lane width, from isolated probe loops up
//! to end-to-end single-thread BMP/MPS runs on the scaled paper graphs.
//!
//! Benches run in one sequential process, so `SimdTier::force` between
//! groups is safe here (tests must not do this — they run in parallel).
//! The acceptance target for the vectorized probes is ≥1.2x single-thread
//! BMP on tw-s or lj-s versus the same run forced to `scalar`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cnc_cpu::{seq_bmp, seq_mps, BmpMode};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_intersect::{
    bmp_count_tier, gallop_lower_bound_tier, Bitmap, MpsConfig, NullMeter, SimdTier,
};

fn sorted_set(rng: &mut StdRng, len: usize, universe: u32) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len * 2).map(|_| rng.gen_range(0..universe)).collect();
    v.sort_unstable();
    v.dedup();
    v.truncate(len);
    v
}

/// Tiers this host can actually execute, widest last.
fn host_tiers() -> Vec<SimdTier> {
    SimdTier::ALL
        .into_iter()
        .filter(|t| t.supported())
        .collect()
}

/// Isolated BMP word-probe loop: one bitmap, one 4096-element probe array,
/// each tier. The AVX2 row answers "what did the 8-lane gather buy"; the
/// AVX-512 row the 16-lane version; `portable` isolates the block-shaped
/// scalar rewrite from the intrinsics themselves.
fn bench_bmp_probe(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 1_000_000usize;
    let indexed = sorted_set(&mut rng, 20_000, n as u32);
    let probe = sorted_set(&mut rng, 4096, n as u32);
    let mut bm = Bitmap::new(n);
    bm.set_list(&indexed, &mut NullMeter);
    let mut group = c.benchmark_group("simd_bmp_probe_4096");
    group.throughput(Throughput::Elements(probe.len() as u64));
    for tier in host_tiers() {
        group.bench_with_input(
            BenchmarkId::new("bmp_count", tier.label()),
            &tier,
            |bench, &tier| bench.iter(|| bmp_count_tier(&bm, &probe, tier, &mut NullMeter)),
        );
    }
    group.finish();
}

/// Isolated galloping search: lower bounds of scattered targets, each tier.
/// Two haystack sizes tell two different stories: a 4MB (1M-element) array
/// is cache-resident, so per-step overhead dominates and the branchy scalar
/// gallop is hard to beat; a 128MB (32M-element) array is DRAM-resident,
/// where the 8-pivot gather issues its probes as parallel misses instead of
/// a serial dependency chain — the case the wide phase exists for.
fn bench_gallop(c: &mut Criterion) {
    for (label, len) in [("1m", 1_000_000usize), ("32m", 32_000_000)] {
        let mut rng = StdRng::seed_from_u64(12);
        let hay: Vec<u32> = sorted_set(&mut rng, len, u32::MAX);
        let targets: Vec<u32> = (0..512).map(|_| rng.gen_range(0..u32::MAX)).collect();
        let mut group = c.benchmark_group(format!("simd_gallop_{label}"));
        group.throughput(Throughput::Elements(targets.len() as u64));
        for tier in host_tiers() {
            group.bench_with_input(
                BenchmarkId::new("gallop_lower_bound", tier.label()),
                &tier,
                |bench, &tier| {
                    bench.iter(|| {
                        let mut acc = 0usize;
                        for &t in &targets {
                            acc += gallop_lower_bound_tier(&hay, 0, t, tier, &mut NullMeter);
                        }
                        acc
                    })
                },
            );
        }
        group.finish();
    }
}

/// End-to-end single-thread runs on the scaled paper graphs: the whole BMP
/// and MPS pipelines with the process tier forced, so every dispatch site
/// (bitmap probes, gallop, VB blocks, linear prefix) switches together.
fn bench_end_to_end(c: &mut Criterion) {
    for dataset in [Dataset::TwS, Dataset::LjS] {
        let g = dataset.build(Scale::Small);
        let mut group = c.benchmark_group(format!("simd_e2e_{}", dataset.name()));
        group.sample_size(10);
        group.throughput(Throughput::Elements(g.num_directed_edges() as u64));
        for tier in host_tiers() {
            SimdTier::force(tier).expect("host_tiers returns supported tiers only");
            group.bench_with_input(
                BenchmarkId::new("seq_bmp", tier.label()),
                &tier,
                |bench, _| bench.iter(|| seq_bmp(&g, BmpMode::Plain, &mut NullMeter)),
            );
            group.bench_with_input(
                BenchmarkId::new("seq_mps", tier.label()),
                &tier,
                |bench, _| bench.iter(|| seq_mps(&g, &MpsConfig::default(), &mut NullMeter)),
            );
        }
        group.finish();
    }
    // Leave the process at the host's best tier for anything that follows.
    let _ = SimdTier::force(SimdTier::detect_host());
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_bmp_probe, bench_gallop, bench_end_to_end
}
criterion_main!(benches);
