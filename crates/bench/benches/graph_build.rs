//! Wall-clock benchmarks of the graph substrate: CSR construction, the
//! degree-descending relabeling (the paper notes it costs < 3 s on the
//! billion-edge graphs), generators, I/O, and the cold-vs-warm preparation
//! gap the zero-copy cache buys.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::prepare::{self, map_prepared, write_prepared, PreparedGraph, ReorderPolicy};
use cnc_graph::{generators, io, reorder, CsrGraph};

fn bench_build(c: &mut Criterion) {
    let el = generators::chung_lu(20_000, 16.0, 2.3, 5);
    let edges = el.len() as u64;
    let mut group = c.benchmark_group("graph_build");
    group.throughput(Throughput::Elements(edges));
    group.sample_size(20);
    group.bench_function("edge_list_to_csr", |b| {
        b.iter(|| CsrGraph::from_edge_list(&el))
    });
    let g = CsrGraph::from_edge_list(&el);
    group.bench_function("degree_descending_relabel", |b| {
        b.iter(|| reorder::degree_descending(&g))
    });
    group.bench_function("validate", |b| b.iter(|| g.validate().unwrap()));
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_10k_vertices");
    group.sample_size(10);
    group.bench_function("gnm", |b| b.iter(|| generators::gnm(10_000, 80_000, 1)));
    group.bench_function("chung_lu", |b| {
        b.iter(|| generators::chung_lu(10_000, 16.0, 2.3, 2))
    });
    group.bench_function("rmat", |b| {
        b.iter(|| generators::rmat(13, 10, 0.57, 0.19, 0.19, 3))
    });
    group.bench_function("hub_web", |b| {
        b.iter(|| generators::hub_web(10_000, 12.0, 3, 0.4, 4))
    });
    group.finish();
}

fn bench_io(c: &mut Criterion) {
    let g = Dataset::LjS.build(Scale::Tiny);
    let mut buf = Vec::new();
    io::write_csr(&g, &mut buf).unwrap();
    let mut group = c.benchmark_group("io");
    group.throughput(Throughput::Bytes(buf.len() as u64));
    group.sample_size(20);
    group.bench_function("write_csr", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(buf.len());
            io::write_csr(&g, &mut out).unwrap();
            out
        })
    });
    group.bench_function("read_csr", |b| {
        b.iter(|| io::read_csr(buf.as_slice()).unwrap())
    });
    group.finish();
}

/// Cold preparation (edge list → parallel CSR build → relabel) against a
/// warm zero-copy load of the same preparation from its `CNCPREP2` cache
/// file. The warm path must win by a wide margin — that gap is the whole
/// point of the mmap-backed cache.
fn bench_prepare_cold_vs_warm(c: &mut Criterion) {
    let el = Dataset::OrS.edge_list(Scale::Small);
    let dir = std::env::temp_dir().join(format!("cnc-bench-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("or-s-small-degdesc.prep");
    let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::DegreeDescending);
    write_prepared(&pg, std::fs::File::create(&path).unwrap()).unwrap();

    let mut group = c.benchmark_group("prepare_cold_vs_warm");
    group.throughput(Throughput::Bytes(std::fs::metadata(&path).unwrap().len()));
    group.sample_size(10);
    group.bench_function("cold_build", |b| {
        b.iter(|| PreparedGraph::from_edge_list(&el, ReorderPolicy::DegreeDescending))
    });
    let before = prepare::metrics();
    group.bench_function("warm_mmap", |b| {
        b.iter(|| map_prepared(&path).expect("cache file must map"))
    });
    let warm_work = prepare::metrics().since(&before);
    assert!(
        warm_work.mmap_hits > 0 && warm_work.graph_builds == 0,
        "warm path must be zero-copy: {warm_work}"
    );
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_build, bench_generators, bench_io, bench_prepare_cold_vs_warm
}
criterion_main!(benches);
