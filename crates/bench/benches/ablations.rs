//! Ablation benches for the design choices DESIGN.md calls out:
//! the MPS skew threshold `t`, the parallel task size `|T|`, the RF ratio,
//! the staged lower-bound search, VB lane widths, and the degree-descending
//! reordering for BMP.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cnc_cpu::{par_mps, seq_bmp, seq_mps, BmpMode, ParConfig};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::reorder;
use cnc_graph::CsrGraph;
use cnc_intersect::{
    gallop_lower_bound, gallop_lower_bound_no_prefix, vb_count_lanes, MpsConfig, NullMeter,
    SimdLevel,
};

/// The hybrid threshold sweep: pure merge (t=∞) ↔ pure pivot-skip (t=0).
fn ablation_threshold(c: &mut Criterion) {
    let g = Dataset::TwS.build(Scale::Tiny);
    let mut group = c.benchmark_group("ablation_threshold_tw");
    group.sample_size(15);
    for t in [0u32, 2, 10, 50, 200, u32::MAX] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let cfg = MpsConfig {
                skew_threshold: t,
                simd: SimdLevel::detect(),
            };
            b.iter(|| seq_mps(&g, &cfg, &mut NullMeter))
        });
    }
    group.finish();
}

/// Task size |T| for the rayon skeleton: scheduling overhead vs balance.
fn ablation_task_size(c: &mut Criterion) {
    let g = Dataset::TwS.build(Scale::Tiny);
    let mut group = c.benchmark_group("ablation_task_size_tw");
    group.sample_size(15);
    for t in [64usize, 1024, 8192, 65_536] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            let cfg = ParConfig::with_task_size(t);
            b.iter(|| par_mps(&g, &MpsConfig::default(), &cfg))
        });
    }
    group.finish();
}

/// RF ratio sweep on the uniform analogue (RF's win case).
fn ablation_rf_ratio(c: &mut Criterion) {
    let g = reorder::degree_descending(&Dataset::FrS.build(Scale::Tiny)).graph;
    let mut group = c.benchmark_group("ablation_rf_ratio_fr");
    group.sample_size(15);
    group.bench_function("off", |b| {
        b.iter(|| seq_bmp(&g, BmpMode::Plain, &mut NullMeter))
    });
    for ratio in [2usize, 8, 64, 512, 4096] {
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &ratio| {
            b.iter(|| seq_bmp(&g, BmpMode::RangeFiltered { ratio }, &mut NullMeter))
        });
    }
    group.finish();
}

/// The staged lower bound (vectorized linear prefix + gallop) vs pure gallop.
fn ablation_gallop(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let hay: Vec<u32> = {
        let mut v: Vec<u32> = (0..400_000).map(|_| rng.gen_range(0..4_000_000)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    // Near targets: the linear prefix's win case (matches a few slots away).
    let near: Vec<(usize, u32)> = (0..1000)
        .map(|i| {
            let start = i * 397 % (hay.len() - 20);
            (start, hay[start + 7])
        })
        .collect();
    // Far targets: galloping's win case.
    let far: Vec<(usize, u32)> = (0..1000)
        .map(|i| {
            let start = i * 13 % (hay.len() / 2);
            (start, hay[(start + hay.len() / 3) % hay.len()])
        })
        .collect();
    let mut group = c.benchmark_group("ablation_gallop");
    group.sample_size(30);
    for (name, targets) in [("near", &near), ("far", &far)] {
        group.bench_function(format!("staged_{name}"), |b| {
            b.iter(|| {
                targets
                    .iter()
                    .map(|&(s, t)| gallop_lower_bound(&hay, s, t, &mut NullMeter))
                    .sum::<usize>()
            })
        });
        group.bench_function(format!("pure_gallop_{name}"), |b| {
            b.iter(|| {
                targets
                    .iter()
                    .map(|&(s, t)| gallop_lower_bound_no_prefix(&hay, s, t, &mut NullMeter))
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

/// Emulated VB lane widths on identical inputs.
fn ablation_lanes(c: &mut Criterion) {
    let a: Vec<u32> = (0..8192).map(|x| x * 3).collect();
    let b: Vec<u32> = (0..8192).map(|x| x * 2 + 1).collect();
    let mut group = c.benchmark_group("ablation_vb_lanes");
    group.sample_size(30);
    group.bench_function("lanes_4", |bench| {
        bench.iter(|| vb_count_lanes::<4, _>(&a, &b, &mut NullMeter))
    });
    group.bench_function("lanes_8", |bench| {
        bench.iter(|| vb_count_lanes::<8, _>(&a, &b, &mut NullMeter))
    });
    group.bench_function("lanes_16", |bench| {
        bench.iter(|| vb_count_lanes::<16, _>(&a, &b, &mut NullMeter))
    });
    group.finish();
}

/// Index-structure choice: the paper's dynamic bitmap vs a hash index vs
/// the BSR sparse bitmap vs plain merge — Section 2.2.1's three families on
/// one realistic probe workload (index one hub list, probe many small
/// lists).
fn ablation_index(c: &mut Criterion) {
    use cnc_intersect::{bmp_count, bsr_count, hash_count, merge_count, Bitmap, BsrSet, HashIndex};
    let g = reorder::degree_descending(&Dataset::TwS.build(Scale::Tiny)).graph;
    // Index the largest-degree vertex's neighbors, probe with the neighbor
    // lists of its neighbors (exactly BMP's access pattern for one block).
    let hub = 0u32;
    let hub_list = g.neighbors(hub).to_vec();
    let probes: Vec<Vec<u32>> = g
        .neighbors(hub)
        .iter()
        .take(256)
        .map(|&v| g.neighbors(v).to_vec())
        .collect();
    let mut group = c.benchmark_group("ablation_index_structures");
    group.sample_size(20);
    group.bench_function("bitmap", |b| {
        let mut bm = Bitmap::new(g.num_vertices());
        bm.set_list(&hub_list, &mut NullMeter);
        b.iter(|| {
            probes
                .iter()
                .map(|p| bmp_count(&bm, p, &mut NullMeter))
                .sum::<u32>()
        })
    });
    group.bench_function("hash_index", |b| {
        let mut h = HashIndex::with_capacity(hub_list.len());
        h.build(&hub_list, &mut NullMeter);
        b.iter(|| {
            probes
                .iter()
                .map(|p| hash_count(&h, p, &mut NullMeter))
                .sum::<u32>()
        })
    });
    group.bench_function("bsr", |b| {
        let hub_bsr = BsrSet::from_sorted(&hub_list);
        let probe_bsrs: Vec<BsrSet> = probes.iter().map(|p| BsrSet::from_sorted(p)).collect();
        b.iter(|| {
            probe_bsrs
                .iter()
                .map(|p| bsr_count(&hub_bsr, p, &mut NullMeter))
                .sum::<u32>()
        })
    });
    group.bench_function("merge", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|p| merge_count(&hub_list, p, &mut NullMeter))
                .sum::<u32>()
        })
    });
    group.finish();
}

/// BMP with and without the degree-descending relabeling.
fn ablation_reorder(c: &mut Criterion) {
    let raw = Dataset::WiS.build(Scale::Tiny);
    let degree_ordered = reorder::degree_descending(&raw).graph;
    let core_ordered = reorder::core_descending(&raw).graph;
    // A hub-first-by-construction graph where the raw ids are already close
    // to degree order.
    let ba = CsrGraph::from_edge_list(&cnc_graph::generators::barabasi_albert(2000, 8, 9));
    let mut group = c.benchmark_group("ablation_reorder");
    group.sample_size(15);
    group.bench_function("wi_raw_ids", |b| {
        b.iter(|| seq_bmp(&raw, BmpMode::Plain, &mut NullMeter))
    });
    group.bench_function("wi_degree_descending", |b| {
        b.iter(|| seq_bmp(&degree_ordered, BmpMode::Plain, &mut NullMeter))
    });
    group.bench_function("wi_core_descending", |b| {
        b.iter(|| seq_bmp(&core_ordered, BmpMode::Plain, &mut NullMeter))
    });
    group.bench_function("ba_raw_ids", |b| {
        b.iter(|| seq_bmp(&ba, BmpMode::Plain, &mut NullMeter))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = ablation_threshold, ablation_task_size, ablation_rf_ratio,
              ablation_gallop, ablation_lanes, ablation_index, ablation_reorder
}
criterion_main!(benches);
