//! The serving layer's batching claim, measured: 10k random edge point
//! queries on the skewed tw-s analogue, answered three ways.
//!
//! * `batched` — one `BatchSession::count_batch` call over all 10k, the
//!   way the daemon executes a coalescing window: deduplicated, sorted by
//!   source, one balanced schedule, per-source kernel state built once.
//! * `unbatched` — the same queries one `count_batch(&[q])` at a time,
//!   the cost floor of a daemon with no coalescing window (every query
//!   pays its own source rebuild and its own schedule).
//! * `bulk_pass` — a full all-edge counting run, the price of answering
//!   by recomputing everything.
//!
//! The interesting ratios: batched should sit within a small factor of
//! one bulk pass (it touches only the queried sources) and far below
//! unbatched (EXPERIMENTS.md records both).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{Rng, SeedableRng, StdRng};

use cnc_core::{Algorithm, BatchSession, Platform, Runner};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::PreparedGraph;

const QUERIES: usize = 10_000;

fn bench_serve_batching(c: &mut Criterion) {
    let runner = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf());
    let g = Dataset::TwS.build(Scale::Tiny);
    // 10k uniform-random canonical edges, duplicates and all — the shape a
    // query flood actually has (hot edges repeat).
    let edges: Vec<(u32, u32)> = g
        .iter_edges()
        .filter(|&(_, u, v)| u < v)
        .map(|(_, u, v)| (u, v))
        .collect();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let queries: Vec<(u32, u32)> = (0..QUERIES)
        .map(|_| edges[rng.gen_range(0..edges.len())])
        .collect();
    let prepared = PreparedGraph::from_csr(g, runner.reorder_policy());
    // A twin runner for the bulk comparator: the session owns its own.
    let bulk_runner = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf());
    let session =
        BatchSession::new(runner, prepared.clone()).expect("CPU CNC session always plans");

    let mut group = c.benchmark_group("serve_tw-s");
    group.throughput(Throughput::Elements(QUERIES as u64));
    group.sample_size(10);
    group.bench_function("batched/10k", |b| b.iter(|| session.count_batch(&queries)));
    group.bench_function("unbatched/10k", |b| {
        b.iter(|| {
            for &q in &queries {
                session.count_batch(&[q]);
            }
        })
    });
    group.bench_function("bulk_pass", |b| {
        b.iter(|| {
            bulk_runner
                .try_run_prepared(&prepared)
                .expect("bulk run succeeds")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_serve_batching
}
criterion_main!(benches);
