//! Wall-clock comparison of the schedule policies: uniform fixed-size
//! chunks versus cost-balanced source-aligned decomposition, on the
//! hub-skewed analogue where balance matters most (a few huge sources
//! dominate the work) and on the uniform-degree analogue as a control
//! (balance should cost nothing).
//!
//! Also measures the single-thread effect of the prepared reverse-edge
//! index: `run_range` with the O(1) `rev[eid]` load versus the per-edge
//! binary search over `N(v)`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use cnc_cpu::{par_bmp, par_mps, BmpMode, CpuKernel, ParConfig};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::reorder;
use cnc_intersect::{MpsConfig, NullMeter};

fn bench_schedule_policies(c: &mut Criterion) {
    // TW is the skewed hub-web analogue; FR is the near-uniform control.
    for d in [Dataset::TwS, Dataset::FrS] {
        let g = reorder::degree_descending(&d.build(Scale::Tiny)).graph;
        let edges = g.num_directed_edges() as u64;
        // Same task-count budget for both policies: the comparison isolates
        // *where* the cuts land, not how many tasks there are.
        let tasks = 4 * num_threads();
        let uniform = ParConfig::with_task_size(g.num_directed_edges().div_ceil(tasks).max(1));
        let balanced = ParConfig::balanced(tasks);

        let mut group = c.benchmark_group(format!("schedule_{}", d.name()));
        group.throughput(Throughput::Elements(edges));
        group.sample_size(20);
        group.bench_function("uniform/bmp", |b| {
            b.iter(|| par_bmp(&g, BmpMode::Plain, &uniform))
        });
        group.bench_function("balanced/bmp", |b| {
            b.iter(|| par_bmp(&g, BmpMode::Plain, &balanced))
        });
        group.bench_function("uniform/mps", |b| {
            b.iter(|| par_mps(&g, &MpsConfig::default(), &uniform))
        });
        group.bench_function("balanced/mps", |b| {
            b.iter(|| par_mps(&g, &MpsConfig::default(), &balanced))
        });
        group.finish();
    }
}

fn bench_reverse_index(c: &mut Criterion) {
    // Single-thread whole-range BMP run at Small scale (the graph no
    // longer fits in cache, so the search's random probes cost real
    // memory traffic): the mirror lookup is the only thing that differs
    // between the two graphs. The skewed analogue shows a ~1.25x win.
    let searched = reorder::degree_descending(&Dataset::TwS.build(Scale::Small)).graph;
    let mut indexed = searched.clone();
    indexed.build_reverse_index();
    let kernel = CpuKernel::Bmp(BmpMode::Plain);
    let mut group = c.benchmark_group("reverse_lookup_tw");
    group.throughput(Throughput::Elements(searched.num_directed_edges() as u64));
    group.sample_size(10);
    group.bench_function("binary_search", |b| {
        b.iter(|| kernel.run_seq(&searched, &mut NullMeter))
    });
    group.bench_function("rev_index", |b| {
        b.iter(|| kernel.run_seq(&indexed, &mut NullMeter))
    });
    group.finish();
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

criterion_group! {
    name = benches;
    config = Criterion::default().warm_up_time(Duration::from_millis(500)).measurement_time(Duration::from_secs(2));
    targets = bench_schedule_policies, bench_reverse_index
}
criterion_main!(benches);
