//! GPU device specification and occupancy rules.

/// A CUDA-like device model. The preset matches the paper's NVIDIA TITAN Xp
/// (Pascal, 30 SMs × 2048 threads, 12 GB, unified memory over PCIe 3).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sms: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum resident thread blocks per SM (16 on Pascal, as the paper
    /// states for the TITAN Xp).
    pub max_blocks_per_sm: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// Shared memory per SM in bytes (48 KB usable per block on Pascal).
    pub shared_mem_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Warp instructions issued per cycle per SM.
    pub issue_per_sm: f64,
    /// Fraction of peak issue rate irregular graph kernels sustain
    /// (dependency stalls, sync, replay).
    pub issue_efficiency: f64,
    /// Fraction of peak DRAM bandwidth irregular access streams sustain.
    pub bw_efficiency: f64,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Global memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Global memory latency in ns.
    pub mem_latency_ns: f64,
    /// Unified-memory page size in bytes.
    pub page_bytes: u64,
    /// Fixed cost of servicing one unified-memory page fault, in µs.
    pub page_fault_us: f64,
    /// Host↔device transfer bandwidth (PCIe) in GB/s.
    pub host_bw_gbps: f64,
    /// Memory reserved for streaming access of CSR/counts (the paper's
    /// `Mem_reserved`, 500 MB on the real card).
    pub reserved_bytes: u64,
}

/// The paper's TITAN Xp.
pub fn titan_xp() -> GpuSpec {
    GpuSpec {
        name: "NVIDIA TITAN Xp (30 SMs, 12 GB)".into(),
        sms: 30,
        max_threads_per_sm: 2048,
        max_blocks_per_sm: 16,
        warp_size: 32,
        shared_mem_per_sm: 48 << 10,
        clock_ghz: 1.58,
        issue_per_sm: 2.0,
        issue_efficiency: 0.65,
        bw_efficiency: 0.7,
        global_mem_bytes: 12 << 30,
        mem_bw_gbps: 547.0,
        mem_latency_ns: 400.0,
        page_bytes: 64 << 10,
        page_fault_us: 20.0,
        host_bw_gbps: 12.0,
        reserved_bytes: 500 << 20,
    }
}

impl GpuSpec {
    /// Shrink capacity-like fields by `factor` (same scaling rule as
    /// `cnc_machine::MachineSpec::scaled`): global memory, reserved memory,
    /// shared memory, and the page size (so the page count stays realistic
    /// at miniature scale). Rates are untouched.
    pub fn scaled(&self, factor: f64) -> GpuSpec {
        assert!(factor > 0.0);
        let mut s = self.clone();
        s.name = format!("{} (x{factor:.0e} capacities)", self.name);
        s.global_mem_bytes = ((self.global_mem_bytes as f64 * factor) as u64).max(64 << 10);
        s.reserved_bytes = ((self.reserved_bytes as f64 * factor) as u64).max(4 << 10);
        // Shared memory (like the page size below) shrinks with the square
        // root: a linear shrink would leave miniature devices with a
        // useless handful of bytes per block for the RF small bitmap.
        s.shared_mem_per_sm = ((self.shared_mem_per_sm as f64 * factor.sqrt()) as usize).max(1024);
        // Pages shrink with the square root so miniature devices still have
        // a meaningful number of page slots.
        s.page_bytes = ((self.page_bytes as f64 * factor.sqrt()) as u64)
            .next_power_of_two()
            .clamp(1 << 10, self.page_bytes);
        // The fixed fault-servicing cost tracks the page size: without this,
        // the (real-machine) 20 µs constant dwarfs the shrunken kernel times
        // and every pass-count curve flattens into pure fault time.
        s.page_fault_us = self.page_fault_us * (s.page_bytes as f64 / self.page_bytes as f64);
        s
    }

    /// Concurrent thread blocks per SM for a block of `warps_per_block`
    /// warps — the paper's `n_C` (Algorithm 6): limited by both the resident
    /// thread budget and the per-SM block slots.
    pub fn blocks_per_sm(&self, warps_per_block: usize) -> usize {
        assert!(warps_per_block >= 1);
        let by_threads = self.max_threads_per_sm / (warps_per_block * self.warp_size);
        by_threads.min(self.max_blocks_per_sm).max(1)
    }

    /// Resident warps per SM at this block size.
    pub fn active_warps_per_sm(&self, warps_per_block: usize) -> usize {
        self.blocks_per_sm(warps_per_block) * warps_per_block
    }

    /// Theoretical occupancy in [0, 1] — the paper's "one warp per block is
    /// 25%, three or more is 100%" (for a 2048-thread SM with 16 block
    /// slots).
    pub fn occupancy(&self, warps_per_block: usize) -> f64 {
        let max_warps = self.max_threads_per_sm / self.warp_size;
        self.active_warps_per_sm(warps_per_block) as f64 / max_warps as f64
    }

    /// Total bitmaps the BMP kernel must allocate: one per concurrent block
    /// (`sms × n_C`, Algorithm 6).
    pub fn bitmap_pool_size(&self, warps_per_block: usize) -> usize {
        self.sms * self.blocks_per_sm(warps_per_block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_xp_occupancy_matches_paper() {
        let g = titan_xp();
        // Paper: 4 warps/block → 16 concurrent blocks/SM (2048/128), 100%.
        assert_eq!(g.blocks_per_sm(4), 16);
        assert_eq!(g.active_warps_per_sm(4), 64);
        assert!((g.occupancy(4) - 1.0).abs() < 1e-12);
        // 1 warp/block → 16 blocks (block-slot limited) → 25%.
        assert_eq!(g.blocks_per_sm(1), 16);
        assert!((g.occupancy(1) - 0.25).abs() < 1e-12);
        // 32 warps/block → 2 blocks/SM.
        assert_eq!(g.blocks_per_sm(32), 2);
        assert!((g.occupancy(32) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bitmap_pool_matches_paper() {
        let g = titan_xp();
        // Paper Section 5.2.2: 128 threads/block → 480 bitmaps.
        assert_eq!(g.bitmap_pool_size(4), 480);
        // 32 warps/block → 60 bitmaps: the Figure 9 FR effect.
        assert_eq!(g.bitmap_pool_size(32), 60);
    }

    #[test]
    fn scaled_shrinks_capacities_not_rates() {
        let g = titan_xp();
        let s = g.scaled(1e-3);
        assert_eq!(s.mem_bw_gbps, g.mem_bw_gbps);
        assert_eq!(s.sms, g.sms);
        assert!(s.global_mem_bytes < g.global_mem_bytes);
        assert!(s.page_bytes < g.page_bytes);
        assert!(s.page_bytes.is_power_of_two());
        // Page count stays meaningful.
        assert!(s.global_mem_bytes / s.page_bytes >= 64);
    }

    #[test]
    fn blocks_per_sm_never_zero() {
        let g = titan_xp();
        assert_eq!(g.blocks_per_sm(64), 1);
        assert_eq!(g.blocks_per_sm(1000), 1);
    }
}
