//! Warp-level primitives of the CUDA kernels, executed functionally.
//!
//! The kernels in this crate are written against these helpers so their
//! structure mirrors the CUDA code of Algorithms 5 and 6: warp-strided
//! loops, `__shfl_down`-style reductions, and the warp-cooperative block
//! merge used by `MKernel`.

use crate::cost::KernelStats;

/// Emulate the warp-shuffle butterfly reduction of Algorithms 5/6
/// (`foreach k in {16,8,4,2,1}: c += __shfl_down(c, k)`).
///
/// Functionally this is a sum of the 32 per-lane partial counts; the tally
/// records the five shuffle instructions the warp would issue.
pub fn warp_reduce_sum(lanes: &[u32; 32], stats: &mut KernelStats) -> u32 {
    let mut vals = *lanes;
    let mut k = 16usize;
    while k >= 1 {
        for lane in 0..32 {
            // __shfl_down(c, k): lane i reads lane i+k (garbage above 31 —
            // CUDA leaves the value unchanged; only lane 0's total is used).
            let from = lane + k;
            if from < 32 {
                vals[lane] = vals[lane].wrapping_add(vals[from]);
            }
        }
        stats.warp_instrs += 1;
        if k == 1 {
            break;
        }
        k /= 2;
    }
    vals[0]
}

/// Warp-strided iteration: the index sequence lane `lane_id` of a warp sees
/// in `for (i = start + lane; i < end; i += 32)`.
pub fn warp_strided(start: usize, end: usize) -> impl Iterator<Item = (usize, usize)> {
    // Yields (index, lane) pairs in execution order.
    (start..end).map(move |i| (i, (i - start) % 32))
}

/// The warp-cooperative block merge of `MKernel` (Algorithm 5 lines 3–11):
/// 32 threads compare an 8-element block of `a` against a 4-element block of
/// `b` all-pairs in one instruction (8 × 4 = 32 lane pairs), advancing the
/// block whose last element is smaller. Returns the match count and records
/// the warp instructions and shared-memory traffic.
///
/// Inputs must be strictly increasing.
pub fn warp_block_merge(a: &[u32], b: &[u32], stats: &mut KernelStats) -> u32 {
    const BA: usize = 8;
    const BB: usize = 4;
    let (mut i, mut j) = (0usize, 0usize);
    let mut c = 0u32;
    while i + BA <= a.len() && j + BB <= b.len() {
        let ab = &a[i..i + BA];
        let bb = &b[j..j + BB];
        // Per block step the warp issues the staging loads into shared
        // memory, the all-pairs compare, the ballot/popcount accumulation
        // and the advance logic — and advances only ~6 elements for it
        // (the 8×4 all-pairs shape uses 32 lanes for 12 useful element
        // slots), which is why the GPU block merge is far less efficient
        // than its CPU counterpart per element.
        for &x in ab {
            c += u32::from(bb.contains(&x));
        }
        stats.warp_instrs += 8;
        stats.shared_ops += 4; // stage blocks + re-read for compare
        let (alast, blast) = (ab[BA - 1], bb[BB - 1]);
        i += BA * usize::from(alast <= blast);
        j += BB * usize::from(blast <= alast);
    }
    // Scalar tail, one lane active while 31 idle (divergent): the compare,
    // the two advances and the branch each occupy a full issue slot.
    let (mut ti, mut tj) = (i, j);
    while ti < a.len() && tj < b.len() {
        let (x, y) = (a[ti], b[tj]);
        ti += usize::from(x <= y);
        tj += usize::from(y <= x);
        c += u32::from(x == y);
        stats.warp_instrs += 4;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_sums_all_lanes() {
        let mut stats = KernelStats::default();
        let mut lanes = [0u32; 32];
        for (i, l) in lanes.iter_mut().enumerate() {
            *l = i as u32;
        }
        assert_eq!(warp_reduce_sum(&lanes, &mut stats), (0..32).sum());
        assert_eq!(stats.warp_instrs, 5, "five shuffle steps");
    }

    #[test]
    fn reduce_handles_uniform_and_zero() {
        let mut stats = KernelStats::default();
        assert_eq!(warp_reduce_sum(&[1; 32], &mut stats), 32);
        assert_eq!(warp_reduce_sum(&[0; 32], &mut stats), 0);
    }

    #[test]
    fn strided_covers_range_once() {
        let seen: Vec<usize> = warp_strided(10, 75).map(|(i, _)| i).collect();
        assert_eq!(seen, (10..75).collect::<Vec<_>>());
        let lanes: Vec<usize> = warp_strided(0, 40).map(|(_, l)| l).collect();
        assert_eq!(lanes[0], 0);
        assert_eq!(lanes[31], 31);
        assert_eq!(lanes[32], 0, "wraps to lane 0");
    }

    #[test]
    fn block_merge_matches_reference() {
        let a: Vec<u32> = (0..100).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..80).map(|x| x * 5).collect();
        let want = {
            let sa: std::collections::BTreeSet<u32> = a.iter().copied().collect();
            b.iter().filter(|x| sa.contains(x)).count() as u32
        };
        let mut stats = KernelStats::default();
        assert_eq!(warp_block_merge(&a, &b, &mut stats), want);
        assert!(stats.warp_instrs > 0);
        assert!(stats.shared_ops > 0);
    }

    #[test]
    fn block_merge_short_inputs() {
        let mut stats = KernelStats::default();
        assert_eq!(warp_block_merge(&[1, 2, 3], &[2, 4], &mut stats), 1);
        assert_eq!(warp_block_merge(&[], &[1], &mut stats), 0);
        assert_eq!(warp_block_merge(&[7], &[7], &mut stats), 1);
    }

    #[test]
    fn block_merge_randomized() {
        let mut x = 0xdeadbeefu64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..40 {
            let mut a: Vec<u32> = (0..(next() % 200)).map(|_| (next() % 500) as u32).collect();
            let mut b: Vec<u32> = (0..(next() % 200)).map(|_| (next() % 500) as u32).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let want = {
                let sa: std::collections::BTreeSet<u32> = a.iter().copied().collect();
                b.iter().filter(|v| sa.contains(v)).count() as u32
            };
            let mut stats = KernelStats::default();
            assert_eq!(warp_block_merge(&a, &b, &mut stats), want);
        }
    }
}
