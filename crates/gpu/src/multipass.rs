//! Multi-pass processing (Section 4.2.2 / Figure 2).
//!
//! When the unified-memory footprint exceeds device memory, processing all
//! destinations in one sweep thrashes the page migration engine. The paper
//! splits the destination-vertex range `[0, |V|)` into passes sized so each
//! pass's footprint fits:
//!
//! ```text
//! passes = ceil( Mem_CSR / (Mem_global − Mem_reserved − Mem_B_A) )
//! ```

use cnc_graph::CsrGraph;

use crate::spec::GpuSpec;

/// The pass estimate and the quantities that produced it (Table 6's
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassPlan {
    /// Estimated number of passes.
    pub passes: usize,
    /// `Mem_CSR`: offsets + neighbor array bytes.
    pub csr_bytes: u64,
    /// `Mem_B_A`: device bytes pinned by the bitmap pool (0 for MPS).
    pub bitmap_bytes: u64,
    /// `Mem_reserved`.
    pub reserved_bytes: u64,
    /// Per-pass unified-memory budget
    /// (`Mem_global − Mem_reserved − Mem_B_A`).
    pub budget_bytes: u64,
}

/// Estimate the pass count for a graph on a device, with `bitmap_bytes`
/// pinned by the BMP bitmap pool (pass 0 for MPS).
pub fn estimate_passes(g: &CsrGraph, spec: &GpuSpec, bitmap_bytes: u64) -> PassPlan {
    let csr_bytes = g.csr_bytes() as u64;
    let budget = spec
        .global_mem_bytes
        .saturating_sub(spec.reserved_bytes)
        .saturating_sub(bitmap_bytes)
        .max(1);
    let passes = csr_bytes.div_ceil(budget).max(1) as usize;
    // A pass per vertex is the hard upper bound.
    let passes = passes.min(g.num_vertices().max(1));
    PassPlan {
        passes,
        csr_bytes,
        bitmap_bytes,
        reserved_bytes: spec.reserved_bytes,
        budget_bytes: budget,
    }
}

/// Split `[0, |V|)` into `passes` contiguous destination ranges of nearly
/// equal width.
pub fn pass_ranges(num_vertices: usize, passes: usize) -> Vec<std::ops::Range<u32>> {
    let n = num_vertices as u32;
    let passes = passes.clamp(1, num_vertices.max(1)) as u32;
    let step = n.div_ceil(passes).max(1);
    let mut out = Vec::with_capacity(passes as usize);
    let mut start = 0u32;
    while start < n {
        let end = (start + step).min(n);
        out.push(start..end);
        start = end;
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::titan_xp;
    use cnc_graph::{generators, CsrGraph};

    #[test]
    fn small_graph_single_pass() {
        let g = CsrGraph::from_edge_list(&generators::gnm(100, 300, 1));
        let plan = estimate_passes(&g, &titan_xp(), 0);
        assert_eq!(plan.passes, 1);
        assert_eq!(plan.csr_bytes, g.csr_bytes() as u64);
    }

    #[test]
    fn shrunk_device_needs_more_passes() {
        let g = CsrGraph::from_edge_list(&generators::gnm(2000, 20_000, 2));
        // Device with ~1/4 of the CSR size available.
        let mut spec = titan_xp();
        spec.global_mem_bytes = (g.csr_bytes() / 4) as u64;
        spec.reserved_bytes = 1024;
        let plan = estimate_passes(&g, &spec, 0);
        assert!(plan.passes >= 4, "got {}", plan.passes);
        // Pinning bitmap memory increases the estimate further.
        let plan_bmp = estimate_passes(&g, &spec, spec.global_mem_bytes / 2);
        assert!(plan_bmp.passes > plan.passes);
    }

    #[test]
    fn paper_regime_bmp_needs_more_passes_than_mps_on_fr_like() {
        // The Table 6 FR row's shape: B_A pins gigabytes, so BMP needs more
        // passes than MPS on the same device.
        let g = CsrGraph::from_edge_list(&generators::gnm(4000, 58_000, 3));
        let mut spec = titan_xp();
        // Device sized so CSR is ~130% of it (FR regime: CSR > global).
        spec.global_mem_bytes = (g.csr_bytes() as f64 / 1.3) as u64;
        spec.reserved_bytes = spec.global_mem_bytes / 24;
        let bitmap_bytes = spec.global_mem_bytes * 6 / 10; // B_A ≈ 0.6 global
        let mps = estimate_passes(&g, &spec, 0);
        let bmp = estimate_passes(&g, &spec, bitmap_bytes);
        assert!(mps.passes >= 2, "mps {}", mps.passes);
        assert!(
            bmp.passes > mps.passes,
            "bmp {} mps {}",
            bmp.passes,
            mps.passes
        );
    }

    #[test]
    fn ranges_partition_the_vertex_set() {
        for (n, p) in [(100usize, 3usize), (7, 7), (7, 100), (1, 1), (64, 1)] {
            let ranges = pass_ranges(n, p);
            let mut covered = 0u32;
            for (i, r) in ranges.iter().enumerate() {
                assert_eq!(r.start, covered, "gap before range {i}");
                assert!(r.end > r.start);
                covered = r.end;
            }
            assert_eq!(covered, n as u32);
        }
    }

    #[test]
    fn zero_vertices_edge_case() {
        let ranges = pass_ranges(0, 3);
        assert_eq!(ranges.len(), 1);
        assert!(ranges[0].is_empty());
    }
}
