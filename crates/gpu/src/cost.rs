//! Transaction-level kernel cost accounting and the kernel timing model.

use crate::spec::GpuSpec;

/// Work tallies accumulated while functionally executing a kernel.
///
/// Units are chosen at the warp level: one `warp_instr` is one instruction
/// issued for a whole warp (32 lanes). Divergent scalar work (the PS kernel's
/// thread-per-edge searches) is charged `warp_instrs` per *lane* step —
/// a warp with one active lane still occupies an issue slot per step, which
/// is exactly why the paper finds MPS on the GPU inefficient.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Warp instructions issued.
    pub warp_instrs: u64,
    /// Bytes moved by coalesced global accesses (sequential warp loads of
    /// neighbor lists, count writes).
    pub coalesced_bytes: u64,
    /// Scattered global transactions (bitmap probes, gallop probes): each
    /// moves a 32-byte sector for ≤ 4 useful bytes.
    pub scattered_trans: u64,
    /// Shared-memory operations (block-merge staging, RF small bitmap).
    pub shared_ops: u64,
    /// Global atomic operations (bitmap pool CAS, bitmap construction).
    pub atomics: u64,
    /// Thread blocks executed.
    pub blocks: u64,
}

impl KernelStats {
    /// Merge another tally into this one.
    pub fn merge(&mut self, o: &KernelStats) {
        self.warp_instrs += o.warp_instrs;
        self.coalesced_bytes += o.coalesced_bytes;
        self.scattered_trans += o.scattered_trans;
        self.shared_ops += o.shared_ops;
        self.atomics += o.atomics;
        self.blocks += o.blocks;
    }

    /// Total global-memory bytes (coalesced + 32-byte sectors per scattered
    /// transaction).
    pub fn global_bytes(&self) -> u64 {
        self.coalesced_bytes + self.scattered_trans * 32
    }
}

/// Bytes moved per scattered transaction (one sector).
pub const SECTOR_BYTES: u64 = 32;

/// Modeled timing of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTime {
    /// Total modeled seconds (max of the three rooflines + fault time).
    pub seconds: f64,
    /// Issue-bound component.
    pub compute_s: f64,
    /// Bandwidth-bound component.
    pub mem_s: f64,
    /// Latency-bound component (scattered transactions, hidden by
    /// occupancy).
    pub latency_s: f64,
    /// Unified-memory fault servicing + migration time.
    pub fault_s: f64,
}

/// Fraction of kernel time that one *compulsory* migration of the unified
/// arrays costs. Calibrated to the paper's regime: on the real TITAN Xp,
/// migrating twitter's 5.8 GB CSR over PCIe plus its fault servicing is
/// roughly a tenth of the 21.5 s end-to-end time; the miniature analogues do
/// ~3-4x less intersection work per CSR byte than billion-edge social
/// graphs, so the share is calibrated upward to keep the paper's
/// migration-to-work proportion (and Figure 10's FR crossover, where
/// multi-pass migration costs push GPU-BMP behind KNL-MPS). Expressing
/// unified-memory cost as a share (rather than absolute µs per fault) keeps
/// the model scale-free, and thrashing — faults far above the compulsory
/// count — still blows the time up (Figure 8's cliff).
pub const COMPULSORY_MIGRATION_SHARE: f64 = 0.7;

/// Model the time of a kernel with tallies `stats` launched at
/// `warps_per_block`, with `faults` unified-memory faults observed against
/// `compulsory_faults` (the pages of all unified arrays: the minimum any
/// run must migrate once).
pub fn kernel_time(
    spec: &GpuSpec,
    stats: &KernelStats,
    warps_per_block: usize,
    faults: u64,
    compulsory_faults: u64,
) -> KernelTime {
    let issue_rate =
        spec.sms as f64 * spec.issue_per_sm * spec.issue_efficiency * spec.clock_ghz * 1e9;
    let compute_s = (stats.warp_instrs + stats.shared_ops + stats.atomics * 4) as f64 / issue_rate;
    let mem_s = stats.global_bytes() as f64 / (spec.mem_bw_gbps * spec.bw_efficiency * 1e9);
    // Each resident warp keeps ~4 scattered transactions in flight; more
    // resident warps (higher occupancy) hide more latency. This is the
    // mechanism behind Figure 9's 1→4 warps-per-block improvement.
    const TRANS_IN_FLIGHT_PER_WARP: f64 = 4.0;
    let inflight =
        (spec.sms * spec.active_warps_per_sm(warps_per_block)) as f64 * TRANS_IN_FLIGHT_PER_WARP;
    let latency_s = stats.scattered_trans as f64 * spec.mem_latency_ns * 1e-9 / inflight;
    let base = compute_s.max(mem_s).max(latency_s);
    let fault_s = if compulsory_faults == 0 {
        0.0
    } else {
        base * COMPULSORY_MIGRATION_SHARE * faults as f64 / compulsory_faults as f64
    };
    let seconds = base + fault_s;
    KernelTime {
        seconds,
        compute_s,
        mem_s,
        latency_s,
        fault_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::titan_xp;

    #[test]
    fn merge_accumulates() {
        let a = KernelStats {
            warp_instrs: 1,
            coalesced_bytes: 2,
            scattered_trans: 3,
            shared_ops: 4,
            atomics: 5,
            blocks: 6,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.warp_instrs, 2);
        assert_eq!(b.blocks, 12);
        assert_eq!(b.global_bytes(), 4 + 6 * 32);
    }

    #[test]
    fn occupancy_hides_latency() {
        // Figure 9's mechanism: a latency-bound kernel speeds up from 1 to 4
        // warps per block, then flattens.
        let spec = titan_xp();
        let stats = KernelStats {
            scattered_trans: 1_000_000_000,
            ..Default::default()
        };
        let t1 = kernel_time(&spec, &stats, 1, 0, 0).seconds;
        let t4 = kernel_time(&spec, &stats, 4, 0, 0).seconds;
        let t32 = kernel_time(&spec, &stats, 32, 0, 0).seconds;
        assert!(t1 / t4 > 2.0, "1→4 warps must speed up: {t1} vs {t4}");
        assert!((t4 / t32 - 1.0).abs() < 0.3, "4→32 roughly flat");
    }

    #[test]
    fn bandwidth_bound_kernel_insensitive_to_block_size() {
        // Figure 9's MPS curves are flat: bandwidth-bound.
        let spec = titan_xp();
        let stats = KernelStats {
            coalesced_bytes: 1 << 36,
            ..Default::default()
        };
        let t1 = kernel_time(&spec, &stats, 1, 0, 0).seconds;
        let t32 = kernel_time(&spec, &stats, 32, 0, 0).seconds;
        assert!((t1 / t32 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compulsory_faults_cost_the_calibrated_share() {
        let spec = titan_xp();
        let stats = KernelStats {
            warp_instrs: 1_000_000,
            ..Default::default()
        };
        let clean = kernel_time(&spec, &stats, 4, 0, 1000);
        let compulsory = kernel_time(&spec, &stats, 4, 1000, 1000);
        let ratio = compulsory.seconds / clean.seconds;
        assert!(
            (ratio - (1.0 + COMPULSORY_MIGRATION_SHARE)).abs() < 1e-9,
            "one full migration costs the calibrated share: {ratio}"
        );
    }

    #[test]
    fn thrashing_faults_dominate() {
        // Figure 8's cliff: 50x the compulsory faults → ~5x the time.
        let spec = titan_xp();
        let stats = KernelStats {
            warp_instrs: 1_000_000,
            ..Default::default()
        };
        let ok = kernel_time(&spec, &stats, 4, 1000, 1000);
        let thrash = kernel_time(&spec, &stats, 4, 50_000, 1000);
        assert!(thrash.seconds > 4.0 * ok.seconds);
    }

    #[test]
    fn zero_stats_zero_time() {
        let spec = titan_xp();
        let t = kernel_time(&spec, &KernelStats::default(), 4, 0, 0);
        assert_eq!(t.seconds, 0.0);
    }
}
