//! CPU–GPU co-processing (Algorithm 4 / Table 5).
//!
//! The symmetric assignment needs, for every `u > v` edge slot, the value
//! computed for its reverse `u < v` slot. Finding reverse offsets costs a
//! binary search per edge; the paper hides that latency by running the
//! offset assignment on the CPU *concurrently* with the counting kernels on
//! the GPU (both touch disjoint halves of the same unified count array) and
//! finishing with a cheap gather pass:
//!
//! 1. `AssignOffsetsOnCPU`: for each `u > v` slot, store the reverse edge
//!    offset `e(v, u)` in the slot (runs under the GPU kernels).
//! 2. GPU kernels fill every `u < v` slot with its count.
//! 3. Final pass: `cnt[e] ← cnt[cnt[e]]` for `u > v` slots.

use std::time::Instant;

use cnc_graph::CsrGraph;
use rayon::prelude::*;

/// Phase 1: write the reverse edge offset into every `u > v` slot.
///
/// Returns wall-clock seconds of the (parallel) host execution.
pub fn assign_reverse_offsets(g: &CsrGraph, counts: &mut [u32]) -> f64 {
    assert_eq!(counts.len(), g.num_directed_edges());
    let t0 = Instant::now();
    const CHUNK: usize = 4096;
    counts
        .par_chunks_mut(CHUNK)
        .enumerate()
        .for_each(|(chunk_idx, chunk)| {
            let base = chunk_idx * CHUNK;
            let mut u_tls = 0u32;
            for (off, slot) in chunk.iter_mut().enumerate() {
                let eid = base + off;
                let u = g.find_src(eid, &mut u_tls);
                let v = g.dst()[eid];
                if u > v {
                    *slot = g.reverse_offset(u, eid) as u32;
                }
            }
        });
    t0.elapsed().as_secs_f64()
}

/// Phase 3: gather the counts through the stored offsets
/// (`cnt[e] ← cnt[cnt[e]]` for `u > v`). Returns wall-clock seconds.
pub fn final_symmetric_assign(g: &CsrGraph, counts: &mut [u32]) -> f64 {
    assert_eq!(counts.len(), g.num_directed_edges());
    let t0 = Instant::now();
    let snapshot = counts.to_vec();
    const CHUNK: usize = 4096;
    counts
        .par_chunks_mut(CHUNK)
        .enumerate()
        .for_each(|(chunk_idx, chunk)| {
            let base = chunk_idx * CHUNK;
            let mut u_tls = 0u32;
            for (off, slot) in chunk.iter_mut().enumerate() {
                let eid = base + off;
                let u = g.find_src(eid, &mut u_tls);
                let v = g.dst()[eid];
                if u > v {
                    *slot = snapshot[*slot as usize];
                }
            }
        });
    t0.elapsed().as_secs_f64()
}

/// Sequential reverse-offset + assignment in one go — the *non*-co-processed
/// baseline of Table 5 (all post-processing happens after the GPU finishes).
///
/// Returns wall-clock seconds.
pub fn postprocess_without_coprocessing(g: &CsrGraph, counts: &mut [u32]) -> f64 {
    assert_eq!(counts.len(), g.num_directed_edges());
    let t0 = Instant::now();
    let snapshot = counts.to_vec();
    const CHUNK: usize = 4096;
    counts
        .par_chunks_mut(CHUNK)
        .enumerate()
        .for_each(|(chunk_idx, chunk)| {
            let base = chunk_idx * CHUNK;
            let mut u_tls = 0u32;
            for (off, slot) in chunk.iter_mut().enumerate() {
                let eid = base + off;
                let u = g.find_src(eid, &mut u_tls);
                let v = g.dst()[eid];
                if u > v {
                    // The binary search happens *after* the kernels: its
                    // latency is fully exposed.
                    let rev = g.reverse_offset(u, eid);
                    *slot = snapshot[rev];
                }
            }
        });
    t0.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::generators;

    /// Fill the u<v slots with reference counts (standing in for the GPU
    /// kernels).
    fn fill_upper(g: &CsrGraph, counts: &mut [u32]) {
        for (eid, u, v) in g.iter_edges() {
            if u < v {
                counts[eid] = cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v));
            }
        }
    }

    fn full_reference(g: &CsrGraph) -> Vec<u32> {
        g.iter_edges()
            .map(|(_, u, v)| cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v)))
            .collect()
    }

    #[test]
    fn coprocessed_pipeline_produces_symmetric_counts() {
        let g = CsrGraph::from_edge_list(&generators::chung_lu(300, 8.0, 2.2, 4));
        let mut counts = vec![0u32; g.num_directed_edges()];
        // Phase 1 (would overlap the GPU).
        assign_reverse_offsets(&g, &mut counts);
        // Phase 2: the GPU fills u<v slots. Reverse offsets stored in u>v
        // slots must survive untouched.
        fill_upper(&g, &mut counts);
        // Phase 3.
        final_symmetric_assign(&g, &mut counts);
        assert_eq!(counts, full_reference(&g));
    }

    #[test]
    fn non_coprocessed_pipeline_matches() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(200, 5.0, 2, 0.4, 8));
        let mut counts = vec![0u32; g.num_directed_edges()];
        fill_upper(&g, &mut counts);
        postprocess_without_coprocessing(&g, &mut counts);
        assert_eq!(counts, full_reference(&g));
    }

    #[test]
    fn both_pipelines_agree() {
        let g = CsrGraph::from_edge_list(&generators::gnm(250, 900, 5));
        let mut a = vec![0u32; g.num_directed_edges()];
        assign_reverse_offsets(&g, &mut a);
        fill_upper(&g, &mut a);
        final_symmetric_assign(&g, &mut a);

        let mut b = vec![0u32; g.num_directed_edges()];
        fill_upper(&g, &mut b);
        postprocess_without_coprocessing(&g, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = CsrGraph::from_edge_list(&cnc_graph::EdgeList::new(0));
        let mut counts = vec![];
        assert!(assign_reverse_offsets(&g, &mut counts) >= 0.0);
        assert!(final_symmetric_assign(&g, &mut counts) >= 0.0);
    }
}
