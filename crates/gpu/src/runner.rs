//! Top-level GPU runs: Algorithm 4's main program.

use cnc_graph::{CsrGraph, PreparedGraph};
use cnc_machine::{cpu_server, estimate, MachineSpec, MemMode, WorkProfile};

use crate::coprocess::{
    assign_reverse_offsets, final_symmetric_assign, postprocess_without_coprocessing,
};
use crate::cost::{kernel_time, KernelStats, KernelTime};
use crate::kernels::{run_bmp_kernel, run_mkernel, run_pskernel, LaunchConfig};
use crate::mem::{ArrayId, UnifiedMemory};
use crate::multipass::{estimate_passes, pass_ranges, PassPlan};
use crate::pool::DeviceBitmapPool;
use crate::spec::GpuSpec;

/// Which counting algorithm runs on the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GpuAlgo {
    /// MPS: the `MKernel` + `PSKernel` pair (Algorithm 5).
    Mps,
    /// BMP: the bitmap kernel (Algorithm 6), optionally range-filtered.
    Bmp {
        /// Enable the shared-memory range filter.
        rf: bool,
    },
}

impl GpuAlgo {
    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            GpuAlgo::Mps => "GPU-MPS",
            GpuAlgo::Bmp { rf: false } => "GPU-BMP",
            GpuAlgo::Bmp { rf: true } => "GPU-BMP-RF",
        }
    }
}

/// Execution options for a GPU run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuRunConfig {
    /// Kernel launch geometry and skew threshold.
    pub launch: LaunchConfig,
    /// Number of passes; `None` uses the paper's estimate.
    pub passes: Option<usize>,
    /// Overlap the reverse-offset assignment with the kernels (Table 5's
    /// CP technique). Disabling it exposes the full post-processing time.
    pub coprocess: bool,
}

impl Default for GpuRunConfig {
    fn default() -> Self {
        Self {
            launch: LaunchConfig::default(),
            passes: None,
            coprocess: true,
        }
    }
}

/// Timing and accounting of a GPU run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuReport {
    /// Modeled device time (all passes, all kernels).
    pub kernel: KernelTime,
    /// Aggregated kernel work tallies.
    pub stats: KernelStats,
    /// Unified-memory faults across the run.
    pub faults: u64,
    /// Bytes migrated host→device.
    pub migrated_bytes: u64,
    /// The pass plan used.
    pub plan: PassPlan,
    /// Passes actually executed.
    pub passes: usize,
    /// Host wall-clock of the reverse-offset assignment (hidden under the
    /// kernels when co-processing). Measured on *this* host — informational.
    pub assign_wall_s: f64,
    /// Host wall-clock of the final gather pass (informational).
    pub final_wall_s: f64,
    /// Modeled reverse-offset assignment time on the paper's CPU server.
    pub modeled_assign_s: f64,
    /// Modeled final-gather time on the paper's CPU server.
    pub modeled_final_s: f64,
    /// Post-processing time *visible* after the kernels finish — Table 5's
    /// metric (assignment + final without CP; final only with CP). Modeled
    /// on the paper's CPU server so it is commensurate with the kernel time.
    pub postprocess_visible_s: f64,
    /// End-to-end modeled seconds:
    /// `max(kernel, hidden CPU work) + visible post-processing`.
    pub total_seconds: f64,
}

/// A simulated GPU ready to run the counting algorithms.
#[derive(Debug, Clone)]
pub struct GpuRunner {
    /// The device model.
    pub spec: GpuSpec,
    /// The host CPU model used to price the co-processing phases
    /// (the paper's 28-core server, capacity-scaled like the device).
    pub host: MachineSpec,
}

/// Result of a run: exact counts plus the report.
#[derive(Debug, Clone)]
pub struct GpuRun {
    /// Per-edge-offset common neighbor counts (symmetric, complete).
    pub counts: Vec<u32>,
    /// Timing and accounting.
    pub report: GpuReport,
}

impl GpuRunner {
    /// A runner on the given device, hosted by the paper's (unscaled) CPU
    /// server.
    pub fn new(spec: GpuSpec) -> Self {
        Self {
            spec,
            host: cpu_server(),
        }
    }

    /// The paper's TITAN Xp with capacities scaled by `capacity_scale`; the
    /// host CPU model is scaled identically.
    pub fn titan_xp_for(capacity_scale: f64) -> Self {
        Self {
            spec: crate::spec::titan_xp().scaled(capacity_scale),
            host: cpu_server().scaled(capacity_scale),
        }
    }

    /// The paper's TITAN Xp scaled for a prepared dataset graph: the
    /// capacity scale is the one the preparation layer derived from the
    /// dataset's Table 1 size.
    pub fn titan_xp_for_prepared(prepared: &PreparedGraph) -> Self {
        Self::titan_xp_for(prepared.capacity_scale())
    }

    /// [`GpuRunner::run`] over a shared preparation: BMP executes on the
    /// prepared degree-descending relabel (when the preparation computed
    /// one), the merge family on the original ids. Counts are in the
    /// executed graph's offsets.
    pub fn run_prepared(
        &self,
        prepared: &PreparedGraph,
        algo: GpuAlgo,
        cfg: &GpuRunConfig,
    ) -> GpuRun {
        let g = prepared.execution_graph(matches!(algo, GpuAlgo::Bmp { .. }));
        self.run(g, algo, cfg)
    }

    /// Modeled host seconds of the two post-processing phases on `g`:
    /// `(assign, final)`. The assignment performs a binary search per
    /// `u > v` edge into the (shared) neighbor array; the final pass is a
    /// random gather through the count array.
    fn modeled_postprocess(&self, g: &CsrGraph) -> (f64, f64) {
        let m = g.num_directed_edges() as f64;
        let half = m / 2.0;
        let avg_d = if g.num_vertices() == 0 {
            1.0
        } else {
            (m / g.num_vertices() as f64).max(2.0)
        };
        let probes = half * avg_d.log2().max(1.0);
        let assign = WorkProfile {
            scalar_ops: m + probes,
            vector_ops: 0.0,
            seq_bytes: 4.0 * m,
            rand_accesses: probes,
            rand_accesses_small: 0.0,
            write_bytes: 4.0 * half,
            ws_rand_bytes: g.dst().len() as f64 * 4.0,
            ws_replicated_per_thread: false,
        };
        let final_ = WorkProfile {
            scalar_ops: m,
            vector_ops: 0.0,
            seq_bytes: 4.0 * m,
            rand_accesses: half,
            rand_accesses_small: 0.0,
            write_bytes: 4.0 * half,
            ws_rand_bytes: m * 4.0,
            ws_replicated_per_thread: false,
        };
        let threads = self.host.max_threads();
        (
            estimate(&self.host, &assign, threads, MemMode::Ddr).seconds,
            estimate(&self.host, &final_, threads, MemMode::Ddr).seconds,
        )
    }

    /// The RF ratio that fits the per-block shared-memory slice, for this
    /// device and launch geometry (the paper's 4096 at TITAN Xp scale).
    pub fn rf_ratio(&self, launch: &LaunchConfig, num_vertices: usize) -> usize {
        let blocks = self.spec.blocks_per_sm(launch.warps_per_block).max(1);
        let budget_bits = (self.spec.shared_mem_per_sm / blocks).max(8) * 8;
        (num_vertices.div_ceil(budget_bits).max(2))
            .next_power_of_two()
            .max(2)
    }

    /// Run `algo` over `g` under `cfg`.
    pub fn run(&self, g: &CsrGraph, algo: GpuAlgo, cfg: &GpuRunConfig) -> GpuRun {
        let m = g.num_directed_edges();
        let mut counts = vec![0u32; m];
        let n = g.num_vertices();

        // Device-resident bitmap pool (BMP only) — pinned off the UM budget.
        let pool = match algo {
            GpuAlgo::Bmp { .. } => Some(DeviceBitmapPool::new(
                self.spec.bitmap_pool_size(cfg.launch.warps_per_block),
                n.max(1),
            )),
            GpuAlgo::Mps => None,
        };
        let bitmap_bytes = pool.as_ref().map_or(0, |p| p.device_bytes());
        let plan = estimate_passes(g, &self.spec, bitmap_bytes);
        let passes = cfg.passes.unwrap_or(plan.passes).max(1);

        // Unified memory: everything not pinned by the pool holds pages.
        let um_capacity = self
            .spec
            .global_mem_bytes
            .saturating_sub(bitmap_bytes)
            .max(self.spec.page_bytes);
        let mut um = UnifiedMemory::new(
            um_capacity,
            self.spec.page_bytes,
            &[
                (ArrayId::Offsets, (g.offsets().len() * 8) as u64),
                (ArrayId::Dst, (g.dst().len() * 4) as u64),
                (ArrayId::Counts, (m * 4) as u64),
            ],
        );

        // Phase 1 (host): reverse-offset assignment. With co-processing it
        // overlaps the kernels; without, it runs after them (and then also
        // performs the gather) — see below.
        let assign_wall_s = if cfg.coprocess {
            assign_reverse_offsets(g, &mut counts)
        } else {
            0.0
        };

        // Phase 2 (device): the kernels, one launch set per pass.
        let obs = cnc_obs::ObsContext::current();
        let device_span = obs.as_ref().map(|ctx| ctx.span("gpu_kernels"));
        let mut stats = KernelStats::default();
        for range in pass_ranges(n, passes) {
            match algo {
                GpuAlgo::Mps => {
                    let s1 = run_mkernel(
                        g,
                        &self.spec,
                        &cfg.launch,
                        range.clone(),
                        &mut counts,
                        &mut um,
                    );
                    let s2 = run_pskernel(g, &self.spec, &cfg.launch, range, &mut counts, &mut um);
                    stats.merge(&s1);
                    stats.merge(&s2);
                }
                GpuAlgo::Bmp { rf } => {
                    let ratio = rf.then(|| self.rf_ratio(&cfg.launch, n.max(1)));
                    let s = run_bmp_kernel(
                        g,
                        &self.spec,
                        &cfg.launch,
                        ratio,
                        pool.as_ref().expect("BMP pool"),
                        range,
                        &mut counts,
                        &mut um,
                    );
                    stats.merge(&s);
                }
            }
        }
        drop(device_span);
        let faults = um.faults();
        let migrated = um.migrated_bytes();
        // Mirror the simulator's evidence into the ambient observability
        // context (no-op when none is installed).
        if let Some(ctx) = &obs {
            use cnc_obs::Counter as C;
            ctx.add(C::GpuWarpInstrs, stats.warp_instrs);
            ctx.add(C::GpuCoalescedBytes, stats.coalesced_bytes);
            ctx.add(C::GpuScatteredTrans, stats.scattered_trans);
            ctx.add(C::GpuSharedOps, stats.shared_ops);
            ctx.add(C::GpuAtomics, stats.atomics);
            ctx.add(C::GpuBlocks, stats.blocks);
            ctx.add(C::GpuFaults, faults);
            ctx.add(C::GpuMigratedBytes, migrated);
            ctx.add(C::GpuPasses, passes as u64);
        }
        // The minimum any run must migrate: every page of the three arrays.
        let compulsory = ((g.offsets().len() * 8 + g.dst().len() * 4 + m * 4) as u64)
            .div_ceil(self.spec.page_bytes);
        let kernel = kernel_time(
            &self.spec,
            &stats,
            cfg.launch.warps_per_block,
            faults,
            compulsory,
        );

        // Phase 3 (host): the visible post-processing (functionally real;
        // timing modeled on the paper's CPU server).
        let final_wall_s = if cfg.coprocess {
            final_symmetric_assign(g, &mut counts)
        } else {
            postprocess_without_coprocessing(g, &mut counts)
        };
        let (modeled_assign_s, modeled_final_s) = self.modeled_postprocess(g);
        let (hidden_host, postprocess_visible_s) = if cfg.coprocess {
            (modeled_assign_s, modeled_final_s)
        } else {
            (0.0, modeled_assign_s + modeled_final_s)
        };
        let total_seconds = kernel.seconds.max(hidden_host) + postprocess_visible_s;
        GpuRun {
            counts,
            report: GpuReport {
                kernel,
                stats,
                faults,
                migrated_bytes: migrated,
                plan,
                passes,
                assign_wall_s,
                final_wall_s,
                modeled_assign_s,
                modeled_final_s,
                postprocess_visible_s,
                total_seconds,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_graph::datasets::{Dataset, Scale};
    use cnc_graph::generators;

    fn reference(g: &CsrGraph) -> Vec<u32> {
        g.iter_edges()
            .map(|(_, u, v)| cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v)))
            .collect()
    }

    fn runner_for(g: &CsrGraph, d: Dataset) -> GpuRunner {
        GpuRunner::titan_xp_for(d.capacity_scale(g))
    }

    #[test]
    fn all_algorithms_produce_exact_counts() {
        let g = Dataset::TwS.build(Scale::Tiny);
        let runner = runner_for(&g, Dataset::TwS);
        let want = reference(&g);
        for algo in [
            GpuAlgo::Mps,
            GpuAlgo::Bmp { rf: false },
            GpuAlgo::Bmp { rf: true },
        ] {
            let run = runner.run(&g, algo, &GpuRunConfig::default());
            assert_eq!(run.counts, want, "{}", algo.label());
            assert!(run.report.kernel.seconds > 0.0);
        }
    }

    #[test]
    fn no_coprocessing_same_counts_more_visible_postprocessing() {
        let g = Dataset::FrS.build(Scale::Tiny);
        let runner = runner_for(&g, Dataset::FrS);
        let with_cp = runner.run(&g, GpuAlgo::Bmp { rf: false }, &GpuRunConfig::default());
        let without = runner.run(
            &g,
            GpuAlgo::Bmp { rf: false },
            &GpuRunConfig {
                coprocess: false,
                ..GpuRunConfig::default()
            },
        );
        assert_eq!(with_cp.counts, without.counts);
        // Table 5's shape: visible post-processing shrinks with CP (the
        // reverse-offset searches are hidden under the kernels).
        assert!(
            with_cp.report.postprocess_visible_s < without.report.postprocess_visible_s,
            "cp {} vs no-cp {}",
            with_cp.report.postprocess_visible_s,
            without.report.postprocess_visible_s
        );
    }

    #[test]
    fn forced_extra_passes_keep_counts_and_add_time() {
        let g = Dataset::TwS.build(Scale::Tiny);
        let runner = runner_for(&g, Dataset::TwS);
        let want = reference(&g);
        let mut prev_seconds = 0.0;
        for passes in [1usize, 2, 4, 8] {
            let run = runner.run(
                &g,
                GpuAlgo::Mps,
                &GpuRunConfig {
                    passes: Some(passes),
                    ..GpuRunConfig::default()
                },
            );
            assert_eq!(run.counts, want, "passes={passes}");
            assert_eq!(run.report.passes, passes);
            if passes == 1 {
                prev_seconds = run.report.kernel.seconds;
            }
        }
        assert!(prev_seconds > 0.0);
    }

    #[test]
    fn rf_reduces_scattered_transactions() {
        let g = Dataset::FrS.build(Scale::Tiny);
        let runner = runner_for(&g, Dataset::FrS);
        let plain = runner.run(&g, GpuAlgo::Bmp { rf: false }, &GpuRunConfig::default());
        let rf = runner.run(&g, GpuAlgo::Bmp { rf: true }, &GpuRunConfig::default());
        assert!(
            rf.report.stats.scattered_trans < plain.report.stats.scattered_trans,
            "rf {} vs plain {}",
            rf.report.stats.scattered_trans,
            plain.report.stats.scattered_trans
        );
    }

    #[test]
    fn gpu_favors_bmp_over_mps() {
        // Figure 10's GPU finding: BMP beats MPS (which is the slowest
        // configuration overall).
        let g = Dataset::TwS.build(Scale::Tiny);
        let runner = runner_for(&g, Dataset::TwS);
        let mps = runner.run(&g, GpuAlgo::Mps, &GpuRunConfig::default());
        let bmp = runner.run(&g, GpuAlgo::Bmp { rf: true }, &GpuRunConfig::default());
        assert!(
            bmp.report.kernel.seconds < mps.report.kernel.seconds,
            "bmp {} vs mps {}",
            bmp.report.kernel.seconds,
            mps.report.kernel.seconds
        );
    }

    #[test]
    fn rf_ratio_tracks_shared_memory() {
        let runner = GpuRunner::new(crate::spec::titan_xp());
        // Paper scale: |V| = 41.6M, 4 warps/block → ratio ≈ 2048–4096.
        let r = runner.rf_ratio(&LaunchConfig::default(), 41_652_230);
        assert!((1024..=8192).contains(&r), "ratio {r}");
        // Fewer blocks per SM → more shared memory per block → finer filter.
        let r32 = runner.rf_ratio(
            &LaunchConfig {
                warps_per_block: 32,
                skew_threshold: 50,
            },
            41_652_230,
        );
        assert!(r32 <= r);
    }

    #[test]
    fn empty_graph_run() {
        let g = CsrGraph::from_edge_list(&cnc_graph::EdgeList::new(0));
        let runner = GpuRunner::new(crate::spec::titan_xp());
        let run = runner.run(&g, GpuAlgo::Mps, &GpuRunConfig::default());
        assert!(run.counts.is_empty());
    }

    #[test]
    fn star_graph_zero_counts() {
        let g = CsrGraph::from_edge_list(&generators::star(50));
        let runner = GpuRunner::new(crate::spec::titan_xp());
        for algo in [GpuAlgo::Mps, GpuAlgo::Bmp { rf: false }] {
            let run = runner.run(&g, algo, &GpuRunConfig::default());
            assert!(run.counts.iter().all(|&c| c == 0));
        }
    }
}

impl std::fmt::Display for GpuReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.3e}s [kernel {:.1e} (c {:.1e}, m {:.1e}, l {:.1e}, faults {:.1e}), post {:.1e}] {} pass(es), {} UM faults",
            self.total_seconds,
            self.kernel.seconds,
            self.kernel.compute_s,
            self.kernel.mem_s,
            self.kernel.latency_s,
            self.kernel.fault_s,
            self.postprocess_visible_s,
            self.passes,
            self.faults,
        )
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;
    use cnc_graph::generators;

    #[test]
    fn display_mentions_passes_and_faults() {
        let g = CsrGraph::from_edge_list(&generators::gnm(50, 200, 1));
        let run = GpuRunner::new(crate::spec::titan_xp()).run(
            &g,
            GpuAlgo::Bmp { rf: false },
            &GpuRunConfig::default(),
        );
        let s = run.report.to_string();
        assert!(s.contains("pass(es)"), "{s}");
        assert!(s.contains("UM faults"), "{s}");
    }
}
