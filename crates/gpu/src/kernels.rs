//! Functional execution of the paper's CUDA kernels (Algorithms 5 and 6).
//!
//! Each kernel processes a grid of `|V|` thread blocks (block `u` handles
//! vertex `u`'s intersections, the coarse-grained task of Section 4). The
//! simulator executes blocks one at a time, producing exact counts, while
//! tallying warp instructions, global transactions and shared-memory
//! operations into [`KernelStats`] and recording unified-memory touches in
//! the page tracker.
//!
//! Multi-pass processing (Section 4.2.2) restricts the *destination* `v` to
//! a vertex range per launch; the kernels here take that range explicitly
//! (full range = single pass).

use cnc_graph::CsrGraph;
use cnc_intersect::{ps_count, Bitmap, CountingMeter, NullMeter};

use crate::cost::KernelStats;
use crate::mem::{ArrayId, UnifiedMemory};
use crate::pool::DeviceBitmapPool;
use crate::spec::GpuSpec;
use crate::warp::{warp_block_merge, warp_reduce_sum};

/// Launch parameters shared by the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Warps per thread block (`blockDim.y`; the paper's default is 4).
    pub warps_per_block: usize,
    /// Degree-skew threshold `t` splitting edges between `MKernel` and
    /// `PSKernel`.
    pub skew_threshold: u32,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        Self {
            warps_per_block: 4,
            skew_threshold: 50,
        }
    }
}

/// Is the pair (da, db) degree-skewed above threshold `t`?
#[inline]
fn is_skewed(da: usize, db: usize, t: u32) -> bool {
    let (s, l) = if da < db { (da, db) } else { (db, da) };
    s > 0 && l > (t as usize).saturating_mul(s)
}

/// The sub-slice of `N(u)`'s edge offsets whose destinations fall in
/// `v_range` (multi-pass selection; sorted neighbor lists allow binary
/// search, so out-of-range edges cost nothing).
fn edges_in_range(g: &CsrGraph, u: u32, v_range: &std::ops::Range<u32>) -> std::ops::Range<usize> {
    let base = g.offset_range(u).start;
    let nu = g.neighbors(u);
    let lo = base + nu.partition_point(|&v| v < v_range.start);
    let hi = base + nu.partition_point(|&v| v < v_range.end);
    lo..hi
}

/// Touch the unified-memory ranges a block reads for edge `eid → v`.
///
/// The destination list `N(v)` is the *reused* working set of a pass (many
/// source blocks probe the same in-range destinations), so it takes resident
/// LRU semantics; the count write is a pure stream.
fn touch_edge(g: &CsrGraph, um: &mut UnifiedMemory, eid: usize, v: u32) {
    let vr = g.offset_range(v);
    um.touch(ArrayId::Dst, (vr.start * 4) as u64..(vr.end * 4) as u64);
    um.touch_stream(ArrayId::Counts, (eid * 4) as u64..(eid * 4 + 4) as u64);
}

/// Touch the per-block unified-memory ranges (offsets entry + `N(u)`).
///
/// The source-side scan visits each `N(u)` once per pass: streaming
/// semantics (it migrates but must not evict the reused destinations).
fn touch_block(g: &CsrGraph, um: &mut UnifiedMemory, u: u32) {
    let o = (u as usize * 8) as u64;
    um.touch_stream(ArrayId::Offsets, o..o + 16);
    let ur = g.offset_range(u);
    um.touch_stream(ArrayId::Dst, (ur.start * 4) as u64..(ur.end * 4) as u64);
}

/// `MKernel` (Algorithm 5 lines 3–11): one warp per edge, warp-cooperative
/// block merge for the non-skewed `u < v` pairs in `v_range`.
pub fn run_mkernel(
    g: &CsrGraph,
    _spec: &GpuSpec,
    cfg: &LaunchConfig,
    v_range: std::ops::Range<u32>,
    counts: &mut [u32],
    um: &mut UnifiedMemory,
) -> KernelStats {
    let mut stats = KernelStats::default();
    for u in 0..g.num_vertices() as u32 {
        let edges = edges_in_range(g, u, &v_range);
        if edges.is_empty() {
            continue;
        }
        stats.blocks += 1;
        touch_block(g, um, u);
        let nu = g.neighbors(u);
        for eid in edges {
            let v = g.dst()[eid];
            stats.warp_instrs += 1; // the u>v / skew guard
            if u > v || is_skewed(nu.len(), g.degree(v), cfg.skew_threshold) {
                continue;
            }
            touch_edge(g, um, eid, v);
            let nv = g.neighbors(v);
            // Warp-cooperative 8×4 block merge, staged through shared memory.
            let mut lanes = [0u32; 32];
            lanes[0] = warp_block_merge(nu, nv, &mut stats);
            let c = warp_reduce_sum(&lanes, &mut stats);
            // The merge streams both lists from global memory.
            stats.coalesced_bytes += 4 * (nu.len() + nv.len()) as u64;
            counts[eid] = c;
            stats.coalesced_bytes += 4; // count write
        }
    }
    stats
}

/// `PSKernel` (Algorithm 5 lines 12–17): one *thread* per edge, pivot-skip
/// merge for the skewed `u < v` pairs in `v_range`.
///
/// The gallop's gather pattern cannot use warp cooperation; every per-lane
/// step is charged as a full warp instruction (complete divergence), which
/// is the inefficiency that makes GPU-MPS the slowest configuration in
/// Figure 10.
pub fn run_pskernel(
    g: &CsrGraph,
    _spec: &GpuSpec,
    cfg: &LaunchConfig,
    v_range: std::ops::Range<u32>,
    counts: &mut [u32],
    um: &mut UnifiedMemory,
) -> KernelStats {
    let mut stats = KernelStats::default();
    for u in 0..g.num_vertices() as u32 {
        let edges = edges_in_range(g, u, &v_range);
        if edges.is_empty() {
            continue;
        }
        stats.blocks += 1;
        touch_block(g, um, u);
        let nu = g.neighbors(u);
        for eid in edges {
            let v = g.dst()[eid];
            stats.warp_instrs += 1;
            if u > v || !is_skewed(nu.len(), g.degree(v), cfg.skew_threshold) {
                continue;
            }
            touch_edge(g, um, eid, v);
            let mut meter = CountingMeter::new();
            let c = ps_count(nu, g.neighbors(v), &mut meter);
            // SIMT divergence: the 32 lanes of a warp gallop through
            // *different* edges in lockstep, so most issue slots are wasted
            // on inactive lanes — the inefficiency that makes GPU-MPS the
            // paper's slowest configuration. Every search probe is an
            // irregular gather.
            const PS_DIVERGENCE: u64 = 32;
            stats.warp_instrs +=
                (meter.counts.scalar_ops + meter.counts.vector_ops) * PS_DIVERGENCE;
            stats.scattered_trans += meter.counts.rand_accesses + meter.counts.rand_accesses_small;
            stats.coalesced_bytes += meter.counts.seq_bytes;
            counts[eid] = c;
            stats.coalesced_bytes += 4;
        }
    }
    stats
}

/// `BMPKernel` (Algorithm 6): per-block bitmap from the device pool, warp
/// per edge probing `N(v)` against the bitmap, optional range filter held in
/// shared memory.
#[allow(clippy::too_many_arguments)]
pub fn run_bmp_kernel(
    g: &CsrGraph,
    spec: &GpuSpec,
    cfg: &LaunchConfig,
    rf: Option<usize>,
    pool: &DeviceBitmapPool,
    v_range: std::ops::Range<u32>,
    counts: &mut [u32],
    um: &mut UnifiedMemory,
) -> KernelStats {
    let mut stats = KernelStats::default();
    let n = g.num_vertices().max(1);
    // The shared-memory range filter: one small bitmap per block. Its size
    // must fit the per-block shared memory slice.
    let mut small = rf.map(|ratio| {
        let small_bits = n.div_ceil(ratio);
        let shared_budget_bits = (spec.shared_mem_per_sm / spec.blocks_per_sm(cfg.warps_per_block).max(1)) * 8;
        assert!(
            small_bits <= shared_budget_bits.max(64),
            "RF small bitmap ({small_bits} bits) exceeds shared memory budget ({shared_budget_bits} bits)"
        );
        (Bitmap::new(small_bits.max(1)), ratio.trailing_zeros())
    });
    for u in 0..g.num_vertices() as u32 {
        let edges = edges_in_range(g, u, &v_range);
        // Skip blocks with no work in this pass before paying for the
        // bitmap construction.
        let has_work = edges.clone().any(|eid| g.dst()[eid] > u);
        if !has_work {
            continue;
        }
        stats.blocks += 1;
        touch_block(g, um, u);
        let nu = g.neighbors(u);
        // Acquire + construct (atomic-or per neighbor, Algorithm 6 line 8).
        // All threads of the block construct cooperatively: the atomic-or
        // stream retires at roughly a warp's width per cycle, and sorted
        // neighbor ids cluster into shared bitmap words/lines (~4 per
        // scattered transaction).
        let handle = pool.acquire();
        stats.atomics += 1 + (nu.len() as u64).div_ceil(8);
        stats.scattered_trans += (nu.len() as u64).div_ceil(4);
        stats.coalesced_bytes += 4 * nu.len() as u64;
        pool.with(&handle, |bm| {
            bm.set_list(nu, &mut NullMeter);
            if let Some((small_bm, shift)) = &mut small {
                for &w in nu {
                    small_bm.set(w >> *shift);
                }
                stats.shared_ops += (nu.len() as u64).div_ceil(32) * 2;
            }
            for eid in edges {
                let v = g.dst()[eid];
                stats.warp_instrs += 1;
                if u > v {
                    continue;
                }
                touch_edge(g, um, eid, v);
                let nv = g.neighbors(v);
                stats.coalesced_bytes += 4 * nv.len() as u64;
                // Warp-wise probe: 32 lanes test 32 destinations per
                // instruction. The RF small bitmap lives in shared memory
                // (32 banks — one warp-wide probe costs ~2 issue slots with
                // conflicts); only range hits touch the global bitmap, each
                // an uncoalesced transaction.
                stats.shared_ops += match &small {
                    Some(_) => (nv.len() as u64).div_ceil(32) * 2,
                    None => 0,
                };
                // A 32-byte sector of the bitmap covers 256 vertex ids;
                // sorted destination ids that land in the same sector as the
                // previous probe reuse the in-flight transaction (dense id
                // clusters — hubs after degree-descending relabeling — probe
                // nearly for free, sparse uniform ids pay full price).
                const IDS_PER_SECTOR_SHIFT: u32 = 8;
                let mut last_sector = u32::MAX;
                let mut lanes = [0u32; 32];
                for (k, &w) in nv.iter().enumerate() {
                    let hit = match &small {
                        Some((small_bm, shift)) => {
                            if small_bm.test(w >> *shift) {
                                let sector = w >> IDS_PER_SECTOR_SHIFT;
                                stats.scattered_trans += u64::from(sector != last_sector);
                                last_sector = sector;
                                bm.test(w)
                            } else {
                                false
                            }
                        }
                        None => {
                            let sector = w >> IDS_PER_SECTOR_SHIFT;
                            stats.scattered_trans += u64::from(sector != last_sector);
                            last_sector = sector;
                            bm.test(w)
                        }
                    };
                    lanes[k % 32] += u32::from(hit);
                    stats.warp_instrs += u64::from(k % 32 == 0);
                }
                let c = warp_reduce_sum(&lanes, &mut stats);
                counts[eid] = c;
                stats.coalesced_bytes += 4;
            }
            // Clear + release (Algorithm 6 line 21).
            bm.clear_list(nu, &mut NullMeter);
            stats.atomics += (nu.len() as u64).div_ceil(8);
            stats.scattered_trans += (nu.len() as u64).div_ceil(4);
            if let Some((small_bm, shift)) = &mut small {
                for &w in nu {
                    small_bm.clear(w >> *shift);
                }
                stats.shared_ops += (nu.len() as u64).div_ceil(32) * 2;
            }
        });
        pool.release(handle);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::titan_xp;
    use cnc_graph::{generators, EdgeList};

    fn reference(g: &CsrGraph) -> Vec<u32> {
        let mut cnt = vec![0u32; g.num_directed_edges()];
        for (eid, u, v) in g.iter_edges() {
            if u < v {
                cnt[eid] = cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v));
            }
        }
        cnt
    }

    fn um_for(g: &CsrGraph, spec: &GpuSpec) -> UnifiedMemory {
        UnifiedMemory::new(
            spec.global_mem_bytes,
            spec.page_bytes,
            &[
                (ArrayId::Offsets, (g.offsets().len() * 8) as u64),
                (ArrayId::Dst, (g.dst().len() * 4) as u64),
                (ArrayId::Counts, (g.num_directed_edges() * 4) as u64),
            ],
        )
    }

    fn full_range(g: &CsrGraph) -> std::ops::Range<u32> {
        0..g.num_vertices() as u32
    }

    #[test]
    fn m_plus_ps_kernels_cover_all_upper_edges() {
        let spec = titan_xp();
        let cfg = LaunchConfig::default();
        let g = CsrGraph::from_edge_list(&generators::hub_web(500, 6.0, 2, 0.5, 7));
        let mut counts = vec![0u32; g.num_directed_edges()];
        let mut um = um_for(&g, &spec);
        let s1 = run_mkernel(&g, &spec, &cfg, full_range(&g), &mut counts, &mut um);
        let s2 = run_pskernel(&g, &spec, &cfg, full_range(&g), &mut counts, &mut um);
        assert_eq!(counts, reference(&g));
        assert!(s1.blocks > 0 && s2.blocks > 0);
    }

    #[test]
    fn bmp_kernel_matches_reference() {
        let spec = titan_xp();
        let cfg = LaunchConfig::default();
        let g = CsrGraph::from_edge_list(&generators::chung_lu(400, 10.0, 2.2, 3));
        let pool = DeviceBitmapPool::new(4, g.num_vertices());
        let mut counts = vec![0u32; g.num_directed_edges()];
        let mut um = um_for(&g, &spec);
        run_bmp_kernel(
            &g,
            &spec,
            &cfg,
            None,
            &pool,
            full_range(&g),
            &mut counts,
            &mut um,
        );
        assert_eq!(counts, reference(&g));
    }

    #[test]
    fn bmp_rf_kernel_matches_reference_and_reduces_scatter() {
        let spec = titan_xp();
        let cfg = LaunchConfig::default();
        let g = CsrGraph::from_edge_list(&generators::gnm(2000, 8000, 5));
        let pool = DeviceBitmapPool::new(4, g.num_vertices());
        let want = reference(&g);

        let mut c1 = vec![0u32; g.num_directed_edges()];
        let mut um1 = um_for(&g, &spec);
        let s_plain = run_bmp_kernel(
            &g,
            &spec,
            &cfg,
            None,
            &pool,
            full_range(&g),
            &mut c1,
            &mut um1,
        );
        assert_eq!(c1, want);

        let mut c2 = vec![0u32; g.num_directed_edges()];
        let mut um2 = um_for(&g, &spec);
        let ratio = cnc_intersect::scaled_rf_ratio(g.num_vertices());
        let s_rf = run_bmp_kernel(
            &g,
            &spec,
            &cfg,
            Some(ratio),
            &pool,
            full_range(&g),
            &mut c2,
            &mut um2,
        );
        assert_eq!(c2, want);
        assert!(
            s_rf.scattered_trans * 3 < s_plain.scattered_trans * 2,
            "RF must cut global probes: {} vs {}",
            s_rf.scattered_trans,
            s_plain.scattered_trans
        );
    }

    #[test]
    fn multipass_kernels_compose_to_full_result() {
        let spec = titan_xp();
        let cfg = LaunchConfig::default();
        let g = CsrGraph::from_edge_list(&generators::chung_lu(600, 8.0, 2.3, 9));
        let want = reference(&g);
        for passes in [2usize, 3, 7] {
            let pool = DeviceBitmapPool::new(4, g.num_vertices());
            let mut counts = vec![0u32; g.num_directed_edges()];
            let mut um = um_for(&g, &spec);
            let n = g.num_vertices() as u32;
            let step = n.div_ceil(passes as u32).max(1);
            let mut start = 0u32;
            while start < n {
                let end = (start + step).min(n);
                run_bmp_kernel(
                    &g,
                    &spec,
                    &cfg,
                    None,
                    &pool,
                    start..end,
                    &mut counts,
                    &mut um,
                );
                start = end;
            }
            assert_eq!(counts, want, "passes={passes}");
        }
    }

    #[test]
    fn skew_split_is_exhaustive_and_disjoint() {
        // Every u<v edge is handled by exactly one of MKernel / PSKernel.
        let g = CsrGraph::from_edge_list(&generators::hub_web(300, 5.0, 1, 0.6, 2));
        let t = 50;
        for (_, u, v) in g.iter_edges() {
            if u < v {
                let skewed = is_skewed(g.degree(u), g.degree(v), t);
                let m_handles = !skewed;
                let ps_handles = skewed;
                assert!(m_handles ^ ps_handles);
            }
        }
    }

    #[test]
    fn edges_in_range_selects_correct_slice() {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (0, 3), (0, 5), (0, 7)]));
        let r = edges_in_range(&g, 0, &(2..6));
        let vs: Vec<u32> = r.map(|eid| g.dst()[eid]).collect();
        assert_eq!(vs, vec![3, 5]);
        assert!(edges_in_range(&g, 0, &(8..9)).is_empty());
    }
}
