//! A CUDA-like GPU simulator and the paper's GPU counting kernels.
//!
//! No NVIDIA GPU is attached to this machine, so the GPU backend is a
//! *functional simulator with a transaction-level cost model* (see
//! DESIGN.md's substitution table):
//!
//! * [`spec::GpuSpec`] models the paper's TITAN Xp — 30 SMs, 2048 threads
//!   and 16 block slots per SM, 48 KB shared memory, 12 GB global memory —
//!   including the occupancy rules the paper quotes (4 warps/block → 16
//!   concurrent blocks/SM → 100% occupancy).
//! * [`kernels`] executes Algorithms 5 and 6 *functionally* (exact counts,
//!   warp-accurate structure: warp-strided edge loops, 8×4 warp block
//!   merges, `__shfl_down` reductions, atomic bitmap construction) while
//!   tallying warp instructions, coalesced bytes and scattered transactions.
//! * [`cost`] prices the tallies with a roofline + latency-hiding model
//!   where occupancy determines how much scattered-access latency is hidden
//!   (the Figure 9 mechanism).
//! * [`mem::UnifiedMemory`] reproduces on-demand paging with LRU eviction,
//!   giving multi-pass processing (Section 4.2.2) its real behavior —
//!   including the thrashing cliff of Figure 8 when the pass count drops
//!   below the paper's estimate.
//! * [`pool::DeviceBitmapPool`] is Algorithm 6's `B_A`/`BS_A` bitmap pool
//!   with CAS acquisition.
//! * [`coprocess`] implements Algorithm 4's CPU–GPU co-processing: the
//!   reverse-offset assignment runs on the *real* host CPU (rayon) and its
//!   wall-clock is overlapped with the modeled kernel time.
//!
//! # Example
//!
//! ```
//! use cnc_graph::datasets::{Dataset, Scale};
//! use cnc_gpu::{GpuAlgo, GpuRunConfig, GpuRunner};
//!
//! let g = Dataset::TwS.build(Scale::Tiny);
//! let gpu = GpuRunner::titan_xp_for(Dataset::TwS.capacity_scale(&g));
//! let run = gpu.run(&g, GpuAlgo::Bmp { rf: true }, &GpuRunConfig::default());
//! assert_eq!(run.counts.len(), g.num_directed_edges());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod coprocess;
pub mod cost;
pub mod kernels;
pub mod mem;
pub mod multipass;
pub mod pool;
pub mod spec;
pub mod warp;

mod runner;

pub use cost::{kernel_time, KernelStats, KernelTime};
pub use kernels::LaunchConfig;
pub use mem::{ArrayId, UnifiedMemory};
pub use multipass::{estimate_passes, pass_ranges, PassPlan};
pub use pool::DeviceBitmapPool;
pub use runner::{GpuAlgo, GpuReport, GpuRun, GpuRunConfig, GpuRunner};
pub use spec::{titan_xp, GpuSpec};
