//! The device bitmap pool of Algorithm 6 (`B_A` + `BS_A`).
//!
//! BMP on the GPU allocates one `|V|`-bit bitmap per concurrent thread block
//! (`sms × n_C` bitmaps) directly in device memory — *not* unified memory,
//! to keep the hot random accesses off the page-migration path. A block
//! acquires a bitmap by atomically scanning the occupation status array with
//! compare-and-swap (`AcquireBitmap`, Algorithm 6 lines 22–26) and releases
//! it after clearing.

use std::sync::atomic::{AtomicU32, Ordering};

use cnc_intersect::Bitmap;
use std::sync::Mutex;

/// A pool of device bitmaps with an atomic occupation status array.
pub struct DeviceBitmapPool {
    /// `B_A`: the bitmaps, index-addressed.
    bitmaps: Vec<Mutex<Bitmap>>,
    /// `BS_A`: 0 = free, 1 = occupied.
    status: Vec<AtomicU32>,
    /// CAS attempts (for tallying atomics).
    cas_attempts: AtomicU32,
}

/// A bitmap held by a "thread block"; released (and checked clean) on drop
/// via [`DeviceBitmapPool::release`].
pub struct AcquiredBitmap {
    /// Pool slot index.
    pub slot: usize,
}

impl DeviceBitmapPool {
    /// Allocate `count` bitmaps of cardinality `num_vertices`.
    pub fn new(count: usize, num_vertices: usize) -> Self {
        assert!(count >= 1);
        Self {
            bitmaps: (0..count)
                .map(|_| Mutex::new(Bitmap::new(num_vertices)))
                .collect(),
            status: (0..count).map(|_| AtomicU32::new(0)).collect(),
            cas_attempts: AtomicU32::new(0),
        }
    }

    /// Number of bitmaps (`sms × n_C`).
    pub fn len(&self) -> usize {
        self.bitmaps.len()
    }

    /// True if the pool has no bitmaps (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.bitmaps.is_empty()
    }

    /// Total device memory the pool occupies (the paper's `Mem_B_A`).
    pub fn device_bytes(&self) -> u64 {
        self.bitmaps
            .iter()
            .map(|b| b.lock().expect("pool lock poisoned").bytes() as u64)
            .sum()
    }

    /// `AcquireBitmap`: scan `BS_A` with CAS until a free slot is claimed.
    ///
    /// # Panics
    /// Panics if all slots are occupied — on the real device that cannot
    /// happen because at most `sms × n_C` blocks are resident; the simulator
    /// enforces the same bound by sizing the pool accordingly.
    pub fn acquire(&self) -> AcquiredBitmap {
        for (slot, st) in self.status.iter().enumerate() {
            self.cas_attempts.fetch_add(1, Ordering::Relaxed);
            if st
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return AcquiredBitmap { slot };
            }
        }
        panic!("bitmap pool exhausted: more concurrent blocks than sms * n_C");
    }

    /// Run `f` with mutable access to the acquired bitmap.
    pub fn with<R>(&self, handle: &AcquiredBitmap, f: impl FnOnce(&mut Bitmap) -> R) -> R {
        f(&mut self.bitmaps[handle.slot]
            .lock()
            .expect("pool lock poisoned"))
    }

    /// `ReleaseBitmap`: mark the slot free again. Debug-checks the clearing
    /// contract (Algorithm 6 line 21 clears before releasing).
    pub fn release(&self, handle: AcquiredBitmap) {
        debug_assert!(
            self.bitmaps[handle.slot]
                .lock()
                .expect("pool lock poisoned")
                .is_empty(),
            "bitmap must be cleared before release"
        );
        self.status[handle.slot].store(0, Ordering::Release);
    }

    /// CAS operations performed so far (feeds the atomics tally).
    pub fn cas_count(&self) -> u32 {
        self.cas_attempts.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cnc_intersect::NullMeter;

    #[test]
    fn acquire_release_cycle() {
        let pool = DeviceBitmapPool::new(4, 100);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_ne!(a.slot, b.slot);
        pool.with(&a, |bm| {
            bm.set_list(&[1, 2, 3], &mut NullMeter);
            bm.clear_list(&[1, 2, 3], &mut NullMeter);
        });
        pool.release(a);
        pool.release(b);
        let c = pool.acquire();
        assert_eq!(c.slot, 0, "freed slot is reusable");
        pool.release(c);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let pool = DeviceBitmapPool::new(1, 10);
        let _a = pool.acquire();
        let _b = pool.acquire();
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "cleared before release")]
    fn dirty_release_caught() {
        let pool = DeviceBitmapPool::new(1, 10);
        let a = pool.acquire();
        pool.with(&a, |bm| bm.set(3));
        pool.release(a);
    }

    #[test]
    fn device_bytes_is_pool_times_bitmap() {
        // Paper Table 6 regime: 480 bitmaps of |V|/8 bytes each.
        let pool = DeviceBitmapPool::new(480, 41_652_230);
        let per_bitmap = Bitmap::new(41_652_230).bytes() as u64;
        assert_eq!(pool.device_bytes(), 480 * per_bitmap);
        // ≈ 2.5 GB, matching the paper's Mem_B_A for TW.
        let gb = pool.device_bytes() as f64 / (1u64 << 30) as f64;
        assert!((2.0..3.0).contains(&gb), "{gb} GB");
    }

    #[test]
    fn concurrent_acquires_are_disjoint() {
        use rayon::prelude::*;
        let pool = DeviceBitmapPool::new(64, 100);
        let slots: Vec<usize> = (0..64)
            .into_par_iter()
            .map(|_| pool.acquire().slot)
            .collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "every block got its own bitmap");
    }
}
