//! Unified-memory page residency tracker.
//!
//! The paper allocates the CSR arrays and the count array on CUDA unified
//! memory: pages migrate to the device on demand and are evicted when the
//! device is full. Multi-pass processing (Section 4.2.2) exists precisely to
//! keep each pass's footprint resident; this tracker reproduces the fault
//! behavior — including the thrashing cliff of Figure 8 — with an LRU over
//! fixed-size pages.

use std::collections::HashMap;

/// Identifies one unified-memory array (CSR offsets, CSR dst, counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayId {
    /// The CSR offset array.
    Offsets,
    /// The CSR neighbor array.
    Dst,
    /// The per-edge count array.
    Counts,
}

/// LRU page tracker over the registered unified-memory arrays.
#[derive(Debug)]
pub struct UnifiedMemory {
    page_bytes: u64,
    capacity_pages: u64,
    /// Array base "addresses" in a flat page-id space.
    bases: HashMap<ArrayId, u64>,
    /// Page id → LRU stamp.
    resident: HashMap<u64, u64>,
    /// Small FIFO of recently streamed pages (the `Mem_reserved` buffer):
    /// sequential scans fault once per page, not once per touch.
    stream_recent: HashMap<u64, u64>,
    stream_capacity: u64,
    clock: u64,
    faults: u64,
    evictions: u64,
}

impl UnifiedMemory {
    /// A tracker with `device_bytes` of device memory available for
    /// unified-memory pages, and the given arrays (id, byte length).
    pub fn new(device_bytes: u64, page_bytes: u64, arrays: &[(ArrayId, u64)]) -> Self {
        assert!(page_bytes.is_power_of_two());
        let mut bases = HashMap::new();
        let mut next_page = 0u64;
        for &(id, len) in arrays {
            bases.insert(id, next_page);
            next_page += len.div_ceil(page_bytes) + 1; // +1 guard page
        }
        let capacity_pages = (device_bytes / page_bytes).max(1);
        Self {
            page_bytes,
            capacity_pages,
            bases,
            resident: HashMap::new(),
            stream_recent: HashMap::new(),
            // A slice of the device acts as the streaming buffer (the
            // paper's Mem_reserved plays this role).
            stream_capacity: (capacity_pages / 8).max(8),
            clock: 0,
            faults: 0,
            evictions: 0,
        }
    }

    /// Total pages the device can hold.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Unified-memory faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Bytes migrated host→device so far (faults × page size).
    pub fn migrated_bytes(&self) -> u64 {
        self.faults * self.page_bytes
    }

    /// Touch `array[byte_range]` with *resident* semantics: non-resident
    /// pages fault in and join the LRU set (the reused working set — the
    /// destination neighbor lists a pass keeps coming back to).
    pub fn touch(&mut self, array: ArrayId, byte_range: std::ops::Range<u64>) {
        self.touch_impl(array, byte_range, true);
    }

    /// Touch with *streaming* semantics: non-resident pages fault (they
    /// still migrate) but bypass the LRU set, so a sequential scan of the
    /// whole CSR does not evict the pass's reused working set. This mirrors
    /// the role of the paper's `Mem_reserved` streaming buffer.
    pub fn touch_stream(&mut self, array: ArrayId, byte_range: std::ops::Range<u64>) {
        self.touch_impl(array, byte_range, false);
    }

    fn touch_impl(&mut self, array: ArrayId, byte_range: std::ops::Range<u64>, keep: bool) {
        if byte_range.is_empty() {
            return;
        }
        let base = *self.bases.get(&array).expect("array not registered");
        let first = base + byte_range.start / self.page_bytes;
        let last = base + (byte_range.end - 1) / self.page_bytes;
        for page in first..=last {
            self.clock += 1;
            if self.resident.contains_key(&page) {
                self.resident.insert(page, self.clock);
                continue;
            }
            if !keep {
                // Streaming touch: hits in the small stream buffer are free;
                // otherwise fault once and remember the page briefly.
                if self.stream_recent.contains_key(&page) {
                    self.stream_recent.insert(page, self.clock);
                    continue;
                }
                self.faults += 1;
                if self.stream_recent.len() as u64 >= self.stream_capacity {
                    if let Some((&victim, _)) =
                        self.stream_recent.iter().min_by_key(|(_, &stamp)| stamp)
                    {
                        self.stream_recent.remove(&victim);
                    }
                }
                self.stream_recent.insert(page, self.clock);
                continue;
            }
            self.faults += 1;
            if self.resident.len() as u64 >= self.capacity_pages {
                // Evict the least recently used page.
                if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &stamp)| stamp) {
                    self.resident.remove(&victim);
                    self.evictions += 1;
                }
            }
            self.resident.insert(page, self.clock);
        }
    }

    /// Forget all residency (e.g. between experiments).
    pub fn reset(&mut self) {
        self.resident.clear();
        self.clock = 0;
        self.faults = 0;
        self.evictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(cap_pages: u64) -> UnifiedMemory {
        UnifiedMemory::new(
            cap_pages * 1024,
            1024,
            &[(ArrayId::Dst, 100 * 1024), (ArrayId::Counts, 100 * 1024)],
        )
    }

    #[test]
    fn first_touch_faults_once() {
        let mut um = tracker(10);
        um.touch(ArrayId::Dst, 0..1024);
        assert_eq!(um.faults(), 1);
        um.touch(ArrayId::Dst, 0..1024);
        assert_eq!(um.faults(), 1, "resident page must not refault");
    }

    #[test]
    fn range_touch_spans_pages() {
        let mut um = tracker(10);
        um.touch(ArrayId::Dst, 100..4000);
        // Bytes 100..4000 with 1 KiB pages → pages 0..3 inclusive.
        assert_eq!(um.faults(), 4);
    }

    #[test]
    fn arrays_do_not_alias() {
        let mut um = tracker(10);
        um.touch(ArrayId::Dst, 0..1024);
        um.touch(ArrayId::Counts, 0..1024);
        assert_eq!(um.faults(), 2);
    }

    #[test]
    fn working_set_within_capacity_stops_faulting() {
        let mut um = tracker(8);
        for _ in 0..5 {
            um.touch(ArrayId::Dst, 0..4 * 1024); // 4 pages < 8
        }
        assert_eq!(um.faults(), 4);
        assert_eq!(um.evictions(), 0);
    }

    #[test]
    fn sequential_scan_beyond_capacity_thrashes() {
        // Classic LRU pathology the multi-pass technique avoids: a repeated
        // scan of N+1 pages through an N-page memory faults on every touch.
        let mut um = tracker(4);
        let mut last_faults = 0;
        for round in 0..3 {
            um.touch(ArrayId::Dst, 0..8 * 1024); // 8 pages > 4 capacity
            let new_faults = um.faults() - last_faults;
            last_faults = um.faults();
            assert_eq!(new_faults, 8, "round {round} must fault every page");
        }
        assert!(um.evictions() > 0);
    }

    #[test]
    fn empty_touch_is_noop() {
        let mut um = tracker(4);
        um.touch(ArrayId::Dst, 10..10);
        assert_eq!(um.faults(), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut um = tracker(4);
        um.touch(ArrayId::Dst, 0..2048);
        um.reset();
        assert_eq!(um.faults(), 0);
        um.touch(ArrayId::Dst, 0..2048);
        assert_eq!(um.faults(), 2);
    }

    #[test]
    fn migrated_bytes_counts_page_granularity() {
        let mut um = tracker(10);
        um.touch(ArrayId::Dst, 0..1); // one byte still moves a page
        assert_eq!(um.migrated_bytes(), 1024);
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;

    #[test]
    fn streaming_touch_faults_but_does_not_evict() {
        let mut um = UnifiedMemory::new(
            4 * 1024,
            1024,
            &[(ArrayId::Dst, 100 * 1024), (ArrayId::Counts, 100 * 1024)],
        );
        // Build a resident working set of 3 pages.
        um.touch(ArrayId::Dst, 0..3 * 1024);
        assert_eq!(um.faults(), 3);
        // Stream 50 pages of the counts array through.
        um.touch_stream(ArrayId::Counts, 0..50 * 1024);
        assert_eq!(um.faults(), 53);
        assert_eq!(um.evictions(), 0, "stream must not evict the working set");
        // The working set is still resident: no new faults.
        um.touch(ArrayId::Dst, 0..3 * 1024);
        assert_eq!(um.faults(), 53);
    }

    #[test]
    fn streaming_rereads_refault_every_time() {
        let mut um = UnifiedMemory::new(2 * 1024, 1024, &[(ArrayId::Dst, 100 * 1024)]);
        um.touch_stream(ArrayId::Dst, 0..10 * 1024);
        um.touch_stream(ArrayId::Dst, 0..10 * 1024);
        // Non-resident streams pay compulsory migration per scan.
        assert_eq!(um.faults(), 20);
    }
}
