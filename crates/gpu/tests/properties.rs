//! Property tests of the GPU simulator over arbitrary graphs and launch
//! configurations.

use cnc_gpu::{GpuAlgo, GpuRunConfig, GpuRunner, LaunchConfig};
use cnc_graph::{CsrGraph, EdgeList};
use proptest::prelude::*;

fn pairs(n: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_len)
}

fn reference(g: &CsrGraph) -> Vec<u32> {
    g.iter_edges()
        .map(|(_, u, v)| cnc_intersect::reference_count(g.neighbors(u), g.neighbors(v)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernels_exact_under_arbitrary_launch_config(
        ps in pairs(48, 200),
        wpb_log2 in 0u32..6,
        threshold in prop::sample::select(vec![0u32, 5, 50, 1000]),
        passes in 1usize..6,
        rf in any::<bool>(),
        capacity_scale in prop::sample::select(vec![1e-5f64, 1e-4, 1e-2]),
    ) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let gpu = GpuRunner::titan_xp_for(capacity_scale);
        let cfg = GpuRunConfig {
            launch: LaunchConfig {
                warps_per_block: 1 << wpb_log2,
                skew_threshold: threshold,
            },
            passes: Some(passes),
            coprocess: rf, // reuse the flag to cover both paths
        };
        let want = reference(&g);
        for algo in [GpuAlgo::Mps, GpuAlgo::Bmp { rf }] {
            let run = gpu.run(&g, algo, &cfg);
            prop_assert_eq!(&run.counts, &want, "{:?} {:?}", algo, cfg);
            prop_assert!(run.report.kernel.seconds.is_finite());
            prop_assert!(run.report.total_seconds >= 0.0);
        }
    }

    #[test]
    fn fault_count_at_least_compulsory_when_device_small(
        ps in pairs(64, 300),
    ) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        prop_assume!(g.num_directed_edges() > 32);
        // A severely shrunken device: everything must migrate at least once.
        let gpu = GpuRunner::titan_xp_for(1e-6);
        let run = gpu.run(&g, GpuAlgo::Mps, &GpuRunConfig::default());
        let bytes = (g.offsets().len() * 8 + g.dst().len() * 4
            + g.num_directed_edges() * 4) as u64;
        let compulsory = bytes.div_ceil(gpu.spec.page_bytes);
        // At least the offsets+touched dst pages fault (untouched count
        // pages may not, if some slots are never written by kernels).
        prop_assert!(run.report.faults > 0);
        prop_assert!(run.report.migrated_bytes >= run.report.faults * gpu.spec.page_bytes / 2);
        prop_assert!(compulsory > 0);
    }

    #[test]
    fn more_passes_never_reduce_faults(ps in pairs(64, 300)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        prop_assume!(g.num_directed_edges() > 16);
        let gpu = GpuRunner::titan_xp_for(1e-4);
        let f2 = gpu
            .run(&g, GpuAlgo::Mps, &GpuRunConfig { passes: Some(2), ..GpuRunConfig::default() })
            .report
            .faults;
        let f6 = gpu
            .run(&g, GpuAlgo::Mps, &GpuRunConfig { passes: Some(6), ..GpuRunConfig::default() })
            .report
            .faults;
        // With a device big enough to hold the graph, extra passes only
        // re-stream: fault counts are non-decreasing in the pass count.
        prop_assert!(f6 >= f2, "{f2} vs {f6}");
    }
}
