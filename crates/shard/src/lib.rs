//! # cnc-shard — multi-process sharded execution
//!
//! Scatter-gather execution of all-edge common neighbor counting across
//! worker *processes*: the coordinator cuts the directed edge range into
//! cost-balanced source-aligned blocks (the exact cuts the in-process
//! balanced scheduler makes, via `cnc_cpu::cut_source_blocks`), spawns one
//! `cnc shard-worker` child per block against a single shared prepared
//! graph file, and gathers per-shard count sections and spilled mirror
//! writes over the `cnc-serve` length-prefixed frame protocol.
//!
//! The layer's acceptance property is *byte-identity*: for any worker
//! count, the assembled per-edge array equals a single-process run of the
//! same plan bit for bit. The symmetric-assignment mirror writes make this
//! nontrivial — a canonical `u < v` pair's mirror slot can live in another
//! shard — and the section + spill wire format (see [`protocol`]) routes
//! every directed slot to exactly one writer.
//!
//! Fault tolerance is deliberately small: a worker that dies mid-stream is
//! retried once; a repeat failure surfaces as a typed [`ShardError`]. The
//! coordinator mirrors progress into the ambient `ObsContext` under a
//! `shard → execute` span level with the `shard.*` counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod coordinator;
pub mod protocol;
pub mod worker;

pub use coordinator::{run_sharded, ShardConfig, ShardOutput};
pub use protocol::{decode_msg, encode_msg, ShardTally, WireError, WorkerMsg, SHARD_WIRE_VERSION};
pub use worker::{worker_main, WorkerArgs, FAIL_ENV};

use cnc_core::{Algorithm, PlanError, RfChoice};
use cnc_intersect::MpsConfig;

/// Why a sharded run failed.
#[derive(Debug)]
pub enum ShardError {
    /// The run could not be planned (invalid kernel configuration).
    Plan(PlanError),
    /// The algorithm cannot be expressed as a worker command line.
    Algorithm(String),
    /// A worker process could not be spawned at all (not retried).
    Spawn {
        /// Index of the shard whose worker failed to start.
        shard: usize,
        /// The spawn error.
        error: String,
    },
    /// A worker failed on every allowed attempt.
    Worker {
        /// Index of the failing shard.
        shard: usize,
        /// Attempts made (always the retry budget, currently 2).
        attempts: usize,
        /// The last failure's reason.
        reason: String,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Plan(e) => write!(f, "cannot plan sharded run: {e}"),
            ShardError::Algorithm(msg) => write!(f, "{msg}"),
            ShardError::Spawn { shard, error } => {
                write!(f, "cannot spawn worker for shard {shard}: {error}")
            }
            ShardError::Worker {
                shard,
                attempts,
                reason,
            } => write!(
                f,
                "shard {shard} failed after {attempts} attempts: {reason}"
            ),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PlanError> for ShardError {
    fn from(e: PlanError) -> Self {
        ShardError::Plan(e)
    }
}

/// The wire token a coordinator passes workers as `--algo`, so both sides
/// plan the same kernel. Custom MPS configurations have no token (the
/// command line would need the whole config); sharding rejects them
/// explicitly rather than silently running the default.
pub fn algo_token(algorithm: Algorithm) -> Result<String, ShardError> {
    match algorithm {
        Algorithm::MergeBaseline => Ok("m".into()),
        Algorithm::Mps(cfg) if cfg == MpsConfig::default() => Ok("mps".into()),
        Algorithm::Mps(_) => Err(ShardError::Algorithm(
            "sharded runs support the default MPS configuration only \
             (a custom config has no worker command-line token)"
                .into(),
        )),
        Algorithm::Bmp(RfChoice::Off) => Ok("bmp".into()),
        Algorithm::Bmp(RfChoice::Scaled) => Ok("bmp-rf".into()),
        Algorithm::Bmp(RfChoice::Ratio(r)) => Ok(format!("bmp-rf:{r}")),
    }
}

/// Decode an `--algo` wire token back into the algorithm (the worker-side
/// inverse of [`algo_token`]).
pub fn parse_algo_token(token: &str) -> Result<Algorithm, String> {
    match token {
        "m" => Ok(Algorithm::MergeBaseline),
        "mps" => Ok(Algorithm::mps()),
        "bmp" => Ok(Algorithm::bmp()),
        "bmp-rf" => Ok(Algorithm::bmp_rf()),
        other => match other.strip_prefix("bmp-rf:") {
            Some(ratio) => ratio
                .parse::<usize>()
                .map(|r| Algorithm::Bmp(RfChoice::Ratio(r)))
                .map_err(|_| format!("bad range-filter ratio in algo token {other:?}")),
            None => Err(format!("unknown algo token {other:?}")),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_tokens_round_trip() {
        for algo in [
            Algorithm::MergeBaseline,
            Algorithm::mps(),
            Algorithm::bmp(),
            Algorithm::bmp_rf(),
            Algorithm::Bmp(RfChoice::Ratio(64)),
        ] {
            let token = algo_token(algo).expect("tokenizable");
            assert_eq!(parse_algo_token(&token), Ok(algo), "token {token}");
        }
    }

    #[test]
    fn custom_mps_and_junk_tokens_are_rejected() {
        let custom = Algorithm::Mps(MpsConfig {
            skew_threshold: 7,
            ..MpsConfig::default()
        });
        assert!(matches!(algo_token(custom), Err(ShardError::Algorithm(_))));
        assert!(parse_algo_token("nope").is_err());
        assert!(parse_algo_token("bmp-rf:x").is_err());
    }
}
