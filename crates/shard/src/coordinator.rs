//! The shard coordinator: cut, spawn, scatter-gather, assemble.
//!
//! [`run_sharded`] plans once (same planner as a single-process run), cuts
//! the directed edge range into cost-balanced source-aligned blocks with
//! the kernel-aware cost model (`cnc_cpu::cut_source_blocks` — the same
//! cuts `SchedulePolicy::Balanced` would make), spawns one worker process
//! per block, and reassembles their sections and spills into the full
//! per-edge count array. Because every directed slot is written by exactly
//! one worker (its own section, or a spill from the shard holding the
//! canonical pair), the assembled array is byte-identical to a
//! single-process run — the differential tests and the CI smoke job `cmp`
//! the output files to hold that line.
//!
//! Failure policy: a worker that dies mid-stream (crash, truncated frame,
//! nonzero exit) gets exactly one retry; a second failure surfaces as
//! [`ShardError::Worker`] with the shard index and attempt count. Spawn
//! failures (missing executable) are not retried — nothing transient about
//! them. Every failure increments the `shard.worker_failures` counter.

use std::io::Read;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use cnc_core::{Algorithm, Runner};
use cnc_cpu::cut_source_blocks;
use cnc_graph::PreparedGraph;
use cnc_intersect::WorkCounts;
use cnc_obs::{Counter, ObsContext};
use cnc_workload::CncWorkload;

use crate::protocol::{decode_msg, read_frame, FrameRead, ShardTally, WorkerMsg};
use crate::worker::FAIL_ENV;
use crate::{algo_token, ShardError};

/// How the coordinator launches and pairs its workers.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of worker processes to aim for (the source-aligned cutter may
    /// produce fewer blocks on tiny graphs; zero is treated as one).
    pub workers: usize,
    /// The algorithm every worker plans (must have a wire token — see
    /// [`algo_token`]).
    pub algorithm: Algorithm,
    /// Explicit reorder override, forwarded verbatim to every worker;
    /// `None` lets both sides use the runner's default.
    pub reorder: Option<bool>,
    /// The executable to spawn with the hidden `shard-worker` subcommand
    /// (normally `std::env::current_exe()` — the same binary).
    pub worker_exe: PathBuf,
    /// Path to the shared prepared-graph file every worker loads.
    pub prep_path: PathBuf,
    /// Fault-injection spec to place in each child's [`FAIL_ENV`]
    /// (tests and the CI retry smoke only).
    pub fail_spec: Option<String>,
}

/// What a sharded run produced.
#[derive(Debug)]
pub struct ShardOutput {
    /// Per-edge counts in the *input* graph's directed edge offsets —
    /// byte-identical to a single-process run.
    pub counts: Vec<u32>,
    /// Exact kernel work, merged across all workers.
    pub work: WorkCounts,
    /// The workers' own observability snapshots (cnc-metrics report JSON),
    /// in shard order; empty strings for workers that skipped the report.
    pub worker_reports: Vec<String>,
    /// Worker processes that completed the run (= number of blocks).
    pub workers: usize,
    /// Worker attempts that failed (each mid-stream death earns one retry).
    pub worker_failures: u64,
    /// Largest per-block estimated cost under the kernel's model.
    pub range_cost_max: u64,
    /// Smallest per-block estimated cost under the kernel's model.
    pub range_cost_min: u64,
    /// Coordinator wall-clock seconds for the whole scatter-gather.
    pub wall_seconds: f64,
}

/// One worker attempt's successfully gathered stream.
struct WorkerRun {
    shard: usize,
    range: std::ops::Range<usize>,
    section: Vec<u32>,
    spills: Vec<(u64, u32)>,
    report: String,
    tally: ShardTally,
}

/// Why one attempt failed (decides retry eligibility).
enum OneErr {
    /// The process could not be started at all — not retried.
    Spawn(String),
    /// The worker died or mis-spoke mid-stream — retried once.
    Failed(String),
}

/// Execute the full edge range of `prepared` across worker processes.
pub fn run_sharded(prepared: &PreparedGraph, cfg: &ShardConfig) -> Result<ShardOutput, ShardError> {
    let t0 = Instant::now();
    let runner = {
        let base = Runner::new(cnc_core::Platform::CpuSequential, cfg.algorithm);
        match cfg.reorder {
            Some(r) => base.reorder(r),
            None => base,
        }
    };
    let plan = runner.plan(prepared)?;
    let g = prepared.execution_graph(plan.reorder);
    let m = g.num_directed_edges();
    let blocks = cut_source_blocks(
        g,
        &plan.cpu_kernel.cost_model(),
        &CncWorkload,
        cfg.workers.max(1),
    );
    let algo = algo_token(cfg.algorithm)?;
    let obs = ObsContext::current();
    let spawned_workers = AtomicU64::new(0);
    let failures = AtomicU64::new(0);

    let results: Vec<Result<WorkerRun, ShardError>> = {
        // The shard span parents every per-worker execute span; monitor
        // threads attach explicitly by id because span nesting is
        // thread-local.
        let shard_span = obs.as_ref().map(|ctx| ctx.span("shard"));
        let parent = shard_span.as_ref().map(|s| s.id());
        std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .iter()
                .enumerate()
                .map(|(shard, block)| {
                    let obs = &obs;
                    let algo = &algo;
                    let spawned_workers = &spawned_workers;
                    let failures = &failures;
                    let range = block.range.clone();
                    scope.spawn(move || {
                        let mut span = obs.as_ref().map(|ctx| ctx.span_under("execute", parent));
                        if let Some(s) = span.as_mut() {
                            s.set_items(range.len() as u64);
                        }
                        let mut last = String::new();
                        for attempt in 0..2 {
                            spawned_workers.fetch_add(1, Ordering::Relaxed);
                            match run_one(cfg, algo, shard, range.clone(), attempt, m) {
                                Ok(run) => return Ok(run),
                                Err(OneErr::Spawn(error)) => {
                                    failures.fetch_add(1, Ordering::Relaxed);
                                    return Err(ShardError::Spawn { shard, error });
                                }
                                Err(OneErr::Failed(reason)) => {
                                    failures.fetch_add(1, Ordering::Relaxed);
                                    last = reason;
                                }
                            }
                        }
                        Err(ShardError::Worker {
                            shard,
                            attempts: 2,
                            reason: last,
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard monitor thread panicked"))
                .collect()
        })
    };

    let worker_failures = failures.load(Ordering::Relaxed);
    let range_cost_max = blocks.iter().map(|b| b.est_cost).max().unwrap_or(0);
    let range_cost_min = blocks.iter().map(|b| b.est_cost).min().unwrap_or(0);
    if let Some(ctx) = &obs {
        ctx.add(
            Counter::ShardWorkers,
            spawned_workers.load(Ordering::Relaxed),
        );
        ctx.add(Counter::ShardWorkerFailures, worker_failures);
        ctx.add(Counter::ShardRangeCostMax, range_cost_max);
        ctx.add(Counter::ShardRangeCostMin, range_cost_min);
    }

    let mut runs = Vec::with_capacity(results.len());
    for r in results {
        runs.push(r?);
    }

    // Assemble: copy every section into place, then let the spills
    // overwrite the mirror slots whose canonical pair lived in another
    // shard. Each slot is written correctly exactly once.
    let mut full = vec![0u32; m];
    for run in &runs {
        full[run.range.clone()].copy_from_slice(&run.section);
    }
    for run in &runs {
        for &(rev, c) in &run.spills {
            full[rev as usize] = c;
        }
    }

    let mut work = WorkCounts::default();
    let (mut rebuilds, mut visited, mut skipped) = (0u64, 0u64, 0u64);
    let mut worker_reports = Vec::with_capacity(runs.len());
    for run in &runs {
        work.merge(&run.tally.work);
        rebuilds += run.tally.rebuilds;
        visited += run.tally.visited;
        skipped += run.tally.skipped;
        worker_reports.push(run.report.clone());
    }
    if let Some(ctx) = &obs {
        ctx.add(Counter::KernelSourceRebuilds, rebuilds);
        ctx.add(Counter::WorkloadEdgesVisited, visited);
        ctx.add(Counter::WorkloadEdgesSkipped, skipped);
        work.record_to(&**ctx);
    }

    // One remap back to the input graph's offsets, exactly where the
    // single-process runner does it.
    let counts = if plan.reorder {
        match prepared.reordered() {
            Some(r) => cnc_core::remap::counts_to_original(prepared.graph(), r, &full),
            None => full,
        }
    } else {
        full
    };

    Ok(ShardOutput {
        counts,
        work,
        worker_reports,
        workers: runs.len(),
        worker_failures,
        range_cost_max,
        range_cost_min,
        wall_seconds: t0.elapsed().as_secs_f64(),
    })
}

fn run_one(
    cfg: &ShardConfig,
    algo: &str,
    shard: usize,
    range: std::ops::Range<usize>,
    attempt: usize,
    m: usize,
) -> Result<WorkerRun, OneErr> {
    let mut cmd = Command::new(&cfg.worker_exe);
    cmd.arg("shard-worker")
        .arg("--prep")
        .arg(&cfg.prep_path)
        .arg("--algo")
        .arg(algo)
        .arg("--shard")
        .arg(shard.to_string())
        .arg("--start")
        .arg(range.start.to_string())
        .arg("--end")
        .arg(range.end.to_string())
        .arg("--attempt")
        .arg(attempt.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(reorder) = cfg.reorder {
        cmd.arg("--reorder").arg(if reorder { "on" } else { "off" });
    }
    if let Some(spec) = &cfg.fail_spec {
        cmd.env(FAIL_ENV, spec);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| OneErr::Spawn(format!("cannot spawn {}: {e}", cfg.worker_exe.display())))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    match read_worker_stream(stdout, shard, &range, m) {
        Ok(mut run) => {
            let status = child
                .wait()
                .map_err(|e| OneErr::Failed(format!("wait failed: {e}")))?;
            if !status.success() {
                return Err(OneErr::Failed(format!(
                    "worker exited with {status} after completing its stream"
                )));
            }
            run.shard = shard;
            run.range = range;
            Ok(run)
        }
        Err(reason) => {
            // Never leave a zombie: the stream is broken, so the process is
            // of no further use regardless of what it thinks it is doing.
            let _ = child.kill();
            let _ = child.wait();
            Err(OneErr::Failed(reason))
        }
    }
}

fn read_worker_stream(
    mut stdout: impl Read,
    shard: usize,
    range: &std::ops::Range<usize>,
    m: usize,
) -> Result<WorkerRun, String> {
    let want = range.len();
    let mut section: Vec<u32> = Vec::with_capacity(want);
    let mut spills: Vec<(u64, u32)> = Vec::new();
    let mut report = String::new();
    let mut hello_seen = false;
    loop {
        let payload = match read_frame(&mut stdout) {
            Ok(FrameRead::Payload(p)) => p,
            Ok(FrameRead::Closed) => return Err("worker closed its stream early".into()),
            Ok(FrameRead::TooLarge(n)) => return Err(format!("worker sent a {n}-byte frame")),
            Err(e) => return Err(format!("worker stream read failed: {e}")),
        };
        match decode_msg(&payload).map_err(|e| format!("bad worker frame: {e}"))? {
            WorkerMsg::Hello {
                version,
                shard: ws,
                start,
                end,
            } => {
                if version != crate::protocol::SHARD_WIRE_VERSION {
                    return Err(format!("worker speaks wire version {version}"));
                }
                if ws as usize != shard
                    || start as usize != range.start
                    || end as usize != range.end
                {
                    return Err(format!(
                        "worker answered for shard {ws} range {start}..{end}, \
                         expected shard {shard} range {}..{}",
                        range.start, range.end
                    ));
                }
                hello_seen = true;
            }
            WorkerMsg::Counts(chunk) => {
                if !hello_seen {
                    return Err("counts before hello".into());
                }
                if section.len() + chunk.len() > want {
                    return Err(format!(
                        "worker sent {} counts for a range of {want}",
                        section.len() + chunk.len()
                    ));
                }
                section.extend_from_slice(&chunk);
            }
            WorkerMsg::Spills(chunk) => {
                if let Some(&(rev, _)) = chunk.iter().find(|&&(rev, _)| rev as usize >= m) {
                    return Err(format!("spill offset {rev} out of bounds ({m} edges)"));
                }
                spills.extend_from_slice(&chunk);
            }
            WorkerMsg::Report(json) => report = json,
            WorkerMsg::Done(tally) => {
                if section.len() != want {
                    return Err(format!(
                        "worker finished with {} of {want} counts",
                        section.len()
                    ));
                }
                return Ok(WorkerRun {
                    shard,
                    range: range.clone(),
                    section,
                    spills,
                    report,
                    tally,
                });
            }
            WorkerMsg::Error(reason) => return Err(format!("worker reported: {reason}")),
        }
    }
}
