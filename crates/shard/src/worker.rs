//! The shard worker: one process, one edge range.
//!
//! A worker is the same `cnc` binary re-invoked as the hidden
//! `shard-worker` subcommand. It loads the one shared prepared graph the
//! coordinator points it at (memory-mapping warm caches, so N workers share
//! the page cache instead of re-preparing N times), plans exactly like a
//! single-process run, executes its assigned `[start, end)` directed edge
//! range through the generic edge-range driver, and streams its results
//! back over stdout using the [`crate::protocol`] frames.
//!
//! Determinism note: the worker runs the *full-length* [`ScatterVec`] the
//! CNC workload always runs — the visit writes both `eid` and its mirror —
//! then extracts its own section plus the mirror writes that landed outside
//! the range ("spills"). Every directed slot of the final array is written
//! by exactly one worker, so the coordinator's assembly is byte-identical
//! to a single-process run by construction, not by accident of scheduling.

use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use cnc_core::{Algorithm, Platform, Runner};
use cnc_graph::prepare;
use cnc_intersect::CountingMeter;
use cnc_obs::{ObsContext, RunReport};
use cnc_workload::{CncWorkload, Workload};

use crate::protocol::{
    encode_msg, write_frame, ShardTally, WorkerMsg, COUNTS_PER_FRAME, SHARD_WIRE_VERSION,
    SPILLS_PER_FRAME,
};

/// Environment variable carrying fault-injection requests, as
/// comma-separated `shard:attempt` entries (e.g. `"1:0"` kills shard 1's
/// first attempt mid-stream). Set by tests and the CI smoke job on the
/// *coordinator* so children inherit it; never consulted outside the
/// worker's execution path.
pub const FAIL_ENV: &str = "CNC_SHARD_FAIL";

/// The parsed `shard-worker` command line.
#[derive(Debug, Clone)]
pub struct WorkerArgs {
    /// Path to the shared prepared-graph file.
    pub prep: PathBuf,
    /// The algorithm to plan (decoded from its wire token).
    pub algo: Algorithm,
    /// Explicit reorder override; `None` keeps the runner's default, which
    /// must match the coordinator's choice exactly.
    pub reorder: Option<bool>,
    /// This worker's shard index (for Hello echo and fault injection).
    pub shard: usize,
    /// First directed edge offset of the assigned range.
    pub start: usize,
    /// One-past-last directed edge offset of the assigned range.
    pub end: usize,
    /// Retry attempt number (0 on the first try).
    pub attempt: usize,
}

/// Whether fault injection asks this (shard, attempt) to die mid-stream.
fn fail_requested(shard: usize, attempt: usize) -> bool {
    let Ok(spec) = std::env::var(FAIL_ENV) else {
        return false;
    };
    spec.split(',').any(|entry| {
        let mut it = entry.trim().split(':');
        matches!(
            (
                it.next().and_then(|s| s.parse::<usize>().ok()),
                it.next().and_then(|a| a.parse::<usize>().ok()),
            ),
            (Some(s), Some(a)) if s == shard && a == attempt
        )
    })
}

/// Run the worker protocol to completion on `out` (the stdout pipe).
///
/// Failures are reported twice: as a terminal [`WorkerMsg::Error`] frame so
/// the coordinator sees the reason, and as the returned `Err` so the
/// process exits nonzero.
pub fn worker_main(args: &WorkerArgs, out: &mut impl Write) -> Result<(), String> {
    match run_worker(args, out) {
        Ok(()) => Ok(()),
        Err(reason) => {
            let _ = write_frame(out, &encode_msg(&WorkerMsg::Error(reason.clone())));
            let _ = out.flush();
            Err(reason)
        }
    }
}

fn run_worker(args: &WorkerArgs, out: &mut impl Write) -> Result<(), String> {
    let t0 = Instant::now();
    send(
        out,
        &WorkerMsg::Hello {
            version: SHARD_WIRE_VERSION,
            shard: args.shard as u32,
            start: args.start as u64,
            end: args.end as u64,
        },
    )?;

    // Warm-load the shared preparation: the mmap path when the platform
    // allows it, streaming read otherwise.
    let prepared = prepare::map_prepared(&args.prep)
        .or_else(|_| std::fs::File::open(&args.prep).and_then(prepare::read_prepared))
        .map_err(|e| format!("cannot load prepared graph {}: {e}", args.prep.display()))?;

    // Plan exactly like a single-process sequential run of the same
    // algorithm — the coordinator planned with the same inputs, so both
    // sides agree on the kernel and the execution graph.
    let mut runner = Runner::new(Platform::CpuSequential, args.algo);
    if let Some(reorder) = args.reorder {
        runner = runner.reorder(reorder);
    }
    let ctx = Arc::new(ObsContext::new());
    let _obs = ctx.install();
    let plan = {
        let _s = ctx.span("plan");
        runner.plan(&prepared).map_err(|e| e.to_string())?
    };
    let g = prepared.execution_graph(plan.reorder);
    let m = g.num_directed_edges();
    if args.start > args.end || args.end > m {
        return Err(format!(
            "range {}..{} out of bounds for {m} directed edges",
            args.start, args.end
        ));
    }

    // Execute the range. The ScatterVec spans all |E| directed slots so the
    // mirror writes land wherever they belong; the wire only carries this
    // worker's section plus the out-of-range spills.
    let workload = CncWorkload;
    let shared = workload.new_shared(g);
    // CNC's accumulator is `()`; the binding drives the generic API.
    #[allow(clippy::let_unit_value)]
    let mut acc = workload.new_accum(g);
    let mut meter = CountingMeter::default();
    let tally = {
        let mut s = ctx.span("execute");
        s.set_items((args.end - args.start) as u64);
        plan.cpu_kernel.run_range_workload(
            &workload,
            g,
            args.start..args.end,
            &shared,
            &mut acc,
            &mut meter,
        )
    };
    meter.counts.record_to(&*ctx);
    let counts = workload.finish(g, shared, acc);

    // Collect the spills: re-walk the range's canonical pairs and pick out
    // every mirror slot that falls outside [start, end).
    let mut spills: Vec<(u64, u32)> = Vec::new();
    let mut u_hint = 0u32;
    for eid in args.start..args.end {
        let u = g.find_src(eid, &mut u_hint);
        let v = g.neighbors(u)[eid - g.offsets()[u as usize]];
        if u >= v {
            continue;
        }
        let rev = g.reverse_offset(u, eid);
        if rev < args.start || rev >= args.end {
            spills.push((rev as u64, counts[rev]));
        }
    }

    // Stream the section. Under fault injection, die after half the chunks
    // with the pipe flushed — the coordinator must observe a genuine
    // mid-stream death, not an instant EOF.
    let section = &counts[args.start..args.end];
    let chunks: Vec<&[u32]> = section.chunks(COUNTS_PER_FRAME).collect();
    let die_after = fail_requested(args.shard, args.attempt).then_some(chunks.len() / 2);
    for (i, chunk) in chunks.iter().enumerate() {
        if die_after == Some(i) {
            let _ = out.flush();
            std::process::exit(101);
        }
        send(out, &WorkerMsg::Counts(chunk.to_vec()))?;
    }
    if die_after == Some(chunks.len()) {
        let _ = out.flush();
        std::process::exit(101);
    }
    for chunk in spills.chunks(SPILLS_PER_FRAME) {
        send(out, &WorkerMsg::Spills(chunk.to_vec()))?;
    }

    // Ship the observability snapshot when it fits a frame comfortably.
    let report = RunReport::from_context(&ctx).to_json();
    if report.len() <= 768 * 1024 {
        send(out, &WorkerMsg::Report(report))?;
    }
    send(
        out,
        &WorkerMsg::Done(ShardTally {
            rebuilds: tally.rebuilds,
            visited: tally.visited,
            skipped: tally.skipped,
            work: meter.counts,
            wall_nanos: t0.elapsed().as_nanos() as u64,
        }),
    )?;
    out.flush().map_err(|e| format!("flush failed: {e}"))
}

fn send(out: &mut impl Write, msg: &WorkerMsg) -> Result<(), String> {
    write_frame(out, &encode_msg(msg)).map_err(|e| format!("worker stream write failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fail_spec_parsing_matches_exact_pairs() {
        // Uses a scoped env mutation; no other test in this crate touches
        // FAIL_ENV, and cross-process tests pass it via Command::env.
        std::env::set_var(FAIL_ENV, "1:0, 3:2,nonsense,7");
        assert!(fail_requested(1, 0));
        assert!(fail_requested(3, 2));
        assert!(!fail_requested(1, 1));
        assert!(!fail_requested(0, 0));
        assert!(!fail_requested(7, 0), "entries need both fields");
        std::env::remove_var(FAIL_ENV);
        assert!(!fail_requested(1, 0));
    }
}
