//! The worker → coordinator wire protocol.
//!
//! Workers stream their results to the coordinator over their stdout pipe
//! as length-prefixed frames — the exact framing `cnc-serve` speaks on its
//! sockets (`cnc_serve::framing`, re-exported here), reused rather than
//! reinvented: one `u32` little-endian length prefix per frame, payloads
//! bounded by [`MAX_FRAME`].
//!
//! A healthy worker speaks a fixed monologue:
//!
//! ```text
//! Hello → Counts* → Spills* → Report? → Done
//! ```
//!
//! * [`WorkerMsg::Hello`] echoes the wire version, shard index and edge
//!   range so the coordinator can reject a mismatched pairing before
//!   buffering anything;
//! * [`WorkerMsg::Counts`] chunks carry the per-edge count *section* for
//!   the worker's own range, in edge order ([`COUNTS_PER_FRAME`] values
//!   per frame keeps every frame far below the cap);
//! * [`WorkerMsg::Spills`] chunks carry the symmetric-assignment mirror
//!   writes whose directed slot falls *outside* the worker's range (the
//!   canonical `u < v` pair lives in this shard, its `(v, u)` mirror in
//!   another), as `(directed offset, count)` pairs;
//! * [`WorkerMsg::Report`] optionally carries the worker's own
//!   observability snapshot as cnc-metrics report JSON;
//! * [`WorkerMsg::Done`] closes the stream with the work evidence
//!   ([`ShardTally`]). Anything else — an [`WorkerMsg::Error`], a closed
//!   pipe, a malformed frame — marks the attempt failed and triggers the
//!   coordinator's bounded retry.

use cnc_intersect::WorkCounts;

pub use cnc_serve::{read_frame, write_frame, FrameRead, MAX_FRAME};

/// Version of this wire dialect; [`WorkerMsg::Hello`] carries it and the
/// coordinator refuses a mismatch (coordinator and workers are the same
/// binary, so a mismatch means a stale executable on one side).
pub const SHARD_WIRE_VERSION: u32 = 2;

/// Count values per [`WorkerMsg::Counts`] frame (256 KiB of payload —
/// comfortably under [`MAX_FRAME`]).
pub const COUNTS_PER_FRAME: usize = 65_536;

/// Spill pairs per [`WorkerMsg::Spills`] frame (384 KiB of payload).
pub const SPILLS_PER_FRAME: usize = 32_768;

const OP_HELLO: u8 = 1;
const OP_COUNTS: u8 = 2;
const OP_SPILLS: u8 = 3;
const OP_REPORT: u8 = 4;
const OP_DONE: u8 = 5;
const OP_ERROR: u8 = 6;

/// One frame of the worker's monologue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerMsg {
    /// Stream opener: wire version plus the (shard, range) assignment the
    /// worker believes it is executing.
    Hello {
        /// The worker's [`SHARD_WIRE_VERSION`].
        version: u32,
        /// Shard index assigned on the command line.
        shard: u32,
        /// First directed edge offset of the assigned range.
        start: u64,
        /// One-past-last directed edge offset of the assigned range.
        end: u64,
    },
    /// A chunk of the per-edge count section, in edge order.
    Counts(Vec<u32>),
    /// Mirror writes landing outside the worker's own range:
    /// `(directed edge offset, count)`.
    Spills(Vec<(u64, u32)>),
    /// The worker's cnc-metrics report JSON (optional).
    Report(String),
    /// Stream closer: the work evidence for the completed range.
    Done(ShardTally),
    /// The worker failed; human-readable reason. Terminal.
    Error(String),
}

/// Work evidence one worker ships home in [`WorkerMsg::Done`]: the range
/// loop's tallies, the metered kernel work, and the worker's wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardTally {
    /// `begin_source` kernel rebuilds in the range.
    pub rebuilds: u64,
    /// Covered canonical pairs visited.
    pub visited: u64,
    /// Canonical pairs skipped by the workload's cover predicate.
    pub skipped: u64,
    /// Exact metered kernel work for the range.
    pub work: WorkCounts,
    /// Worker wall clock, nanoseconds (load + plan + execute + extract).
    pub wall_nanos: u64,
}

/// A malformed frame payload (truncation, unknown opcode, bad UTF-8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode one message into a frame payload (pass to [`write_frame`]).
pub fn encode_msg(msg: &WorkerMsg) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match msg {
        WorkerMsg::Hello {
            version,
            shard,
            start,
            end,
        } => {
            out.push(OP_HELLO);
            put_u32(&mut out, *version);
            put_u32(&mut out, *shard);
            put_u64(&mut out, *start);
            put_u64(&mut out, *end);
        }
        WorkerMsg::Counts(counts) => {
            debug_assert!(counts.len() <= COUNTS_PER_FRAME, "oversized counts chunk");
            out.reserve(4 + counts.len() * 4);
            out.push(OP_COUNTS);
            put_u32(&mut out, counts.len() as u32);
            for &c in counts {
                put_u32(&mut out, c);
            }
        }
        WorkerMsg::Spills(spills) => {
            debug_assert!(spills.len() <= SPILLS_PER_FRAME, "oversized spills chunk");
            out.reserve(4 + spills.len() * 12);
            out.push(OP_SPILLS);
            put_u32(&mut out, spills.len() as u32);
            for &(eid, c) in spills {
                put_u64(&mut out, eid);
                put_u32(&mut out, c);
            }
        }
        WorkerMsg::Report(json) => {
            out.push(OP_REPORT);
            put_u32(&mut out, json.len() as u32);
            out.extend_from_slice(json.as_bytes());
        }
        WorkerMsg::Done(t) => {
            out.push(OP_DONE);
            for v in [
                t.rebuilds,
                t.visited,
                t.skipped,
                t.work.scalar_ops,
                t.work.vector_ops,
                t.work.seq_bytes,
                t.work.rand_accesses,
                t.work.rand_accesses_small,
                t.work.write_bytes,
                t.work.intersections,
                t.work.simd_blocks,
                t.work.simd_tail_elems,
                t.wall_nanos,
            ] {
                put_u64(&mut out, v);
            }
        }
        WorkerMsg::Error(message) => {
            out.push(OP_ERROR);
            put_u32(&mut out, message.len() as u32);
            out.extend_from_slice(message.as_bytes());
        }
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| WireError(format!("truncated frame reading {what}")))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn string(&mut self, what: &str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        let b = self.take(len, what)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError(format!("{what} is not UTF-8")))
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError(format!(
                "{} trailing bytes after message",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Decode one frame payload back into a message.
pub fn decode_msg(payload: &[u8]) -> Result<WorkerMsg, WireError> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let op = c.take(1, "opcode")?[0];
    let msg = match op {
        OP_HELLO => WorkerMsg::Hello {
            version: c.u32("version")?,
            shard: c.u32("shard")?,
            start: c.u64("start")?,
            end: c.u64("end")?,
        },
        OP_COUNTS => {
            let n = c.u32("counts length")? as usize;
            if n > COUNTS_PER_FRAME {
                return Err(WireError(format!("counts chunk of {n} exceeds the cap")));
            }
            let mut counts = Vec::with_capacity(n);
            for _ in 0..n {
                counts.push(c.u32("count")?);
            }
            WorkerMsg::Counts(counts)
        }
        OP_SPILLS => {
            let n = c.u32("spills length")? as usize;
            if n > SPILLS_PER_FRAME {
                return Err(WireError(format!("spills chunk of {n} exceeds the cap")));
            }
            let mut spills = Vec::with_capacity(n);
            for _ in 0..n {
                spills.push((c.u64("spill offset")?, c.u32("spill count")?));
            }
            WorkerMsg::Spills(spills)
        }
        OP_REPORT => WorkerMsg::Report(c.string("report")?),
        OP_DONE => {
            let mut v = [0u64; 13];
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = c.u64(&format!("done field {i}"))?;
            }
            WorkerMsg::Done(ShardTally {
                rebuilds: v[0],
                visited: v[1],
                skipped: v[2],
                work: WorkCounts {
                    scalar_ops: v[3],
                    vector_ops: v[4],
                    seq_bytes: v[5],
                    rand_accesses: v[6],
                    rand_accesses_small: v[7],
                    write_bytes: v[8],
                    intersections: v[9],
                    simd_blocks: v[10],
                    simd_tail_elems: v[11],
                },
                wall_nanos: v[12],
            })
        }
        OP_ERROR => WorkerMsg::Error(c.string("error message")?),
        other => return Err(WireError(format!("unknown shard opcode {other}"))),
    };
    c.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_round_trips() {
        let msgs = [
            WorkerMsg::Hello {
                version: SHARD_WIRE_VERSION,
                shard: 3,
                start: 1_000,
                end: 5_000,
            },
            WorkerMsg::Counts(vec![0, 1, u32::MAX, 7]),
            WorkerMsg::Counts(Vec::new()),
            WorkerMsg::Spills(vec![(u64::MAX, 9), (0, 0)]),
            WorkerMsg::Spills(Vec::new()),
            WorkerMsg::Report("{\"enabled\":true}".into()),
            WorkerMsg::Done(ShardTally {
                rebuilds: 1,
                visited: 2,
                skipped: 3,
                work: WorkCounts {
                    scalar_ops: 4,
                    vector_ops: 5,
                    seq_bytes: 6,
                    rand_accesses: 7,
                    rand_accesses_small: 8,
                    write_bytes: 9,
                    intersections: 10,
                    simd_blocks: 11,
                    simd_tail_elems: 12,
                },
                wall_nanos: 13,
            }),
            WorkerMsg::Error("worker died: out of cheese".into()),
        ];
        for msg in &msgs {
            let bytes = encode_msg(msg);
            assert!(bytes.len() < MAX_FRAME, "{msg:?} overflows a frame");
            assert_eq!(&decode_msg(&bytes).expect("round trip"), msg);
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(decode_msg(&[]).is_err(), "empty payload");
        assert!(decode_msg(&[99]).is_err(), "unknown opcode");
        // Truncated Hello.
        let mut hello = encode_msg(&WorkerMsg::Hello {
            version: 1,
            shard: 0,
            start: 0,
            end: 1,
        });
        hello.pop();
        assert!(decode_msg(&hello).is_err(), "truncated hello");
        // Counts chunk whose declared length exceeds the cap.
        let mut huge = vec![super::OP_COUNTS];
        huge.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(decode_msg(&huge).is_err(), "oversized counts");
        // Trailing garbage.
        let mut noisy = encode_msg(&WorkerMsg::Counts(vec![1]));
        noisy.push(0);
        assert!(decode_msg(&noisy).is_err(), "trailing bytes");
    }
}
