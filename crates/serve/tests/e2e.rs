//! End-to-end protocol tests: a real daemon on a real socket, concurrent
//! clients, malformed bytes, backpressure, and graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use cnc_core::{verify::reference_counts, Algorithm, BatchSession, Platform, Runner};
use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::{CsrGraph, PreparedGraph};
use cnc_obs::Counter;
use cnc_serve::{
    serve, Client, Endpoint, Refusal, Reply, Request, ServeConfig, ServerHandle, MAX_FRAME,
};

/// A daemon over the tw-s tiny analogue on a fresh TCP port, plus the
/// sequential oracle its answers must match byte-for-byte.
fn start_tcp(cfg: ServeConfig) -> (ServerHandle, String, CsrGraph, Vec<u32>) {
    let runner = Runner::new(Platform::cpu_parallel(), Algorithm::bmp_rf());
    let g = Dataset::TwS.build(Scale::Tiny);
    let want = reference_counts(&g);
    let pg = PreparedGraph::from_csr(g.clone(), runner.reorder_policy());
    let session = BatchSession::new(runner, pg).expect("plannable session");
    let handle =
        serve(&Endpoint::Tcp("127.0.0.1:0".to_string()), session, cfg).expect("server starts");
    let addr = handle.local_addr().expect("tcp has an address").to_string();
    (handle, addr, g, want)
}

#[test]
fn eight_concurrent_clients_match_the_oracle() {
    let (handle, addr, g, want) = start_tcp(ServeConfig {
        batch_window: Duration::from_millis(5),
        ..ServeConfig::default()
    });
    let edges: Vec<(usize, u32, u32)> = g.iter_edges().collect();
    let per_client = 50.min(edges.len() / 8);
    let mut workers = Vec::new();
    for c in 0..8usize {
        let addr = addr.clone();
        let want = want.clone();
        let slice: Vec<(usize, u32, u32)> = edges
            .iter()
            .cycle()
            .skip(c * 37) // deliberately overlapping: cross-client dedup
            .take(per_client)
            .copied()
            .collect();
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).expect("connect");
            for (eid, u, v) in slice {
                let got = client.count(u, v).expect("count");
                assert_eq!(got, Some(want[eid]), "({u},{v})");
            }
        }));
    }
    for w in workers {
        w.join().expect("client thread");
    }
    let total = (8 * per_client) as u64;
    let report = handle.join();
    assert_eq!(report.counter(Counter::ServeRequests), total);
    let batches = report.counter(Counter::ServeBatches);
    assert!(batches >= 1);
    assert!(
        batches < total,
        "coalescing must happen: {batches} batches for {total} requests"
    );
    assert!(report.counter(Counter::ServeQueueDepthMax) >= 1);
    // The span levels of the serving layer.
    let serve_span = report
        .spans
        .iter()
        .find(|s| s.name == "serve")
        .expect("serve span");
    let batch_span = serve_span
        .children
        .iter()
        .find(|s| s.name == "batch")
        .expect("batch span under serve");
    assert!(
        batch_span.children.iter().any(|s| s.name == "execute"),
        "execute span under batch"
    );
    assert_eq!(serve_span.children.len() as u64, batches);
}

#[test]
fn malformed_frames_get_typed_errors_never_a_panic() {
    let (handle, addr, _g, _want) = start_tcp(ServeConfig::default());
    // Unknown opcode: typed bad_request, connection stays usable.
    let mut raw = TcpStream::connect(&addr).expect("connect");
    raw.write_all(&1u32.to_le_bytes()).expect("len");
    raw.write_all(&[0xAB]).expect("opcode");
    let reply = read_raw_reply(&mut raw);
    assert_refused(&reply, Refusal::BadRequest);
    // Same connection: a short count payload is also typed.
    raw.write_all(&3u32.to_le_bytes()).expect("len");
    raw.write_all(&[1, 0, 0]).expect("half a count");
    let reply = read_raw_reply(&mut raw);
    assert_refused(&reply, Refusal::BadRequest);
    drop(raw);
    // Oversized length prefix: answered, then closed (framing lost).
    let mut big = TcpStream::connect(&addr).expect("connect");
    big.write_all(&((MAX_FRAME as u32) + 1).to_le_bytes())
        .expect("huge len");
    let reply = read_raw_reply(&mut big);
    assert_refused(&reply, Refusal::BadRequest);
    let mut probe = [0u8; 1];
    assert_eq!(big.read(&mut probe).expect("read EOF"), 0, "server closes");
    // A frame truncated by disconnect must not take the server down.
    let mut cut = TcpStream::connect(&addr).expect("connect");
    cut.write_all(&100u32.to_le_bytes()).expect("len");
    cut.write_all(&[1, 2, 3]).expect("partial payload");
    drop(cut);
    // Server still serves.
    let mut client = Client::connect_tcp(&addr).expect("connect");
    let stats = client.stats().expect("stats after abuse");
    assert!(stats.contains("\"schema\":\"cnc-metrics\""));
    handle.join();
}

fn read_raw_reply(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("reply prefix");
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("reply payload");
    payload
}

fn assert_refused(payload: &[u8], refusal: Refusal) {
    // Any request shape decodes refusal statuses identically.
    let reply = cnc_serve::protocol::decode_reply(payload, &Request::Stats).expect("decodes");
    match reply {
        Reply::Refused { refusal: got, .. } => assert_eq!(got, refusal),
        other => panic!("expected {refusal:?}, got {other:?}"),
    }
}

#[test]
fn full_queue_refuses_with_overloaded_not_a_hang() {
    let (handle, addr, g, want) = start_tcp(ServeConfig {
        batch_window: Duration::from_millis(400),
        queue_cap: 1,
        ..ServeConfig::default()
    });
    let (eid, u, v) = g.iter_edges().next().expect("an edge");
    // First query occupies the whole queue for the long window.
    let first = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            Client::connect_tcp(&addr)
                .expect("connect")
                .count(u, v)
                .expect("admitted count")
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    // Second query: refused immediately, no hang.
    let t0 = std::time::Instant::now();
    let refused = Client::connect_tcp(&addr)
        .expect("connect")
        .request(&Request::Count { u, v })
        .expect("transport ok");
    assert!(
        matches!(
            refused,
            Reply::Refused {
                refusal: Refusal::Overloaded,
                ..
            }
        ),
        "got {refused:?}"
    );
    assert!(
        t0.elapsed() < Duration::from_millis(300),
        "backpressure must be immediate, took {:?}",
        t0.elapsed()
    );
    assert_eq!(first.join().expect("first client"), Some(want[eid]));
    let report = handle.join();
    assert_eq!(
        report.counter(Counter::ServeRequests),
        1,
        "refused requests are not admissions"
    );
}

#[test]
fn graceful_shutdown_drains_in_flight_batches() {
    let (handle, addr, g, want) = start_tcp(ServeConfig {
        batch_window: Duration::from_millis(400),
        ..ServeConfig::default()
    });
    let edges: Vec<(usize, u32, u32)> = g.iter_edges().filter(|&(_, u, v)| u < v).collect();
    let mut waiters = Vec::new();
    for k in 0..6usize {
        let addr = addr.clone();
        let (eid, u, v) = edges[k % edges.len()];
        let expect = want[eid];
        waiters.push(std::thread::spawn(move || {
            let got = Client::connect_tcp(&addr)
                .expect("connect")
                .count(u, v)
                .expect("in-flight query must be answered");
            assert_eq!(got, Some(expect), "({u},{v})");
        }));
    }
    // Let every query be admitted into the open window, then shut down.
    std::thread::sleep(Duration::from_millis(120));
    Client::connect_tcp(&addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown ack");
    for w in waiters {
        w.join().expect("drained waiter");
    }
    let report = handle.join();
    assert_eq!(report.counter(Counter::ServeRequests), 6);
    assert!(report.counter(Counter::ServeBatches) >= 1);
    // New connections after drain are refused or fail to connect, never
    // answered silently wrong.
    match Client::connect_tcp(&addr) {
        Err(_) => {}
        Ok(mut c) => match c.request(&Request::Count { u: 0, v: 1 }) {
            Ok(Reply::Refused { .. }) | Err(_) => {}
            Ok(other) => panic!("post-shutdown answer: {other:?}"),
        },
    }
}

/// The `total` regression suite: with `reply_limit` far below the match
/// count, both `topk` and `scan` must still report the sequential oracle's
/// *untruncated* totals — not the length of the clamped edge list.
#[test]
fn truncated_replies_report_untruncated_totals() {
    let (handle, addr, g, want) = start_tcp(ServeConfig {
        reply_limit: 2,
        ..ServeConfig::default()
    });
    let canonical: Vec<(usize, u32, u32)> = g.iter_edges().filter(|&(_, u, v)| u < v).collect();
    assert!(
        canonical.len() > 2,
        "the fixture must have more matches than the reply limit"
    );
    let mut client = Client::connect_tcp(&addr).expect("connect");
    // topk: every canonical edge is a candidate; the reply carries 2.
    let (top_total, top) = client.topk(1000).expect("topk");
    assert_eq!(top_total, canonical.len() as u64);
    assert_eq!(top.len(), 2);
    // scan at threshold 0 matches every canonical edge; the reply carries 2.
    let (scan_total, hits) = client.scan(0).expect("scan");
    assert_eq!(scan_total, canonical.len() as u64);
    assert_eq!(hits.len(), 2);
    // A selective threshold: the total still tracks the oracle, truncated
    // or not.
    let threshold = canonical
        .iter()
        .map(|&(eid, _, _)| want[eid])
        .max()
        .expect("edges");
    let oracle = canonical
        .iter()
        .filter(|&&(eid, _, _)| want[eid] >= threshold)
        .count();
    let (sel_total, sel_hits) = client.scan(threshold).expect("selective scan");
    assert_eq!(sel_total, oracle as u64);
    assert_eq!(sel_hits.len(), oracle.min(2));
    handle.join();
}

#[test]
fn unix_socket_topk_scan_and_stats_work_end_to_end() {
    let runner = Runner::new(Platform::cpu_parallel(), Algorithm::mps());
    let g = Dataset::LjS.build(Scale::Tiny);
    let want = reference_counts(&g);
    let pg = PreparedGraph::from_csr(g.clone(), runner.reorder_policy());
    let session = BatchSession::new(runner, pg).expect("plannable session");
    let path = std::env::temp_dir().join(format!("cnc-serve-e2e-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let handle = serve(
        &Endpoint::Unix(path.clone()),
        session,
        ServeConfig::default(),
    )
    .expect("unix server");
    let mut client = Client::connect_unix(&path).expect("connect");
    // Oracle-derived expectations.
    let mut all: Vec<(u32, u32, u32)> = g
        .iter_edges()
        .filter(|&(_, u, v)| u < v)
        .map(|(eid, u, v)| (want[eid], u, v))
        .collect();
    all.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| (a.1, a.2).cmp(&(b.1, b.2))));
    let (top_total, top) = client.topk(3).expect("topk");
    assert_eq!(top_total, all.len() as u64, "topk total is pre-truncation");
    assert_eq!(top.len(), 3.min(all.len()));
    for (got, &(count, u, v)) in top.iter().zip(&all) {
        assert_eq!((got.count, got.u, got.v), (count, u, v));
    }
    let threshold = top[0].count;
    let (total, hits) = client.scan(threshold).expect("scan");
    assert_eq!(
        total as usize,
        all.iter().filter(|e| e.0 >= threshold).count()
    );
    assert!(hits.iter().all(|e| e.count >= threshold));
    // Counts over unix transport match the oracle too.
    let (eid, u, v) = g.iter_edges().next().expect("edge");
    assert_eq!(client.count(u, v).expect("count"), Some(want[eid]));
    let stats = client.stats().expect("stats");
    assert!(stats.contains("\"schema\":\"cnc-metrics\""));
    assert!(stats.contains("\"version\":1"));
    assert!(stats.contains("\"serve.requests\":1"));
    client.shutdown().expect("shutdown");
    handle.join();
    assert!(!path.exists(), "socket file removed on join");
}
