//! The daemon: listener + connection threads + one batching executor.
//!
//! The batching state machine (DESIGN §3g):
//!
//! ```text
//! connection threads                 batcher thread
//! ──────────────────                 ──────────────────────────────
//! count(u,v) ──admit──▶ queue ──▶ IDLE: wait until queue non-empty
//!        (full? reply overloaded)   COALESCE: sleep batch_window
//!                                   DRAIN: take the whole queue
//!                                   EXECUTE: dedup + sort + one
//!                                     source-aligned balanced pass
//!                                   REPLY: answer every waiter
//! ```
//!
//! * **Admission control**: the queue is bounded (`queue_cap`). A full
//!   queue refuses with status `overloaded` *immediately* — callers get
//!   backpressure, never a hang.
//! * **Coalescing**: everything admitted during one window executes as a
//!   single [`BatchSession::count_batch`] — duplicates are answered by one
//!   kernel probe, and per-source kernel state is built once per source
//!   per batch instead of once per request.
//! * **Graceful shutdown**: the `shutdown` request flips a flag; the
//!   batcher drains every admitted request (skipping the coalescing sleep)
//!   before exiting, so no admitted query goes unanswered.
//!
//! `topk` / `scan` / `stats` are answered directly on connection threads —
//! they read cached whole-pass state and never enter the point-query queue.
//!
//! Observability: the batcher installs the server's [`ObsContext`] and
//! nests `serve → batch → execute` spans (`execute` comes from
//! [`BatchSession::count_batch`]); `serve.*` counters record admissions,
//! batches, coalesced requests and the deepest queue occupancy.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use cnc_core::BatchSession;
use cnc_obs::{Counter, MetricsFile, ObsContext, RunReport};

use crate::protocol::{
    decode_request, encode_reply, read_frame, write_frame, FrameRead, Refusal, Reply, Request,
    MAX_REPLY_EDGES,
};
use crate::ServeError;

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address (`host:port`; port 0 picks a free port — see
    /// [`ServerHandle::local_addr`]).
    Tcp(String),
    /// A unix-domain socket path (created on start, removed on join).
    Unix(PathBuf),
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Coalescing window: how long the batcher waits after the first
    /// admission before draining the queue (`--batch-window-us`).
    pub batch_window: Duration,
    /// Admission-queue bound; a full queue refuses with `overloaded`.
    pub queue_cap: usize,
    /// Cap on edges returned per `topk`/`scan` response (≤
    /// [`MAX_REPLY_EDGES`]).
    pub reply_limit: usize,
    /// Label identifying the served graph in metrics output.
    pub graph_label: String,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            batch_window: Duration::from_micros(200),
            queue_cap: 1024,
            reply_limit: 1000,
            graph_label: "graph".to_string(),
        }
    }
}

/// One admitted point query waiting for its batch.
struct Pending {
    u: u32,
    v: u32,
    reply: mpsc::Sender<Option<u32>>,
}

struct Shared {
    session: BatchSession,
    cfg: ServeConfig,
    obs: Arc<ObsContext>,
    queue: Mutex<VecDeque<Pending>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    queue_depth_max: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// The admission queue, recovering from poisoning. The queue is a plain
    /// `VecDeque` mutated only by whole-value `push_back`/`drain`, so a
    /// thread that panicked while holding the lock cannot have left it
    /// half-updated — propagating the poison would turn one dead connection
    /// handler into a cascading daemon death for no integrity gain.
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Pending>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admit one point query, or refuse with backpressure / drain status.
    fn admit(&self, u: u32, v: u32) -> Result<mpsc::Receiver<Option<u32>>, Refusal> {
        if self.shutting_down() {
            return Err(Refusal::ShuttingDown);
        }
        let (tx, rx) = mpsc::channel();
        let depth = {
            let mut q = self.lock_queue();
            if q.len() >= self.cfg.queue_cap {
                return Err(Refusal::Overloaded);
            }
            q.push_back(Pending { u, v, reply: tx });
            q.len() as u64
        };
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
        self.obs.add(Counter::ServeRequests, 1);
        self.queue_cv.notify_one();
        Ok(rx)
    }

    /// Current observability snapshot with the queue-depth high-water mark
    /// stamped in (it lives in an atomic, not the counter registry, so it
    /// can be a max instead of a sum).
    fn report(&self) -> RunReport {
        let mut r = RunReport::from_context(&self.obs);
        r.counters.set(
            Counter::ServeQueueDepthMax,
            self.queue_depth_max.load(Ordering::Relaxed),
        );
        r
    }

    /// The cnc-metrics v1 envelope for this server (the `stats` reply and
    /// the `--metrics` file share this).
    fn metrics_json(&self) -> String {
        let mut f = MetricsFile::new();
        f.begin_run();
        f.field_str("graph", &self.cfg.graph_label);
        f.field_str("platform", "serve");
        f.field_str("algorithm", self.session.plan().algorithm.label());
        f.end_run(&self.report());
        f.finish()
    }
}

/// The batcher loop: IDLE → COALESCE → DRAIN → EXECUTE → REPLY.
fn batcher(shared: &Arc<Shared>) {
    let _guard = shared.obs.install();
    let serve_span = shared.obs.span("serve");
    loop {
        // IDLE: wait for work (or for shutdown with an empty queue).
        {
            let mut q = shared.lock_queue();
            while q.is_empty() && !shared.shutting_down() {
                // Same poison-recovery reasoning as `lock_queue`: the wait
                // re-acquires the same always-consistent mutex.
                q = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            if q.is_empty() {
                break; // shutdown with nothing left: fully drained.
            }
        }
        // COALESCE: let the window fill (skipped while draining — latency
        // no longer matters, admitted work does).
        if !shared.shutting_down() {
            std::thread::sleep(shared.cfg.batch_window);
        }
        // DRAIN.
        let items: Vec<Pending> = {
            let mut q = shared.lock_queue();
            q.drain(..).collect()
        };
        if items.is_empty() {
            continue;
        }
        // EXECUTE: one deduplicated, source-aligned, cost-balanced pass.
        let mut batch_span = shared.obs.span("batch");
        batch_span.set_items(items.len() as u64);
        let queries: Vec<(u32, u32)> = items.iter().map(|p| (p.u, p.v)).collect();
        let out = shared.session.count_batch(&queries);
        shared.obs.add(Counter::ServeBatches, 1);
        shared.obs.add(
            Counter::ServeCoalesced,
            (items.len() - out.unique_pairs) as u64,
        );
        drop(batch_span);
        // REPLY: a send error only means the waiter's connection died.
        for (p, answer) in items.iter().zip(out.answers) {
            let _ = p.reply.send(answer);
        }
    }
    drop(serve_span);
}

/// A stream the connection loop can serve (TCP or unix).
trait Conn: Read + Write + Send {}
impl Conn for TcpStream {}
impl Conn for UnixStream {}

/// Reader adapter that retries timeout-flavored errors until shutdown,
/// then reports EOF — connection threads never block past a drain.
struct Patient<'a> {
    inner: &'a mut dyn Conn,
    shared: &'a Shared,
}

impl Read for Patient<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        use std::io::ErrorKind::{TimedOut, WouldBlock};
        loop {
            match self.inner.read(buf) {
                Err(e) if matches!(e.kind(), WouldBlock | TimedOut) => {
                    if self.shared.shutting_down() {
                        return Ok(0);
                    }
                }
                other => return other,
            }
        }
    }
}

/// Serve one connection until it closes, errors, or the server drains.
fn connection(shared: &Arc<Shared>, mut stream: Box<dyn Conn>) {
    loop {
        let frame = {
            let mut r = Patient {
                inner: stream.as_mut(),
                shared,
            };
            match read_frame(&mut r) {
                Ok(f) => f,
                // Truncated frame or dead socket: nothing to answer.
                Err(_) => return,
            }
        };
        let reply = match frame {
            FrameRead::Closed => return,
            FrameRead::TooLarge(len) => {
                // Framing sync is lost after an oversized prefix: answer
                // once, then close.
                let reply = refuse(
                    Refusal::BadRequest,
                    &format!("frame length {len} exceeds the cap"),
                );
                let _ = write_frame(&mut stream, &encode_reply(&reply));
                return;
            }
            FrameRead::Payload(payload) => match decode_request(&payload) {
                Err(e) => refuse(Refusal::BadRequest, &e.to_string()),
                Ok(req) => answer(shared, req),
            },
        };
        if write_frame(&mut stream, &encode_reply(&reply)).is_err() {
            return;
        }
    }
}

fn refuse(refusal: Refusal, message: &str) -> Reply {
    Reply::Refused {
        refusal,
        message: message.to_string(),
    }
}

/// Dispatch one decoded request to its reply.
fn answer(shared: &Arc<Shared>, req: Request) -> Reply {
    match req {
        Request::Count { u, v } => match shared.admit(u, v) {
            Err(r) => refuse(r, "admission refused"),
            Ok(rx) => match rx.recv() {
                Ok(Some(count)) => Reply::Count(count),
                Ok(None) => refuse(Refusal::NotAnEdge, &format!("({u},{v}) is not an edge")),
                // The batcher dropped the sender without answering: only
                // possible if it died; report drain instead of hanging.
                Err(_) => refuse(Refusal::ShuttingDown, "server stopped"),
            },
        },
        Request::TopK { k } => {
            let limit = (k as usize)
                .min(shared.cfg.reply_limit)
                .min(MAX_REPLY_EDGES);
            // The session reports the candidate total before the limit
            // clamps the edge list — `edges.len()` here would understate
            // whenever the reply is truncated.
            let (total, edges) = shared.session.topk(limit);
            Reply::Edges {
                total: total as u64,
                edges,
            }
        }
        Request::Scan { threshold } => {
            let limit = shared.cfg.reply_limit.min(MAX_REPLY_EDGES);
            let (total, edges) = shared.session.scan(threshold, limit);
            Reply::Edges {
                total: total as u64,
                edges,
            }
        }
        Request::Stats => Reply::Stats(shared.metrics_json()),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::Release);
            shared.queue_cv.notify_all();
            Reply::ShutdownAck
        }
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl ListenerKind {
    /// Accept one connection if one is pending (listeners are
    /// non-blocking), configured with the read timeout the shutdown poll
    /// depends on.
    fn try_accept(&self) -> std::io::Result<Option<Box<dyn Conn>>> {
        use std::io::ErrorKind::WouldBlock;
        const READ_TIMEOUT: Duration = Duration::from_millis(50);
        match self {
            ListenerKind::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_read_timeout(Some(READ_TIMEOUT))?;
                    s.set_nodelay(true)?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            ListenerKind::Unix(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_read_timeout(Some(READ_TIMEOUT))?;
                    Ok(Some(Box::new(s)))
                }
                Err(e) if e.kind() == WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// Accept loop: poll for connections until shutdown, then join every
/// connection thread (they exit once drained — see [`Patient`]).
fn listener(shared: &Arc<Shared>, kind: ListenerKind) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutting_down() {
        match kind.try_accept() {
            Ok(Some(stream)) => {
                let shared = Arc::clone(shared);
                conns.push(std::thread::spawn(move || connection(&shared, stream)));
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(2)),
            Err(_) => break,
        }
    }
    for c in conns {
        let _ = c.join();
    }
}

/// A running daemon: the handle to query its address, stop it, and collect
/// its final report.
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    local_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound TCP address (for `Endpoint::Tcp` with port 0).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.local_addr
    }

    /// Ask the server to drain and stop (idempotent; `shutdown` requests
    /// over the wire do the same).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
    }

    /// The server's cnc-metrics v1 JSON at this instant.
    pub fn metrics_json(&self) -> String {
        self.shared.metrics_json()
    }

    /// Block until shutdown is requested — over the wire or via
    /// [`ServerHandle::shutdown`] from another thread — without initiating
    /// one. The foreground daemon (`cnc serve`) parks here.
    pub fn wait(&self) {
        while !self.shared.shutting_down() {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Signal shutdown, wait for every batch to drain and every thread to
    /// exit, and return the final observability report.
    pub fn join(mut self) -> RunReport {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        self.shared.report()
    }
}

/// Start a daemon serving `session` on `endpoint`.
pub fn serve(
    endpoint: &Endpoint,
    session: BatchSession,
    cfg: ServeConfig,
) -> Result<ServerHandle, ServeError> {
    let (kind, local_addr, unix_path) = match endpoint {
        Endpoint::Tcp(addr) => {
            let l = TcpListener::bind(addr.as_str())?;
            l.set_nonblocking(true)?;
            let bound = l.local_addr()?;
            (ListenerKind::Tcp(l), Some(bound), None)
        }
        Endpoint::Unix(path) => {
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            (ListenerKind::Unix(l), None, Some(path.clone()))
        }
    };
    let shared = Arc::new(Shared {
        session,
        cfg,
        obs: Arc::new(ObsContext::new()),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        shutdown: AtomicBool::new(false),
        queue_depth_max: AtomicU64::new(0),
    });
    let mut threads = Vec::with_capacity(2);
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || batcher(&shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || listener(&shared, kind)));
    }
    Ok(ServerHandle {
        shared,
        threads,
        local_addr,
        unix_path,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Client;
    use cnc_core::{Algorithm, Platform, Runner};
    use cnc_graph::{CsrGraph, PreparedGraph};

    /// A deliberately panicked thread poisons the queue mutex while holding
    /// it; admission and the batcher must recover via `into_inner` and keep
    /// answering — one dead handler must not cascade into daemon death.
    #[test]
    fn poisoned_queue_mutex_leaves_the_server_answering() {
        // 0-1-2 triangle: count(0, 1) == 1.
        let g = CsrGraph::from_undirected_pairs(3, [(0u32, 1), (0, 2), (1, 2)].into_iter());
        let runner = Runner::new(Platform::cpu_parallel(), Algorithm::mps());
        let pg = PreparedGraph::from_csr(g, runner.reorder_policy());
        let session = BatchSession::new(runner, pg).expect("plannable session");
        let handle = serve(
            &Endpoint::Tcp("127.0.0.1:0".to_string()),
            session,
            ServeConfig::default(),
        )
        .expect("server starts");
        let addr = handle.local_addr().expect("tcp address").to_string();
        // Poison: panic while holding the queue lock, exactly what a
        // panicking handler that raced the admission path would do.
        let shared = Arc::clone(&handle.shared);
        let poisoner = std::thread::spawn(move || {
            let _q = shared.queue.lock().expect("first locker sees no poison");
            panic!("deliberate poison");
        });
        assert!(poisoner.join().is_err(), "poisoner must have panicked");
        assert!(
            handle.shared.queue.lock().is_err(),
            "mutex must actually be poisoned for the test to mean anything"
        );
        // The server still admits, batches, and answers.
        let mut client = Client::connect_tcp(&addr).expect("connect");
        assert_eq!(client.count(0, 1).expect("count after poison"), Some(1));
        let report = handle.join();
        assert_eq!(report.counter(Counter::ServeRequests), 1);
    }
}
