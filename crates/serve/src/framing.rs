//! Length-prefixed framing, independent of message shape.
//!
//! Every message on a cnc socket — serve requests and replies, shard
//! worker streams — is one frame:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload (len bytes) |
//! +----------------+---------------------+
//! ```
//!
//! `len` counts payload bytes only and must not exceed [`MAX_FRAME`];
//! oversized lengths are rejected *before* any allocation, so a malformed
//! prefix cannot balloon the reader's memory. What the payload means is the
//! consumer's business ([`crate::protocol`] for the query protocol,
//! `cnc-shard` for the worker scatter-gather stream); this module only
//! moves byte vectors across a stream reliably.

use std::io::{Read, Write};

/// Hard cap on one frame's payload size (1 MiB: a `scan` response of
/// [`crate::MAX_REPLY_EDGES`] triples fits with room to spare, and shard
/// count sections chunk themselves below it).
pub const MAX_FRAME: usize = 1 << 20;

/// What one blocking frame read produced.
#[derive(Debug)]
pub enum FrameRead {
    /// A complete payload.
    Payload(Vec<u8>),
    /// The peer closed the stream cleanly (before any prefix byte).
    Closed,
    /// The length prefix was valid but oversized — the stream is still in
    /// sync only if the peer stops, so callers should respond and close.
    TooLarge(u32),
}

/// Write one frame: length prefix + payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. Clean EOF at a frame boundary is [`FrameRead::Closed`];
/// EOF *inside* a frame surfaces as `UnexpectedEof` (the peer truncated).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<FrameRead> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        let n = r.read(&mut prefix[got..])?;
        if n == 0 {
            if got == 0 {
                return Ok(FrameRead::Closed);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "stream closed inside a frame prefix",
            ));
        }
        got += n;
    }
    let len = u32::from_le_bytes(prefix);
    if len as usize > MAX_FRAME {
        return Ok(FrameRead::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(FrameRead::Payload(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_detects_close_truncation_and_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("vec write");
        let mut r = &buf[..];
        match read_frame(&mut r).expect("read") {
            FrameRead::Payload(p) => assert_eq!(p, b"hello"),
            other => panic!("expected payload, got {other:?}"),
        }
        assert!(matches!(
            read_frame(&mut r).expect("eof"),
            FrameRead::Closed
        ));
        // Truncated inside the prefix.
        let mut short = &buf[..2];
        assert_eq!(
            read_frame(&mut short).expect_err("truncated").kind(),
            std::io::ErrorKind::UnexpectedEof
        );
        // Truncated inside the payload (prefix says 5, only 3 arrive).
        let mut cut = &buf[..7];
        assert_eq!(
            read_frame(&mut cut).expect_err("truncated").kind(),
            std::io::ErrorKind::UnexpectedEof
        );
        // Oversized prefix: rejected before allocation.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut r = &huge[..];
        assert!(matches!(
            read_frame(&mut r).expect("prefix read"),
            FrameRead::TooLarge(n) if n as usize == MAX_FRAME + 1
        ));
    }
}
