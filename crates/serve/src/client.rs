//! A blocking client for the serve protocol (one request in flight per
//! connection). Used by `cnc query`, the CI smoke clients, and the e2e
//! tests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use cnc_core::EdgeCount;

use crate::protocol::{
    decode_reply, encode_request, read_frame, write_frame, FrameRead, ProtocolError, Refusal,
    Reply, Request,
};
use crate::server::Endpoint;
use crate::ServeError;

trait Stream: Read + Write + Send {}
impl Stream for TcpStream {}
impl Stream for UnixStream {}

/// One connection to a running daemon.
pub struct Client {
    stream: Box<dyn Stream>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish()
    }
}

impl Client {
    /// Connect over TCP (`host:port`).
    pub fn connect_tcp(addr: &str) -> Result<Self, ServeError> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        Ok(Self {
            stream: Box::new(s),
        })
    }

    /// Connect to a unix-domain socket.
    pub fn connect_unix(path: &Path) -> Result<Self, ServeError> {
        Ok(Self {
            stream: Box::new(UnixStream::connect(path)?),
        })
    }

    /// Connect to whichever endpoint the server was started on.
    pub fn connect(endpoint: &Endpoint) -> Result<Self, ServeError> {
        match endpoint {
            Endpoint::Tcp(addr) => Self::connect_tcp(addr),
            Endpoint::Unix(path) => Self::connect_unix(path),
        }
    }

    /// Send one request and wait for its reply. Refusals (overloaded,
    /// not-an-edge, …) come back as `Ok(Reply::Refused { .. })` — they are
    /// protocol answers, not transport failures.
    pub fn request(&mut self, req: &Request) -> Result<Reply, ServeError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        match read_frame(&mut self.stream)? {
            FrameRead::Payload(payload) => Ok(decode_reply(&payload, req)?),
            FrameRead::Closed => Err(ServeError::ConnectionClosed),
            FrameRead::TooLarge(len) => {
                Err(ServeError::Protocol(ProtocolError::FrameTooLarge(len)))
            }
        }
    }

    /// `count(u, v)`: `Ok(Some(count))` for an edge, `Ok(None)` for a
    /// non-edge, `Err` for transport trouble or a refusal.
    pub fn count(&mut self, u: u32, v: u32) -> Result<Option<u32>, ServeError> {
        match self.request(&Request::Count { u, v })? {
            Reply::Count(c) => Ok(Some(c)),
            Reply::Refused {
                refusal: Refusal::NotAnEdge,
                ..
            } => Ok(None),
            Reply::Refused { refusal, message } => Err(ServeError::Refused { refusal, message }),
            other => Err(ServeError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// `topk(k)`: `(untruncated candidate total, highest-count edges)`.
    /// The total counts every candidate edge, not the (possibly
    /// server-clamped) reply length.
    pub fn topk(&mut self, k: u32) -> Result<(u64, Vec<EdgeCount>), ServeError> {
        match self.request(&Request::TopK { k })? {
            Reply::Edges { total, edges } => Ok((total, edges)),
            Reply::Refused { refusal, message } => Err(ServeError::Refused { refusal, message }),
            other => Err(ServeError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// `scan(threshold)`: `(untruncated total, matching edges)`.
    pub fn scan(&mut self, threshold: u32) -> Result<(u64, Vec<EdgeCount>), ServeError> {
        match self.request(&Request::Scan { threshold })? {
            Reply::Edges { total, edges } => Ok((total, edges)),
            Reply::Refused { refusal, message } => Err(ServeError::Refused { refusal, message }),
            other => Err(ServeError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// `stats`: the server's cnc-metrics v1 JSON.
    pub fn stats(&mut self) -> Result<String, ServeError> {
        match self.request(&Request::Stats)? {
            Reply::Stats(json) => Ok(json),
            Reply::Refused { refusal, message } => Err(ServeError::Refused { refusal, message }),
            other => Err(ServeError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// `shutdown`: drain and stop the server.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.request(&Request::Shutdown)? {
            Reply::ShutdownAck => Ok(()),
            Reply::Refused { refusal, message } => Err(ServeError::Refused { refusal, message }),
            other => Err(ServeError::UnexpectedReply(format!("{other:?}"))),
        }
    }
}
