//! `cnc-serve`: a resident query service for all-edge common neighbor
//! counting.
//!
//! The repo can prepare, cache, mmap, schedule and count faster than it can
//! be *asked*: a process launch per query pays preparation and a full pass
//! for one answer. This crate keeps an `Arc<PreparedGraph>` resident behind
//! a planned [`BatchSession`](cnc_core::BatchSession) and answers point
//! queries over a length-prefixed socket protocol ([`protocol`]), applying
//! the paper's scheduling insight to *batches of queries*: requests
//! arriving within a coalescing window are deduplicated, sorted by source
//! vertex, and executed as one source-aligned cost-balanced schedule, so a
//! flood of small queries costs close to one bulk pass over their edges.
//!
//! * [`serve`] starts the daemon ([`Endpoint::Tcp`] or [`Endpoint::Unix`]);
//! * [`Client`] is the matching blocking client;
//! * backpressure is typed, never a hang: a bounded admission queue refuses
//!   with [`Refusal::Overloaded`] the moment it is full;
//! * metrics are the existing cnc-metrics v1 schema with the `serve.*`
//!   counters and a `serve → batch → execute` span level.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod client;
pub mod framing;
pub mod protocol;
mod server;

pub use client::Client;
pub use framing::{read_frame, write_frame, FrameRead, MAX_FRAME};
pub use protocol::{ProtocolError, Refusal, Reply, Request, MAX_REPLY_EDGES, PROTOCOL_VERSION};
pub use server::{serve, Endpoint, ServeConfig, ServerHandle};

use cnc_core::PlanError;

/// Everything that can go wrong starting, running, or talking to a server.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure.
    Io(std::io::Error),
    /// Malformed bytes on the wire.
    Protocol(ProtocolError),
    /// The session could not be planned (bad kernel config, non-CPU
    /// platform, non-CNC workload).
    Plan(PlanError),
    /// The server refused the request (a protocol answer surfaced as an
    /// error by the typed client helpers).
    Refused {
        /// Which status the server sent.
        refusal: Refusal,
        /// The server's diagnostic message.
        message: String,
    },
    /// The server closed the connection instead of replying.
    ConnectionClosed,
    /// The server answered with a reply shape the request cannot have.
    UnexpectedReply(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "transport error: {e}"),
            ServeError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServeError::Plan(e) => write!(f, "cannot plan serving session: {e}"),
            ServeError::Refused { refusal, message } => {
                write!(f, "server refused ({}): {message}", refusal.label())
            }
            ServeError::ConnectionClosed => write!(f, "server closed the connection"),
            ServeError::UnexpectedReply(got) => write!(f, "unexpected reply shape: {got}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Protocol(e) => Some(e),
            ServeError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError::Plan(e)
    }
}
