//! The wire protocol: length-prefixed frames with fixed little-endian
//! payloads (DESIGN §3g).
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload (len bytes) |
//! +----------------+---------------------+
//! ```
//!
//! `len` counts payload bytes only and must not exceed [`MAX_FRAME`];
//! oversized lengths are rejected *before* any allocation, so a malformed
//! prefix cannot balloon server memory (framing lives in
//! [`crate::framing`] and is shared with the shard wire protocol).
//! Request payloads start with an opcode byte, response payloads with a
//! status byte; integers are little-endian (`u32` unless noted).
//!
//! | opcode | request | payload after opcode |
//! |--------|---------|----------------------|
//! | 1 | `count(u, v)` | `u: u32, v: u32` |
//! | 2 | `topk(k)` | `k: u32` |
//! | 3 | `scan(threshold)` | `threshold: u32` |
//! | 4 | `stats` | — |
//! | 5 | `shutdown` | — |
//!
//! | status | meaning | payload after status |
//! |--------|---------|----------------------|
//! | 0 | OK | per-request body (below) |
//! | 1 | overloaded | UTF-8 message |
//! | 2 | not an edge | UTF-8 message |
//! | 3 | bad request | UTF-8 message |
//! | 4 | shutting down | UTF-8 message |
//!
//! OK bodies: `count` → `u32`; `topk`/`scan` → `total: u64, returned: u32`
//! then `returned` × `(u: u32, v: u32, count: u32)` triples; `stats` →
//! UTF-8 cnc-metrics v1 JSON; `shutdown` → empty.
//!
//! Decoding is strict: unknown opcode/status bytes, short payloads and
//! trailing bytes all yield a typed [`ProtocolError`] — never a panic —
//! so a server can answer garbage with status 3 and move on.

use cnc_core::EdgeCount;

pub use crate::framing::{read_frame, write_frame, FrameRead, MAX_FRAME};

/// Generation of the wire layout. Version 2 widened the `topk`/`scan`
/// `total` field to `u64` (a graph can hold ≥ 2³² matching edges; the old
/// `u32` field wrapped silently). The protocol is pre-1.0: peers must be
/// built from the same generation, and mixed-version conversations are not
/// supported or detected.
pub const PROTOCOL_VERSION: u32 = 2;

/// Largest number of `(u, v, count)` triples one response carries; `scan`
/// responses report the untruncated total alongside.
pub const MAX_REPLY_EDGES: usize = 65_536;

const OP_COUNT: u8 = 1;
const OP_TOPK: u8 = 2;
const OP_SCAN: u8 = 3;
const OP_STATS: u8 = 4;
const OP_SHUTDOWN: u8 = 5;

const ST_OK: u8 = 0;
const ST_OVERLOADED: u8 = 1;
const ST_NOT_AN_EDGE: u8 = 2;
const ST_BAD_REQUEST: u8 = 3;
const ST_SHUTTING_DOWN: u8 = 4;

/// A client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// `|N(u) ∩ N(v)|` for one edge (input-graph vertex ids, any order).
    Count {
        /// One endpoint.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// The `k` highest-count edges.
    TopK {
        /// How many edges to return.
        k: u32,
    },
    /// Every edge with `count >= threshold`.
    Scan {
        /// Minimum count.
        threshold: u32,
    },
    /// The server's cnc-metrics v1 JSON snapshot.
    Stats,
    /// Drain in-flight batches and stop the server.
    Shutdown,
}

/// Why a request was refused (response statuses 1–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// The admission queue is full — retry later (backpressure, not
    /// failure).
    Overloaded,
    /// The queried pair is not an edge of the graph.
    NotAnEdge,
    /// The frame decoded to no valid request.
    BadRequest,
    /// The server is draining and accepts no new work.
    ShuttingDown,
}

impl Refusal {
    fn status(self) -> u8 {
        match self {
            Refusal::Overloaded => ST_OVERLOADED,
            Refusal::NotAnEdge => ST_NOT_AN_EDGE,
            Refusal::BadRequest => ST_BAD_REQUEST,
            Refusal::ShuttingDown => ST_SHUTTING_DOWN,
        }
    }

    /// Human label (used in error displays).
    pub fn label(self) -> &'static str {
        match self {
            Refusal::Overloaded => "overloaded",
            Refusal::NotAnEdge => "not_an_edge",
            Refusal::BadRequest => "bad_request",
            Refusal::ShuttingDown => "shutting_down",
        }
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// OK body of a `count` request.
    Count(u32),
    /// OK body of a `topk`/`scan` request: the untruncated total plus the
    /// (possibly truncated) matching edges.
    Edges {
        /// Total matches, before response truncation. 64-bit on the wire:
        /// a directed edge count can exceed `u32` long before the reply
        /// edge list does.
        total: u64,
        /// Up to [`MAX_REPLY_EDGES`] matches.
        edges: Vec<EdgeCount>,
    },
    /// OK body of a `stats` request: cnc-metrics v1 JSON.
    Stats(String),
    /// OK body of a `shutdown` request.
    ShutdownAck,
    /// Any non-OK status, with its diagnostic message.
    Refused {
        /// Which status byte was sent.
        refusal: Refusal,
        /// Diagnostic message (may be empty).
        message: String,
    },
}

/// Malformed bytes, as a typed value (the server turns these into status-3
/// responses; a panic is never acceptable on attacker-controlled input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// The payload ended before the field being decoded.
    Truncated(&'static str),
    /// The request opcode byte is not assigned.
    UnknownOpcode(u8),
    /// The response status byte is not assigned.
    UnknownStatus(u8),
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
    /// A message field is not valid UTF-8.
    BadUtf8(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            ProtocolError::Truncated(what) => write!(f, "payload truncated while reading {what}"),
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown request opcode {op}"),
            ProtocolError::UnknownStatus(st) => write!(f, "unknown response status {st}"),
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            ProtocolError::BadUtf8(what) => write!(f, "{what} is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtocolError {}

// --- encoding ----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode a request payload (no frame prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    match *req {
        Request::Count { u, v } => {
            out.push(OP_COUNT);
            put_u32(&mut out, u);
            put_u32(&mut out, v);
        }
        Request::TopK { k } => {
            out.push(OP_TOPK);
            put_u32(&mut out, k);
        }
        Request::Scan { threshold } => {
            out.push(OP_SCAN);
            put_u32(&mut out, threshold);
        }
        Request::Stats => out.push(OP_STATS),
        Request::Shutdown => out.push(OP_SHUTDOWN),
    }
    out
}

/// Encode a response payload (no frame prefix).
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    match reply {
        Reply::Count(c) => {
            out.push(ST_OK);
            put_u32(&mut out, *c);
        }
        Reply::Edges { total, edges } => {
            out.push(ST_OK);
            put_u64(&mut out, *total);
            put_u32(&mut out, edges.len() as u32);
            for e in edges {
                put_u32(&mut out, e.u);
                put_u32(&mut out, e.v);
                put_u32(&mut out, e.count);
            }
        }
        Reply::Stats(json) => {
            out.push(ST_OK);
            out.extend_from_slice(json.as_bytes());
        }
        Reply::ShutdownAck => out.push(ST_OK),
        Reply::Refused { refusal, message } => {
            out.push(refusal.status());
            out.extend_from_slice(message.as_bytes());
        }
    }
    out
}

// --- decoding ----------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self, what: &'static str) -> Result<u8, ProtocolError> {
        let b = *self
            .buf
            .get(self.at)
            .ok_or(ProtocolError::Truncated(what))?;
        self.at += 1;
        Ok(b)
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ProtocolError> {
        let end = self.at + 4;
        let bytes = self
            .buf
            .get(self.at..end)
            .ok_or(ProtocolError::Truncated(what))?;
        self.at = end;
        Ok(u32::from_le_bytes(
            bytes.try_into().expect("slice is 4 bytes"),
        ))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ProtocolError> {
        let end = self.at + 8;
        let bytes = self
            .buf
            .get(self.at..end)
            .ok_or(ProtocolError::Truncated(what))?;
        self.at = end;
        Ok(u64::from_le_bytes(
            bytes.try_into().expect("slice is 8 bytes"),
        ))
    }

    fn rest_utf8(&mut self, what: &'static str) -> Result<String, ProtocolError> {
        let s = std::str::from_utf8(&self.buf[self.at..])
            .map_err(|_| ProtocolError::BadUtf8(what))?
            .to_string();
        self.at = self.buf.len();
        Ok(s)
    }

    fn done(&self) -> Result<(), ProtocolError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes(self.buf.len() - self.at))
        }
    }
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let req = match c.u8("opcode")? {
        OP_COUNT => Request::Count {
            u: c.u32("count.u")?,
            v: c.u32("count.v")?,
        },
        OP_TOPK => Request::TopK {
            k: c.u32("topk.k")?,
        },
        OP_SCAN => Request::Scan {
            threshold: c.u32("scan.threshold")?,
        },
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        op => return Err(ProtocolError::UnknownOpcode(op)),
    };
    c.done()?;
    Ok(req)
}

/// Decode a response payload. OK bodies are request-shaped, so the decoder
/// needs the request this response answers.
pub fn decode_reply(payload: &[u8], request: &Request) -> Result<Reply, ProtocolError> {
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let status = c.u8("status")?;
    let refusal = match status {
        ST_OK => {
            let reply = match request {
                Request::Count { .. } => Reply::Count(c.u32("count")?),
                Request::TopK { .. } | Request::Scan { .. } => {
                    let total = c.u64("total")?;
                    let returned = c.u32("returned")? as usize;
                    if returned > MAX_REPLY_EDGES {
                        return Err(ProtocolError::Truncated("edge list overlong"));
                    }
                    let mut edges = Vec::with_capacity(returned);
                    for _ in 0..returned {
                        edges.push(EdgeCount {
                            u: c.u32("edge.u")?,
                            v: c.u32("edge.v")?,
                            count: c.u32("edge.count")?,
                        });
                    }
                    Reply::Edges { total, edges }
                }
                Request::Stats => Reply::Stats(c.rest_utf8("stats json")?),
                Request::Shutdown => Reply::ShutdownAck,
            };
            c.done()?;
            return Ok(reply);
        }
        ST_OVERLOADED => Refusal::Overloaded,
        ST_NOT_AN_EDGE => Refusal::NotAnEdge,
        ST_BAD_REQUEST => Refusal::BadRequest,
        ST_SHUTTING_DOWN => Refusal::ShuttingDown,
        st => return Err(ProtocolError::UnknownStatus(st)),
    };
    let message = c.rest_utf8("refusal message")?;
    Ok(Reply::Refused { refusal, message })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for req in [
            Request::Count { u: 7, v: 123456 },
            Request::TopK { k: 10 },
            Request::Scan { threshold: 3 },
            Request::Stats,
            Request::Shutdown,
        ] {
            assert_eq!(decode_request(&encode_request(&req)), Ok(req));
        }
    }

    #[test]
    fn replies_round_trip() {
        let cases: Vec<(Request, Reply)> = vec![
            (Request::Count { u: 0, v: 1 }, Reply::Count(42)),
            (
                Request::TopK { k: 2 },
                Reply::Edges {
                    total: 9,
                    edges: vec![
                        EdgeCount {
                            u: 1,
                            v: 2,
                            count: 8,
                        },
                        EdgeCount {
                            u: 0,
                            v: 9,
                            count: 7,
                        },
                    ],
                },
            ),
            (
                Request::Scan { threshold: 1 },
                Reply::Edges {
                    total: 0,
                    edges: vec![],
                },
            ),
            (Request::Stats, Reply::Stats("{\"schema\":1}".to_string())),
            (Request::Shutdown, Reply::ShutdownAck),
            (
                Request::Count { u: 0, v: 1 },
                Reply::Refused {
                    refusal: Refusal::Overloaded,
                    message: "queue full".to_string(),
                },
            ),
        ];
        for (req, reply) in cases {
            assert_eq!(decode_reply(&encode_reply(&reply), &req), Ok(reply));
        }
    }

    #[test]
    fn malformed_payloads_yield_typed_errors() {
        assert_eq!(decode_request(&[]), Err(ProtocolError::Truncated("opcode")));
        assert_eq!(decode_request(&[99]), Err(ProtocolError::UnknownOpcode(99)));
        assert_eq!(
            decode_request(&[OP_COUNT, 1, 2]),
            Err(ProtocolError::Truncated("count.u"))
        );
        assert_eq!(
            decode_request(&[OP_STATS, 0]),
            Err(ProtocolError::TrailingBytes(1))
        );
        assert_eq!(
            decode_reply(&[7], &Request::Stats),
            Err(ProtocolError::UnknownStatus(7))
        );
        assert_eq!(
            decode_reply(&[ST_OK, 1], &Request::Count { u: 0, v: 0 }),
            Err(ProtocolError::Truncated("count"))
        );
    }

    #[test]
    fn edge_totals_survive_past_u32() {
        // The regression the u64 widening exists for: a total that the old
        // u32 field would have wrapped to 1.
        let reply = Reply::Edges {
            total: (1u64 << 32) + 1,
            edges: vec![],
        };
        let back = decode_reply(&encode_reply(&reply), &Request::Scan { threshold: 0 });
        assert_eq!(back, Ok(reply));
    }
}
