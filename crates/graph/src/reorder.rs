//! Degree-descending graph reordering (Section 2.1).
//!
//! BMP's per-intersection complexity bound `O(min(d_u, d_v))` relies on the
//! invariant `u < v ⇒ d_u ≥ d_v`: the bitmap is always built for the
//! larger-degree endpoint and the smaller neighbor list is the probe side.
//! The relabeling sorts vertices by descending degree (ties broken by old
//! id, making it deterministic) and remaps every edge —
//! `O(|V| log |V| + |E|)` exactly as the paper states.

use crate::csr::CsrGraph;

/// The result of a degree-descending relabel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reordered {
    /// The relabeled graph (new ids).
    pub graph: CsrGraph,
    /// `old_to_new[old_id] = new_id`.
    pub old_to_new: Vec<u32>,
    /// `new_to_old[new_id] = old_id`.
    pub new_to_old: Vec<u32>,
}

impl Reordered {
    /// Translate an old vertex id to the relabeled id.
    pub fn to_new(&self, old: u32) -> u32 {
        self.old_to_new[old as usize]
    }

    /// Translate a relabeled id back to the original id.
    pub fn to_old(&self, new: u32) -> u32 {
        self.new_to_old[new as usize]
    }
}

/// Relabel so vertex ids are in descending degree order.
pub fn degree_descending(g: &CsrGraph) -> Reordered {
    let n = g.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    // Descending degree, ascending old id on ties: deterministic.
    order.sort_by(|&a, &b| g.degree(b).cmp(&g.degree(a)).then_with(|| a.cmp(&b)));
    let new_to_old = order;
    let mut old_to_new = vec![0u32; n];
    for (new_id, &old_id) in new_to_old.iter().enumerate() {
        old_to_new[old_id as usize] = new_id as u32;
    }
    // Remap edges; build the CSR from undirected pairs (u < v once each).
    let pairs = g
        .iter_edges()
        .filter(|&(_, u, v)| u < v)
        .map(|(_, u, v)| (old_to_new[u as usize], old_to_new[v as usize]));
    let graph = CsrGraph::from_undirected_pairs(n, pairs);
    Reordered {
        graph,
        old_to_new,
        new_to_old,
    }
}

/// Check the BMP invariant on a graph: `u < v ⇒ d_u ≥ d_v`.
pub fn is_degree_descending(g: &CsrGraph) -> bool {
    (1..g.num_vertices() as u32).all(|u| g.degree(u - 1) >= g.degree(u))
}

/// Core numbers of every vertex (k-core decomposition) via the linear-time
/// bucket peeling of Batagelj–Zaveršnik: repeatedly remove the vertex of
/// minimum remaining degree; a vertex's core number is its degree at
/// removal time (made monotone).
pub fn core_numbers(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let mut degree: Vec<usize> = (0..n as u32).map(|u| g.degree(u)).collect();
    let max_d = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; max_d + 2];
    for &d in &degree {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0u32; n];
    for u in 0..n {
        let p = bin[degree[u]];
        pos[u] = p;
        vert[p] = u as u32;
        bin[degree[u]] += 1;
    }
    // Restore bin starts.
    for d in (1..bin.len()).rev() {
        bin[d] = bin[d - 1];
    }
    bin[0] = 0;
    // Peel.
    let mut core = vec![0u32; n];
    for i in 0..n {
        let u = vert[i];
        core[u as usize] = degree[u as usize] as u32;
        for &v in g.neighbors(u) {
            let v = v as usize;
            if degree[v] > degree[u as usize] {
                // Move v one bucket down: swap with the first vertex of its
                // current bucket.
                let dv = degree[v];
                let pv = pos[v];
                let pw = bin[dv];
                let w = vert[pw];
                if v as u32 != w {
                    vert[pv] = w;
                    vert[pw] = v as u32;
                    pos[v] = pw;
                    pos[w as usize] = pv;
                }
                bin[dv] += 1;
                degree[v] -= 1;
            }
        }
    }
    core
}

/// The graph's degeneracy: the maximum core number.
pub fn degeneracy(g: &CsrGraph) -> u32 {
    core_numbers(g).into_iter().max().unwrap_or(0)
}

/// Relabel by *descending core number* (ties by descending degree, then old
/// id) — an alternative preprocessing for BMP: core-descending order puts
/// the densest subgraph first, which clusters common-neighbor bit positions
/// even more tightly than plain degree order on some graphs. Compared in
/// the `ablation_reorder` bench.
pub fn core_descending(g: &CsrGraph) -> Reordered {
    let n = g.num_vertices();
    let core = core_numbers(g);
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        core[b as usize]
            .cmp(&core[a as usize])
            .then_with(|| g.degree(b).cmp(&g.degree(a)))
            .then_with(|| a.cmp(&b))
    });
    let new_to_old = order;
    let mut old_to_new = vec![0u32; n];
    for (new_id, &old_id) in new_to_old.iter().enumerate() {
        old_to_new[old_id as usize] = new_id as u32;
    }
    let pairs = g
        .iter_edges()
        .filter(|&(_, u, v)| u < v)
        .map(|(_, u, v)| (old_to_new[u as usize], old_to_new[v as usize]));
    let graph = CsrGraph::from_undirected_pairs(n, pairs);
    Reordered {
        graph,
        old_to_new,
        new_to_old,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;
    use crate::generators;

    #[test]
    fn relabel_star_graph() {
        // Star centered at 4: vertex 4 has degree 4, others degree 1.
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs([(4, 0), (4, 1), (4, 2), (4, 3)]));
        assert!(!is_degree_descending(&g));
        let r = degree_descending(&g);
        assert!(is_degree_descending(&r.graph));
        assert_eq!(r.to_new(4), 0, "hub becomes vertex 0");
        assert_eq!(r.to_old(0), 4);
        r.graph.validate().unwrap();
    }

    #[test]
    fn permutation_is_bijective() {
        let el = generators::gnm(200, 800, 7);
        let g = CsrGraph::from_edge_list(&el);
        let r = degree_descending(&g);
        let mut seen = [false; 200];
        for old in 0..200u32 {
            let new = r.to_new(old);
            assert!(!seen[new as usize]);
            seen[new as usize] = true;
            assert_eq!(r.to_old(new), old);
        }
    }

    #[test]
    fn degrees_preserved_under_relabel() {
        let el = generators::chung_lu(300, 8.0, 2.3, 99);
        let g = CsrGraph::from_edge_list(&el);
        let r = degree_descending(&g);
        assert!(is_degree_descending(&r.graph));
        for old in 0..g.num_vertices() as u32 {
            assert_eq!(g.degree(old), r.graph.degree(r.to_new(old)));
        }
        assert_eq!(g.num_directed_edges(), r.graph.num_directed_edges());
    }

    #[test]
    fn adjacency_preserved_under_relabel() {
        let el = generators::gnm(50, 120, 3);
        let g = CsrGraph::from_edge_list(&el);
        let r = degree_descending(&g);
        for (_, u, v) in g.iter_edges() {
            assert!(
                r.graph.edge_offset(r.to_new(u), r.to_new(v)).is_some(),
                "edge ({u},{v}) lost"
            );
        }
    }

    #[test]
    fn already_ordered_graph_keeps_invariant() {
        // Path 0-1-2: degrees 1,2,1 → not descending; after relabel it is.
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (1, 2)]));
        let r = degree_descending(&g);
        assert!(is_degree_descending(&r.graph));
        // Relabeling an already-ordered graph is the identity.
        let r2 = degree_descending(&r.graph);
        assert_eq!(r2.graph, r.graph);
        assert!(r2
            .old_to_new
            .iter()
            .enumerate()
            .all(|(i, &x)| i as u32 == x));
    }

    #[test]
    fn empty_graph_relabel() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        let r = degree_descending(&g);
        assert_eq!(r.graph.num_vertices(), 0);
        assert!(core_numbers(&g).is_empty());
        assert_eq!(degeneracy(&g), 0);
    }

    #[test]
    fn core_numbers_on_known_graphs() {
        // K5: every vertex has core number 4.
        let g = CsrGraph::from_edge_list(&generators::complete(5));
        assert!(core_numbers(&g).iter().all(|&c| c == 4));
        assert_eq!(degeneracy(&g), 4);
        // Path: all cores 1.
        let p = CsrGraph::from_edge_list(&generators::path(10));
        assert!(core_numbers(&p).iter().all(|&c| c == 1));
        // Star: hub and leaves all core 1.
        let s = CsrGraph::from_edge_list(&generators::star(10));
        assert!(core_numbers(&s).iter().all(|&c| c == 1));
    }

    #[test]
    fn core_numbers_clique_with_tail() {
        // K4 {0..3} plus path 3-4-5: clique cores 3, tail cores 1.
        let mut el = generators::complete(4);
        el.push(3, 4);
        el.push(4, 5);
        let g = CsrGraph::from_edge_list(&el);
        let core = core_numbers(&g);
        assert_eq!(&core[0..4], &[3, 3, 3, 3]);
        assert_eq!(&core[4..6], &[1, 1]);
    }

    #[test]
    fn core_numbers_match_peeling_oracle() {
        // Oracle: iterative definition — the k-core is what survives
        // repeatedly deleting vertices of degree < k.
        let g = CsrGraph::from_edge_list(&generators::chung_lu(120, 8.0, 2.2, 6));
        let fast = core_numbers(&g);
        let n = g.num_vertices();
        for k in 1..=degeneracy(&g) {
            let mut alive = vec![true; n];
            loop {
                let mut changed = false;
                for u in 0..n as u32 {
                    if !alive[u as usize] {
                        continue;
                    }
                    let d = g
                        .neighbors(u)
                        .iter()
                        .filter(|&&v| alive[v as usize])
                        .count();
                    if d < k as usize {
                        alive[u as usize] = false;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for u in 0..n {
                assert_eq!(alive[u], fast[u] >= k, "k={k} u={u}");
            }
        }
    }

    #[test]
    fn core_descending_is_valid_permutation() {
        let g = CsrGraph::from_edge_list(&generators::hub_web(200, 6.0, 2, 0.4, 7));
        let r = core_descending(&g);
        r.graph.validate().unwrap();
        // Degrees preserved as a multiset.
        let mut before: Vec<usize> = (0..g.num_vertices() as u32).map(|u| g.degree(u)).collect();
        let mut after: Vec<usize> = (0..g.num_vertices() as u32)
            .map(|u| r.graph.degree(u))
            .collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
        // Core numbers are descending in the new id order.
        let new_core = core_numbers(&r.graph);
        assert!(new_core.windows(2).all(|w| w[0] >= w[1]));
    }
}
