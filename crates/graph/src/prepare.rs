//! The preparation layer: compute reorder / statistics / partitioning
//! inputs **once**, share them everywhere.
//!
//! The paper's preprocessing — degree-descending relabeling for BMP's
//! `O(min(d_u, d_v))` bound, the degree-skew statistic that picks MPS's
//! pivot-skip partition, and the Table 1 size statistics — is a one-time
//! cost amortized over every edge intersection (Section 2.1). This module
//! makes that amortization real: a [`PreparedGraph`] runs the whole pipeline
//!
//! ```text
//! edge list → normalized → CSR (parallel builder)
//!           → optional degree-descending reorder + remap tables
//!           → GraphStats + skew percentage + capacity scale
//! ```
//!
//! exactly once and hands the result out as an immutable `Arc`, so the
//! runner, every backend, and the repro harness consume the same prepared
//! data by reference instead of re-deriving it per call.
//!
//! Two cache levels make the *second* preparation of a dataset free:
//!
//! * a process-wide in-memory cache keyed by `(dataset, scale, reorder
//!   policy)` — see [`prepared`];
//! * a versioned on-disk binary cache (default `results/cache/`, override
//!   with `CNC_CACHE_DIR`) holding the CSR plus the remap tables — a warm
//!   process skips generation, CSR construction *and* reordering. Stale or
//!   corrupt cache files are silently discarded and rebuilt.
//!
//! Preparation work is observable through per-thread [`PrepareMetrics`]
//! counters ([`metrics`]): tests prove single-shot preprocessing with them
//! and the `repro` binary reports them as cache evidence.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use crate::csr::CsrGraph;
use crate::datasets::{Dataset, Scale};
use crate::edgelist::EdgeList;
use crate::io::{read_csr, read_exact_vec, write_csr};
use crate::reorder::{self, Reordered};
use crate::stats::{skew_percentage, GraphStats, SKEW_THRESHOLD};

/// Which relabeling the preparation pipeline applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReorderPolicy {
    /// Keep the graph's own vertex ids (merge-family algorithms).
    None,
    /// Degree-descending relabel with remap tables (BMP's required
    /// preprocessing; harmless for the others).
    DegreeDescending,
}

impl ReorderPolicy {
    /// Stable tag used in cache file names.
    pub fn tag(self) -> &'static str {
        match self {
            ReorderPolicy::None => "none",
            ReorderPolicy::DegreeDescending => "degdesc",
        }
    }

    fn byte(self) -> u8 {
        match self {
            ReorderPolicy::None => 0,
            ReorderPolicy::DegreeDescending => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ReorderPolicy::None),
            1 => Some(ReorderPolicy::DegreeDescending),
            _ => None,
        }
    }
}

/// Per-thread tallies of preparation work. Snapshots are cheap; diff two
/// with [`PrepareMetrics::since`] to prove how much preprocessing a code
/// path performed (the counters only ever increase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrepareMetrics {
    /// Edge-list → CSR constructions (dataset generation included).
    pub graph_builds: u64,
    /// Degree-descending relabels performed.
    pub reorders: u64,
    /// In-memory prepared-graph cache hits.
    pub mem_hits: u64,
    /// On-disk prepared-graph cache hits.
    pub disk_hits: u64,
    /// On-disk prepared-graph cache writes.
    pub disk_writes: u64,
}

impl PrepareMetrics {
    const ZERO: PrepareMetrics = PrepareMetrics {
        graph_builds: 0,
        reorders: 0,
        mem_hits: 0,
        disk_hits: 0,
        disk_writes: 0,
    };

    /// The work done between `earlier` and `self` (component-wise
    /// saturating difference).
    pub fn since(&self, earlier: &PrepareMetrics) -> PrepareMetrics {
        PrepareMetrics {
            graph_builds: self.graph_builds.saturating_sub(earlier.graph_builds),
            reorders: self.reorders.saturating_sub(earlier.reorders),
            mem_hits: self.mem_hits.saturating_sub(earlier.mem_hits),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            disk_writes: self.disk_writes.saturating_sub(earlier.disk_writes),
        }
    }
}

impl fmt::Display for PrepareMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph_builds={} reorders={} mem_hits={} disk_hits={} disk_writes={}",
            self.graph_builds, self.reorders, self.mem_hits, self.disk_hits, self.disk_writes
        )
    }
}

thread_local! {
    static METRICS: Cell<PrepareMetrics> = const { Cell::new(PrepareMetrics::ZERO) };
}

/// Snapshot of this thread's preparation counters.
///
/// Counters are per-thread (preparation always runs on the calling thread,
/// even when the CSR builder fans out internally), so concurrent tests
/// observe exact deltas without cross-talk.
pub fn metrics() -> PrepareMetrics {
    METRICS.with(|m| m.get())
}

fn bump(f: impl FnOnce(&mut PrepareMetrics)) {
    METRICS.with(|m| {
        let mut v = m.get();
        f(&mut v);
        m.set(v);
    });
}

/// The immutable output of the preparation pipeline.
///
/// Holds the normalized CSR, the optional degree-descending relabel with
/// both remap tables, and the graph statistics every consumer keys on
/// (Table 1 sizes, the Table 2 skew percentage that predicts pivot-skip
/// payoff, and the capacity scale for the machine models). Constructed once,
/// shared by `Arc` across the runner, all backends, and the repro harness.
#[derive(Debug, Clone)]
pub struct PreparedGraph {
    graph: CsrGraph,
    reordered: Option<Reordered>,
    stats: GraphStats,
    skew_pct: f64,
    capacity_scale: f64,
    policy: ReorderPolicy,
}

impl PreparedGraph {
    /// Run the full pipeline on an edge list: normalize (if needed), build
    /// the CSR through the parallel builder, then apply `policy`.
    pub fn from_edge_list(el: &EdgeList, policy: ReorderPolicy) -> Arc<Self> {
        let graph = CsrGraph::from_edge_list_parallel(el);
        bump(|m| m.graph_builds += 1);
        Arc::new(Self::finish(graph, policy, 1.0))
    }

    /// Prepare an existing CSR (statistics + optional reorder; no CSR
    /// rebuild).
    pub fn from_csr(graph: CsrGraph, policy: ReorderPolicy) -> Arc<Self> {
        Arc::new(Self::finish(graph, policy, 1.0))
    }

    /// Pipeline tail shared by every constructor that actually *computes*
    /// (counted in [`metrics`]); deserialization uses
    /// [`PreparedGraph::assemble`] instead.
    fn finish(graph: CsrGraph, policy: ReorderPolicy, capacity_scale: f64) -> Self {
        let reordered = match policy {
            ReorderPolicy::None => None,
            ReorderPolicy::DegreeDescending => {
                bump(|m| m.reorders += 1);
                Some(reorder::degree_descending(&graph))
            }
        };
        Self::assemble(graph, reordered, policy, capacity_scale)
    }

    /// Assemble from already-computed parts (cache load): derives only the
    /// cheap statistics, bumps no work counters.
    fn assemble(
        graph: CsrGraph,
        reordered: Option<Reordered>,
        policy: ReorderPolicy,
        capacity_scale: f64,
    ) -> Self {
        let stats = GraphStats::of(&graph);
        let skew_pct = skew_percentage(&graph, SKEW_THRESHOLD);
        Self {
            graph,
            reordered,
            stats,
            skew_pct,
            capacity_scale,
            policy,
        }
    }

    /// The graph in its original vertex ids.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The degree-descending relabel with remap tables, when the policy
    /// computed one.
    pub fn reordered(&self) -> Option<&Reordered> {
        self.reordered.as_ref()
    }

    /// The graph a backend should execute on: the relabeled CSR when the
    /// plan wants reordering *and* this preparation computed it, the
    /// original otherwise.
    pub fn execution_graph(&self, reorder: bool) -> &CsrGraph {
        match (&self.reordered, reorder) {
            (Some(r), true) => &r.graph,
            _ => &self.graph,
        }
    }

    /// Table 1 statistics of the original graph.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Table 2 skew percentage at the paper's threshold
    /// ([`SKEW_THRESHOLD`]) — the statistic MPS's skew partitioning keys on.
    pub fn skew_pct(&self) -> f64 {
        self.skew_pct
    }

    /// Capacity-scaling factor for the machine models (1.0 unless prepared
    /// from a [`Dataset`], which sets `Dataset::capacity_scale`).
    pub fn capacity_scale(&self) -> f64 {
        self.capacity_scale
    }

    /// The reorder policy this graph was prepared under.
    pub fn policy(&self) -> ReorderPolicy {
        self.policy
    }
}

/// Magic + version header of the on-disk prepared-graph format. Bump the
/// trailing digit on any layout change: a stale file fails the magic check
/// and is rebuilt.
const PREPARED_MAGIC: &[u8; 8] = b"CNCPREP1";

/// Serialize a prepared graph (CSR, policy, optional relabeled CSR + remap
/// table) in the versioned binary cache format.
pub fn write_prepared<W: Write>(pg: &PreparedGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(PREPARED_MAGIC)?;
    w.write_all(&[pg.policy.byte()])?;
    write_csr_section(&pg.graph, &mut w)?;
    match &pg.reordered {
        None => w.write_all(&[0])?,
        Some(r) => {
            w.write_all(&[1])?;
            write_csr_section(&r.graph, &mut w)?;
            let mut buf = Vec::with_capacity(8 + r.new_to_old.len() * 4);
            buf.extend_from_slice(&(r.new_to_old.len() as u64).to_le_bytes());
            for &x in &r.new_to_old {
                buf.extend_from_slice(&x.to_le_bytes());
            }
            w.write_all(&buf)?;
        }
    }
    w.flush()
}

/// Embed a CSR as a length-prefixed section: the u64 byte length followed by
/// the [`write_csr`] stream. The prefix lets [`read_prepared`] hand the CSR
/// reader an exact slice — `read_csr` buffers internally and would otherwise
/// consume bytes belonging to the next section.
fn write_csr_section<W: Write>(g: &CsrGraph, w: &mut W) -> io::Result<()> {
    let mut blob = Vec::new();
    write_csr(g, &mut blob)?;
    w.write_all(&(blob.len() as u64).to_le_bytes())?;
    w.write_all(&blob)
}

/// Read back one [`write_csr_section`] section.
fn read_csr_section<R: Read>(r: &mut R) -> io::Result<CsrGraph> {
    let mut len_raw = [0u8; 8];
    r.read_exact(&mut len_raw)?;
    let len = u64::from_le_bytes(len_raw);
    let blob = read_exact_vec(r, len, "embedded CSR section")?;
    read_csr(blob.as_slice())
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Deserialize a prepared graph written by [`write_prepared`].
///
/// Every invariant the format implies is checked — magic/version, policy
/// byte, CSR validity of both graphs, the remap table being a permutation
/// consistent with the pair of graphs — and any violation is an
/// [`io::ErrorKind::InvalidData`] error, never a panic. The capacity scale
/// is not stored; it is re-derived by the dataset cache.
pub fn read_prepared<R: Read>(reader: R) -> io::Result<PreparedGraph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 9];
    r.read_exact(&mut magic)?;
    if &magic[..8] != PREPARED_MAGIC {
        return Err(invalid("bad magic: not a CNCPREP1 file"));
    }
    let policy =
        ReorderPolicy::from_byte(magic[8]).ok_or_else(|| invalid("unknown reorder policy byte"))?;
    let graph = read_csr_section(&mut r)?;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let has_reordered = match flag[0] {
        0 => false,
        1 => true,
        _ => return Err(invalid("bad reordered-presence flag")),
    };
    if has_reordered != matches!(policy, ReorderPolicy::DegreeDescending) {
        return Err(invalid("reorder tables inconsistent with policy byte"));
    }
    let reordered = if has_reordered {
        let rg = read_csr_section(&mut r)?;
        let mut len_raw = [0u8; 8];
        r.read_exact(&mut len_raw)?;
        let len = u64::from_le_bytes(len_raw);
        let n = graph.num_vertices();
        if len as usize != n || rg.num_vertices() != n {
            return Err(invalid("remap table length does not match |V|"));
        }
        if rg.num_directed_edges() != graph.num_directed_edges() {
            return Err(invalid("relabeled graph has a different edge count"));
        }
        let raw = read_exact_vec(&mut r, len.saturating_mul(4), "remap table")?;
        let mut new_to_old = Vec::with_capacity(n);
        for chunk in raw.chunks_exact(4) {
            new_to_old.push(u32::from_le_bytes(
                chunk.try_into().expect("chunks_exact(4)"),
            ));
        }
        // The table must be a permutation that preserves degrees — cheap
        // O(|V|) checks that catch corrupt-but-well-formed files.
        let mut seen = vec![false; n];
        let mut old_to_new = vec![0u32; n];
        for (new_id, &old_id) in new_to_old.iter().enumerate() {
            let Some(slot) = seen.get_mut(old_id as usize) else {
                return Err(invalid("remap table entry out of range"));
            };
            if std::mem::replace(slot, true) {
                return Err(invalid("remap table is not a permutation"));
            }
            if graph.degree(old_id) != rg.degree(new_id as u32) {
                return Err(invalid("remap table does not preserve degrees"));
            }
            old_to_new[old_id as usize] = new_id as u32;
        }
        Some(Reordered {
            graph: rg,
            old_to_new,
            new_to_old,
        })
    } else {
        None
    };
    Ok(PreparedGraph::assemble(graph, reordered, policy, 1.0))
}

/// The on-disk cache directory: `$CNC_CACHE_DIR` when set, `results/cache`
/// (relative to the working directory) otherwise.
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("CNC_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results").join("cache"))
}

/// The cache file path for a `(dataset, scale, policy)` key under `dir`.
pub fn cache_path(dir: &Path, dataset: Dataset, scale: Scale, policy: ReorderPolicy) -> PathBuf {
    dir.join(format!(
        "{}-{}-{}.prep",
        dataset.name(),
        scale.name(),
        policy.tag()
    ))
}

type CacheKey = (Dataset, Scale, ReorderPolicy);

static MEM_CACHE: OnceLock<Mutex<HashMap<CacheKey, Arc<PreparedGraph>>>> = OnceLock::new();

/// The process-wide prepared form of a dataset analogue.
///
/// First call per `(dataset, scale, policy)` key goes through
/// [`prepared_on_disk`] (warm disk cache → zero preprocessing; cold → build
/// and persist); every later call in the process returns the same
/// `Arc<PreparedGraph>` from memory.
pub fn prepared(dataset: Dataset, scale: Scale, policy: ReorderPolicy) -> Arc<PreparedGraph> {
    let cache = MEM_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(hit) = map.get(&(dataset, scale, policy)) {
        bump(|m| m.mem_hits += 1);
        return Arc::clone(hit);
    }
    let pg = prepared_on_disk(&default_cache_dir(), dataset, scale, policy);
    map.insert((dataset, scale, policy), Arc::clone(&pg));
    pg
}

/// The prepared form of a dataset analogue backed only by the on-disk cache
/// under `dir` (no process-wide memoization — the entry point for cache
/// management and tests).
///
/// A readable, valid cache file is loaded as-is; a missing, stale (old
/// version byte) or corrupt file falls back to a fresh build, and the cache
/// is then rewritten best-effort (atomically, via a temp file). No error is
/// ever surfaced: the cache is an optimization, not a dependency.
pub fn prepared_on_disk(
    dir: &Path,
    dataset: Dataset,
    scale: Scale,
    policy: ReorderPolicy,
) -> Arc<PreparedGraph> {
    let path = cache_path(dir, dataset, scale, policy);
    if let Ok(f) = File::open(&path) {
        if let Ok(mut pg) = read_prepared(f) {
            if pg.policy == policy {
                pg.capacity_scale = dataset.capacity_scale(&pg.graph);
                bump(|m| m.disk_hits += 1);
                return Arc::new(pg);
            }
        }
        // Stale or corrupt: fall through and rebuild over it.
    }
    let el = dataset.edge_list(scale);
    let graph = CsrGraph::from_edge_list_parallel(&el);
    bump(|m| m.graph_builds += 1);
    let mut pg = PreparedGraph::finish(graph, policy, 1.0);
    pg.capacity_scale = dataset.capacity_scale(&pg.graph);
    if fs::create_dir_all(dir).is_ok() {
        let tmp = path.with_extension(format!("tmp{}", std::process::id()));
        let wrote = File::create(&tmp)
            .and_then(|f| write_prepared(&pg, f))
            .and_then(|()| fs::rename(&tmp, &path));
        match wrote {
            Ok(()) => bump(|m| m.disk_writes += 1),
            Err(_) => {
                let _ = fs::remove_file(&tmp);
            }
        }
    }
    Arc::new(pg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::reorder::is_degree_descending;

    #[test]
    fn pipeline_produces_reorder_and_stats() {
        let el = generators::hub_web(300, 6.0, 2, 0.4, 3);
        let before = metrics();
        let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::DegreeDescending);
        let d = metrics().since(&before);
        assert_eq!(d.graph_builds, 1);
        assert_eq!(d.reorders, 1);
        let r = pg.reordered().expect("policy computed a reorder");
        assert!(is_degree_descending(&r.graph));
        assert_eq!(pg.stats().num_vertices, pg.graph().num_vertices());
        assert!(pg.skew_pct() >= 0.0);
        assert_eq!(pg.capacity_scale(), 1.0);
        // Execution graph selection.
        assert_eq!(pg.execution_graph(true), &r.graph);
        assert_eq!(pg.execution_graph(false), pg.graph());
    }

    #[test]
    fn policy_none_skips_reorder() {
        let el = generators::gnm(100, 300, 1);
        let before = metrics();
        let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::None);
        let d = metrics().since(&before);
        assert_eq!(d.reorders, 0);
        assert!(pg.reordered().is_none());
        assert_eq!(pg.execution_graph(true), pg.graph(), "no tables → original");
    }

    #[test]
    fn serialization_round_trips() {
        for policy in [ReorderPolicy::None, ReorderPolicy::DegreeDescending] {
            let el = generators::chung_lu(200, 8.0, 2.3, 5);
            let pg = PreparedGraph::from_edge_list(&el, policy);
            let mut buf = Vec::new();
            write_prepared(&pg, &mut buf).unwrap();
            let back = read_prepared(buf.as_slice()).unwrap();
            assert_eq!(back.graph(), pg.graph());
            assert_eq!(back.policy(), policy);
            match (back.reordered(), pg.reordered()) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.graph, b.graph);
                    assert_eq!(a.new_to_old, b.new_to_old);
                    assert_eq!(a.old_to_new, b.old_to_new);
                }
                other => panic!("reorder tables lost in round trip: {other:?}"),
            }
        }
    }

    #[test]
    fn deserialization_rejects_tampering() {
        let el = generators::gnm(50, 150, 2);
        let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::DegreeDescending);
        let mut buf = Vec::new();
        write_prepared(&pg, &mut buf).unwrap();
        // Stale version byte.
        let mut stale = buf.clone();
        stale[7] = b'9';
        assert!(read_prepared(stale.as_slice()).is_err());
        // Unknown policy byte.
        let mut bad_policy = buf.clone();
        bad_policy[8] = 7;
        assert!(read_prepared(bad_policy.as_slice()).is_err());
        // Truncation anywhere must error, never panic.
        for cut in [9, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_prepared(buf[..cut].to_vec().as_slice()).is_err(),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn metrics_display_format() {
        let m = PrepareMetrics {
            graph_builds: 1,
            reorders: 2,
            mem_hits: 3,
            disk_hits: 4,
            disk_writes: 5,
        };
        assert_eq!(
            m.to_string(),
            "graph_builds=1 reorders=2 mem_hits=3 disk_hits=4 disk_writes=5"
        );
    }

    #[test]
    fn process_cache_returns_same_arc() {
        // Use the in-memory layer through `prepared` twice; second call must
        // be a mem hit sharing the same allocation. Point the disk layer at
        // a throwaway directory so this test does not touch results/cache.
        let dir = std::env::temp_dir().join(format!("cnc-prep-mem-{}", std::process::id()));
        std::env::set_var("CNC_CACHE_DIR", &dir);
        let a = prepared(Dataset::LjS, Scale::Tiny, ReorderPolicy::None);
        let before = metrics();
        let b = prepared(Dataset::LjS, Scale::Tiny, ReorderPolicy::None);
        let d = metrics().since(&before);
        std::env::remove_var("CNC_CACHE_DIR");
        let _ = fs::remove_dir_all(&dir);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(d.mem_hits, 1);
        assert_eq!(d.graph_builds, 0);
        assert_eq!(d.reorders, 0);
    }
}
