//! The preparation layer: compute reorder / statistics / partitioning
//! inputs **once**, share them everywhere.
//!
//! The paper's preprocessing — degree-descending relabeling for BMP's
//! `O(min(d_u, d_v))` bound, the degree-skew statistic that picks MPS's
//! pivot-skip partition, and the Table 1 size statistics — is a one-time
//! cost amortized over every edge intersection (Section 2.1). This module
//! makes that amortization real: a [`PreparedGraph`] runs the whole pipeline
//!
//! ```text
//! edge list → normalized → CSR (parallel builder)
//!           → optional degree-descending reorder + remap tables
//!           → GraphStats + skew percentage + capacity scale
//! ```
//!
//! exactly once and hands the result out as an immutable `Arc`, so the
//! runner, every backend, and the repro harness consume the same prepared
//! data by reference instead of re-deriving it per call.
//!
//! Two cache levels make the *second* preparation of a dataset free:
//!
//! * a process-wide in-memory cache keyed by `(dataset, scale, reorder
//!   policy)` — see [`prepared`];
//! * a versioned on-disk binary cache (default `results/cache/`, override
//!   with `CNC_CACHE_DIR`) in the **`CNCPREP4`** format: a fixed 64-byte
//!   header followed by 64-byte-aligned, length-prefixed, checksummed
//!   sections holding the CSR arrays (u64 little-endian offsets, u32
//!   neighbors), the precomputed reverse-edge index `rev[e(u,v)] = e(v,u)`
//!   (u64 LE) that makes the drivers' symmetric-assignment store O(1), and
//!   the remap table. A warm load `mmap`s the file and serves
//!   the offset/adjacency/reverse arrays **zero-copy** straight out of the
//!   page cache ([`map_prepared`]); platforms or files that cannot be mapped
//!   fall back to an owned heap read, and stale (including old `CNCPREP2`),
//!   corrupt or misaligned files are silently discarded and rebuilt.
//!
//! The cache is safe to share across processes: writers serialize through an
//! advisory `flock` on [`CACHE_LOCK_FILE`] (the losers of a populate race
//! load the winner's file instead of rewriting it), files appear atomically
//! via write-once temp names + rename, live readers hold a shared lock on
//! their mapped file, and [`cache_gc`] evicts least-recently-used files down
//! to a byte budget without ever touching a reader-locked file
//! (automatically after each write when `CNC_CACHE_MAX_BYTES` is set).
//!
//! Preparation work is observable through per-thread [`PrepareMetrics`]
//! counters ([`metrics`]): tests prove single-shot preprocessing with them
//! and the `repro` binary reports them as cache evidence.

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::SystemTime;

use crate::csr::CsrGraph;
use crate::datasets::{Dataset, Scale};
use crate::edgelist::EdgeList;
use crate::mmap::{self, FileLock, MappedFile};
use crate::reorder::{self, Reordered};
use crate::stats::{skew_percentage, GraphStats, SKEW_THRESHOLD};
use crate::store::GraphStore;
use crate::stream;

/// Which relabeling the preparation pipeline applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReorderPolicy {
    /// Keep the graph's own vertex ids (merge-family algorithms).
    None,
    /// Degree-descending relabel with remap tables (BMP's required
    /// preprocessing; harmless for the others).
    DegreeDescending,
}

impl ReorderPolicy {
    /// Stable tag used in cache file names.
    pub fn tag(self) -> &'static str {
        match self {
            ReorderPolicy::None => "none",
            ReorderPolicy::DegreeDescending => "degdesc",
        }
    }

    pub(crate) fn byte(self) -> u8 {
        match self {
            ReorderPolicy::None => 0,
            ReorderPolicy::DegreeDescending => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(ReorderPolicy::None),
            1 => Some(ReorderPolicy::DegreeDescending),
            _ => None,
        }
    }
}

/// Per-thread tallies of preparation work. Snapshots are cheap; diff two
/// with [`PrepareMetrics::since`] to prove how much preprocessing a code
/// path performed (the counters only ever increase).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrepareMetrics {
    /// Edge-list → CSR constructions (dataset generation included).
    pub graph_builds: u64,
    /// Degree-descending relabels performed.
    pub reorders: u64,
    /// In-memory prepared-graph cache hits.
    pub mem_hits: u64,
    /// On-disk prepared-graph cache hits (mapped or owned-fallback loads).
    pub disk_hits: u64,
    /// On-disk prepared-graph cache writes.
    pub disk_writes: u64,
    /// Zero-copy loads: cache files served through `mmap` with no heap copy
    /// of the CSR arrays.
    pub mmap_hits: u64,
    /// Total CSR bytes served zero-copy across all `mmap_hits` (the sum of
    /// the mapped offset + adjacency section sizes).
    pub bytes_mapped: u64,
    /// External-sort spill runs written by the streaming preparation
    /// pipeline ([`crate::stream`]); 0 when inputs fit the memory budget.
    pub spill_runs: u64,
    /// Bytes written to spill run files by the streaming preparation.
    pub spill_bytes: u64,
    /// Fixed-size input chunks consumed by the streaming edge readers.
    pub stream_chunks: u64,
    /// Peak accounted heap bytes of the streaming builder. Each streamed
    /// build adds its own peak once (counters only ever increase), so a
    /// single-build run reads the bound directly.
    pub peak_resident_bytes: u64,
}

impl PrepareMetrics {
    const ZERO: PrepareMetrics = PrepareMetrics {
        graph_builds: 0,
        reorders: 0,
        mem_hits: 0,
        disk_hits: 0,
        disk_writes: 0,
        mmap_hits: 0,
        bytes_mapped: 0,
        spill_runs: 0,
        spill_bytes: 0,
        stream_chunks: 0,
        peak_resident_bytes: 0,
    };

    /// The work done between `earlier` and `self` (component-wise
    /// saturating difference).
    pub fn since(&self, earlier: &PrepareMetrics) -> PrepareMetrics {
        PrepareMetrics {
            graph_builds: self.graph_builds.saturating_sub(earlier.graph_builds),
            reorders: self.reorders.saturating_sub(earlier.reorders),
            mem_hits: self.mem_hits.saturating_sub(earlier.mem_hits),
            disk_hits: self.disk_hits.saturating_sub(earlier.disk_hits),
            disk_writes: self.disk_writes.saturating_sub(earlier.disk_writes),
            mmap_hits: self.mmap_hits.saturating_sub(earlier.mmap_hits),
            bytes_mapped: self.bytes_mapped.saturating_sub(earlier.bytes_mapped),
            spill_runs: self.spill_runs.saturating_sub(earlier.spill_runs),
            spill_bytes: self.spill_bytes.saturating_sub(earlier.spill_bytes),
            stream_chunks: self.stream_chunks.saturating_sub(earlier.stream_chunks),
            peak_resident_bytes: self
                .peak_resident_bytes
                .saturating_sub(earlier.peak_resident_bytes),
        }
    }
}

impl fmt::Display for PrepareMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // New fields are appended at the end: downstream evidence checks
        // (the repro harness and CI) match on leading-substring prefixes.
        write!(
            f,
            "graph_builds={} reorders={} mem_hits={} disk_hits={} disk_writes={} mmap_hits={} bytes_mapped={} spill_runs={} spill_bytes={} stream_chunks={} peak_resident_bytes={}",
            self.graph_builds,
            self.reorders,
            self.mem_hits,
            self.disk_hits,
            self.disk_writes,
            self.mmap_hits,
            self.bytes_mapped,
            self.spill_runs,
            self.spill_bytes,
            self.stream_chunks,
            self.peak_resident_bytes
        )
    }
}

thread_local! {
    static METRICS: Cell<PrepareMetrics> = const { Cell::new(PrepareMetrics::ZERO) };
}

/// Snapshot of this thread's preparation counters.
///
/// Counters are per-thread (preparation always runs on the calling thread,
/// even when the CSR builder fans out internally), so concurrent tests
/// observe exact deltas without cross-talk.
pub fn metrics() -> PrepareMetrics {
    METRICS.with(|m| m.get())
}

pub(crate) fn bump(f: impl FnOnce(&mut PrepareMetrics)) {
    METRICS.with(|m| {
        let before = m.get();
        let mut v = before;
        f(&mut v);
        m.set(v);
        mirror_to_obs(&v.since(&before));
    });
}

/// Mirror a counter delta into the ambient observability context, when one
/// is installed — the structured twin of the thread-local tallies, so
/// `--metrics` reports carry the same cache evidence the `# prepare:` line
/// prints.
fn mirror_to_obs(d: &PrepareMetrics) {
    use cnc_obs::Counter as C;
    if let Some(ctx) = cnc_obs::ObsContext::current() {
        ctx.add(C::PrepareGraphBuilds, d.graph_builds);
        ctx.add(C::PrepareReorders, d.reorders);
        ctx.add(C::PrepareMemHits, d.mem_hits);
        ctx.add(C::PrepareDiskHits, d.disk_hits);
        ctx.add(C::PrepareDiskWrites, d.disk_writes);
        ctx.add(C::PrepareMmapHits, d.mmap_hits);
        ctx.add(C::PrepareBytesMapped, d.bytes_mapped);
        ctx.add(C::PrepareSpillRuns, d.spill_runs);
        ctx.add(C::PrepareSpillBytes, d.spill_bytes);
        ctx.add(C::PrepareStreamChunks, d.stream_chunks);
        ctx.add(C::PreparePeakResidentBytes, d.peak_resident_bytes);
    }
}

/// The immutable output of the preparation pipeline.
///
/// Holds the normalized CSR, the optional degree-descending relabel with
/// both remap tables, and the graph statistics every consumer keys on
/// (Table 1 sizes, the Table 2 skew percentage that predicts pivot-skip
/// payoff, and the capacity scale for the machine models). Constructed once,
/// shared by `Arc` across the runner, all backends, and the repro harness.
#[derive(Debug, Clone)]
pub struct PreparedGraph {
    graph: CsrGraph,
    reordered: Option<Reordered>,
    stats: GraphStats,
    skew_pct: f64,
    capacity_scale: f64,
    policy: ReorderPolicy,
}

impl PreparedGraph {
    /// Run the full pipeline on an edge list: normalize (if needed), build
    /// the CSR through the parallel builder, then apply `policy`.
    pub fn from_edge_list(el: &EdgeList, policy: ReorderPolicy) -> Arc<Self> {
        cnc_obs::ObsContext::scoped("prepare", || {
            let graph =
                cnc_obs::ObsContext::scoped("csr_build", || CsrGraph::from_edge_list_parallel(el));
            bump(|m| m.graph_builds += 1);
            Arc::new(Self::finish(graph, policy, 1.0))
        })
    }

    /// Prepare an existing CSR (statistics + optional reorder; no CSR
    /// rebuild).
    pub fn from_csr(graph: CsrGraph, policy: ReorderPolicy) -> Arc<Self> {
        cnc_obs::ObsContext::scoped("prepare", || Arc::new(Self::finish(graph, policy, 1.0)))
    }

    /// Pipeline tail shared by every constructor that actually *computes*
    /// (counted in [`metrics`]); deserialization uses
    /// [`PreparedGraph::assemble`] instead.
    ///
    /// Builds the O(1) reverse-edge index on every execution-candidate CSR
    /// (original and, when reordered, relabeled) so the drivers' symmetric
    /// assignment never binary-searches — the index is persisted by
    /// [`write_prepared`], so warm loads get it for free.
    fn finish(mut graph: CsrGraph, policy: ReorderPolicy, capacity_scale: f64) -> Self {
        let mut reordered = match policy {
            ReorderPolicy::None => None,
            ReorderPolicy::DegreeDescending => {
                bump(|m| m.reorders += 1);
                cnc_obs::ObsContext::scoped("reorder", || Some(reorder::degree_descending(&graph)))
            }
        };
        graph.build_reverse_index();
        if let Some(r) = &mut reordered {
            r.graph.build_reverse_index();
        }
        Self::assemble(graph, reordered, policy, capacity_scale)
    }

    /// Assemble from already-computed parts: derives the statistics, bumps
    /// no work counters.
    fn assemble(
        graph: CsrGraph,
        reordered: Option<Reordered>,
        policy: ReorderPolicy,
        capacity_scale: f64,
    ) -> Self {
        let stats = GraphStats::of(&graph);
        let skew_pct = skew_percentage(&graph, SKEW_THRESHOLD);
        Self {
            graph,
            reordered,
            stats,
            skew_pct,
            capacity_scale,
            policy,
        }
    }

    /// Assemble a cache load using the statistics persisted in the file's
    /// (checksummed) header, sparing the warm path the `O(|E|)` skew and
    /// degree scans that computed them at build time.
    fn assemble_loaded(
        graph: CsrGraph,
        reordered: Option<Reordered>,
        parsed: &ParsedPrepared,
    ) -> Self {
        let n = graph.num_vertices();
        let m = graph.num_directed_edges();
        let stats = GraphStats {
            num_vertices: n,
            num_edges: m,
            avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            max_degree: parsed.max_degree,
        };
        Self {
            graph,
            reordered,
            stats,
            skew_pct: parsed.skew_pct,
            capacity_scale: 1.0,
            policy: parsed.policy,
        }
    }

    /// The graph in its original vertex ids.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The degree-descending relabel with remap tables, when the policy
    /// computed one.
    pub fn reordered(&self) -> Option<&Reordered> {
        self.reordered.as_ref()
    }

    /// The graph a backend should execute on: the relabeled CSR when the
    /// plan wants reordering *and* this preparation computed it, the
    /// original otherwise.
    pub fn execution_graph(&self, reorder: bool) -> &CsrGraph {
        match (&self.reordered, reorder) {
            (Some(r), true) => &r.graph,
            _ => &self.graph,
        }
    }

    /// Table 1 statistics of the original graph.
    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Table 2 skew percentage at the paper's threshold
    /// ([`SKEW_THRESHOLD`]) — the statistic MPS's skew partitioning keys on.
    pub fn skew_pct(&self) -> f64 {
        self.skew_pct
    }

    /// Capacity-scaling factor for the machine models (1.0 unless prepared
    /// from a [`Dataset`], which sets `Dataset::capacity_scale`).
    pub fn capacity_scale(&self) -> f64 {
        self.capacity_scale
    }

    /// The reorder policy this graph was prepared under.
    pub fn policy(&self) -> ReorderPolicy {
        self.policy
    }

    /// CSR bytes served zero-copy out of a mapped cache file: the summed
    /// offset + adjacency array sizes of every mapped graph (original and,
    /// when present, relabeled). Zero for heap-backed preparations.
    pub fn mapped_bytes(&self) -> u64 {
        let one = |g: &CsrGraph| {
            if g.storage_mapped() {
                g.csr_bytes() as u64
            } else {
                0
            }
        };
        one(&self.graph) + self.reordered.as_ref().map(|r| one(&r.graph)).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// CNCPREP4: the zero-copy on-disk format.
//
//   byte 0..8    magic "CNCPREP4"
//   byte 8       reorder policy byte
//   byte 9       reordered-sections flag (0|1, must match the policy)
//   byte 16..24  section count (u64 LE): 3 without reorder, 7 with
//   byte 24..32  skew percentage (f64 LE bits)
//   byte 32..40  maximum degree (u64 LE)
//   byte 40..56  reserved (zero)
//   byte 56..64  checksum of bytes 0..56
//
// followed by that many sections, each starting on a 64-byte boundary:
//
//   byte 0..8    payload length in bytes (u64 LE)
//   byte 8..16   checksum of the payload
//   byte 16..24  element width (u64 LE: 8 for offsets/rev, 4 for u32 arrays)
//   byte 24..64  reserved (zero)
//   byte 64..    payload, zero-padded to the next 64-byte boundary
//
// Section order: offsets (u64 LE), neighbors (u32 LE) and reverse-edge index
// (u64 LE, `rev[e(u,v)] = e(v,u)`) of the original graph, then — with
// reordering — offsets + neighbors + reverse index of the relabeled graph
// and the new→old remap table (u32 LE). The 64-byte alignment means a
// page-aligned mmap of the file can serve every array in place on 64-bit
// little-endian targets; the checksums let a mapped file be validated
// without copying it, and the persisted skew/degree statistics spare warm
// loads the O(|E|) scans that computed them. The checksum is an FNV-style
// multiply-xor fold over four interleaved u64 lanes (not byte-serial FNV:
// the four independent multiply chains keep verification at memory speed,
// which the warm path is benchmarked on). Bump the trailing magic digit on
// any layout change: a stale file fails the magic check and is rebuilt —
// the `CNCPREP2` → `CNCPREP3` bump added the reverse-index sections, and
// `CNCPREP3` → `CNCPREP4` marks files producible by the out-of-core
// streaming writer ([`crate::stream`]), which must emit byte-identical
// images to [`write_prepared`]; the bump retires pre-streaming files in one
// sweep so the differential guarantee holds for every cache file in the
// wild.
// ---------------------------------------------------------------------------

pub(crate) const PREPARED_MAGIC: &[u8; 8] = b"CNCPREP4";
pub(crate) const ALIGN: usize = mmap::SECTION_ALIGN;
pub(crate) const HEADER_LEN: usize = 64;
pub(crate) const SECTION_HEADER_LEN: usize = 64;

/// Name of the advisory lock file cache writers serialize on (one per cache
/// directory).
pub const CACHE_LOCK_FILE: &str = ".cnc-cache.lock";

/// Environment variable holding an automatic cache size cap in bytes: after
/// every cache write, [`cache_gc`] trims the directory down to this budget.
pub const CACHE_MAX_BYTES_ENV: &str = "CNC_CACHE_MAX_BYTES";

pub(crate) fn align_up(x: usize) -> usize {
    x.div_ceil(ALIGN) * ALIGN
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Content checksum of a payload: an FNV-style multiply-xor fold computed
/// over four interleaved u64 lanes, combined with the length at the end.
///
/// The four lanes break the serial multiply dependency chain of byte-wise
/// FNV-1a, so verification runs at several GB/s — warm cache loads verify
/// every section, and the checksum must not dominate a load that otherwise
/// copies nothing. The tail (payloads are always a multiple of 4 bytes,
/// not necessarily of 32) is zero-padded into one final word; folding in
/// the length keeps images that differ only in trailing zeros distinct.
pub(crate) fn checksum(bytes: &[u8]) -> u64 {
    let mut lanes = [
        FNV_OFFSET ^ 0x01,
        FNV_OFFSET ^ 0x10,
        FNV_OFFSET ^ 0x11,
        FNV_OFFSET,
    ];
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        for (lane, word) in lanes.iter_mut().zip(chunk.chunks_exact(8)) {
            let w = u64::from_le_bytes(word.try_into().expect("8-byte word"));
            *lane = (*lane ^ w).wrapping_mul(FNV_PRIME);
        }
    }
    let mut hash = FNV_OFFSET;
    for lane in lanes {
        hash = (hash ^ lane).wrapping_mul(FNV_PRIME);
    }
    for word in chunks.remainder().chunks(8) {
        let mut padded = [0u8; 8];
        padded[..word.len()].copy_from_slice(word);
        hash = (hash ^ u64::from_le_bytes(padded)).wrapping_mul(FNV_PRIME);
    }
    (hash ^ bytes.len() as u64).wrapping_mul(FNV_PRIME)
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn write_section_header<W: Write>(
    w: &mut W,
    payload_len: u64,
    checksum: u64,
    elem_width: u64,
) -> io::Result<()> {
    let mut header = [0u8; SECTION_HEADER_LEN];
    header[..8].copy_from_slice(&payload_len.to_le_bytes());
    header[8..16].copy_from_slice(&checksum.to_le_bytes());
    header[16..24].copy_from_slice(&elem_width.to_le_bytes());
    w.write_all(&header)
}

fn write_padding<W: Write>(w: &mut W, payload_len: usize) -> io::Result<()> {
    let pad = align_up(payload_len) - payload_len;
    w.write_all(&[0u8; ALIGN][..pad])
}

/// One aligned, checksummed section: serialize the elements once into a
/// payload buffer (the header's checksum precedes the payload on disk),
/// checksum it, stream it out.
fn write_section<W: Write>(w: &mut W, payload: &[u8], elem_width: u64) -> io::Result<()> {
    write_section_header(w, payload.len() as u64, checksum(payload), elem_width)?;
    w.write_all(payload)?;
    write_padding(w, payload.len())
}

fn u64_payload(vals: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for &v in vals {
        out.extend_from_slice(&(v as u64).to_le_bytes());
    }
    out
}

fn u32_payload(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for &v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// The reverse-index payload of a graph, deriving the index on the fly for
/// graphs (hand-assembled in tests, say) that never built one.
fn rev_payload(g: &CsrGraph) -> Vec<u8> {
    match g.reverse_index() {
        Some(rev) => u64_payload(rev),
        None => {
            let mut tmp = g.clone();
            tmp.build_reverse_index();
            u64_payload(tmp.reverse_index().expect("index was just built"))
        }
    }
}

/// Serialize a prepared graph (CSR + reverse-edge index, policy, statistics,
/// optional relabeled CSR + remap table) in the `CNCPREP4` cache format.
pub fn write_prepared<W: Write>(pg: &PreparedGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let sections: u64 = if pg.reordered.is_some() { 7 } else { 3 };
    let mut header = [0u8; HEADER_LEN];
    header[..8].copy_from_slice(PREPARED_MAGIC);
    header[8] = pg.policy.byte();
    header[9] = pg.reordered.is_some() as u8;
    header[16..24].copy_from_slice(&sections.to_le_bytes());
    header[24..32].copy_from_slice(&pg.skew_pct.to_bits().to_le_bytes());
    header[32..40].copy_from_slice(&(pg.stats.max_degree as u64).to_le_bytes());
    let hcheck = checksum(&header[..56]);
    header[56..64].copy_from_slice(&hcheck.to_le_bytes());
    w.write_all(&header)?;
    write_section(&mut w, &u64_payload(pg.graph.offsets()), 8)?;
    write_section(&mut w, &u32_payload(pg.graph.dst()), 4)?;
    write_section(&mut w, &rev_payload(&pg.graph), 8)?;
    if let Some(r) = &pg.reordered {
        write_section(&mut w, &u64_payload(r.graph.offsets()), 8)?;
        write_section(&mut w, &u32_payload(r.graph.dst()), 4)?;
        write_section(&mut w, &rev_payload(&r.graph), 8)?;
        write_section(&mut w, &u32_payload(&r.new_to_old), 4)?;
    }
    w.flush()
}

/// A parsed (and checksum-verified) section of a `CNCPREP4` byte image.
struct Section {
    /// Payload byte range within the file.
    start: usize,
    payload_len: usize,
    elem_width: usize,
}

impl Section {
    fn count(&self) -> usize {
        self.payload_len / self.elem_width
    }

    fn bytes<'a>(&self, image: &'a [u8]) -> &'a [u8] {
        &image[self.start..self.start + self.payload_len]
    }
}

fn read_u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte range"))
}

/// Validate a `CNCPREP4` byte image *in place* — header, section layout,
/// alignment, per-section checksums — without copying any payload. Returns
/// the policy, the persisted statistics, and the section table (3 sections,
/// or 7 with reorder data).
fn parse_prepared(bytes: &[u8]) -> io::Result<ParsedPrepared> {
    if bytes.len() < HEADER_LEN {
        return Err(invalid("truncated CNCPREP4 header"));
    }
    if &bytes[..8] != PREPARED_MAGIC {
        return Err(invalid("bad magic: not a CNCPREP4 file"));
    }
    if checksum(&bytes[..56]) != read_u64_at(bytes, 56) {
        return Err(invalid("header checksum mismatch"));
    }
    let policy =
        ReorderPolicy::from_byte(bytes[8]).ok_or_else(|| invalid("unknown reorder policy byte"))?;
    let has_reordered = match bytes[9] {
        0 => false,
        1 => true,
        _ => return Err(invalid("bad reordered-presence flag")),
    };
    if has_reordered != matches!(policy, ReorderPolicy::DegreeDescending) {
        return Err(invalid("reorder sections inconsistent with policy byte"));
    }
    let expected_widths: &[usize] = if has_reordered {
        &[8, 4, 8, 8, 4, 8, 4]
    } else {
        &[8, 4, 8]
    };
    if read_u64_at(bytes, 16) != expected_widths.len() as u64 {
        return Err(invalid("section count inconsistent with header flags"));
    }
    let mut sections = Vec::with_capacity(expected_widths.len());
    let mut pos = HEADER_LEN;
    for (i, &width) in expected_widths.iter().enumerate() {
        debug_assert_eq!(pos % ALIGN, 0);
        let header_end = pos
            .checked_add(SECTION_HEADER_LEN)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| invalid(format!("truncated header of section {i}")))?;
        let payload_len = read_u64_at(bytes, pos);
        let want_checksum = read_u64_at(bytes, pos + 8);
        if read_u64_at(bytes, pos + 16) != width as u64 {
            return Err(invalid(format!("unexpected element width in section {i}")));
        }
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| invalid(format!("section {i} too large for this platform")))?;
        if payload_len % width != 0 {
            return Err(invalid(format!(
                "section {i} length is not a multiple of its element width"
            )));
        }
        let end = header_end
            .checked_add(payload_len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| invalid(format!("truncated payload of section {i}")))?;
        if checksum(&bytes[header_end..end]) != want_checksum {
            return Err(invalid(format!("checksum mismatch in section {i}")));
        }
        sections.push(Section {
            start: header_end,
            payload_len,
            elem_width: width,
        });
        pos = align_up(end);
    }
    if pos != bytes.len() {
        return Err(invalid("file length inconsistent with section table"));
    }
    Ok(ParsedPrepared {
        policy,
        skew_pct: f64::from_bits(read_u64_at(bytes, 24)),
        max_degree: usize::try_from(read_u64_at(bytes, 32))
            .map_err(|_| invalid("max degree exceeds platform usize"))?,
        sections,
    })
}

/// The validated header fields + section table of a `CNCPREP4` image.
struct ParsedPrepared {
    policy: ReorderPolicy,
    skew_pct: f64,
    max_degree: usize,
    sections: Vec<Section>,
}

fn decode_usize_payload(payload: &[u8]) -> io::Result<Vec<usize>> {
    let mut out = Vec::with_capacity(payload.len() / 8);
    for chunk in payload.chunks_exact(8) {
        let v = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        out.push(usize::try_from(v).map_err(|_| invalid("offset value exceeds platform usize"))?);
    }
    Ok(out)
}

fn decode_u32_payload(payload: &[u8]) -> Vec<u32> {
    payload
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
        .collect()
}

/// Rebuild [`Reordered`] from a deserialized relabeled graph + new→old
/// table, checking every invariant the format implies: matching sizes, the
/// table being a degree-preserving permutation. Derives the old→new inverse
/// (the one per-load `O(|V|)` allocation the zero-copy path keeps).
fn build_reordered(
    graph: &CsrGraph,
    relabeled: CsrGraph,
    new_to_old: Vec<u32>,
) -> io::Result<Reordered> {
    let n = graph.num_vertices();
    if new_to_old.len() != n || relabeled.num_vertices() != n {
        return Err(invalid("remap table length does not match |V|"));
    }
    if relabeled.num_directed_edges() != graph.num_directed_edges() {
        return Err(invalid("relabeled graph has a different edge count"));
    }
    let mut seen = vec![false; n];
    let mut old_to_new = vec![0u32; n];
    for (new_id, &old_id) in new_to_old.iter().enumerate() {
        let Some(slot) = seen.get_mut(old_id as usize) else {
            return Err(invalid("remap table entry out of range"));
        };
        if std::mem::replace(slot, true) {
            return Err(invalid("remap table is not a permutation"));
        }
        if graph.degree(old_id) != relabeled.degree(new_id as u32) {
            return Err(invalid("remap table does not preserve degrees"));
        }
        old_to_new[old_id as usize] = new_id as u32;
    }
    Ok(Reordered {
        graph: relabeled,
        old_to_new,
        new_to_old,
    })
}

fn prepared_from_image(bytes: &[u8]) -> io::Result<PreparedGraph> {
    let parsed = parse_prepared(bytes)?;
    let decode_csr = |so: &Section, sd: &Section, sr: &Section| -> io::Result<CsrGraph> {
        let offsets = decode_usize_payload(so.bytes(bytes))?;
        let dst = decode_u32_payload(sd.bytes(bytes));
        let rev = decode_usize_payload(sr.bytes(bytes))?;
        let mut g = CsrGraph::try_from_parts(offsets, dst)
            .map_err(|e| invalid(format!("inconsistent CSR: {e}")))?;
        g.try_attach_reverse_index(rev.into())
            .map_err(|e| invalid(format!("inconsistent reverse index: {e}")))?;
        Ok(g)
    };
    let graph = decode_csr(
        &parsed.sections[0],
        &parsed.sections[1],
        &parsed.sections[2],
    )?;
    let reordered = if parsed.sections.len() == 7 {
        let relabeled = decode_csr(
            &parsed.sections[3],
            &parsed.sections[4],
            &parsed.sections[5],
        )?;
        let new_to_old = decode_u32_payload(parsed.sections[6].bytes(bytes));
        Some(build_reordered(&graph, relabeled, new_to_old)?)
    } else {
        None
    };
    Ok(PreparedGraph::assemble_loaded(graph, reordered, &parsed))
}

/// Deserialize a prepared graph written by [`write_prepared`] into owned
/// heap storage — the portable path, used where mapping is unavailable.
///
/// Every invariant the format implies is checked — magic/version, policy
/// byte, section layout and checksums, CSR validity of both graphs, the
/// remap table being a permutation consistent with the pair of graphs — and
/// any violation is an [`io::ErrorKind::InvalidData`] error, never a panic.
/// The capacity scale is not stored; it is re-derived by the dataset cache.
pub fn read_prepared<R: Read>(mut reader: R) -> io::Result<PreparedGraph> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    prepared_from_image(&bytes)
}

/// Load a `CNCPREP4` cache file **zero-copy**: the file is `mmap`ed,
/// validated in place (header, alignment, per-section checksums, structural
/// CSR invariants), and the resulting graphs serve their offset/adjacency
/// arrays directly out of the mapping — no heap copy, and the page cache is
/// shared with every other process mapping the same file. The mapping (plus
/// a shared advisory lock that shields the file from [`cache_gc`]) lives as
/// long as any clone of the returned graph.
///
/// On success the calling thread's `mmap_hits` / `bytes_mapped` counters are
/// bumped. Errors — and `Unsupported` on platforms without `mmap` or whose
/// memory layout cannot alias u64 little-endian arrays — leave callers to
/// fall back to [`read_prepared`].
pub fn map_prepared(path: &Path) -> io::Result<PreparedGraph> {
    if !mmap::zero_copy_layout() {
        return Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "zero-copy load needs a 64-bit little-endian platform",
        ));
    }
    let map = MappedFile::open(path)?;
    let parsed = parse_prepared(map.bytes())?;
    let map_csr = |so: &Section, sd: &Section, sr: &Section| -> io::Result<CsrGraph> {
        let offsets: GraphStore<usize> = map.typed_slice::<usize>(so.start, so.count())?.into();
        let dst: GraphStore<u32> = map.typed_slice::<u32>(sd.start, sd.count())?.into();
        let rev: GraphStore<usize> = map.typed_slice::<usize>(sr.start, sr.count())?.into();
        // Structural validation only: the section checksums already verified
        // these are the exact bytes a valid graph serialized to, so the
        // O(|E| log d) symmetry probes of the full check are skipped. The
        // reverse index *is* fully verified (O(|E|), no searches): a wrong
        // index silently mirrors counts to wrong slots, so it gets the same
        // trust bar as the CSR symmetry it stands in for.
        let mut g = CsrGraph::try_from_stores_structural(offsets, dst)
            .map_err(|e| invalid(format!("inconsistent CSR: {e}")))?;
        g.try_attach_reverse_index(rev)
            .map_err(|e| invalid(format!("inconsistent reverse index: {e}")))?;
        Ok(g)
    };
    let graph = map_csr(
        &parsed.sections[0],
        &parsed.sections[1],
        &parsed.sections[2],
    )?;
    let reordered = if parsed.sections.len() == 7 {
        let relabeled = map_csr(
            &parsed.sections[3],
            &parsed.sections[4],
            &parsed.sections[5],
        )?;
        let new_to_old = decode_u32_payload(parsed.sections[6].bytes(map.bytes()));
        Some(build_reordered(&graph, relabeled, new_to_old)?)
    } else {
        None
    };
    let pg = PreparedGraph::assemble_loaded(graph, reordered, &parsed);
    bump(|m| {
        m.mmap_hits += 1;
        m.bytes_mapped += pg.mapped_bytes();
    });
    Ok(pg)
}

/// The on-disk cache directory: `$CNC_CACHE_DIR` when set, `results/cache`
/// (relative to the working directory) otherwise.
pub fn default_cache_dir() -> PathBuf {
    std::env::var_os("CNC_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results").join("cache"))
}

/// The cache file path for a `(dataset, scale, policy)` key under `dir`.
pub fn cache_path(dir: &Path, dataset: Dataset, scale: Scale, policy: ReorderPolicy) -> PathBuf {
    dir.join(format!(
        "{}-{}-{}.prep",
        dataset.name(),
        scale.name(),
        policy.tag()
    ))
}

type CacheKey = (Dataset, Scale, ReorderPolicy);

static MEM_CACHE: OnceLock<Mutex<HashMap<CacheKey, Arc<PreparedGraph>>>> = OnceLock::new();

/// The process-wide prepared form of a dataset analogue.
///
/// First call per `(dataset, scale, policy)` key goes through
/// [`prepared_on_disk`] (warm disk cache → zero preprocessing, zero-copy
/// where the platform allows; cold → build and persist); every later call in
/// the process returns the same `Arc<PreparedGraph>` from memory.
pub fn prepared(dataset: Dataset, scale: Scale, policy: ReorderPolicy) -> Arc<PreparedGraph> {
    cnc_obs::ObsContext::scoped("prepare", || {
        let cache = MEM_CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(hit) = map.get(&(dataset, scale, policy)) {
            bump(|m| m.mem_hits += 1);
            return Arc::clone(hit);
        }
        let pg = prepared_on_disk(&default_cache_dir(), dataset, scale, policy);
        map.insert((dataset, scale, policy), Arc::clone(&pg));
        pg
    })
}

/// Refresh `path`'s modification time — the LRU recency signal [`cache_gc`]
/// orders evictions by. Best-effort: failures (read-only dirs) are ignored.
fn touch(path: &Path) {
    if let Ok(f) = File::options().append(true).open(path) {
        let _ = f.set_modified(SystemTime::now());
    }
}

/// Try to serve `path` from the cache: zero-copy map first, owned read as
/// the fallback. `None` on any failure (missing/stale/corrupt/misaligned
/// file) — the caller rebuilds.
fn load_cached(path: &Path, dataset: Dataset, policy: ReorderPolicy) -> Option<PreparedGraph> {
    let mut pg = map_prepared(path)
        .or_else(|_| File::open(path).and_then(read_prepared))
        .ok()?;
    if pg.policy != policy {
        return None;
    }
    pg.capacity_scale = dataset.capacity_scale(&pg.graph);
    bump(|m| m.disk_hits += 1);
    touch(path);
    Some(pg)
}

/// Monotonic discriminator for write-once temp names: concurrent writers in
/// one process never collide, and the pid isolates across processes.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The prepared form of a dataset analogue backed only by the on-disk cache
/// under `dir` (no process-wide memoization — the entry point for cache
/// management and tests).
///
/// A readable, valid cache file is loaded as-is — zero-copy via `mmap` where
/// the platform allows, owned otherwise; a missing, stale (old format
/// version), corrupt or misaligned file falls back to a fresh build. Cold
/// builds serialize on an exclusive [`CACHE_LOCK_FILE`] `flock`, so when
/// several processes miss simultaneously exactly one builds and writes (via
/// a write-once temp name + atomic rename) and the rest load its file. No
/// error is ever surfaced: the cache is an optimization, not a dependency.
pub fn prepared_on_disk(
    dir: &Path,
    dataset: Dataset,
    scale: Scale,
    policy: ReorderPolicy,
) -> Arc<PreparedGraph> {
    let path = cache_path(dir, dataset, scale, policy);
    if let Some(pg) =
        cnc_obs::ObsContext::scoped("cache_io", || load_cached(&path, dataset, policy))
    {
        return Arc::new(pg);
    }
    // Cold path: become the writer, or wait for whoever is.
    let lock = if fs::create_dir_all(dir).is_ok() {
        FileLock::exclusive(&dir.join(CACHE_LOCK_FILE)).ok()
    } else {
        None
    };
    if lock.is_some() {
        // Re-check under the lock: a concurrent process may have built and
        // renamed the file while we waited. Loading it here is what makes
        // the populate race single-writer.
        if let Some(pg) =
            cnc_obs::ObsContext::scoped("cache_io", || load_cached(&path, dataset, policy))
        {
            return Arc::new(pg);
        }
    }
    // Bounded-memory cold path: when `CNC_PREP_MEM_BYTES` is set (and the
    // platform can map the result back), stream the edges straight into the
    // cache file instead of materializing CSR + reorder + reverse index on
    // the heap. The streamed image is byte-identical to what the in-memory
    // writer below produces, so readers cannot tell which path built it.
    // Any failure falls through to the in-memory build — the cache stays an
    // optimization, never a dependency.
    if lock.is_some() && mmap::zero_copy_layout() {
        if let Some(cfg) = stream::StreamConfig::budgeted_from_env() {
            let streamed = cnc_obs::ObsContext::scoped("cache_io", || {
                let el = dataset.edge_list(scale);
                let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
                let tmp = path.with_extension(format!("tmp-{}-{seq}", std::process::id()));
                let wrote =
                    stream::prepare_pairs_to_file(el.num_vertices, el.iter(), policy, &tmp, &cfg)
                        .and_then(|_| fs::rename(&tmp, &path));
                match wrote {
                    Ok(()) => {
                        bump(|m| {
                            m.graph_builds += 1;
                            if matches!(policy, ReorderPolicy::DegreeDescending) {
                                m.reorders += 1;
                            }
                            m.disk_writes += 1;
                        });
                        if let Some(cap) = env_cache_cap() {
                            let _ = cache_gc(dir, cap);
                        }
                        map_prepared(&path)
                            .or_else(|_| File::open(&path).and_then(read_prepared))
                            .ok()
                    }
                    Err(_) => {
                        let _ = fs::remove_file(&tmp);
                        None
                    }
                }
            });
            if let Some(mut pg) = streamed {
                pg.capacity_scale = dataset.capacity_scale(&pg.graph);
                return Arc::new(pg);
            }
        }
    }
    let el = dataset.edge_list(scale);
    let graph = cnc_obs::ObsContext::scoped("csr_build", || CsrGraph::from_edge_list_parallel(&el));
    bump(|m| m.graph_builds += 1);
    let mut pg = PreparedGraph::finish(graph, policy, 1.0);
    pg.capacity_scale = dataset.capacity_scale(&pg.graph);
    if lock.is_some() {
        cnc_obs::ObsContext::scoped("cache_io", || {
            let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
            let tmp = path.with_extension(format!("tmp-{}-{seq}", std::process::id()));
            let wrote = File::create(&tmp)
                .and_then(|f| write_prepared(&pg, f))
                .and_then(|()| fs::rename(&tmp, &path));
            match wrote {
                Ok(()) => {
                    bump(|m| m.disk_writes += 1);
                    // Automatic size cap: trim least-recently-used entries
                    // while we still hold the writer lock.
                    if let Some(cap) = env_cache_cap() {
                        let _ = cache_gc(dir, cap);
                    }
                }
                Err(_) => {
                    let _ = fs::remove_file(&tmp);
                }
            }
        });
    }
    Arc::new(pg)
}

fn env_cache_cap() -> Option<u64> {
    std::env::var(CACHE_MAX_BYTES_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
}

/// One `.prep` file in a cache directory.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Full path of the cache file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Last-used time (refreshed on every warm hit; the LRU key).
    pub modified: SystemTime,
}

/// The `.prep` files under `dir`, most recently used first. Errors only if
/// the directory itself cannot be read.
pub fn cache_entries(dir: &Path) -> io::Result<Vec<CacheEntry>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("prep") {
            continue;
        }
        let Ok(meta) = entry.metadata() else {
            continue; // vanished concurrently
        };
        if !meta.is_file() {
            continue;
        }
        out.push(CacheEntry {
            bytes: meta.len(),
            modified: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            path,
        });
    }
    out.sort_by(|a, b| {
        b.modified
            .cmp(&a.modified)
            .then_with(|| a.path.cmp(&b.path))
    });
    Ok(out)
}

/// What a [`cache_gc`] / [`cache_clear`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcOutcome {
    /// Files left in place.
    pub kept: usize,
    /// Bytes left in place.
    pub kept_bytes: u64,
    /// Files evicted.
    pub evicted: usize,
    /// Bytes evicted.
    pub evicted_bytes: u64,
    /// Files that were over budget but skipped because a reader (live
    /// mapping) or writer holds their lock.
    pub skipped_locked: usize,
}

/// Evict least-recently-used cache files until the directory holds at most
/// `max_bytes` of `.prep` data.
///
/// A file whose advisory lock cannot be taken — a live [`map_prepared`]
/// reader holds a shared lock for the lifetime of its mapping — is never
/// evicted; it is skipped and counted in
/// [`GcOutcome::skipped_locked`].
pub fn cache_gc(dir: &Path, max_bytes: u64) -> io::Result<GcOutcome> {
    let entries = cache_entries(dir)?;
    let mut out = GcOutcome::default();
    let mut total: u64 = entries.iter().map(|e| e.bytes).sum();
    let mut evicted = vec![false; entries.len()];
    // Newest-first order: walk from the old end while over budget.
    for (i, e) in entries.iter().enumerate().rev() {
        if total <= max_bytes {
            break;
        }
        match FileLock::try_exclusive(&e.path) {
            Ok(Some(_guard)) => {
                if fs::remove_file(&e.path).is_ok() {
                    evicted[i] = true;
                    out.evicted += 1;
                    out.evicted_bytes += e.bytes;
                    total -= e.bytes;
                }
            }
            _ => out.skipped_locked += 1,
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if !evicted[i] {
            out.kept += 1;
            out.kept_bytes += e.bytes;
        }
    }
    Ok(out)
}

/// Remove every evictable cache file under `dir` (equivalent to
/// [`cache_gc`] with a zero budget: reader-locked files survive).
pub fn cache_clear(dir: &Path) -> io::Result<GcOutcome> {
    cache_gc(dir, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::reorder::is_degree_descending;

    #[test]
    fn pipeline_produces_reorder_and_stats() {
        let el = generators::hub_web(300, 6.0, 2, 0.4, 3);
        let before = metrics();
        let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::DegreeDescending);
        let d = metrics().since(&before);
        assert_eq!(d.graph_builds, 1);
        assert_eq!(d.reorders, 1);
        let r = pg.reordered().expect("policy computed a reorder");
        assert!(is_degree_descending(&r.graph));
        assert_eq!(pg.stats().num_vertices, pg.graph().num_vertices());
        assert!(pg.skew_pct() >= 0.0);
        assert_eq!(pg.capacity_scale(), 1.0);
        assert_eq!(pg.mapped_bytes(), 0, "fresh builds are heap-backed");
        // Execution graph selection.
        assert_eq!(pg.execution_graph(true), &r.graph);
        assert_eq!(pg.execution_graph(false), pg.graph());
    }

    #[test]
    fn policy_none_skips_reorder() {
        let el = generators::gnm(100, 300, 1);
        let before = metrics();
        let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::None);
        let d = metrics().since(&before);
        assert_eq!(d.reorders, 0);
        assert!(pg.reordered().is_none());
        assert_eq!(pg.execution_graph(true), pg.graph(), "no tables → original");
    }

    #[test]
    fn serialization_round_trips() {
        for policy in [ReorderPolicy::None, ReorderPolicy::DegreeDescending] {
            let el = generators::chung_lu(200, 8.0, 2.3, 5);
            let pg = PreparedGraph::from_edge_list(&el, policy);
            let mut buf = Vec::new();
            write_prepared(&pg, &mut buf).unwrap();
            assert_eq!(buf.len() % ALIGN, 0, "file is a whole number of blocks");
            let back = read_prepared(buf.as_slice()).unwrap();
            assert_eq!(back.graph(), pg.graph());
            assert_eq!(back.policy(), policy);
            // The reverse-edge index survives the trip on every graph.
            assert_eq!(
                back.graph().reverse_index().expect("rev persisted"),
                pg.graph().reverse_index().expect("rev built")
            );
            if let Some(r) = back.reordered() {
                assert!(r.graph.has_reverse_index());
            }
            match (back.reordered(), pg.reordered()) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.graph, b.graph);
                    assert_eq!(a.new_to_old, b.new_to_old);
                    assert_eq!(a.old_to_new, b.old_to_new);
                }
                other => panic!("reorder tables lost in round trip: {other:?}"),
            }
        }
    }

    #[test]
    fn sections_are_aligned() {
        let el = generators::gnm(64, 100, 3);
        let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::DegreeDescending);
        let mut buf = Vec::new();
        write_prepared(&pg, &mut buf).unwrap();
        let parsed = parse_prepared(&buf).unwrap();
        let sections = &parsed.sections;
        assert_eq!(sections.len(), 7);
        for (i, s) in sections.iter().enumerate() {
            assert_eq!(s.start % ALIGN, 0, "payload of section {i} misaligned");
        }
    }

    #[test]
    fn deserialization_rejects_tampering() {
        let el = generators::gnm(50, 150, 2);
        let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::DegreeDescending);
        let mut buf = Vec::new();
        write_prepared(&pg, &mut buf).unwrap();
        // Stale version byte.
        let mut stale = buf.clone();
        stale[7] = b'1';
        assert!(read_prepared(stale.as_slice()).is_err());
        // Unknown policy byte.
        let mut bad_policy = buf.clone();
        bad_policy[8] = 7;
        assert!(read_prepared(bad_policy.as_slice()).is_err());
        // A flipped payload byte fails its section checksum.
        let mut flipped = buf.clone();
        let at = HEADER_LEN + SECTION_HEADER_LEN + 1;
        flipped[at] ^= 0xff;
        let err = read_prepared(flipped.as_slice()).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Truncation anywhere must error, never panic.
        for cut in [9, HEADER_LEN, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_prepared(buf[..cut].to_vec().as_slice()).is_err(),
                "cut={cut}"
            );
        }
        // Trailing garbage is rejected too.
        let mut padded = buf.clone();
        padded.extend_from_slice(&[0u8; ALIGN]);
        assert!(read_prepared(padded.as_slice()).is_err());
    }

    #[test]
    fn tampered_reverse_index_is_rejected() {
        // Craft an image whose rev section passes its checksum but encodes a
        // wrong permutation: swap two rev entries and re-checksum. The O(|E|)
        // attach validation must catch it.
        let el = generators::gnm(40, 90, 9);
        let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::None);
        let mut buf = Vec::new();
        write_prepared(&pg, &mut buf).unwrap();
        let parsed = parse_prepared(&buf).unwrap();
        let rev = &parsed.sections[2];
        assert_eq!(rev.elem_width, 8);
        let (a, b) = (rev.start, rev.start + 8);
        for i in 0..8 {
            buf.swap(a + i, b + i);
        }
        let fixed = checksum(&buf[rev.start..rev.start + rev.payload_len]);
        let cksum_at = rev.start - SECTION_HEADER_LEN + 8;
        buf[cksum_at..cksum_at + 8].copy_from_slice(&fixed.to_le_bytes());
        let err = read_prepared(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("reverse index"), "{err}");
    }

    #[test]
    fn stale_format_version_rebuilds_silently() {
        // A CNCPREP3-era file (old magic digit) must be treated as a cache
        // miss: prepared_on_disk rebuilds and overwrites it, surfacing no
        // error. Exercised end to end through the disk-cache entry point.
        let dir = std::env::temp_dir().join(format!(
            "cnc-prep-stale-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let (dataset, scale, policy) = (Dataset::OrS, Scale::Tiny, ReorderPolicy::DegreeDescending);
        let fresh = prepared_on_disk(&dir, dataset, scale, policy);
        let path = cache_path(&dir, dataset, scale, policy);
        let mut bytes = fs::read(&path).unwrap();
        bytes[7] = b'3'; // CNCPREP4 → CNCPREP3
        fs::write(&path, &bytes).unwrap();
        let before = metrics();
        let back = prepared_on_disk(&dir, dataset, scale, policy);
        let d = metrics().since(&before);
        assert_eq!(d.disk_hits, 0, "stale file must not count as a hit");
        assert_eq!(d.graph_builds, 1, "stale file must trigger a rebuild");
        assert_eq!(d.disk_writes, 1, "rebuild must refresh the cache file");
        assert_eq!(back.graph(), fresh.graph());
        assert!(back.graph().has_reverse_index());
        assert_eq!(&fs::read(&path).unwrap()[..8], PREPARED_MAGIC);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_display_format() {
        let m = PrepareMetrics {
            graph_builds: 1,
            reorders: 2,
            mem_hits: 3,
            disk_hits: 4,
            disk_writes: 5,
            mmap_hits: 6,
            bytes_mapped: 7,
            spill_runs: 8,
            spill_bytes: 9,
            stream_chunks: 10,
            peak_resident_bytes: 11,
        };
        assert_eq!(
            m.to_string(),
            "graph_builds=1 reorders=2 mem_hits=3 disk_hits=4 disk_writes=5 mmap_hits=6 bytes_mapped=7 spill_runs=8 spill_bytes=9 stream_chunks=10 peak_resident_bytes=11"
        );
    }

    #[test]
    fn process_cache_returns_same_arc() {
        // Use the in-memory layer through `prepared` twice; second call must
        // be a mem hit sharing the same allocation. Point the disk layer at
        // a throwaway directory so this test does not touch results/cache.
        let dir = std::env::temp_dir().join(format!("cnc-prep-mem-{}", std::process::id()));
        std::env::set_var("CNC_CACHE_DIR", &dir);
        let a = prepared(Dataset::LjS, Scale::Tiny, ReorderPolicy::None);
        let before = metrics();
        let b = prepared(Dataset::LjS, Scale::Tiny, ReorderPolicy::None);
        let d = metrics().since(&before);
        std::env::remove_var("CNC_CACHE_DIR");
        let _ = fs::remove_dir_all(&dir);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(d.mem_hits, 1);
        assert_eq!(d.graph_builds, 0);
        assert_eq!(d.reorders, 0);
    }
}
