//! Out-of-core, bounded-memory graph preparation.
//!
//! Every other path from an edge list to a [`crate::PreparedGraph`] buffers
//! the full `Vec<(u32, u32)>` — O(|E|) heap — before the CSR is built. This
//! module is the billion-edge alternative: a streaming pipeline whose peak
//! resident memory is **O(|V| + chunk)** regardless of |E|:
//!
//! ```text
//! SNAP text / CNCCSR01 binary / pair iterator
//!   → fixed-size chunk reader                      (chunk bytes)
//!   → canonicalize (drop loops, orient min ≤ max)
//!   → external sort: budgeted buffer → spill runs  (budget bytes)
//!   → k-way merge, cross-run dedup (re-iterable)
//!   → pass 1: degree count                         (|V| words)
//!   → pass 2: direct placement                     (|V| cursor words)
//!   → CNCPREP4 sections written straight into the
//!     mmap'd cache file (offsets / dst / rev, plus
//!     the relabeled triple + remap table when the
//!     policy reorders)
//! ```
//!
//! The memory budget comes from [`PREP_MEM_BYTES_ENV`] (or an explicit
//! [`StreamConfig`]); when the canonical edges outgrow it, sorted
//! deduplicated runs spill to disk in the `CNCRUN01` format and are merged
//! back — twice, since CSR construction needs a degree pass before the
//! placement pass. Because the merged stream is globally sorted, scattering
//! both directions through per-vertex cursors emits every neighbor run
//! already ascending (for vertex `w`, the backward neighbors `u < w` arrive
//! first in `u` order, then the forward neighbors in `v` order, all larger
//! than `w`), so no per-run sort is ever needed and the output is
//! **byte-identical** to [`crate::prepare::write_prepared`] serializing the
//! in-memory builder's result — the property the differential test suite
//! pins on every dataset analogue.
//!
//! Work is accounted in [`crate::prepare::PrepareMetrics`] (`spill_runs`,
//! `spill_bytes`, `stream_chunks`, `peak_resident_bytes`) and mirrored to
//! the `cnc-obs` counters of the same names. All input-dependent failures —
//! malformed text, truncated or vanished spill runs, unwritable output — are
//! typed [`io::Error`]s, never panics.

use std::collections::BinaryHeap;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::csr::CsrGraph;
use crate::io::{parse_edge_line, read_exact_vec};
use crate::mmap::MappedFileMut;
use crate::prepare::{
    align_up, bump, checksum, ReorderPolicy, HEADER_LEN, PREPARED_MAGIC, SECTION_HEADER_LEN,
};
use crate::stats::SKEW_THRESHOLD;

/// Environment variable holding the preparation memory budget in bytes.
/// When set, the cache-miss path of [`crate::prepare::prepared_on_disk`] and
/// [`crate::datasets::Dataset::build`] route through this module instead of
/// the in-memory builder.
pub const PREP_MEM_BYTES_ENV: &str = "CNC_PREP_MEM_BYTES";

/// Magic header of a spill run file: sorted, deduplicated canonical pairs.
const RUN_MAGIC: &[u8; 8] = b"CNCRUN01";

/// Smallest sort buffer the budget can clamp down to (pairs). A budget
/// smaller than one chunk still works — it just spills often.
const MIN_BUFFER_PAIRS: usize = 512;

/// Sort-buffer size when no budget is configured (2^26 pairs = 512 MiB).
const DEFAULT_BUFFER_PAIRS: usize = 1 << 26;

/// Input chunk bounds: readers pull fixed-size chunks in `[4 KiB, 1 MiB]`,
/// shrunk when the budget is tighter than the default chunk.
const MIN_CHUNK_BYTES: usize = 4096;
const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

/// Tuning knobs of the streaming pipeline.
#[derive(Debug, Clone, Default)]
pub struct StreamConfig {
    /// Memory budget in bytes for the external sort buffer (and, scaled
    /// down, the input chunk and merge reader buffers). `None` uses the
    /// large in-memory default and effectively never spills.
    pub mem_budget: Option<u64>,
    /// Directory for spill runs; the system temp directory when `None`.
    /// Each build creates (and removes) its own unique subdirectory.
    pub spill_dir: Option<PathBuf>,
}

impl StreamConfig {
    /// The configuration [`PREP_MEM_BYTES_ENV`] describes: `Some` with that
    /// budget when the variable holds a positive integer, `None` otherwise.
    pub fn budgeted_from_env() -> Option<Self> {
        let budget = std::env::var(PREP_MEM_BYTES_ENV)
            .ok()?
            .trim()
            .parse::<u64>()
            .ok()?;
        if budget == 0 {
            return None;
        }
        Some(Self {
            mem_budget: Some(budget),
            spill_dir: None,
        })
    }

    fn buffer_pairs(&self) -> usize {
        match self.mem_budget {
            Some(b) => usize::try_from(b / 8)
                .unwrap_or(usize::MAX)
                .clamp(MIN_BUFFER_PAIRS, DEFAULT_BUFFER_PAIRS),
            None => DEFAULT_BUFFER_PAIRS,
        }
    }

    fn chunk_bytes(&self) -> usize {
        match self.mem_budget {
            Some(b) => usize::try_from(b / 4)
                .unwrap_or(usize::MAX)
                .clamp(MIN_CHUNK_BYTES, DEFAULT_CHUNK_BYTES),
            None => DEFAULT_CHUNK_BYTES,
        }
    }

    fn merge_reader_bytes(&self, runs: usize) -> usize {
        match self.mem_budget {
            Some(b) => usize::try_from(b / (4 * runs.max(1) as u64))
                .unwrap_or(usize::MAX)
                .clamp(MIN_CHUNK_BYTES, 64 * 1024),
            None => 64 * 1024,
        }
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// What a streamed preparation did, returned by the `prepare_*` entry
/// points and reported by the `cnc prepare` subcommand.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamSummary {
    /// Vertices of the prepared graph (max of the declared count and the
    /// largest id seen + 1).
    pub num_vertices: usize,
    /// Directed edge slots written (2 × unique undirected edges).
    pub num_directed_edges: usize,
    /// External-sort runs spilled to disk (0 when the input fit the budget).
    pub spill_runs: u64,
    /// Bytes written to spill run files.
    pub spill_bytes: u64,
    /// Fixed-size input chunks consumed.
    pub stream_chunks: u64,
    /// Peak accounted heap bytes of the build (sort buffer, degree/cursor
    /// arrays, merge readers, relabel scratch — everything the pipeline
    /// allocates that scales with the input).
    pub peak_resident_bytes: u64,
    /// Size of the finished `CNCPREP4` file.
    pub file_bytes: u64,
}

/// Self-accounted resident-memory high-water mark. The pipeline's bound is
/// analytic (it knows every allocation it makes), so the tracker simply
/// records the maximum of the concurrent totals it is told about.
#[derive(Debug, Default, Clone, Copy)]
struct Peak {
    peak: u64,
}

impl Peak {
    fn observe(&mut self, concurrent_bytes: u64) {
        self.peak = self.peak.max(concurrent_bytes);
    }
}

// ---------------------------------------------------------------------------
// Chunked edge sources.
// ---------------------------------------------------------------------------

/// A source of raw `(u, v)` pairs read in fixed-size chunks.
trait EdgeSource {
    /// The next raw pair, `None` at end of input.
    fn next_pair(&mut self) -> io::Result<Option<(u32, u32)>>;
    /// Chunks consumed so far.
    fn chunks(&self) -> u64;
    /// Vertex count declared by the source itself (0 when unknown — text
    /// files infer it from the largest id).
    fn declared_vertices(&self) -> usize;
    /// Bytes of buffer this source holds resident.
    fn resident_bytes(&self) -> u64;
}

/// SNAP text source: fixed-size chunk reads with partial-line carry, exact
/// line numbers across chunk boundaries, and the same per-line parser (and
/// diagnostics) as [`crate::io::read_edge_list`].
struct TextSource<R: Read> {
    reader: R,
    buf: Vec<u8>,
    /// Unconsumed range of `buf` is `pos..buf.len()`.
    pos: usize,
    chunk_bytes: usize,
    eof: bool,
    chunks: u64,
    lineno: u64,
}

impl<R: Read> TextSource<R> {
    fn new(reader: R, chunk_bytes: usize) -> Self {
        Self {
            reader,
            buf: Vec::new(),
            pos: 0,
            chunk_bytes,
            eof: false,
            chunks: 0,
            lineno: 0,
        }
    }

    /// Compact the consumed prefix away and read one more chunk.
    fn refill(&mut self) -> io::Result<()> {
        self.buf.drain(..self.pos);
        self.pos = 0;
        let old_len = self.buf.len();
        self.buf.resize(old_len + self.chunk_bytes, 0);
        let mut filled = old_len;
        // Loop: Read::read may return short counts without being at EOF.
        while filled < self.buf.len() {
            let got = self.reader.read(&mut self.buf[filled..])?;
            if got == 0 {
                self.eof = true;
                break;
            }
            filled += got;
        }
        self.buf.truncate(filled);
        if filled > old_len {
            self.chunks += 1;
        }
        Ok(())
    }

    /// The next complete line (without terminator), refilling as needed. At
    /// EOF a trailing unterminated line is still yielded.
    fn next_line(&mut self) -> io::Result<Option<(u64, std::ops::Range<usize>)>> {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let start = self.pos;
                self.pos += nl + 1;
                self.lineno += 1;
                return Ok(Some((self.lineno, start..start + nl)));
            }
            if self.eof {
                if self.pos < self.buf.len() {
                    let start = self.pos;
                    self.pos = self.buf.len();
                    self.lineno += 1;
                    return Ok(Some((self.lineno, start..self.buf.len())));
                }
                return Ok(None);
            }
            self.refill()?;
        }
    }
}

impl<R: Read> EdgeSource for TextSource<R> {
    fn next_pair(&mut self) -> io::Result<Option<(u32, u32)>> {
        while let Some((lineno, range)) = self.next_line()? {
            let line = std::str::from_utf8(&self.buf[range])
                .map_err(|e| invalid(format!("line {lineno}: not valid UTF-8 ({e})")))?;
            if let Some(pair) = parse_edge_line(lineno, line)? {
                return Ok(Some(pair));
            }
        }
        Ok(None)
    }

    fn chunks(&self) -> u64 {
        self.chunks
    }

    fn declared_vertices(&self) -> usize {
        0
    }

    fn resident_bytes(&self) -> u64 {
        (self.chunk_bytes * 2) as u64
    }
}

/// Binary `CNCCSR01` source: holds the O(|V|) offset array, streams the
/// adjacency array in chunks, and emits each undirected edge once (the
/// `u < v` direction of the symmetric CSR).
struct BinaryCsrSource<R: Read> {
    reader: R,
    offsets: Vec<u64>,
    num_vertices: usize,
    /// Next adjacency slot to consume and its owning source vertex.
    eid: u64,
    src: u32,
    total_dst: u64,
    buf: Vec<u8>,
    pos: usize,
    chunk_bytes: usize,
    chunks: u64,
}

impl<R: Read> BinaryCsrSource<R> {
    fn new(mut reader: R, chunk_bytes: usize) -> io::Result<Self> {
        let mut header = [0u8; 24];
        reader.read_exact(&mut header)?;
        if &header[..8] != b"CNCCSR01" {
            return Err(invalid("bad magic: not a CNCCSR01 file"));
        }
        let n = u64::from_le_bytes(header[8..16].try_into().expect("8-byte range"));
        let m = u64::from_le_bytes(header[16..24].try_into().expect("8-byte range"));
        let n_usize = usize::try_from(n).map_err(|_| invalid("|V| exceeds platform usize"))?;
        let raw = read_exact_vec(
            &mut reader,
            n.saturating_add(1).saturating_mul(8),
            "offsets",
        )?;
        let offsets: Vec<u64> = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        if offsets.last() != Some(&m) {
            return Err(invalid("CNCCSR01 offsets endpoint does not match |dst|"));
        }
        Ok(Self {
            reader,
            offsets,
            num_vertices: n_usize,
            eid: 0,
            src: 0,
            total_dst: m,
            buf: Vec::new(),
            pos: 0,
            chunk_bytes,
            chunks: 1, // header + offsets
        })
    }

    fn next_dst(&mut self) -> io::Result<Option<u32>> {
        if self.eid >= self.total_dst {
            return Ok(None);
        }
        if self.pos + 4 > self.buf.len() {
            let carry = self.buf.len() - self.pos;
            self.buf.drain(..self.pos);
            self.pos = 0;
            let want = self.chunk_bytes.max(4);
            self.buf.resize(carry + want, 0);
            let mut filled = carry;
            while filled < self.buf.len() {
                let got = self.reader.read(&mut self.buf[filled..])?;
                if got == 0 {
                    break;
                }
                filled += got;
            }
            self.buf.truncate(filled);
            self.chunks += 1;
            if self.buf.len() < 4 {
                return Err(invalid(format!(
                    "truncated CNCCSR01 adjacency: slot {} of {} missing",
                    self.eid, self.total_dst
                )));
            }
        }
        let v = u32::from_le_bytes(
            self.buf[self.pos..self.pos + 4]
                .try_into()
                .expect("4-byte range"),
        );
        self.pos += 4;
        Ok(Some(v))
    }
}

impl<R: Read> EdgeSource for BinaryCsrSource<R> {
    fn next_pair(&mut self) -> io::Result<Option<(u32, u32)>> {
        loop {
            let Some(v) = self.next_dst()? else {
                return Ok(None);
            };
            // Advance the source cursor past empty ranges to the vertex
            // owning this adjacency slot.
            while (self.src as usize) < self.num_vertices
                && self.offsets[self.src as usize + 1] <= self.eid
            {
                self.src += 1;
            }
            let u = self.src;
            self.eid += 1;
            // Symmetric CSR lists each undirected edge twice; forward the
            // canonical direction only. Self-loops and out-of-order ids in a
            // corrupt file are handled downstream (dropped / n grows).
            if u < v {
                return Ok(Some((u, v)));
            }
        }
    }

    fn chunks(&self) -> u64 {
        self.chunks
    }

    fn declared_vertices(&self) -> usize {
        self.num_vertices
    }

    fn resident_bytes(&self) -> u64 {
        (self.offsets.len() * 8 + self.chunk_bytes * 2) as u64
    }
}

/// Pair-iterator source (dataset generators): the iterator itself is the
/// chunking, so `chunks` stays 0.
struct PairSource<I> {
    iter: I,
    declared: usize,
}

impl<I: Iterator<Item = (u32, u32)>> EdgeSource for PairSource<I> {
    fn next_pair(&mut self) -> io::Result<Option<(u32, u32)>> {
        Ok(self.iter.next())
    }

    fn chunks(&self) -> u64 {
        0
    }

    fn declared_vertices(&self) -> usize {
        self.declared
    }

    fn resident_bytes(&self) -> u64 {
        0
    }
}

// ---------------------------------------------------------------------------
// External sort: budgeted buffer → spill runs → re-iterable sorted merge.
// ---------------------------------------------------------------------------

/// Monotonic discriminator so concurrent builds in one process never share a
/// spill directory.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// Budgeted external sorter for canonical undirected edges.
///
/// [`push`](Self::push) canonicalizes raw pairs (drops self-loops, orients
/// `min ≤ max`) into a buffer capped by the memory budget; a full buffer is
/// sorted, deduplicated, and spilled as a `CNCRUN01` run file.
/// [`into_sorted`](Self::into_sorted) produces a [`SortedEdges`] that can be
/// iterated multiple times — the two-pass CSR build needs a degree pass and
/// a placement pass over the same globally sorted, deduplicated stream.
#[derive(Debug)]
pub struct ExternalSorter {
    buf: Vec<(u32, u32)>,
    cap: usize,
    dir: PathBuf,
    /// Whether `dir` was created by (and should be removed with) the sorter.
    owns_dir: bool,
    runs: Vec<PathBuf>,
    spill_bytes: u64,
    max_id_plus1: usize,
    config: StreamConfig,
}

impl ExternalSorter {
    /// A sorter spilling under `config.spill_dir` (the system temp directory
    /// when unset); the unique per-build subdirectory is created eagerly so
    /// an unwritable spill location fails fast.
    pub fn new(config: &StreamConfig) -> io::Result<Self> {
        let base = config.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "cnc-spill-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir)?;
        let cap = config.buffer_pairs();
        Ok(Self {
            buf: Vec::new(),
            cap,
            dir,
            owns_dir: true,
            runs: Vec::new(),
            spill_bytes: 0,
            max_id_plus1: 0,
            config: config.clone(),
        })
    }

    /// The directory this sorter spills runs into.
    pub fn spill_dir(&self) -> &Path {
        &self.dir
    }

    /// Number of runs spilled so far.
    pub fn spill_runs(&self) -> u64 {
        self.runs.len() as u64
    }

    /// Add one raw pair. Ids feed the inferred vertex count (self-loops
    /// included, matching [`crate::EdgeList::push`]); the loop edge itself
    /// is dropped.
    pub fn push(&mut self, u: u32, v: u32) -> io::Result<()> {
        self.max_id_plus1 = self.max_id_plus1.max(u.max(v) as usize + 1);
        if u == v {
            return Ok(());
        }
        let pair = if u < v { (u, v) } else { (v, u) };
        if self.buf.len() >= self.cap {
            self.spill()?;
        }
        self.buf.push(pair);
        Ok(())
    }

    fn spill(&mut self) -> io::Result<()> {
        self.buf.sort_unstable();
        self.buf.dedup();
        let path = self.dir.join(format!("run-{}.cncrun", self.runs.len()));
        let file = File::create(&path)?;
        let mut w = BufWriter::new(file);
        w.write_all(RUN_MAGIC)?;
        w.write_all(&(self.buf.len() as u64).to_le_bytes())?;
        for &(u, v) in &self.buf {
            w.write_all(&u.to_le_bytes())?;
            w.write_all(&v.to_le_bytes())?;
        }
        w.flush()?;
        let bytes = 16 + self.buf.len() as u64 * 8;
        self.spill_bytes += bytes;
        self.runs.push(path);
        self.buf.clear();
        bump(|m| {
            m.spill_runs += 1;
            m.spill_bytes += bytes;
        });
        Ok(())
    }

    /// Finish ingestion: the sorted, deduplicated edge stream plus the
    /// inferred vertex bound. When nothing spilled, the stream is served
    /// from the (sorted, deduplicated) buffer; otherwise the final partial
    /// buffer becomes the last run and every iteration is a k-way file
    /// merge with cross-run deduplication.
    pub fn into_sorted(mut self) -> io::Result<SortedEdges> {
        if self.runs.is_empty() {
            self.buf.sort_unstable();
            self.buf.dedup();
            let buf = std::mem::take(&mut self.buf);
            return Ok(SortedEdges {
                mode: SortedMode::Memory(buf),
                dir: self.take_dir(),
                spill_bytes: self.spill_bytes,
                max_id_plus1: self.max_id_plus1,
            });
        }
        if !self.buf.is_empty() {
            self.spill()?;
        }
        let runs = std::mem::take(&mut self.runs);
        let reader_bytes = self.config.merge_reader_bytes(runs.len());
        Ok(SortedEdges {
            mode: SortedMode::Runs(runs, reader_bytes),
            dir: self.take_dir(),
            spill_bytes: self.spill_bytes,
            max_id_plus1: self.max_id_plus1,
        })
    }

    fn take_dir(&mut self) -> Option<PathBuf> {
        if self.owns_dir {
            self.owns_dir = false;
            Some(self.dir.clone())
        } else {
            None
        }
    }
}

impl Drop for ExternalSorter {
    fn drop(&mut self) {
        if self.owns_dir {
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

#[derive(Debug)]
enum SortedMode {
    Memory(Vec<(u32, u32)>),
    /// Run files + per-run reader buffer size.
    Runs(Vec<PathBuf>, usize),
}

/// The output of an [`ExternalSorter`]: a globally sorted, deduplicated
/// stream of canonical edges that can be iterated any number of times.
/// Owns the spill directory; dropping it removes the runs.
#[derive(Debug)]
pub struct SortedEdges {
    mode: SortedMode,
    dir: Option<PathBuf>,
    spill_bytes: u64,
    max_id_plus1: usize,
}

impl Drop for SortedEdges {
    fn drop(&mut self) {
        if let Some(dir) = &self.dir {
            let _ = fs::remove_dir_all(dir);
        }
    }
}

impl SortedEdges {
    /// Largest raw id seen + 1 (self-loop endpoints included).
    pub fn max_id_plus1(&self) -> usize {
        self.max_id_plus1
    }

    /// Number of spill runs backing the stream (0 in memory mode).
    pub fn spill_runs(&self) -> u64 {
        match &self.mode {
            SortedMode::Memory(_) => 0,
            SortedMode::Runs(runs, _) => runs.len() as u64,
        }
    }

    /// Total bytes written to spill runs.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes
    }

    /// Bytes the stream holds resident: the in-memory buffer, or the merge
    /// readers' buffers.
    pub fn resident_bytes(&self) -> u64 {
        match &self.mode {
            SortedMode::Memory(buf) => (buf.capacity() * 8) as u64,
            SortedMode::Runs(runs, reader_bytes) => (runs.len() * reader_bytes) as u64,
        }
    }

    /// Begin one pass over the sorted, deduplicated edges. Fails with a
    /// typed error (never a panic) if a spill run has vanished or is
    /// malformed.
    pub fn iter(&self) -> io::Result<SortedIter<'_>> {
        match &self.mode {
            SortedMode::Memory(buf) => Ok(SortedIter {
                inner: SortedIterInner::Memory(buf.iter()),
            }),
            SortedMode::Runs(runs, reader_bytes) => {
                let mut readers = Vec::with_capacity(runs.len());
                for path in runs {
                    readers.push(RunReader::open(path, *reader_bytes)?);
                }
                let mut heap = BinaryHeap::with_capacity(readers.len());
                for (i, r) in readers.iter_mut().enumerate() {
                    if let Some(pair) = r.next()? {
                        heap.push(std::cmp::Reverse((pair, i)));
                    }
                }
                Ok(SortedIter {
                    inner: SortedIterInner::Merge {
                        readers,
                        heap,
                        last: None,
                    },
                })
            }
        }
    }
}

/// One pass over a [`SortedEdges`] stream.
#[derive(Debug)]
pub struct SortedIter<'a> {
    inner: SortedIterInner<'a>,
}

#[derive(Debug)]
enum SortedIterInner<'a> {
    Memory(std::slice::Iter<'a, (u32, u32)>),
    Merge {
        readers: Vec<RunReader>,
        heap: BinaryHeap<std::cmp::Reverse<((u32, u32), usize)>>,
        last: Option<(u32, u32)>,
    },
}

impl Iterator for SortedIter<'_> {
    type Item = io::Result<(u32, u32)>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            SortedIterInner::Memory(it) => it.next().map(|&p| Ok(p)),
            SortedIterInner::Merge {
                readers,
                heap,
                last,
            } => loop {
                let std::cmp::Reverse((pair, i)) = heap.pop()?;
                match readers[i].next() {
                    Ok(Some(next)) => heap.push(std::cmp::Reverse((next, i))),
                    Ok(None) => {}
                    Err(e) => return Some(Err(e)),
                }
                // Runs are deduplicated individually; duplicates across runs
                // surface here as equal consecutive pops.
                if *last == Some(pair) {
                    continue;
                }
                *last = Some(pair);
                return Some(Ok(pair));
            },
        }
    }
}

/// Reader over one `CNCRUN01` spill run. Truncation — fewer pairs on disk
/// than the header promised — is an [`io::ErrorKind::InvalidData`] error.
#[derive(Debug)]
struct RunReader {
    reader: BufReader<File>,
    remaining: u64,
    path: PathBuf,
}

impl RunReader {
    fn open(path: &Path, reader_bytes: usize) -> io::Result<Self> {
        let file = File::open(path)?;
        let mut reader = BufReader::with_capacity(reader_bytes, file);
        let mut header = [0u8; 16];
        reader
            .read_exact(&mut header)
            .map_err(|e| invalid(format!("truncated spill run {}: {e}", path.display())))?;
        if &header[..8] != RUN_MAGIC {
            return Err(invalid(format!(
                "bad magic in spill run {}",
                path.display()
            )));
        }
        let remaining = u64::from_le_bytes(header[8..16].try_into().expect("8-byte range"));
        Ok(Self {
            reader,
            remaining,
            path: path.to_path_buf(),
        })
    }

    fn next(&mut self) -> io::Result<Option<(u32, u32)>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let mut raw = [0u8; 8];
        self.reader.read_exact(&mut raw).map_err(|e| {
            invalid(format!(
                "truncated spill run {}: {} pairs missing ({e})",
                self.path.display(),
                self.remaining
            ))
        })?;
        self.remaining -= 1;
        Ok(Some((
            u32::from_le_bytes(raw[..4].try_into().expect("4-byte range")),
            u32::from_le_bytes(raw[4..].try_into().expect("4-byte range")),
        )))
    }
}

// ---------------------------------------------------------------------------
// Two-pass CNCPREP4 assembly into a write-mode mapping.
// ---------------------------------------------------------------------------

fn put_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn put_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn read_u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4-byte range"))
}

/// Placement of one section inside the file.
#[derive(Debug, Clone, Copy)]
struct SectionPlan {
    header_at: usize,
    payload_at: usize,
    payload_len: usize,
    elem_width: u64,
}

fn plan_sections(lens_widths: &[(usize, u64)]) -> (Vec<SectionPlan>, usize) {
    let mut pos = HEADER_LEN;
    let mut plans = Vec::with_capacity(lens_widths.len());
    for &(payload_len, elem_width) in lens_widths {
        let header_at = pos;
        let payload_at = pos + SECTION_HEADER_LEN;
        plans.push(SectionPlan {
            header_at,
            payload_at,
            payload_len,
            elem_width,
        });
        pos = align_up(payload_at + payload_len);
    }
    (plans, pos)
}

/// Degree-count pass: one merge iteration.
fn degree_pass(sorted: &SortedEdges, n: usize) -> io::Result<(Vec<u32>, usize)> {
    let mut deg = vec![0u32; n];
    let mut unique = 0usize;
    for pair in sorted.iter()? {
        let (u, v) = pair?;
        deg[u as usize] += 1;
        deg[v as usize] += 1;
        unique += 1;
    }
    Ok((deg, unique))
}

/// Replicate [`crate::stats::skew_percentage`] over the mapped sections —
/// the same integer loops in the same order, so the resulting float is
/// bit-identical to what the in-memory builder stores in the header.
fn skew_pct_mapped(bytes: &[u8], deg: &[u32], dst_at: usize, threshold: u32) -> f64 {
    let mut total = 0u64;
    let mut skewed = 0u64;
    let mut eid = 0usize;
    for u in 0..deg.len() as u32 {
        let du = deg[u as usize] as usize;
        for _ in 0..du {
            let v = read_u32_at(bytes, dst_at + eid * 4);
            eid += 1;
            if u < v {
                total += 1;
                let dv = deg[v as usize] as usize;
                let (s, l) = if du < dv { (du, dv) } else { (dv, du) };
                if s > 0 && l > threshold as usize * s {
                    skewed += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * skewed as f64 / total as f64
    }
}

/// Write the offsets section (u64 prefix sums of `deg`) and return the
/// cursor array (absolute element indices) the placement pass scatters
/// through.
fn write_offsets_section(bytes: &mut [u8], at: usize, deg: &[u32]) -> Vec<u64> {
    let mut cursor = Vec::with_capacity(deg.len());
    let mut acc = 0u64;
    put_u64(bytes, at, 0);
    for (u, &d) in deg.iter().enumerate() {
        cursor.push(acc);
        acc += d as u64;
        put_u64(bytes, at + (u + 1) * 8, acc);
    }
    cursor
}

/// The streamed build core: consume `source` through an external sorter and
/// assemble a complete `CNCPREP4` image at `out` via a growable write-mode
/// mapping. Returns the summary; the caller owns tmp-name/rename protocol
/// and metrics attribution.
fn build_to_path(
    mut source: Box<dyn EdgeSource + '_>,
    policy: ReorderPolicy,
    out: &Path,
    config: &StreamConfig,
) -> io::Result<StreamSummary> {
    let mut peak = Peak::default();
    let mut sorter = ExternalSorter::new(config)?;
    let declared = source.declared_vertices();
    while let Some((u, v)) = source.next_pair()? {
        sorter.push(u, v)?;
    }
    peak.observe(source.resident_bytes() + (sorter.cap * 8) as u64);
    let stream_chunks = source.chunks();
    drop(source);
    let sorted = sorter.into_sorted()?;
    let n = sorted.max_id_plus1().max(declared);

    // Pass 1: degrees. |V| words + the merge readers.
    let (deg, unique) = degree_pass(&sorted, n)?;
    let m_dir = unique
        .checked_mul(2)
        .ok_or_else(|| invalid("directed edge count overflows"))?;
    peak.observe((deg.len() * 4) as u64 + sorted.resident_bytes());

    // Fix the full file layout now that every section size is known.
    let reordered = matches!(policy, ReorderPolicy::DegreeDescending);
    let mut lens: Vec<(usize, u64)> = vec![((n + 1) * 8, 8), (m_dir * 4, 4), (m_dir * 8, 8)];
    if reordered {
        lens.extend_from_slice(&[((n + 1) * 8, 8), (m_dir * 4, 4), (m_dir * 8, 8), (n * 4, 4)]);
    }
    let (plans, total) = plan_sections(&lens);

    // The mapping is created small and grown once the degree pass has sized
    // the sections — file bytes beyond the old length arrive zero-filled,
    // which is exactly the zero padding the format requires.
    let mut map = MappedFileMut::create(out, HEADER_LEN)?;
    map.grow(total)?;
    {
        let bytes = map.bytes_mut();

        // Original offsets + pass 2: direct placement of both directions.
        let cursor = write_offsets_section(bytes, plans[0].payload_at, &deg);
        let dst_at = plans[1].payload_at;
        {
            let mut cur = cursor.clone();
            peak.observe((deg.len() * 4 + cursor.len() * 8 * 2) as u64 + sorted.resident_bytes());
            for pair in sorted.iter()? {
                let (u, v) = pair?;
                put_u32(bytes, dst_at + cur[u as usize] as usize * 4, v);
                cur[u as usize] += 1;
                put_u32(bytes, dst_at + cur[v as usize] as usize * 4, u);
                cur[v as usize] += 1;
            }
            // The merged stream is globally sorted, so every neighbor run
            // was written ascending — no per-run sort pass.
        }
        write_rev_walk(bytes, dst_at, plans[2].payload_at, m_dir, cursor.clone());

        let max_degree = deg.iter().copied().max().unwrap_or(0) as u64;
        let skew_pct = skew_pct_mapped(bytes, &deg, dst_at, SKEW_THRESHOLD);

        if reordered {
            relabel_sections(bytes, &plans, &deg, n, m_dir, &mut peak);
        }

        // Section checksums, then the header (whose checksum seals the
        // statistics fields).
        for p in &plans {
            let ck = checksum(&bytes[p.payload_at..p.payload_at + p.payload_len]);
            put_u64(bytes, p.header_at, p.payload_len as u64);
            put_u64(bytes, p.header_at + 8, ck);
            put_u64(bytes, p.header_at + 16, p.elem_width);
        }
        bytes[..8].copy_from_slice(PREPARED_MAGIC);
        bytes[8] = policy.byte();
        bytes[9] = reordered as u8;
        put_u64(bytes, 16, plans.len() as u64);
        put_u64(bytes, 24, skew_pct.to_bits());
        put_u64(bytes, 32, max_degree);
        let hcheck = checksum(&bytes[..56]);
        put_u64(bytes, 56, hcheck);
    }
    let file = map.into_file();
    file.sync_all()?;
    drop(file);

    let summary = StreamSummary {
        num_vertices: n,
        num_directed_edges: m_dir,
        spill_runs: sorted.spill_runs(),
        spill_bytes: sorted.spill_bytes(),
        stream_chunks,
        peak_resident_bytes: peak.peak,
        file_bytes: total as u64,
    };
    bump(|m| {
        m.stream_chunks += summary.stream_chunks;
        m.peak_resident_bytes += summary.peak_resident_bytes;
    });
    Ok(summary)
}

/// Reverse-index cursor walk (`rev[e(u,v)] = cursor[v]++`) over the mapped
/// dst section, writing `m_dir` u64 slots.
fn write_rev_walk(
    bytes: &mut [u8],
    dst_at: usize,
    rev_at: usize,
    m_dir: usize,
    mut cursor: Vec<u64>,
) {
    for eid in 0..m_dir {
        let v = read_u32_at(bytes, dst_at + eid * 4) as usize;
        put_u64(bytes, rev_at + eid * 8, cursor[v]);
        cursor[v] += 1;
    }
}

/// Assemble the relabeled sections (offsets / dst / rev / new→old) for the
/// degree-descending policy, replicating [`crate::reorder::degree_descending`]
/// exactly: sort vertices by (degree descending, old id ascending), relabel
/// each neighbor run through the inverse permutation, sort the single run.
/// Peak scratch is O(|V|) plus one max-degree run buffer.
fn relabel_sections(
    bytes: &mut [u8],
    plans: &[SectionPlan],
    deg: &[u32],
    n: usize,
    m_dir: usize,
    peak: &mut Peak,
) {
    let mut new_to_old: Vec<u32> = (0..n as u32).collect();
    new_to_old.sort_by(|&a, &b| {
        deg[b as usize]
            .cmp(&deg[a as usize])
            .then_with(|| a.cmp(&b))
    });
    let mut old_to_new = vec![0u32; n];
    for (new_id, &old_id) in new_to_old.iter().enumerate() {
        old_to_new[old_id as usize] = new_id as u32;
    }
    let max_degree = deg.iter().copied().max().unwrap_or(0) as usize;
    peak.observe((deg.len() * 4 + n * 8 + n * 8 + n * 8 + max_degree * 4) as u64);

    // Relabeled offsets: prefix sums of permuted degrees; the returned
    // cursor drives the rev walk below.
    let mut deg2 = Vec::with_capacity(n);
    for &old_id in &new_to_old {
        deg2.push(deg[old_id as usize]);
    }
    let cursor2 = write_offsets_section(bytes, plans[3].payload_at, &deg2);

    // Relabeled adjacency: map each original run through old→new, sort it.
    let (src_dst_at, dst2_at) = (plans[1].payload_at, plans[4].payload_at);
    let mut run: Vec<u32> = Vec::with_capacity(max_degree);
    let mut old_start = vec![0u64; n];
    {
        let mut acc = 0u64;
        for (u, &d) in deg.iter().enumerate() {
            old_start[u] = acc;
            acc += d as u64;
        }
    }
    let mut write_at = dst2_at;
    for &old_u in &new_to_old {
        let d = deg[old_u as usize] as usize;
        let base = src_dst_at + old_start[old_u as usize] as usize * 4;
        run.clear();
        for k in 0..d {
            let v = read_u32_at(bytes, base + k * 4);
            run.push(old_to_new[v as usize]);
        }
        run.sort_unstable();
        for &v in &run {
            put_u32(bytes, write_at, v);
            write_at += 4;
        }
    }

    write_rev_walk(bytes, dst2_at, plans[5].payload_at, m_dir, cursor2);

    let nto_at = plans[6].payload_at;
    for (i, &old_id) in new_to_old.iter().enumerate() {
        put_u32(bytes, nto_at + i * 4, old_id);
    }
}

// ---------------------------------------------------------------------------
// Public entry points.
// ---------------------------------------------------------------------------

/// Stream-prepare an edge-list *file* (SNAP text or `CNCCSR01` binary,
/// sniffed by magic) into a complete `CNCPREP4` image at `out`.
///
/// The counting paths load the result with [`crate::prepare::map_prepared`]
/// — its bytes are identical to what [`crate::prepare::write_prepared`]
/// would produce from the in-memory pipeline on the same input. Counts a
/// graph build (and a reorder, under the degree-descending policy) in
/// [`crate::prepare::PrepareMetrics`].
pub fn prepare_file(
    input: &Path,
    out: &Path,
    policy: ReorderPolicy,
    config: &StreamConfig,
) -> io::Result<StreamSummary> {
    let mut file = File::open(input)?;
    let mut magic = [0u8; 8];
    let sniffed = file.read(&mut magic)?;
    file.seek(io::SeekFrom::Start(0))?;
    let chunk = config.chunk_bytes();
    let source: Box<dyn EdgeSource> = if sniffed == 8 && &magic == b"CNCCSR01" {
        Box::new(BinaryCsrSource::new(file, chunk)?)
    } else {
        Box::new(TextSource::new(file, chunk))
    };
    let summary = build_to_path(source, policy, out, config)?;
    bump(|m| {
        m.graph_builds += 1;
        if matches!(policy, ReorderPolicy::DegreeDescending) {
            m.reorders += 1;
        }
    });
    Ok(summary)
}

/// Stream-prepare an in-process pair iterator (dataset generators) over at
/// least `declared_vertices` ids into a `CNCPREP4` image at `out`. Same
/// output guarantee as [`prepare_file`]; the build/reorder counters are the
/// caller's to attribute (the disk-cache path counts them itself).
pub fn prepare_pairs_to_file(
    declared_vertices: usize,
    pairs: impl Iterator<Item = (u32, u32)>,
    policy: ReorderPolicy,
    out: &Path,
    config: &StreamConfig,
) -> io::Result<StreamSummary> {
    let source = Box::new(PairSource {
        iter: pairs,
        declared: declared_vertices,
    });
    build_to_path(source, policy, out, config)
}

/// Build an owned in-heap [`CsrGraph`] through the budgeted external sort —
/// the bounded-memory replacement for
/// [`crate::CsrGraph::from_edge_list_parallel`] that
/// [`crate::datasets::Dataset::build`] switches to when
/// [`PREP_MEM_BYTES_ENV`] is set. Produces exactly the same CSR.
pub fn build_csr_bounded(
    declared_vertices: usize,
    pairs: impl Iterator<Item = (u32, u32)>,
    config: &StreamConfig,
) -> io::Result<CsrGraph> {
    let mut sorter = ExternalSorter::new(config)?;
    for (u, v) in pairs {
        sorter.push(u, v)?;
    }
    let cap_bytes = (sorter.cap * 8) as u64;
    let sorted = sorter.into_sorted()?;
    let n = sorted.max_id_plus1().max(declared_vertices);
    let (deg, unique) = degree_pass(&sorted, n)?;
    let mut peak = Peak::default();
    peak.observe(cap_bytes);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    offsets.push(0);
    for &d in &deg {
        acc += d as usize;
        offsets.push(acc);
    }
    let mut dst = vec![0u32; unique * 2];
    let mut cursor: Vec<usize> = offsets[..n].to_vec();
    peak.observe((deg.len() * 4 + offsets.len() * 8 + cursor.len() * 8 + dst.len() * 4) as u64);
    for pair in sorted.iter()? {
        let (u, v) = pair?;
        dst[cursor[u as usize]] = v;
        cursor[u as usize] += 1;
        dst[cursor[v as usize]] = u;
        cursor[v as usize] += 1;
    }
    bump(|m| m.peak_resident_bytes += peak.peak);
    CsrGraph::try_from_stores_structural(offsets.into(), dst.into())
        .map_err(|e| invalid(format!("streamed CSR failed validation: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::prepare::{read_prepared, write_prepared, PreparedGraph};
    use crate::EdgeList;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cnc-stream-{}-{}-{name}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn tiny_config(budget: u64) -> StreamConfig {
        StreamConfig {
            mem_budget: Some(budget),
            spill_dir: None,
        }
    }

    #[test]
    fn streamed_file_is_byte_identical_to_memory_writer() {
        for policy in [ReorderPolicy::None, ReorderPolicy::DegreeDescending] {
            for el in [
                generators::chung_lu(300, 9.0, 2.3, 7),
                generators::gnm(200, 800, 4),
                generators::hub_web(150, 5.0, 2, 0.4, 6),
                EdgeList::new(0),
                EdgeList::new(9),
            ] {
                // Tiny budget forces spills even on these small inputs.
                let out = tmp("ident.prep");
                let summary = prepare_pairs_to_file(
                    el.num_vertices,
                    el.iter(),
                    policy,
                    &out,
                    &tiny_config(4096),
                )
                .unwrap();
                let want_pg = PreparedGraph::from_edge_list(&el, policy);
                let mut want = Vec::new();
                write_prepared(&want_pg, &mut want).unwrap();
                let got = fs::read(&out).unwrap();
                assert_eq!(
                    got, want,
                    "streamed CNCPREP4 differs (policy {policy:?}, n={})",
                    el.num_vertices
                );
                if el.len() > 600 {
                    assert!(summary.spill_runs > 0, "tiny budget must spill");
                }
                let _ = fs::remove_file(&out);
            }
        }
    }

    #[test]
    fn text_source_roundtrip_with_tiny_chunks() {
        let el = generators::gnm(120, 500, 11);
        let mut text = Vec::new();
        crate::io::write_edge_list(&el, &mut text).unwrap();
        let mut src = TextSource::new(text.as_slice(), MIN_CHUNK_BYTES);
        let mut got = Vec::new();
        while let Some(p) = src.next_pair().unwrap() {
            got.push(p);
        }
        assert_eq!(got, el.edges);
        assert!(src.chunks() >= 1);
    }

    #[test]
    fn text_source_reports_line_numbers_across_chunks() {
        // Put the malformed line deep enough that it lands past the first
        // chunk; the reported line number must still be exact.
        let mut text = String::from("# header\n");
        for i in 0..2000u32 {
            text.push_str(&format!("{} {}\n", i, i + 1));
        }
        text.push_str("7 bad_token\n");
        let mut src = TextSource::new(text.as_bytes(), MIN_CHUNK_BYTES);
        let err = loop {
            match src.next_pair() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("malformed line must error"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(msg.contains("line 2002"), "wrong line number: {msg}");
        assert!(msg.contains("bad_token"), "missing offending text: {msg}");
    }

    #[test]
    fn binary_source_emits_each_edge_once() {
        let el = generators::chung_lu(150, 8.0, 2.4, 3);
        let g = CsrGraph::from_edge_list(&el);
        let mut bin = Vec::new();
        crate::io::write_csr(&g, &mut bin).unwrap();
        let mut src = BinaryCsrSource::new(bin.as_slice(), MIN_CHUNK_BYTES).unwrap();
        assert_eq!(src.declared_vertices(), g.num_vertices());
        let mut got = Vec::new();
        while let Some(p) = src.next_pair().unwrap() {
            got.push(p);
        }
        assert_eq!(got, el.edges, "one canonical pair per undirected edge");
    }

    #[test]
    fn prepare_file_handles_both_formats() {
        let el = generators::gnm(100, 420, 9);
        let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::DegreeDescending);
        let mut want = Vec::new();
        write_prepared(&pg, &mut want).unwrap();

        let text_in = tmp("in.txt");
        let mut f = File::create(&text_in).unwrap();
        crate::io::write_edge_list(&el, &mut f).unwrap();
        let text_out = tmp("text.prep");
        prepare_file(
            &text_in,
            &text_out,
            ReorderPolicy::DegreeDescending,
            &tiny_config(8192),
        )
        .unwrap();
        assert_eq!(fs::read(&text_out).unwrap(), want);

        let bin_in = tmp("in.csr");
        let g = CsrGraph::from_edge_list(&el);
        crate::io::write_csr(&g, File::create(&bin_in).unwrap()).unwrap();
        let bin_out = tmp("bin.prep");
        prepare_file(
            &bin_in,
            &bin_out,
            ReorderPolicy::DegreeDescending,
            &tiny_config(8192),
        )
        .unwrap();
        assert_eq!(fs::read(&bin_out).unwrap(), want);

        // And the produced image parses through the normal reader.
        let back = read_prepared(fs::read(&text_out).unwrap().as_slice()).unwrap();
        assert_eq!(back.graph(), pg.graph());
        for p in [text_in, text_out, bin_in, bin_out] {
            let _ = fs::remove_file(&p);
        }
    }

    #[test]
    fn bounded_csr_matches_parallel_builder() {
        for el in [
            generators::chung_lu(250, 10.0, 2.2, 5),
            generators::gnm(300, 1100, 8),
            EdgeList::new(0),
        ] {
            let want = CsrGraph::from_edge_list_parallel(&el);
            let got = build_csr_bounded(el.num_vertices, el.iter(), &tiny_config(4096)).unwrap();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn budget_smaller_than_one_chunk_still_succeeds() {
        // A 1-byte budget clamps the buffer and chunk to their minimums
        // (512 pairs / 4 KiB) and completes — never panics, never errors.
        // The graph must exceed the clamped buffer to actually spill.
        let el = generators::gnm(300, 2000, 2);
        let out = tmp("tinybudget.prep");
        let summary = prepare_pairs_to_file(
            el.num_vertices,
            el.iter(),
            ReorderPolicy::None,
            &out,
            &tiny_config(1),
        )
        .unwrap();
        assert!(summary.spill_runs > 0);
        let pg = PreparedGraph::from_edge_list(&el, ReorderPolicy::None);
        let mut want = Vec::new();
        write_prepared(&pg, &mut want).unwrap();
        assert_eq!(fs::read(&out).unwrap(), want);
        let _ = fs::remove_file(&out);
    }

    #[test]
    fn spill_dir_deleted_mid_run_is_typed_error() {
        let mut sorter = ExternalSorter::new(&tiny_config(4096)).unwrap();
        for i in 0..4000u32 {
            sorter.push(i, i + 1).unwrap();
        }
        assert!(sorter.spill_runs() > 0, "must have spilled already");
        fs::remove_dir_all(sorter.spill_dir()).unwrap();
        // Either the final spill or the merge open fails with a typed io
        // error; nothing panics.
        let err = match sorter.into_sorted() {
            Err(e) => e,
            Ok(sorted) => match sorted.iter() {
                Err(e) => e,
                Ok(mut it) => loop {
                    match it.next() {
                        Some(Err(e)) => break e,
                        Some(Ok(_)) => continue,
                        None => panic!("vanished spill dir must surface an error"),
                    }
                },
            },
        };
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::NotFound | io::ErrorKind::InvalidData
            ),
            "unexpected error kind: {err}"
        );
    }

    #[test]
    fn truncated_spill_run_is_typed_error() {
        let mut sorter = ExternalSorter::new(&tiny_config(4096)).unwrap();
        for i in 0..4000u32 {
            sorter.push(i, i + 2).unwrap();
        }
        let sorted = sorter.into_sorted().unwrap();
        assert!(sorted.spill_runs() > 0);
        // Truncate the first run behind the merge's back.
        let SortedMode::Runs(runs, _) = &sorted.mode else {
            panic!("expected runs mode");
        };
        let victim = runs[0].clone();
        let len = fs::metadata(&victim).unwrap().len();
        let f = File::options().write(true).open(&victim).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        let err = sorted
            .iter()
            .and_then(|it| {
                for p in it {
                    p?;
                }
                Ok(())
            })
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated spill run"), "{err}");
    }

    #[test]
    fn streamed_metrics_are_counted() {
        let el = generators::gnm(150, 600, 12);
        let out = tmp("metrics.prep");
        let before = crate::prepare::metrics();
        let summary = prepare_pairs_to_file(
            el.num_vertices,
            el.iter(),
            ReorderPolicy::None,
            &out,
            &tiny_config(2048),
        )
        .unwrap();
        let d = crate::prepare::metrics().since(&before);
        assert_eq!(d.spill_runs, summary.spill_runs);
        assert!(d.spill_runs > 0);
        assert_eq!(d.spill_bytes, summary.spill_bytes);
        assert!(d.peak_resident_bytes >= summary.peak_resident_bytes);
        assert!(summary.peak_resident_bytes > 0);
        let _ = fs::remove_file(&out);
    }
}
