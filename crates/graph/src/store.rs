//! Backing storage for CSR arrays: owned heap vectors or zero-copy views
//! into an `mmap`ed cache file.
//!
//! [`GraphStore`] is the abstraction that lets a [`crate::CsrGraph`] serve
//! its offset/adjacency arrays either from ordinary `Vec`s (cold builds,
//! non-Unix platforms, misaligned caches) or directly out of a mapped
//! `CNCPREP2` file ([`MappedSlice`]) without copying a byte. It dereferences
//! to a slice, so every kernel, driver, backend and simulator downstream is
//! untouched — they already consume `&[usize]` / `&[u32]`.

use std::fmt;
use std::ops::Deref;

use crate::mmap::{MappedSlice, Pod};

/// Storage for one CSR array: an owned `Vec` or a mapped file region.
#[derive(Clone)]
pub enum GraphStore<T: Pod> {
    /// Heap-allocated storage (cold builds, deserialization fallback).
    Owned(Vec<T>),
    /// A typed view into an `mmap`ed cache file; cloning bumps the file's
    /// `Arc`, and the mapping (plus its shared reader lock) lives as long as
    /// any clone.
    Mapped(MappedSlice<T>),
}

impl<T: Pod> GraphStore<T> {
    /// The stored elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            GraphStore::Owned(v) => v,
            GraphStore::Mapped(m) => m,
        }
    }

    /// Whether the elements live in a mapped file rather than on the heap.
    pub fn is_mapped(&self) -> bool {
        matches!(self, GraphStore::Mapped(_))
    }
}

impl<T: Pod> Deref for GraphStore<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod> From<Vec<T>> for GraphStore<T> {
    fn from(v: Vec<T>) -> Self {
        GraphStore::Owned(v)
    }
}

impl<T: Pod> From<MappedSlice<T>> for GraphStore<T> {
    fn from(m: MappedSlice<T>) -> Self {
        GraphStore::Mapped(m)
    }
}

/// Equality is content equality: an owned store and a mapped store holding
/// the same elements compare equal (mapped loads must be indistinguishable
/// from owned ones).
impl<T: Pod + PartialEq> PartialEq for GraphStore<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for GraphStore<T> {}

impl<T: Pod + fmt::Debug> fmt::Debug for GraphStore<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.is_mapped() { "Mapped" } else { "Owned" };
        write!(f, "{tag}(")?;
        fmt::Debug::fmt(self.as_slice(), f)?;
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_store_behaves_like_a_slice() {
        let s: GraphStore<u32> = vec![3u32, 1, 4].into();
        assert_eq!(s.len(), 3);
        assert_eq!(s[1], 1);
        assert_eq!(&*s, &[3, 1, 4]);
        assert!(!s.is_mapped());
        assert_eq!(s, s.clone());
        assert!(format!("{s:?}").starts_with("Owned("));
    }

    #[cfg(unix)]
    #[test]
    fn mapped_store_equals_owned_with_same_content() {
        use crate::mmap::MappedFile;
        use std::io::Write;

        let path = std::env::temp_dir().join(format!("cnc-store-{}", std::process::id()));
        let values = [10u32, 20, 30, 40];
        let mut f = std::fs::File::create(&path).unwrap();
        for v in values {
            f.write_all(&v.to_le_bytes()).unwrap();
        }
        drop(f);
        let map = MappedFile::open(&path).unwrap();
        let mapped: GraphStore<u32> = map.typed_slice::<u32>(0, 4).unwrap().into();
        let owned: GraphStore<u32> = values.to_vec().into();
        assert!(mapped.is_mapped());
        assert_eq!(mapped, owned);
        assert_eq!(mapped[2], 30);
        assert!(format!("{mapped:?}").starts_with("Mapped("));
        let _ = std::fs::remove_file(&path);
    }
}
