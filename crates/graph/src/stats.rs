//! Graph statistics of the paper's evaluation setup.
//!
//! [`GraphStats`] reproduces the columns of **Table 1** (|V|, |E|, average
//! and maximum degree); [`skew_percentage`] reproduces **Table 2** — the
//! fraction of set intersections in the all-edge counting that are *highly
//! skewed* (`d_u / d_v > 50` supposing `d_u > d_v`), the statistic that
//! predicts whether pivot-skip pays off on a dataset.

use crate::csr::CsrGraph;

/// The skew-ratio threshold used by Table 2 and as the MPS default.
pub const SKEW_THRESHOLD: u32 = 50;

/// Table 1 row: basic size and degree statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraphStats {
    /// Number of vertices `|V|`.
    pub num_vertices: usize,
    /// Number of directed edge slots `|E|` (2 × undirected; the paper's
    /// Table 1 counts the CSR entries of the symmetrized graph).
    pub num_edges: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
}

impl GraphStats {
    /// Compute the statistics of `g`.
    pub fn of(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let m = g.num_directed_edges();
        let max_degree = (0..n as u32).map(|u| g.degree(u)).max().unwrap_or(0);
        Self {
            num_vertices: n,
            num_edges: m,
            avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            max_degree,
        }
    }
}

/// Table 2: percentage of the intersections performed by the all-edge
/// counting (one per undirected edge, `u < v`) whose degree ratio exceeds
/// `threshold`.
pub fn skew_percentage(g: &CsrGraph, threshold: u32) -> f64 {
    let mut total = 0u64;
    let mut skewed = 0u64;
    for u in 0..g.num_vertices() as u32 {
        let du = g.degree(u);
        for &v in g.neighbors(u) {
            if u < v {
                total += 1;
                let dv = g.degree(v);
                let (s, l) = if du < dv { (du, dv) } else { (dv, du) };
                if s > 0 && l > threshold as usize * s {
                    skewed += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * skewed as f64 / total as f64
    }
}

/// Degree histogram in log₂ buckets (bucket `i` counts vertices with degree
/// in `[2^i, 2^(i+1))`; bucket 0 also counts degree-0/1). Used to sanity
/// check generated dataset analogues against the target shapes.
pub fn degree_histogram_log2(g: &CsrGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for u in 0..g.num_vertices() as u32 {
        let d = g.degree(u);
        let bucket = if d <= 1 { 0 } else { d.ilog2() as usize };
        if bucket >= hist.len() {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::EdgeList;
    use crate::generators;

    #[test]
    fn stats_of_star() {
        let g = crate::CsrGraph::from_edge_list(&generators::star(11));
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 11);
        assert_eq!(s.num_edges, 20);
        assert_eq!(s.max_degree, 10);
        assert!((s.avg_degree - 20.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty() {
        let g = crate::CsrGraph::from_edge_list(&EdgeList::new(0));
        let s = GraphStats::of(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn skew_zero_on_regular_graph() {
        let g = crate::CsrGraph::from_edge_list(&generators::complete(10));
        assert_eq!(skew_percentage(&g, 50), 0.0);
    }

    #[test]
    fn skew_full_on_extreme_star_union() {
        // A hub of degree 200 attached to degree-1 leaves: every edge is a
        // (200 vs 1) intersection — ratio 200 > 50.
        let g = crate::CsrGraph::from_edge_list(&generators::star(201));
        assert_eq!(skew_percentage(&g, 50), 100.0);
        // With a threshold of 200 the ratio is no longer *strictly* greater.
        assert_eq!(skew_percentage(&g, 200), 0.0);
    }

    #[test]
    fn hub_web_more_skewed_than_gnm() {
        let web = crate::CsrGraph::from_edge_list(&generators::hub_web(2000, 6.0, 2, 0.5, 9));
        let uni = crate::CsrGraph::from_edge_list(&generators::gnm(2000, 6000, 9));
        assert!(
            skew_percentage(&web, 50) > skew_percentage(&uni, 50),
            "web-like graphs must show more degree skew"
        );
    }

    #[test]
    fn histogram_counts_all_vertices() {
        let g = crate::CsrGraph::from_edge_list(&generators::chung_lu(500, 8.0, 2.2, 4));
        let h = degree_histogram_log2(&g);
        assert_eq!(h.iter().sum::<usize>(), 500);
    }
}
