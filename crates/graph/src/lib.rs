//! Graph substrate for all-edge common neighbor counting.
//!
//! Provides everything the counting algorithms need below the kernel level:
//!
//! * [`EdgeList`] — raw undirected edge collections with normalization
//!   (self-loop removal, deduplication, symmetrization);
//! * [`CsrGraph`] — the *compressed sparse row* storage the paper uses
//!   (offset array + ascending-sorted neighbor array), including the
//!   `FindSrc` source-vertex search of Algorithm 3 and reverse-edge-offset
//!   lookup for the symmetric assignment technique;
//! * [`reorder`] — the degree-descending relabeling BMP requires so that
//!   `u < v ⇒ d_u ≥ d_v` and bitmaps are always built on the larger side;
//! * [`generators`] — seeded synthetic graph generators (G(n,m), Chung–Lu
//!   power law, R-MAT, hub-heavy web-like, near-uniform);
//! * [`datasets`] — scaled-down analogues of the paper's five evaluation
//!   graphs (livejournal, orkut, web-it, twitter, friendster);
//! * [`stats`] — the statistics of Tables 1 and 2 (sizes, degrees, fraction
//!   of highly skewed intersections);
//! * [`io`] — SNAP-style edge-list text I/O and a compact binary CSR format;
//! * [`prepare`] — the one-shot preparation pipeline ([`PreparedGraph`]):
//!   normalize → CSR → optional reorder → statistics, with a process-wide
//!   memory cache and a zero-copy on-disk cache (`CNCPREP2`) so every
//!   consumer shares one immutable result;
//! * [`mmap`] — in-tree `mmap(2)`/`flock(2)` bindings (the crate's only
//!   `unsafe`) backing the zero-copy cache and its cross-process locking;
//! * [`store`] — [`GraphStore`], the owned-or-mapped backing storage CSR
//!   arrays live behind.
//!
//! # Example
//!
//! ```
//! use cnc_graph::{generators, CsrGraph};
//!
//! let edges = generators::gnm(100, 400, 42);
//! let g = CsrGraph::from_edge_list(&edges);
//! assert_eq!(g.num_vertices(), 100);
//! assert!(g.validate().is_ok());
//! for v in g.neighbors(0) {
//!     assert!((*v as usize) < g.num_vertices());
//! }
//! ```

// `deny`, not `forbid`: the `mmap` module opts back in with a module-level
// `allow` — it is the single place in the workspace that holds `unsafe`
// (raw `mmap`/`munmap`/`flock` bindings and the typed mapped-slice views).
#![deny(unsafe_code)]
// Lib code must surface failures as typed errors, not panics: unwrap()
// is allowed in tests only (CI runs clippy with -D warnings).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
#![warn(missing_docs)]

mod csr;
mod edgelist;

pub mod datasets;
pub mod generators;
pub mod io;
pub mod mmap;
pub mod prepare;
pub mod reorder;
pub mod stats;
pub mod store;
pub mod stream;

pub use csr::{CsrBuilder, CsrGraph};
pub use edgelist::EdgeList;
pub use prepare::{PreparedGraph, ReorderPolicy};
pub use store::GraphStore;
