//! `cnc-gen` — generate benchmark graphs to disk.
//!
//! ```text
//! cnc-gen dataset  <lj|or|wi|tw|fr> [--scale tiny|small|medium] OUT
//! cnc-gen gnm       N M SEED                                    OUT
//! cnc-gen chung-lu  N AVG_DEG GAMMA SEED                        OUT
//! cnc-gen rmat      SCALE EDGE_FACTOR SEED                      OUT
//! cnc-gen hub-web   N AVG_DEG HUBS COVERAGE SEED                OUT
//! cnc-gen ba        N M_ATTACH SEED                             OUT
//! cnc-gen stream    N AVG_DEG GAMMA SEED                        OUT
//! ```
//!
//! `OUT` ending in `.bin` writes the compact binary CSR; anything else
//! writes SNAP-style text. Both load back with the `cnc` tool and
//! `cnc_graph::io`.
//!
//! `stream` is the exception to the in-memory pipeline: it writes Chung–Lu
//! power-law text straight to `OUT` while holding only O(|V|) state, so it
//! can produce edge files far larger than RAM — the input side of the
//! bounded-memory `cnc prepare` pipeline. It always writes text (duplicates
//! included; downstream normalization merges them) and ignores `.bin`.

use std::process::ExitCode;

use cnc_graph::datasets::{Dataset, Scale};
use cnc_graph::{generators, io, CsrGraph, EdgeList};

fn parse<T: std::str::FromStr>(args: &[String], i: usize, what: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    args.get(i)
        .ok_or_else(|| format!("missing {what}"))?
        .parse()
        .map_err(|e| format!("bad {what}: {e}"))
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" {
        eprintln!("usage: cnc-gen <dataset|gnm|chung-lu|rmat|hub-web|ba|stream> ARGS... OUT");
        return Ok(());
    }
    let scale = if let Some(p) = args.iter().position(|a| a == "--scale") {
        args.remove(p);
        match args.remove(p).as_str() {
            "tiny" => Scale::Tiny,
            "small" => Scale::Small,
            "medium" => Scale::Medium,
            other => return Err(format!("unknown scale {other:?}")),
        }
    } else {
        Scale::Small
    };
    let kind = args.remove(0);
    let out = args
        .last()
        .cloned()
        .ok_or_else(|| "missing OUT path".to_string())?;
    if kind == "stream" {
        let n: usize = parse(&args, 0, "N")?;
        let avg_deg: f64 = parse(&args, 1, "AVG_DEG")?;
        let gamma: f64 = parse(&args, 2, "GAMMA")?;
        let seed: u64 = parse(&args, 3, "SEED")?;
        let f = std::fs::File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
        let written = generators::stream_power_law(n, avg_deg, gamma, seed, f)
            .map_err(|e| format!("streaming write failed: {e}"))?;
        eprintln!("streamed edge list: {n} vertices, {written} sampled edges → {out}");
        return Ok(());
    }
    let el: EdgeList = match kind.as_str() {
        "dataset" => {
            let d = match args[0].as_str() {
                "lj" => Dataset::LjS,
                "or" => Dataset::OrS,
                "wi" => Dataset::WiS,
                "tw" => Dataset::TwS,
                "fr" => Dataset::FrS,
                other => return Err(format!("unknown dataset {other:?}")),
            };
            d.edge_list(scale)
        }
        "gnm" => generators::gnm(
            parse(&args, 0, "N")?,
            parse(&args, 1, "M")?,
            parse(&args, 2, "SEED")?,
        ),
        "chung-lu" => generators::chung_lu(
            parse(&args, 0, "N")?,
            parse(&args, 1, "AVG_DEG")?,
            parse(&args, 2, "GAMMA")?,
            parse(&args, 3, "SEED")?,
        ),
        "rmat" => generators::rmat(
            parse(&args, 0, "SCALE")?,
            parse(&args, 1, "EDGE_FACTOR")?,
            0.57,
            0.19,
            0.19,
            parse(&args, 2, "SEED")?,
        ),
        "hub-web" => generators::hub_web(
            parse(&args, 0, "N")?,
            parse(&args, 1, "AVG_DEG")?,
            parse(&args, 2, "HUBS")?,
            parse(&args, 3, "COVERAGE")?,
            parse(&args, 4, "SEED")?,
        ),
        "ba" => generators::barabasi_albert(
            parse(&args, 0, "N")?,
            parse(&args, 1, "M_ATTACH")?,
            parse(&args, 2, "SEED")?,
        ),
        other => return Err(format!("unknown generator {other:?}")),
    };
    let f = std::fs::File::create(&out).map_err(|e| format!("cannot create {out}: {e}"))?;
    if out.ends_with(".bin") {
        let g = CsrGraph::from_edge_list(&el);
        io::write_csr(&g, f).map_err(|e| e.to_string())?;
        eprintln!(
            "wrote binary CSR: {} vertices, {} edges → {out}",
            g.num_vertices(),
            g.num_undirected_edges()
        );
    } else {
        io::write_edge_list(&el, f).map_err(|e| e.to_string())?;
        eprintln!(
            "wrote edge list: {} vertices, {} edges → {out}",
            el.num_vertices,
            el.len()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cnc-gen: {e}");
            ExitCode::FAILURE
        }
    }
}
