//! Compressed sparse row graph storage (Section 2.1, "Storage Format").
//!
//! A [`CsrGraph`] stores an undirected graph with *both* directions of every
//! edge materialized: `offsets` has length `|V| + 1` and `dst` stores each
//! neighbor list as an ascending run. The paper's edge offset `e(u, v)` is
//! the index into `dst` with `dst[e(u,v)] == v` and
//! `e(u,v) ∈ [offsets[u], offsets[u+1])`; the common-neighbor counts array is
//! indexed by this offset.

use crate::edgelist::EdgeList;
use crate::store::GraphStore;

/// An undirected graph in CSR form with sorted neighbor lists.
///
/// All arrays live behind [`GraphStore`]: owned heap vectors for freshly
/// built graphs, or zero-copy views into an `mmap`ed cache file for warm
/// loads. Every accessor exposes plain slices, so consumers never see the
/// difference.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `offsets[u]..offsets[u+1]` is the slice of `dst` holding `N(u)`.
    offsets: GraphStore<usize>,
    /// Concatenated neighbor lists, each strictly ascending.
    dst: GraphStore<u32>,
    /// Optional reverse-edge index: `rev[e(u,v)] == e(v,u)`. Built once by
    /// the preparation layer ([`CsrGraph::build_reverse_index`]) so the
    /// symmetric-assignment store in the edge-range drivers is an O(1) load
    /// instead of a per-edge binary search.
    rev: Option<GraphStore<usize>>,
}

/// Graph identity is the CSR itself. The reverse index is derived data —
/// `rev` is definitionally a function of `offsets`/`dst` — so two graphs
/// that differ only in whether the index has been built compare equal.
impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        *self.offsets == *other.offsets && *self.dst == *other.dst
    }
}

impl Eq for CsrGraph {}

impl CsrGraph {
    /// Build from a normalized-or-not edge list: symmetrizes, sorts and
    /// deduplicates per-vertex neighbor lists.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        Self::from_pair_slice(el.num_vertices, &el.edges)
    }

    /// Build from raw undirected pairs over `n` vertices. Self-loops are
    /// dropped; parallel edges are merged.
    ///
    /// Feeds the iterator straight into a [`CsrBuilder`]: degrees are
    /// counted in the same single pass that canonicalizes each pair, with no
    /// raw staging copy for a second walk.
    pub fn from_undirected_pairs(n: usize, pairs: impl Iterator<Item = (u32, u32)>) -> Self {
        let mut b = CsrBuilder::new(n);
        for (u, v) in pairs {
            b.push(u, v);
        }
        b.finish()
    }

    /// Counting-sort construction over an edge slice: pass 1 counts degrees,
    /// pass 2 scatters. No staging copy of the input is made — peak memory
    /// is the input slice plus the output CSR.
    fn from_pair_slice(n: usize, pairs: &[(u32, u32)]) -> Self {
        let mut deg = vec![0usize; n];
        for &(u, v) in pairs {
            if u == v {
                continue;
            }
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u},{v}) out of range for {n} vertices"
            );
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for u in 0..n {
            offsets[u + 1] = offsets[u] + deg[u];
        }
        let mut dst = vec![0u32; offsets[n]];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v) in pairs {
            if u == v {
                continue;
            }
            dst[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            dst[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Sort + dedup each run; rebuild offsets if duplicates were removed.
        let mut any_dup = false;
        for u in 0..n {
            let run = &mut dst[offsets[u]..offsets[u + 1]];
            run.sort_unstable();
            if run.windows(2).any(|w| w[0] == w[1]) {
                any_dup = true;
            }
        }
        if any_dup {
            let mut new_dst = Vec::with_capacity(dst.len());
            let mut new_offsets = vec![0usize; n + 1];
            for u in 0..n {
                let run = &dst[offsets[u]..offsets[u + 1]];
                let mut last = None;
                for &x in run {
                    if last != Some(x) {
                        new_dst.push(x);
                        last = Some(x);
                    }
                }
                new_offsets[u + 1] = new_dst.len();
            }
            return Self {
                offsets: new_offsets.into(),
                dst: new_dst.into(),
                rev: None,
            };
        }
        Self {
            offsets: offsets.into(),
            dst: dst.into(),
            rev: None,
        }
    }

    /// Parallel CSR construction for large edge lists: degree counting,
    /// scattering and per-vertex sorting all fan out over rayon. Produces
    /// exactly the same CSR as [`CsrGraph::from_edge_list`].
    ///
    /// The fan-out requires the canonical edge-list form (`u < v`, sorted,
    /// deduplicated); an input that is not [`EdgeList::is_normalized`] is
    /// normalized into an internal copy first instead of silently producing
    /// a corrupt CSR.
    pub fn from_edge_list_parallel(el: &EdgeList) -> Self {
        if !el.is_normalized() {
            let mut owned = el.clone();
            owned.normalize();
            return Self::from_normalized_parallel(&owned);
        }
        Self::from_normalized_parallel(el)
    }

    /// The parallel builder proper; `el` must be normalized.
    fn from_normalized_parallel(el: &EdgeList) -> Self {
        use rayon::prelude::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        debug_assert!(el.is_normalized());
        let n = el.num_vertices;
        // Degrees via atomic counters (the edge list is normalized: u < v,
        // no self-loops, no duplicates).
        let deg: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        el.edges.par_iter().for_each(|&(u, v)| {
            deg[u as usize].fetch_add(1, Ordering::Relaxed);
            deg[v as usize].fetch_add(1, Ordering::Relaxed);
        });
        let mut offsets = vec![0usize; n + 1];
        for u in 0..n {
            offsets[u + 1] = offsets[u] + deg[u].load(Ordering::Relaxed);
        }
        // Scatter with atomic cursors.
        let m = offsets[n];
        let cursor: Vec<AtomicUsize> = offsets[..n].iter().map(|&o| AtomicUsize::new(o)).collect();
        let dst_cells: Vec<AtomicUsize> = (0..m).map(|_| AtomicUsize::new(0)).collect();
        el.edges.par_iter().for_each(|&(u, v)| {
            let pu = cursor[u as usize].fetch_add(1, Ordering::Relaxed);
            dst_cells[pu].store(v as usize, Ordering::Relaxed);
            let pv = cursor[v as usize].fetch_add(1, Ordering::Relaxed);
            dst_cells[pv].store(u as usize, Ordering::Relaxed);
        });
        let mut dst: Vec<u32> = dst_cells
            .into_iter()
            .map(|c| c.into_inner() as u32)
            .collect();
        // Sort each neighbor run in parallel.
        let mut runs: Vec<&mut [u32]> = Vec::with_capacity(n);
        let mut rest: &mut [u32] = &mut dst;
        for u in 0..n {
            let len = offsets[u + 1] - offsets[u];
            let (run, tail) = rest.split_at_mut(len);
            runs.push(run);
            rest = tail;
        }
        runs.par_iter_mut().for_each(|run| run.sort_unstable());
        Self {
            offsets: offsets.into(),
            dst: dst.into(),
            rev: None,
        }
    }

    /// Build directly from parts. Panics if the parts are inconsistent.
    pub fn from_parts(offsets: Vec<usize>, dst: Vec<u32>) -> Self {
        Self::try_from_parts(offsets, dst).expect("invalid CSR parts")
    }

    /// Build directly from parts, returning a description of the violated
    /// invariant instead of panicking. This is the constructor for
    /// *untrusted* parts (deserialized files, caches).
    pub fn try_from_parts(offsets: Vec<usize>, dst: Vec<u32>) -> Result<Self, String> {
        Self::try_from_stores(offsets.into(), dst.into())
    }

    /// Build from arbitrary [`GraphStore`] backings (owned or mapped) with
    /// the full invariant check of [`CsrGraph::validate`].
    pub fn try_from_stores(
        offsets: GraphStore<usize>,
        dst: GraphStore<u32>,
    ) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offsets must have length |V| + 1, got 0".into());
        }
        let g = Self {
            offsets,
            dst,
            rev: None,
        };
        g.validate()?;
        Ok(g)
    }

    /// Build from [`GraphStore`] backings with only the linear-time
    /// [`CsrGraph::validate_structure`] check.
    ///
    /// This is the constructor for *integrity-protected* inputs — mapped
    /// `CNCPREP2` sections whose per-section checksums already verified the
    /// bytes are exactly what [`crate::io::write_csr`]-style serialization of
    /// a valid graph produced. The `O(|E| log d)` symmetry probes of the full
    /// validation are skipped so warm loads stay cheap.
    pub(crate) fn try_from_stores_structural(
        offsets: GraphStore<usize>,
        dst: GraphStore<u32>,
    ) -> Result<Self, String> {
        if offsets.is_empty() {
            return Err("offsets must have length |V| + 1, got 0".into());
        }
        let g = Self {
            offsets,
            dst,
            rev: None,
        };
        g.validate_structure()?;
        Ok(g)
    }

    /// Whether both CSR arrays are served zero-copy from a mapped cache
    /// file rather than from heap allocations.
    pub fn storage_mapped(&self) -> bool {
        self.offsets.is_mapped() && self.dst.is_mapped()
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *directed* edge slots (`2 ×` undirected edges). This is the
    /// `|E|` of the paper's CSR and the length of the counts array.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.dst.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_undirected_edges(&self) -> usize {
        self.dst.len() / 2
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// The sorted neighbor list `N(u)`.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.dst[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// The raw offset array (length `|V| + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The raw neighbor array.
    #[inline]
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Offset range of `u`'s neighbors: `[offsets[u], offsets[u+1])`.
    #[inline]
    pub fn offset_range(&self, u: u32) -> std::ops::Range<usize> {
        self.offsets[u as usize]..self.offsets[u as usize + 1]
    }

    /// The edge offset `e(u, v)`, if `(u, v)` is an edge: binary search of
    /// `v` in `N(u)`.
    pub fn edge_offset(&self, u: u32, v: u32) -> Option<usize> {
        let base = self.offsets[u as usize];
        self.neighbors(u)
            .binary_search(&v)
            .ok()
            .map(|idx| base + idx)
    }

    /// Reverse edge offset `e(v, u)` for a known edge offset `eid = e(u, v)`.
    ///
    /// Used by the symmetric assignment technique
    /// (`cnt[e(v,u)] ← cnt[e(u,v)]`, Section 3). With a precomputed reverse
    /// index (built by the preparation layer) this is a single O(1) array
    /// load; without one it falls back to a binary search of `u` in `N(v)`.
    /// Panics if the reverse edge is absent, which would mean the CSR is not
    /// symmetric.
    #[inline]
    pub fn reverse_offset(&self, u: u32, eid: usize) -> usize {
        if let Some(rev) = &self.rev {
            return rev[eid];
        }
        let v = self.dst[eid];
        self.edge_offset(v, u)
            .expect("CSR must be symmetric: reverse edge missing")
    }

    /// Whether the O(1) reverse-edge index is present.
    #[inline]
    pub fn has_reverse_index(&self) -> bool {
        self.rev.is_some()
    }

    /// The raw reverse-edge index, if built: `rev[e(u,v)] == e(v,u)`.
    #[inline]
    pub fn reverse_index(&self) -> Option<&[usize]> {
        self.rev.as_deref()
    }

    /// Build the reverse-edge index in `O(|V| + |E|)`, no searches.
    ///
    /// Walking sources in ascending order visits, for every vertex `v`, the
    /// edges `(u, v)` in ascending `u` — exactly the order of `u` within the
    /// sorted run `N(v)`. A per-vertex cursor starting at `offsets[v]`
    /// therefore hands out each reverse slot exactly once:
    /// `rev[e(u,v)] = cursor[v]++`. Idempotent; a no-op if already built.
    pub fn build_reverse_index(&mut self) {
        if self.rev.is_some() {
            return;
        }
        let n = self.num_vertices();
        let mut rev = vec![0usize; self.dst.len()];
        let mut cursor = self.offsets[..n].to_vec();
        for (eid, &v) in self.dst.iter().enumerate() {
            let v = v as usize;
            rev[eid] = cursor[v];
            cursor[v] += 1;
        }
        debug_assert!((0..n).all(|v| cursor[v] == self.offsets[v + 1]));
        self.rev = Some(rev.into());
    }

    /// Attach an externally stored (deserialized / mapped) reverse index
    /// after verifying, in `O(|E|)`, that every entry points at the true
    /// mirror slot: `rev[eid] ∈ [offsets[v], offsets[v+1])` and
    /// `dst[rev[eid]] == u` for each directed edge `eid = e(u, v)`.
    ///
    /// This is the trust boundary for cache files: section checksums catch
    /// media corruption, this check catches a well-formed file that simply
    /// encodes a wrong permutation.
    pub fn try_attach_reverse_index(&mut self, rev: GraphStore<usize>) -> Result<(), String> {
        if rev.len() != self.dst.len() {
            return Err(format!(
                "reverse index length {} != directed edge count {}",
                rev.len(),
                self.dst.len()
            ));
        }
        for u in 0..self.num_vertices() as u32 {
            for eid in self.offset_range(u) {
                let v = self.dst[eid] as usize;
                let r = rev[eid];
                if r < self.offsets[v] || r >= self.offsets[v + 1] || self.dst[r] != u {
                    return Err(format!(
                        "reverse index corrupt at eid {eid}: rev={r} is not e({v},{u})"
                    ));
                }
            }
        }
        self.rev = Some(rev);
        Ok(())
    }

    /// Source-vertex search `FindSrc` (Algorithm 3 lines 7–15): the vertex
    /// `u` whose offset range contains `eid`, amortized via the caller-owned
    /// stash `u_hint` (the previously found source).
    ///
    /// The stash makes the common case (next edge has the same source) O(1);
    /// otherwise a binary search over the offsets plus a backward scan over
    /// zero-degree vertices finds the owner.
    #[inline]
    pub fn find_src(&self, eid: usize, u_hint: &mut u32) -> u32 {
        debug_assert!(eid < self.dst.len());
        let mut u = *u_hint as usize;
        if eid < self.offsets[u] || eid >= self.offsets[u + 1] {
            // partition_point returns the first index with offsets[i] > eid;
            // the owning vertex is that index - 1, adjusted past zero-degree
            // vertices (whose empty ranges also satisfy offsets[i] == offsets[i+1]).
            u = self.offsets.partition_point(|&o| o <= eid) - 1;
        }
        debug_assert!(
            eid >= self.offsets[u] && eid < self.offsets[u + 1],
            "find_src landed on wrong vertex"
        );
        *u_hint = u as u32;
        u as u32
    }

    /// Check the CSR invariants: monotone offsets, in-range ids, strictly
    /// ascending neighbor runs, no self-loops, and symmetry.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_structure()?;
        let n = self.num_vertices();
        for u in 0..n as u32 {
            for &v in self.neighbors(u) {
                if self.edge_offset(v, u).is_none() {
                    return Err(format!("edge ({u},{v}) not symmetric"));
                }
            }
        }
        Ok(())
    }

    /// The linear-time subset of [`CsrGraph::validate`]: monotone offsets
    /// with correct endpoints, in-range neighbor ids, strictly ascending
    /// runs, no self-loops. Everything except the `O(|E| log d)` symmetry
    /// probes — `O(|V| + |E|)` total, allocation-free.
    pub fn validate_structure(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.offsets.first() != Some(&0) || self.offsets.last() != Some(&self.dst.len()) {
            return Err("offset endpoints broken".into());
        }
        if self.offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets not monotone".into());
        }
        for u in 0..n as u32 {
            let run = self.neighbors(u);
            if run.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("neighbors of {u} not strictly ascending"));
            }
            for &v in run {
                if v as usize >= n {
                    return Err(format!("neighbor {v} of {u} out of range"));
                }
                if v == u {
                    return Err(format!("self-loop at {u}"));
                }
            }
        }
        Ok(())
    }

    /// Iterate `(eid, u, v)` over all directed edge slots.
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, u32, u32)> + '_ {
        (0..self.num_vertices() as u32)
            .flat_map(move |u| self.offset_range(u).map(move |eid| (eid, u, self.dst[eid])))
    }

    /// Total bytes of the CSR arrays (the paper's `Mem_CSR`).
    pub fn csr_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>() + self.dst.len() * 4
    }
}

/// Incremental CSR construction from a stream of undirected pairs.
///
/// [`push`](Self::push) canonicalizes each pair (drops self-loops, orients
/// as `(min, max)`) and counts both endpoint degrees on the spot, so the
/// input is walked exactly once and never staged in raw form.
/// [`finish`](Self::finish) sorts the canonical pairs, merges parallel edges
/// (correcting the affected degrees), and scatters both directions through
/// per-vertex cursors. Because the canonical pairs are globally sorted at
/// that point, every neighbor run comes out already ascending — no per-run
/// sort and no duplicate-removal rebuild copy. The streaming preparation
/// pipeline ([`crate::stream`]) uses the same two-pass scatter over
/// externally sorted runs to write CSR sections directly into a mapped
/// cache file.
#[derive(Debug)]
pub struct CsrBuilder {
    n: usize,
    deg: Vec<usize>,
    /// Canonical `(min, max)` pairs; duplicates are resolved in `finish`.
    edges: Vec<(u32, u32)>,
}

impl CsrBuilder {
    /// A builder over `n` vertices with no edges yet.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            deg: vec![0usize; n],
            edges: Vec::new(),
        }
    }

    /// Add one undirected edge. Self-loops are dropped. Panics if either
    /// endpoint is out of range for the declared vertex count.
    pub fn push(&mut self, u: u32, v: u32) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for {} vertices",
            self.n
        );
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.deg[a as usize] += 1;
        self.deg[b as usize] += 1;
        self.edges.push((a, b));
    }

    /// Sort, deduplicate, and scatter into the finished CSR.
    pub fn finish(self) -> CsrGraph {
        let Self {
            n,
            mut deg,
            mut edges,
        } = self;
        edges.sort_unstable();
        edges.dedup_by(|dup, kept| {
            if dup == kept {
                deg[dup.0 as usize] -= 1;
                deg[dup.1 as usize] -= 1;
                true
            } else {
                false
            }
        });
        let mut offsets = vec![0usize; n + 1];
        for u in 0..n {
            offsets[u + 1] = offsets[u] + deg[u];
        }
        let mut dst = vec![0u32; offsets[n]];
        let mut cursor = offsets[..n].to_vec();
        for &(u, v) in &edges {
            dst[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            dst[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Scattering globally sorted canonical edges leaves each run already
        // ascending: for vertex w, the backward neighbors u < w arrive first
        // (edges (u, w) sorted by u), then the forward neighbors (w, v) in v
        // order, and every backward value is < w < every forward value.
        debug_assert!((0..n).all(|u| {
            dst[offsets[u]..offsets[u + 1]]
                .windows(2)
                .all(|w| w[0] < w[1])
        }));
        CsrGraph {
            offsets: offsets.into(),
            dst: dst.into(),
            rev: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> CsrGraph {
        // 0-1, 0-2, 1-2 (triangle), 2-3 (tail)
        CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (0, 2), (1, 2), (2, 3)]))
    }

    #[test]
    fn basic_shape() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_undirected_edges(), 4);
        assert_eq!(g.num_directed_edges(), 8);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_and_self_loop_input() {
        let g = CsrGraph::from_undirected_pairs(
            3,
            [(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)].into_iter(),
        );
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
        g.validate().unwrap();
    }

    #[test]
    fn edge_offset_and_reverse() {
        let g = triangle_plus_tail();
        let e02 = g.edge_offset(0, 2).unwrap();
        assert_eq!(g.dst()[e02], 2);
        let e20 = g.reverse_offset(0, e02);
        assert_eq!(g.dst()[e20], 0);
        assert!(g.offset_range(2).contains(&e20));
        assert_eq!(g.edge_offset(0, 3), None);
    }

    #[test]
    fn reverse_index_matches_binary_search_everywhere() {
        use crate::generators;
        for el in [
            generators::gnm(120, 500, 11),
            generators::hub_web(150, 5.0, 2, 0.4, 6),
            EdgeList::from_pairs([(0, 1), (0, 2), (1, 2), (2, 3)]),
            EdgeList::new(0),
            EdgeList::new(7),
        ] {
            let searched = CsrGraph::from_edge_list(&el);
            let mut indexed = searched.clone();
            indexed.build_reverse_index();
            assert!(indexed.has_reverse_index());
            assert!(!searched.has_reverse_index());
            for (eid, u, v) in searched.iter_edges().collect::<Vec<_>>() {
                let want = searched.reverse_offset(u, eid);
                assert_eq!(indexed.reverse_offset(u, eid), want, "eid={eid}");
                assert_eq!(indexed.dst()[want], u);
                assert!(indexed.offset_range(v).contains(&want));
            }
            // Derived data is excluded from graph identity.
            assert_eq!(indexed, searched);
            // Idempotent.
            let before = indexed.reverse_index().unwrap().to_vec();
            indexed.build_reverse_index();
            assert_eq!(indexed.reverse_index().unwrap(), &before[..]);
        }
    }

    #[test]
    fn attach_reverse_index_validates_entries() {
        let g0 = triangle_plus_tail();
        let mut built = g0.clone();
        built.build_reverse_index();
        let good = built.reverse_index().unwrap().to_vec();

        // The genuine index attaches.
        let mut g = g0.clone();
        g.try_attach_reverse_index(good.clone().into()).unwrap();
        assert!(g.has_reverse_index());

        // Wrong length is rejected.
        let mut g = g0.clone();
        assert!(g
            .try_attach_reverse_index(good[1..].to_vec().into())
            .is_err());

        // A swapped pair of entries no longer mirrors: rejected.
        let mut bad = good.clone();
        bad.swap(0, 1);
        let mut g = g0.clone();
        let err = g.try_attach_reverse_index(bad.into()).unwrap_err();
        assert!(err.contains("reverse index corrupt"), "{err}");
        assert!(!g.has_reverse_index());

        // An out-of-run entry is rejected even if dst there matches nothing.
        let mut bad = good;
        bad[0] = g0.num_directed_edges() - 1;
        let mut g = g0;
        assert!(g.try_attach_reverse_index(bad.into()).is_err());
    }

    #[test]
    fn find_src_with_and_without_hint() {
        let g = triangle_plus_tail();
        let mut hint = 0u32;
        for (eid, u, _v) in g.iter_edges().collect::<Vec<_>>() {
            assert_eq!(g.find_src(eid, &mut hint), u, "eid={eid}");
        }
        // Cold hint pointing far away still works.
        let mut cold = 3u32;
        assert_eq!(g.find_src(0, &mut cold), 0);
        assert_eq!(cold, 0);
    }

    #[test]
    fn find_src_skips_zero_degree_vertices() {
        // Vertex 1 is isolated: 0-2, 2-3.
        let g = CsrGraph::from_undirected_pairs(4, [(0, 2), (2, 3)].into_iter());
        assert_eq!(g.degree(1), 0);
        let mut hint = 0u32;
        for (eid, u, _) in g.iter_edges().collect::<Vec<_>>() {
            let mut cold = 0u32;
            assert_eq!(g.find_src(eid, &mut cold), u, "cold eid={eid}");
            assert_eq!(g.find_src(eid, &mut hint), u, "warm eid={eid}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_directed_edges(), 0);
        g.validate().unwrap();
    }

    #[test]
    fn vertices_with_no_edges_at_ends() {
        let g = CsrGraph::from_undirected_pairs(6, [(2, 3)].into_iter());
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.degree(5), 0);
        g.validate().unwrap();
        let mut hint = 0u32;
        assert_eq!(g.find_src(0, &mut hint), 2);
        assert_eq!(g.find_src(1, &mut hint), 3);
    }

    #[test]
    fn iter_edges_covers_all_slots() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges.len(), g.num_directed_edges());
        for (eid, u, v) in edges {
            assert_eq!(g.dst()[eid], v);
            assert!(g.offset_range(u).contains(&eid));
        }
    }

    #[test]
    fn parallel_builder_matches_sequential() {
        use crate::generators;
        for el in [
            generators::gnm(300, 1200, 4),
            generators::chung_lu(200, 10.0, 2.2, 5),
            generators::hub_web(150, 5.0, 2, 0.4, 6),
            EdgeList::new(0),
            EdgeList::new(10),
        ] {
            let seq = CsrGraph::from_edge_list(&el);
            let par = CsrGraph::from_edge_list_parallel(&el);
            assert_eq!(seq, par);
            par.validate().unwrap();
        }
    }

    #[test]
    fn parallel_builder_normalizes_raw_input() {
        // Reversed orientation, duplicates, a self-loop, unsorted — the
        // parallel builder must still agree with the sequential one.
        let mut el = EdgeList::new(5);
        for &(u, v) in &[(3, 1), (1, 3), (2, 2), (4, 0), (0, 1), (0, 1)] {
            el.push(u, v);
        }
        assert!(!el.is_normalized());
        let par = CsrGraph::from_edge_list_parallel(&el);
        let seq = CsrGraph::from_edge_list(&el);
        assert_eq!(par, seq);
        par.validate().unwrap();
    }

    #[test]
    fn try_from_parts_rejects_inconsistent_parts() {
        assert!(CsrGraph::try_from_parts(vec![], vec![]).is_err());
        // Endpoint broken: last offset != dst.len().
        assert!(CsrGraph::try_from_parts(vec![0, 2], vec![1]).is_err());
        // Non-monotone offsets.
        assert!(CsrGraph::try_from_parts(vec![0, 2, 1, 3], vec![1, 2, 0]).is_err());
        // Asymmetric edge: 0 lists 1 but 1 does not list 0.
        assert!(CsrGraph::try_from_parts(vec![0, 1, 1], vec![1]).is_err());
        // A valid pair round-trips.
        let g = triangle_plus_tail();
        let ok = CsrGraph::try_from_parts(g.offsets().to_vec(), g.dst().to_vec()).unwrap();
        assert_eq!(ok, g);
    }

    #[test]
    fn csr_bytes_formula() {
        let g = triangle_plus_tail();
        assert_eq!(g.csr_bytes(), 5 * 8 + 8 * 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let _ = CsrGraph::from_undirected_pairs(2, [(0, 5)].into_iter());
    }

    #[test]
    fn builder_matches_slice_path_on_messy_input() {
        use crate::generators;
        // Raw inputs with loops, duplicates and reversed orientations: the
        // single-pass builder must agree exactly with the slice-based path.
        let messy: Vec<(u32, u32)> = vec![(3, 1), (1, 3), (2, 2), (4, 0), (0, 1), (0, 1), (1, 0)];
        let a = CsrGraph::from_undirected_pairs(5, messy.iter().copied());
        let b = CsrGraph::from_pair_slice(5, &messy);
        assert_eq!(a, b);
        a.validate().unwrap();

        for el in [
            generators::gnm(200, 900, 3),
            generators::chung_lu(150, 9.0, 2.2, 8),
        ] {
            let a = CsrGraph::from_undirected_pairs(el.num_vertices, el.iter());
            let b = CsrGraph::from_edge_list(&el);
            assert_eq!(a, b);
        }
    }
}
