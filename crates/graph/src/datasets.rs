//! Scaled-down analogues of the paper's five evaluation graphs.
//!
//! The paper's datasets (Table 1) are SNAP / WebGraph downloads of up to
//! 1.8 billion edges. This repository cannot ship them, so each dataset is
//! replaced by a seeded generator tuned to land in the same *regime* for the
//! two statistics the paper's analysis keys on:
//!
//! | analogue | paper graph    | degree shape            | skew regime (Table 2) |
//! |----------|----------------|-------------------------|-----------------------|
//! | `lj-s`   | livejournal    | power law, avg ≈ 17     | low-moderate          |
//! | `or-s`   | orkut          | power law, avg ≈ 76     | low                   |
//! | `wi-s`   | web-it         | extreme hubs, avg ≈ 28  | high                  |
//! | `tw-s`   | twitter        | heavy tail + hubs       | high (~31 % in paper) |
//! | `fr-s`   | friendster     | near-uniform, avg ≈ 29  | ≈ 0                   |
//!
//! Absolute sizes are scaled down so that the complete experiment suite runs
//! on a laptop; EXPERIMENTS.md records the actual statistics produced.

use crate::csr::CsrGraph;
use crate::edgelist::EdgeList;
use crate::generators;
use crate::stats::GraphStats;

/// Size multiplier for the dataset analogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Very small — for unit and integration tests (hundreds of vertices).
    Tiny,
    /// Default — for the repro harness (tens of thousands of vertices).
    Small,
    /// Larger — for longer benchmark runs.
    Medium,
}

impl Scale {
    fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.15,
            Scale::Small => 1.0,
            Scale::Medium => 4.0,
        }
    }

    /// Stable lower-case tag (`tiny` / `small` / `medium`), used in CLI
    /// arguments and prepared-graph cache file names.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
        }
    }
}

/// One of the five dataset analogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// livejournal-like: power law, moderate average degree.
    LjS,
    /// orkut-like: power law, high average degree.
    OrS,
    /// web-it-like: a few extreme hubs over a power-law body.
    WiS,
    /// twitter-like: heavy tail plus hubs; high skewed-intersection share.
    TwS,
    /// friendster-like: near-uniform degrees.
    FrS,
}

impl Dataset {
    /// All five, in the paper's Table 1 order.
    pub const ALL: [Dataset; 5] = [
        Dataset::LjS,
        Dataset::OrS,
        Dataset::WiS,
        Dataset::TwS,
        Dataset::FrS,
    ];

    /// Short name used in tables and CSV output.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::LjS => "lj-s",
            Dataset::OrS => "or-s",
            Dataset::WiS => "wi-s",
            Dataset::TwS => "tw-s",
            Dataset::FrS => "fr-s",
        }
    }

    /// The paper dataset this analogue stands in for.
    pub fn paper_name(self) -> &'static str {
        match self {
            Dataset::LjS => "livejournal (LJ)",
            Dataset::OrS => "orkut (OR)",
            Dataset::WiS => "web-it (WI)",
            Dataset::TwS => "twitter (TW)",
            Dataset::FrS => "friendster (FR)",
        }
    }

    /// The paper's Table 1 |V| for the original dataset.
    pub fn paper_vertices(self) -> u64 {
        match self {
            Dataset::LjS => 4_036_538,
            Dataset::OrS => 3_072_627,
            Dataset::WiS => 41_291_083,
            Dataset::TwS => 41_652_230,
            Dataset::FrS => 124_836_180,
        }
    }

    /// The paper's Table 1 |E| (directed CSR slots) for the original dataset.
    pub fn paper_edges(self) -> u64 {
        match self {
            Dataset::LjS => 34_681_189,
            Dataset::OrS => 117_185_083,
            Dataset::WiS => 583_044_292,
            Dataset::TwS => 684_500_375,
            Dataset::FrS => 1_806_067_135,
        }
    }

    /// Capacity-scaling factor for the machine models: how much smaller this
    /// analogue is than the paper's dataset (ratio of undirected edge
    /// counts; Table 1's |E| counts undirected edges — e.g. friendster's
    /// 1.806 B edges at average degree 28.9 over 124.8 M vertices). Model
    /// runs shrink cache/memory capacities by this factor so that all
    /// working-set-vs-capacity ratios match the paper's regime.
    pub fn capacity_scale(self, g: &CsrGraph) -> f64 {
        g.num_undirected_edges() as f64 / self.paper_edges() as f64
    }

    /// Generate the edge list at the given scale. Deterministic.
    pub fn edge_list(self, scale: Scale) -> EdgeList {
        let f = scale.factor();
        let n = |base: usize| ((base as f64 * f) as usize).max(64);
        match self {
            // Power law, avg degree ~17, like livejournal.
            Dataset::LjS => generators::chung_lu(n(24_000), 17.0, 2.35, xlj_seed()),
            // Power law, dense: avg degree ~50 stands in for orkut's 76.
            Dataset::OrS => generators::chung_lu(n(12_000), 60.0, 2.5, xor_seed()),
            // A couple of extreme hubs covering much of the graph + body.
            Dataset::WiS => generators::hub_web(n(24_000), 24.0, 3, 0.50, xwi_seed()),
            // Heavy tail with hubs: highest skewed-intersection share.
            Dataset::TwS => generators::hub_web(n(24_000), 24.0, 6, 0.50, xtw_seed()),
            // Near-uniform: G(n, m) with avg degree ~29.
            Dataset::FrS => {
                let nv = n(40_000);
                generators::gnm(nv, nv * 29 / 2, xfr_seed())
            }
        }
    }

    /// Generate and convert to CSR (through the parallel builder — the
    /// generators emit normalized lists, so the fan-out path applies
    /// directly). When `CNC_PREP_MEM_BYTES` is set, the conversion instead
    /// runs through the budgeted external-sort pipeline
    /// ([`crate::stream::build_csr_bounded`]), which produces the identical
    /// CSR while keeping the sort working set under the budget.
    pub fn build(self, scale: Scale) -> CsrGraph {
        let el = self.edge_list(scale);
        if let Some(cfg) = crate::stream::StreamConfig::budgeted_from_env() {
            if let Ok(g) = crate::stream::build_csr_bounded(el.num_vertices, el.iter(), &cfg) {
                return g;
            }
        }
        CsrGraph::from_edge_list_parallel(&el)
    }

    /// The shared prepared form of this dataset: reorder, remap tables and
    /// statistics computed once per process and cached on disk. See
    /// [`crate::prepare::prepared`].
    pub fn prepare(
        self,
        scale: Scale,
        policy: crate::prepare::ReorderPolicy,
    ) -> std::sync::Arc<crate::prepare::PreparedGraph> {
        crate::prepare::prepared(self, scale, policy)
    }

    /// CSR plus its Table 1 statistics.
    pub fn build_with_stats(self, scale: Scale) -> (CsrGraph, GraphStats) {
        let g = self.build(scale);
        let s = GraphStats::of(&g);
        (g, s)
    }
}

// Seeds are arbitrary but fixed so every build of the repository produces
// bit-identical analogues.
#[allow(non_snake_case)]
fn xlj_seed() -> u64 {
    0x006c_6a00
}
#[allow(non_snake_case)]
fn xor_seed() -> u64 {
    0x006f_7200
}
#[allow(non_snake_case)]
fn xwi_seed() -> u64 {
    0x0077_6900
}
#[allow(non_snake_case)]
fn xtw_seed() -> u64 {
    0x0074_7700
}
#[allow(non_snake_case)]
fn xfr_seed() -> u64 {
    0x0066_7200
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::skew_percentage;

    #[test]
    fn all_tiny_analogues_are_valid() {
        for d in Dataset::ALL {
            let g = d.build(Scale::Tiny);
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", d.name()));
            assert!(g.num_vertices() >= 64, "{} too small", d.name());
        }
    }

    #[test]
    fn analogues_are_deterministic() {
        let a = Dataset::TwS.edge_list(Scale::Tiny);
        let b = Dataset::TwS.edge_list(Scale::Tiny);
        assert_eq!(a, b);
    }

    #[test]
    fn skew_regimes_match_paper() {
        // Table 2's ordering: TW and WI are skew-heavy, FR is near zero.
        let wi = Dataset::WiS.build(Scale::Tiny);
        let tw = Dataset::TwS.build(Scale::Tiny);
        let fr = Dataset::FrS.build(Scale::Tiny);
        let (swi, stw, sfr) = (
            skew_percentage(&wi, 50),
            skew_percentage(&tw, 50),
            skew_percentage(&fr, 50),
        );
        assert!(sfr < 2.0, "fr-s should be near-uniform, got {sfr:.1}%");
        assert!(swi > 5.0, "wi-s should be skew-heavy, got {swi:.1}%");
        assert!(stw > 5.0, "tw-s should be skew-heavy, got {stw:.1}%");
    }

    #[test]
    fn scales_order_sizes() {
        let tiny = Dataset::LjS.build(Scale::Tiny);
        let small = Dataset::LjS.build(Scale::Small);
        assert!(tiny.num_vertices() < small.num_vertices());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Dataset::LjS.name(), "lj-s");
        assert_eq!(Dataset::FrS.paper_name(), "friendster (FR)");
        assert_eq!(Dataset::ALL.len(), 5);
        assert_eq!(Scale::Tiny.name(), "tiny");
        assert_eq!(Scale::Small.name(), "small");
        assert_eq!(Scale::Medium.name(), "medium");
    }

    #[test]
    fn parallel_build_matches_sequential_reference() {
        // Dataset::build routes through the parallel builder; it must stay
        // bit-identical to the sequential reference construction.
        for d in Dataset::ALL {
            let el = d.edge_list(Scale::Tiny);
            assert!(el.is_normalized(), "{} generator output", d.name());
            assert_eq!(d.build(Scale::Tiny), crate::CsrGraph::from_edge_list(&el));
        }
    }
}
