//! Graph I/O: SNAP-style edge-list text and a compact binary CSR format.
//!
//! The text loader accepts the format of SNAP downloads (the paper's LJ, OR
//! and FR sources): one `u v` pair per line, `#`-prefixed comment lines,
//! arbitrary whitespace. A user with the real datasets can therefore run
//! every experiment on them. The binary format avoids re-parsing large
//! graphs between runs.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::CsrGraph;
use crate::edgelist::EdgeList;

fn put_u64_le(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32_le(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Pop a little-endian u64 off the front of `buf`. Panics if `buf` is short;
/// all callers size their reads up front.
fn get_u64_le(buf: &mut &[u8]) -> u64 {
    let (head, tail) = buf.split_at(8);
    *buf = tail;
    u64::from_le_bytes(head.try_into().expect("split_at(8) yields 8 bytes"))
}

/// Pop a little-endian u32 off the front of `buf` (see [`get_u64_le`]).
fn get_u32_le(buf: &mut &[u8]) -> u32 {
    let (head, tail) = buf.split_at(4);
    *buf = tail;
    u32::from_le_bytes(head.try_into().expect("split_at(4) yields 4 bytes"))
}

/// Magic header of the binary CSR format.
const MAGIC: &[u8; 8] = b"CNCCSR01";

/// Read exactly `len` bytes of `what` into a fresh buffer, growing it as the
/// data arrives. Unlike `vec![0; len]` + `read_exact`, a malformed header
/// advertising an absurd element count cannot trigger a huge up-front
/// allocation (or an arithmetic panic): allocation is bounded by what the
/// reader actually yields, and a short read is an `InvalidData` error.
pub(crate) fn read_exact_vec<R: Read>(r: &mut R, len: u64, what: &str) -> io::Result<Vec<u8>> {
    let mut buf = Vec::new();
    let got = r.take(len).read_to_end(&mut buf)?;
    if got as u64 != len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("truncated {what}: expected {len} bytes, got {got}"),
        ));
    }
    Ok(buf)
}

/// Parse one line of SNAP text: `Ok(None)` for comment/blank lines,
/// `Ok(Some((u, v)))` for a data line.
///
/// A malformed line is an [`io::ErrorKind::InvalidData`] error carrying the
/// 1-based line number, the token that failed, and the full offending line.
/// Shared by the buffered reader below and the chunked streaming source in
/// [`crate::stream`], so diagnostics stay identical whichever path parses a
/// file (the streamer threads its running line count through `lineno`).
pub(crate) fn parse_edge_line(lineno: u64, line: &str) -> io::Result<Option<(u32, u32)>> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
        return Ok(None);
    }
    let bad =
        |what: String| io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: {what}"));
    let mut it = t.split_whitespace();
    match (it.next(), it.next()) {
        (Some(a), Some(b)) => {
            let u: u32 = a
                .parse()
                .map_err(|e| bad(format!("bad vertex id {a:?} ({e}) in line {t:?}")))?;
            let v: u32 = b
                .parse()
                .map_err(|e| bad(format!("bad vertex id {b:?} ({e}) in line {t:?}")))?;
            Ok(Some((u, v)))
        }
        _ => Err(bad(format!("expected two vertex ids, got {t:?}"))),
    }
}

/// Parse a SNAP-style edge list from a reader.
///
/// Lines starting with `#` (or `%`, as used by some mirrors) are comments.
/// Each data line holds two whitespace-separated vertex ids. The result is
/// normalized (undirected, deduplicated, no self-loops).
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<EdgeList> {
    let mut el = EdgeList::new(0);
    let mut buf = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0u64;
    loop {
        line.clear();
        if buf.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        if let Some((u, v)) = parse_edge_line(lineno, &line)? {
            el.push(u, v);
        }
    }
    el.normalize();
    Ok(el)
}

/// Read an edge-list file from disk (see [`read_edge_list`]).
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> io::Result<EdgeList> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Write an edge list in SNAP text format (one `u v` per line).
pub fn write_edge_list<W: Write>(el: &EdgeList, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# undirected edge list, {} vertices", el.num_vertices)?;
    for (u, v) in el.iter() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Serialize a CSR graph to the compact binary format.
///
/// Layout: magic, `|V|` and `|dst|` as u64 little-endian, the offset array
/// as u64s, the dst array as u32s.
pub fn write_csr<W: Write>(g: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut header = Vec::with_capacity(24);
    header.extend_from_slice(MAGIC);
    put_u64_le(&mut header, g.num_vertices() as u64);
    put_u64_le(&mut header, g.num_directed_edges() as u64);
    w.write_all(&header)?;
    let mut chunk = Vec::with_capacity(8 * 1024);
    for &o in g.offsets() {
        put_u64_le(&mut chunk, o as u64);
        if chunk.len() >= 8 * 1024 {
            w.write_all(&chunk)?;
            chunk.clear();
        }
    }
    w.write_all(&chunk)?;
    chunk.clear();
    for &d in g.dst() {
        put_u32_le(&mut chunk, d);
        if chunk.len() >= 8 * 1024 {
            w.write_all(&chunk)?;
            chunk.clear();
        }
    }
    w.write_all(&chunk)?;
    w.flush()
}

/// Deserialize a CSR graph written by [`write_csr`].
///
/// Any malformed input — wrong magic, truncation, or a byte stream whose
/// offsets/dst arrays violate the CSR invariants — is an
/// [`io::ErrorKind::InvalidData`] error, never a panic.
pub fn read_csr<R: Read>(reader: R) -> io::Result<CsrGraph> {
    let mut r = BufReader::new(reader);
    let mut header = [0u8; 24];
    r.read_exact(&mut header)?;
    if &header[..8] != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic: not a CNCCSR01 file",
        ));
    }
    let mut hdr = &header[8..];
    let n = get_u64_le(&mut hdr);
    let m = get_u64_le(&mut hdr);
    let offsets_raw = read_exact_vec(
        &mut r,
        n.saturating_add(1).saturating_mul(8),
        "offset array",
    )?;
    let mut offsets = Vec::with_capacity(offsets_raw.len() / 8);
    let mut buf = offsets_raw.as_slice();
    for _ in 0..=n {
        offsets.push(get_u64_le(&mut buf) as usize);
    }
    let dst_raw = read_exact_vec(&mut r, m.saturating_mul(4), "dst array")?;
    let mut dst = Vec::with_capacity(dst_raw.len() / 4);
    let mut buf = dst_raw.as_slice();
    for _ in 0..m {
        dst.push(get_u32_le(&mut buf));
    }
    CsrGraph::try_from_parts(offsets, dst)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("inconsistent CSR: {e}")))
}

/// Magic header of the binary counts format.
const COUNTS_MAGIC: &[u8; 8] = b"CNCCNT01";

/// Serialize a per-edge-slot counts array (must belong to a CSR with
/// `counts.len()` directed edge slots).
pub fn write_counts<W: Write>(counts: &[u32], writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(COUNTS_MAGIC);
    put_u64_le(&mut header, counts.len() as u64);
    w.write_all(&header)?;
    let mut chunk = Vec::with_capacity(8 * 1024);
    for &c in counts {
        put_u32_le(&mut chunk, c);
        if chunk.len() >= 8 * 1024 {
            w.write_all(&chunk)?;
            chunk.clear();
        }
    }
    w.write_all(&chunk)?;
    w.flush()
}

/// Deserialize a counts array written by [`write_counts`].
///
/// Malformed input (wrong magic, truncation, an absurd advertised length) is
/// an [`io::ErrorKind::InvalidData`] error, never a panic.
pub fn read_counts<R: Read>(reader: R) -> io::Result<Vec<u32>> {
    let mut r = BufReader::new(reader);
    let mut header = [0u8; 16];
    r.read_exact(&mut header)?;
    if &header[..8] != COUNTS_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic: not a CNCCNT01 file",
        ));
    }
    let m = get_u64_le(&mut &header[8..]);
    let raw = read_exact_vec(&mut r, m.saturating_mul(4), "counts array")?;
    let mut out = Vec::with_capacity(raw.len() / 4);
    let mut buf = raw.as_slice();
    for _ in 0..m {
        out.push(get_u32_le(&mut buf));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn text_roundtrip() {
        let el = generators::gnm(50, 120, 9);
        let mut buf = Vec::new();
        write_edge_list(&el, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(el.edges, back.edges);
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# SNAP header\n% other comment\n\n0 1\n1\t2\n  2   3  \n";
        let el = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(el.edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    /// Every malformed line shape must surface an `InvalidData` error whose
    /// message carries the 1-based line number and the offending text.
    fn assert_malformed(text: &str, lineno: u64, fragment: &str) {
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "input {text:?}");
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("line {lineno}")),
            "missing line number in {msg:?} for {text:?}"
        );
        assert!(
            msg.contains(fragment),
            "missing offending text {fragment:?} in {msg:?}"
        );
    }

    #[test]
    fn malformed_nonnumeric_first_id() {
        assert_malformed("# header\n0 1\nabc 2\n", 3, "\"abc\"");
    }

    #[test]
    fn malformed_nonnumeric_second_id() {
        assert_malformed("0 1\n2 x7\n", 2, "\"x7\"");
    }

    #[test]
    fn malformed_single_token() {
        assert_malformed("0 1\n\n42\n", 3, "\"42\"");
    }

    #[test]
    fn malformed_overflowing_id() {
        // 2^32 does not fit a u32 vertex id.
        assert_malformed("4294967296 0\n", 1, "\"4294967296\"");
    }

    #[test]
    fn malformed_negative_id() {
        assert_malformed("0 1\n-3 4\n", 2, "\"-3\"");
    }

    #[test]
    fn malformed_line_reports_full_line_text() {
        // The whole line, not just the bad token, appears in the message.
        assert_malformed("0 1\n7 bad_token trailing\n", 2, "\"7 bad_token trailing\"");
    }

    #[test]
    fn binary_roundtrip() {
        let g = CsrGraph::from_edge_list(&generators::chung_lu(300, 8.0, 2.3, 4));
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        let back = read_csr(buf.as_slice()).unwrap();
        assert_eq!(g, back);
        back.validate().unwrap();
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTAMAGIC_______plus_more_bytes_________".to_vec();
        assert!(read_csr(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_truncated() {
        let g = CsrGraph::from_edge_list(&generators::gnm(20, 40, 2));
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_csr(buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_invalid_csr_with_valid_magic() {
        // Valid magic and lengths but inconsistent offsets: must be an
        // InvalidData error, not a panic out of CsrGraph::from_parts.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u64_le(&mut buf, 1); // |V| = 1
        put_u64_le(&mut buf, 1); // |dst| = 1
        put_u64_le(&mut buf, 0); // offsets[0]
        put_u64_le(&mut buf, 2); // offsets[1] — endpoint != |dst|
        put_u32_le(&mut buf, 0);
        let err = read_csr(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // Asymmetric adjacency behind a well-formed header.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u64_le(&mut buf, 2); // |V| = 2
        put_u64_le(&mut buf, 1); // |dst| = 1
        for o in [0u64, 1, 1] {
            put_u64_le(&mut buf, o);
        }
        put_u32_le(&mut buf, 1); // 0 → 1 but no 1 → 0
        let err = read_csr(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn binary_rejects_absurd_advertised_sizes() {
        // A header claiming u64::MAX vertices must fail cleanly instead of
        // panicking on size arithmetic or attempting a huge allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u64_le(&mut buf, u64::MAX);
        put_u64_le(&mut buf, u64::MAX);
        let err = read_csr(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let mut buf = Vec::new();
        buf.extend_from_slice(COUNTS_MAGIC);
        put_u64_le(&mut buf, u64::MAX);
        let err = read_counts(buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn counts_roundtrip() {
        let counts: Vec<u32> = (0..5000).map(|x| x * 7 % 113).collect();
        let mut buf = Vec::new();
        write_counts(&counts, &mut buf).unwrap();
        assert_eq!(read_counts(buf.as_slice()).unwrap(), counts);
        // Empty counts work too.
        let mut buf = Vec::new();
        write_counts(&[], &mut buf).unwrap();
        assert!(read_counts(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn counts_reject_wrong_magic_and_truncation() {
        assert!(read_counts(b"WRONGMAGIC______".as_slice()).is_err());
        let mut buf = Vec::new();
        write_counts(&[1, 2, 3], &mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_counts(buf.as_slice()).is_err());
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = CsrGraph::from_edge_list(&EdgeList::new(0));
        let mut buf = Vec::new();
        write_csr(&g, &mut buf).unwrap();
        let back = read_csr(buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 0);
    }

    use crate::edgelist::EdgeList;
}
