//! Minimal in-tree `mmap(2)` / `flock(2)` bindings for the zero-copy
//! prepared-graph cache.
//!
//! The build environment is fully offline (see the workspace shims policy in
//! `Cargo.toml`), so instead of the `memmap2`/`fs2` crates this module binds
//! the three syscalls the cache needs directly through `extern "C"` — libc is
//! already linked by `std` on every supported platform. All `unsafe` in the
//! crate lives in this file; the rest of the workspace stays
//! `deny(unsafe_code)`-clean.
//!
//! Three exports:
//!
//! * [`MappedFile`] — a whole file mapped read-only (`PROT_READ`,
//!   `MAP_PRIVATE`), held behind an `Arc`. Opening takes a **shared**
//!   advisory `flock` on the file that lives as long as the mapping, which is
//!   how the cache GC knows a file is in use by a reader.
//! * [`MappedSlice`] — a typed `&[T]` view of a 64-byte-aligned region inside
//!   a [`MappedFile`]; the `Arc` keeps the mapping (and the reader lock)
//!   alive for as long as any slice exists.
//! * [`FileLock`] — an exclusive advisory `flock` with RAII release, used to
//!   serialize cache writers across processes.
//!
//! On non-Unix platforms [`MappedFile::open`] returns
//! [`io::ErrorKind::Unsupported`] (callers fall back to owned heap reads) and
//! [`FileLock`] degrades to a lock-free no-op, so the cache protocol still
//! works single-process.
#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::marker::PhantomData;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Alignment guaranteed for every section of the `CNCPREP2` cache format;
/// also satisfies every element type [`Pod`] is implemented for.
pub const SECTION_ALIGN: usize = 64;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for usize {}
}

/// Element types that may be read directly out of a mapped byte region:
/// plain-old-data integers with no invalid bit patterns, no padding, and no
/// drop glue. Sealed — the soundness of [`MappedSlice`] depends on the
/// implementor list staying exactly this.
pub trait Pod: sealed::Sealed + Copy + Send + Sync + 'static {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for usize {}

/// Whether this platform can serve `u64`-typed file sections as `&[usize]`
/// without conversion: 64-bit little-endian targets only. Elsewhere the
/// cache silently falls back to owned heap loads.
pub fn zero_copy_layout() -> bool {
    cfg!(target_endian = "little") && std::mem::size_of::<usize>() == 8
}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const PROT_WRITE: c_int = 0x2;
    pub const MAP_SHARED: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x2;
    pub const LOCK_SH: c_int = 1;
    pub const LOCK_EX: c_int = 2;
    pub const LOCK_NB: c_int = 4;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn flock(fd: c_int, operation: c_int) -> c_int;
    }
}

#[cfg(unix)]
fn flock_fd(file: &File, operation: std::ffi::c_int) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;
    // Restart on EINTR: a blocking flock may be interrupted by signals.
    loop {
        let rc = unsafe { sys::flock(file.as_raw_fd(), operation) };
        if rc == 0 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A read-only memory mapping of an entire file.
///
/// The mapping is `MAP_PRIVATE` + `PROT_READ`: the bytes are immutable
/// through this handle and never written back. The opened [`File`] is kept
/// (it holds the shared advisory lock and, on Unix, pins the inode), and the
/// region is `munmap`ed on drop.
#[derive(Debug)]
pub struct MappedFile {
    ptr: *mut u8,
    len: usize,
    /// Keeps the fd (and its shared `flock`) alive as long as the mapping.
    _file: File,
}

// SAFETY: the mapping is read-only for its entire lifetime and the raw
// pointer is only exposed as `&[u8]`/`&[T]` borrows of `self`.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Map `path` read-only, taking a shared advisory `flock` that is held
    /// until the mapping is dropped.
    ///
    /// Errors with [`io::ErrorKind::Unsupported`] on non-Unix platforms so
    /// callers can fall back to an owned read.
    #[cfg(unix)]
    pub fn open(path: &Path) -> io::Result<Arc<Self>> {
        use std::os::unix::io::AsRawFd;

        let file = File::open(path)?;
        flock_fd(&file, sys::LOCK_SH)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty file maps to an
            // empty (dangling but never dereferenced) region.
            return Ok(Arc::new(Self {
                ptr: std::ptr::null_mut(),
                len: 0,
                _file: file,
            }));
        }
        // SAFETY: fd is a valid open file of at least `len` bytes; we request
        // a fresh PROT_READ private mapping at a kernel-chosen address.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(io::Error::last_os_error());
        }
        Ok(Arc::new(Self {
            ptr: ptr.cast(),
            len,
            _file: file,
        }))
    }

    /// Non-Unix fallback: mapping is unavailable, callers use owned reads.
    #[cfg(not(unix))]
    pub fn open(_path: &Path) -> io::Result<Arc<Self>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory mapping is only wired up on Unix platforms",
        ))
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes
        // owned by `self`; the borrow ties the slice to the mapping.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A typed view of `count` elements of `T` starting at byte `offset`,
    /// sharing ownership of the mapping.
    ///
    /// Errors (never panics) on out-of-bounds ranges, misaligned offsets, or
    /// arithmetic overflow — the inputs come from untrusted file headers.
    pub fn typed_slice<T: Pod>(
        self: &Arc<Self>,
        offset: usize,
        count: usize,
    ) -> io::Result<MappedSlice<T>> {
        let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let byte_len = count
            .checked_mul(std::mem::size_of::<T>())
            .ok_or_else(|| invalid("typed slice length overflows"))?;
        let end = offset
            .checked_add(byte_len)
            .ok_or_else(|| invalid("typed slice range overflows"))?;
        if end > self.len {
            return Err(invalid("typed slice out of the mapped range"));
        }
        let ptr = if self.len == 0 {
            std::ptr::NonNull::<T>::dangling().as_ptr() as *const T
        } else {
            // SAFETY: offset <= end <= len, so the pointer stays inside (or
            // one past) the mapping.
            unsafe { self.ptr.add(offset) as *const T }
        };
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(invalid("typed slice is misaligned for its element type"));
        }
        Ok(MappedSlice {
            ptr,
            len: count,
            _map: Arc::clone(self),
            _elem: PhantomData,
        })
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len != 0 {
            // SAFETY: `ptr`/`len` describe the mapping created in `open`,
            // unmapped exactly once here.
            unsafe {
                sys::munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

/// A `&[T]` view into a [`MappedFile`], keeping the mapping alive.
///
/// Dereferences to a slice; cloning is an `Arc` bump.
#[derive(Debug, Clone)]
pub struct MappedSlice<T: Pod> {
    ptr: *const T,
    len: usize,
    _map: Arc<MappedFile>,
    _elem: PhantomData<T>,
}

// SAFETY: the underlying memory is immutable and `T: Pod` is Send + Sync.
unsafe impl<T: Pod> Send for MappedSlice<T> {}
unsafe impl<T: Pod> Sync for MappedSlice<T> {}

impl<T: Pod> Deref for MappedSlice<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: construction checked bounds and alignment against the
        // mapping, `_map` keeps the memory alive, and `T: Pod` admits every
        // bit pattern.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// A read-write, *growable* memory mapping of a file, used by the streaming
/// preparation pipeline to assemble a `CNCPREP` cache file section by
/// section without an O(|E|) heap staging copy.
///
/// The mapping is `MAP_SHARED` + `PROT_READ|PROT_WRITE`: stores through
/// [`bytes_mut`](Self::bytes_mut) land in the page cache and reach the file.
/// [`grow`](Self::grow) extends the file (`File::set_len`) and remaps — the
/// two-pass CSR builder creates the file small, then grows it once the
/// degree pass has fixed every section size. [`into_file`](Self::into_file)
/// unmaps and hands the descriptor back so the caller can `sync_all` (which
/// flushes mmap-dirtied pages on Linux) and atomically rename into place.
///
/// Not `Sync`: the builder writes single-threaded. On non-Unix platforms
/// [`create`](Self::create) returns [`io::ErrorKind::Unsupported`] and
/// callers fall back to the in-memory build path.
#[derive(Debug)]
pub struct MappedFileMut {
    ptr: *mut u8,
    len: usize,
    file: Option<File>,
}

// SAFETY: the raw pointer is only dereferenced through `&self`/`&mut self`
// borrows; moving the handle across threads is fine. Deliberately not Sync —
// `bytes_mut` would otherwise allow aliased mutation.
unsafe impl Send for MappedFileMut {}

impl MappedFileMut {
    /// Create (truncating) `path` at `len` bytes and map it read-write.
    ///
    /// Errors with [`io::ErrorKind::Unsupported`] on non-Unix platforms so
    /// callers can fall back to an owned in-memory build.
    #[cfg(unix)]
    pub fn create(path: &Path, len: usize) -> io::Result<Self> {
        let file = File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut this = Self {
            ptr: std::ptr::null_mut(),
            len: 0,
            file: Some(file),
        };
        this.grow(len)?;
        Ok(this)
    }

    /// Non-Unix fallback: write-mode mapping is unavailable.
    #[cfg(not(unix))]
    pub fn create(_path: &Path, _len: usize) -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "write-mode memory mapping is only wired up on Unix platforms",
        ))
    }

    fn file(&self) -> &File {
        // The Option is only vacated by `into_file`, which consumes `self`.
        self.file.as_ref().expect("file present until into_file")
    }

    fn unmap(&mut self) {
        #[cfg(unix)]
        if self.len != 0 {
            // SAFETY: `ptr`/`len` describe the live mapping created by
            // `grow`; unmapped exactly once before being overwritten/dropped.
            unsafe {
                sys::munmap(self.ptr.cast(), self.len);
            }
        }
        self.ptr = std::ptr::null_mut();
        self.len = 0;
    }

    /// Extend the file to `new_len` bytes (zero-filled) and remap.
    ///
    /// Shrinking is rejected: live references into the tail would become
    /// dangling file offsets.
    #[cfg(unix)]
    pub fn grow(&mut self, new_len: usize) -> io::Result<()> {
        use std::os::unix::io::AsRawFd;

        if new_len < self.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("cannot shrink mapping from {} to {new_len} bytes", self.len),
            ));
        }
        if new_len == self.len {
            return Ok(());
        }
        self.unmap();
        self.file().set_len(new_len as u64)?;
        // SAFETY: fd is a valid open file of exactly `new_len` bytes; we
        // request a fresh shared read-write mapping at a kernel-chosen
        // address.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                new_len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_SHARED,
                self.file().as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(io::Error::last_os_error());
        }
        self.ptr = ptr.cast();
        self.len = new_len;
        Ok(())
    }

    /// Non-Unix fallback (unreachable: `create` already failed).
    #[cfg(not(unix))]
    pub fn grow(&mut self, _new_len: usize) -> io::Result<()> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "write-mode memory mapping is only wired up on Unix platforms",
        ))
    }

    /// The mapped bytes, writable.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        if self.len == 0 {
            return &mut [];
        }
        // SAFETY: `ptr` is a live PROT_READ|PROT_WRITE mapping of exactly
        // `len` bytes owned by `self`; the exclusive borrow ties the slice to
        // the mapping and prevents aliasing.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// The mapped bytes, read-only.
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: as in `bytes_mut`, with a shared borrow.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Unmap and return the file handle so the caller can `sync_all` and
    /// rename the finished file into place.
    pub fn into_file(mut self) -> File {
        self.unmap();
        self.file.take().expect("file present until into_file")
    }
}

impl Drop for MappedFileMut {
    fn drop(&mut self) {
        self.unmap();
    }
}

/// An exclusive advisory lock on a file, released on drop (or process exit).
///
/// `flock` semantics: cooperating processes (and separate opens within one
/// process) exclude each other; the lock never blocks non-cooperating I/O.
#[derive(Debug)]
pub struct FileLock {
    _file: File,
}

impl FileLock {
    fn open_lock_file(path: &Path) -> io::Result<File> {
        File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
    }

    /// Take an exclusive lock on `path` (creating the file if absent),
    /// blocking until it is available.
    pub fn exclusive(path: &Path) -> io::Result<Self> {
        let file = Self::open_lock_file(path)?;
        #[cfg(unix)]
        flock_fd(&file, sys::LOCK_EX)?;
        Ok(Self { _file: file })
    }

    /// Try to take an exclusive lock on `path` without blocking. `Ok(None)`
    /// means some other holder (a mapped reader or another writer) has it.
    pub fn try_exclusive(path: &Path) -> io::Result<Option<Self>> {
        let file = Self::open_lock_file(path)?;
        #[cfg(unix)]
        {
            let rc = flock_fd(&file, sys::LOCK_EX | sys::LOCK_NB);
            if let Err(e) = rc {
                return if e.kind() == io::ErrorKind::WouldBlock {
                    Ok(None)
                } else {
                    Err(e)
                };
            }
        }
        Ok(Some(Self { _file: file }))
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_file(name: &str, bytes: &[u8]) -> PathBuf {
        let path = std::env::temp_dir().join(format!("cnc-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_file_bytes_exactly() {
        let data: Vec<u8> = (0..=255).collect();
        let path = temp_file("exact", &data);
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.bytes(), data.as_slice());
        assert_eq!(map.len(), 256);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = temp_file("empty", &[]);
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        assert!(map.typed_slice::<u64>(0, 0).unwrap().is_empty());
        assert!(map.typed_slice::<u64>(0, 1).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn typed_slices_decode_little_endian_payload() {
        let mut bytes = Vec::new();
        for v in [1u64, u64::MAX, 42] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for v in [7u32, 0, u32::MAX] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = temp_file("typed", &bytes);
        let map = MappedFile::open(&path).unwrap();
        let words = map.typed_slice::<u64>(0, 3).unwrap();
        assert_eq!(&*words, &[1, u64::MAX, 42]);
        let ints = map.typed_slice::<u32>(24, 3).unwrap();
        assert_eq!(&*ints, &[7, 0, u32::MAX]);
        // The slice keeps the mapping alive after the Arc handle is gone.
        drop(map);
        assert_eq!(words[2], 42);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn typed_slice_rejects_bad_ranges() {
        let path = temp_file("ranges", &[0u8; 64]);
        let map = MappedFile::open(&path).unwrap();
        assert!(map.typed_slice::<u64>(0, 9).is_err(), "out of bounds");
        assert!(map.typed_slice::<u64>(3, 1).is_err(), "misaligned");
        assert!(
            map.typed_slice::<u64>(usize::MAX, 1).is_err(),
            "range overflow"
        );
        assert!(
            map.typed_slice::<u64>(0, usize::MAX).is_err(),
            "length overflow"
        );
        assert!(map.typed_slice::<u32>(60, 1).is_ok(), "tail u32 fits");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mut_mapping_grows_and_persists_writes() {
        let path = std::env::temp_dir().join(format!("cnc-mmap-mut-{}", std::process::id()));
        let mut map = MappedFileMut::create(&path, 64).unwrap();
        assert_eq!(map.len(), 64);
        map.bytes_mut()[..4].copy_from_slice(&[1, 2, 3, 4]);
        // Growing remaps: the early write must survive, the tail reads zero.
        map.grow(4096).unwrap();
        assert_eq!(&map.bytes()[..4], &[1, 2, 3, 4]);
        assert_eq!(map.bytes()[4095], 0);
        map.bytes_mut()[4095] = 9;
        assert!(map.grow(10).is_err(), "shrinking must be rejected");
        let file = map.into_file();
        file.sync_all().unwrap();
        drop(file);
        let back = std::fs::read(&path).unwrap();
        assert_eq!(back.len(), 4096);
        assert_eq!(&back[..4], &[1, 2, 3, 4]);
        assert_eq!(back[4095], 9);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mut_mapping_zero_length_is_usable() {
        let path = std::env::temp_dir().join(format!("cnc-mmap-mut0-{}", std::process::id()));
        let mut map = MappedFileMut::create(&path, 0).unwrap();
        assert!(map.is_empty());
        assert!(map.bytes_mut().is_empty());
        map.grow(8).unwrap();
        map.bytes_mut().copy_from_slice(&7u64.to_le_bytes());
        drop(map); // Drop (not into_file) must still unmap cleanly.
        assert_eq!(std::fs::read(&path).unwrap(), 7u64.to_le_bytes());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exclusive_locks_exclude_each_other() {
        let path = std::env::temp_dir().join(format!("cnc-mmap-lock-{}", std::process::id()));
        let a = FileLock::try_exclusive(&path).unwrap();
        assert!(a.is_some(), "first lock must succeed");
        assert!(
            FileLock::try_exclusive(&path).unwrap().is_none(),
            "second exclusive lock must be refused (flock is per open-file-description)"
        );
        drop(a);
        assert!(FileLock::try_exclusive(&path).unwrap().is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_reader_blocks_exclusive_lock() {
        let path = temp_file("readerlock", &[1, 2, 3, 4]);
        let map = MappedFile::open(&path).unwrap();
        assert!(
            FileLock::try_exclusive(&path).unwrap().is_none(),
            "a live mapping holds a shared lock"
        );
        drop(map);
        assert!(FileLock::try_exclusive(&path).unwrap().is_some());
        let _ = std::fs::remove_file(&path);
    }
}
