//! Minimal in-tree `mmap(2)` / `flock(2)` bindings for the zero-copy
//! prepared-graph cache.
//!
//! The build environment is fully offline (see the workspace shims policy in
//! `Cargo.toml`), so instead of the `memmap2`/`fs2` crates this module binds
//! the three syscalls the cache needs directly through `extern "C"` — libc is
//! already linked by `std` on every supported platform. All `unsafe` in the
//! crate lives in this file; the rest of the workspace stays
//! `deny(unsafe_code)`-clean.
//!
//! Three exports:
//!
//! * [`MappedFile`] — a whole file mapped read-only (`PROT_READ`,
//!   `MAP_PRIVATE`), held behind an `Arc`. Opening takes a **shared**
//!   advisory `flock` on the file that lives as long as the mapping, which is
//!   how the cache GC knows a file is in use by a reader.
//! * [`MappedSlice`] — a typed `&[T]` view of a 64-byte-aligned region inside
//!   a [`MappedFile`]; the `Arc` keeps the mapping (and the reader lock)
//!   alive for as long as any slice exists.
//! * [`FileLock`] — an exclusive advisory `flock` with RAII release, used to
//!   serialize cache writers across processes.
//!
//! On non-Unix platforms [`MappedFile::open`] returns
//! [`io::ErrorKind::Unsupported`] (callers fall back to owned heap reads) and
//! [`FileLock`] degrades to a lock-free no-op, so the cache protocol still
//! works single-process.
#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::marker::PhantomData;
use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// Alignment guaranteed for every section of the `CNCPREP2` cache format;
/// also satisfies every element type [`Pod`] is implemented for.
pub const SECTION_ALIGN: usize = 64;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for usize {}
}

/// Element types that may be read directly out of a mapped byte region:
/// plain-old-data integers with no invalid bit patterns, no padding, and no
/// drop glue. Sealed — the soundness of [`MappedSlice`] depends on the
/// implementor list staying exactly this.
pub trait Pod: sealed::Sealed + Copy + Send + Sync + 'static {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for usize {}

/// Whether this platform can serve `u64`-typed file sections as `&[usize]`
/// without conversion: 64-bit little-endian targets only. Elsewhere the
/// cache silently falls back to owned heap loads.
pub fn zero_copy_layout() -> bool {
    cfg!(target_endian = "little") && std::mem::size_of::<usize>() == 8
}

#[cfg(unix)]
mod sys {
    use std::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x2;
    pub const LOCK_SH: c_int = 1;
    pub const LOCK_EX: c_int = 2;
    pub const LOCK_NB: c_int = 4;

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
        pub fn flock(fd: c_int, operation: c_int) -> c_int;
    }
}

#[cfg(unix)]
fn flock_fd(file: &File, operation: std::ffi::c_int) -> io::Result<()> {
    use std::os::unix::io::AsRawFd;
    // Restart on EINTR: a blocking flock may be interrupted by signals.
    loop {
        let rc = unsafe { sys::flock(file.as_raw_fd(), operation) };
        if rc == 0 {
            return Ok(());
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A read-only memory mapping of an entire file.
///
/// The mapping is `MAP_PRIVATE` + `PROT_READ`: the bytes are immutable
/// through this handle and never written back. The opened [`File`] is kept
/// (it holds the shared advisory lock and, on Unix, pins the inode), and the
/// region is `munmap`ed on drop.
#[derive(Debug)]
pub struct MappedFile {
    ptr: *mut u8,
    len: usize,
    /// Keeps the fd (and its shared `flock`) alive as long as the mapping.
    _file: File,
}

// SAFETY: the mapping is read-only for its entire lifetime and the raw
// pointer is only exposed as `&[u8]`/`&[T]` borrows of `self`.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Map `path` read-only, taking a shared advisory `flock` that is held
    /// until the mapping is dropped.
    ///
    /// Errors with [`io::ErrorKind::Unsupported`] on non-Unix platforms so
    /// callers can fall back to an owned read.
    #[cfg(unix)]
    pub fn open(path: &Path) -> io::Result<Arc<Self>> {
        use std::os::unix::io::AsRawFd;

        let file = File::open(path)?;
        flock_fd(&file, sys::LOCK_SH)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty file maps to an
            // empty (dangling but never dereferenced) region.
            return Ok(Arc::new(Self {
                ptr: std::ptr::null_mut(),
                len: 0,
                _file: file,
            }));
        }
        // SAFETY: fd is a valid open file of at least `len` bytes; we request
        // a fresh PROT_READ private mapping at a kernel-chosen address.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() {
            return Err(io::Error::last_os_error());
        }
        Ok(Arc::new(Self {
            ptr: ptr.cast(),
            len,
            _file: file,
        }))
    }

    /// Non-Unix fallback: mapping is unavailable, callers use owned reads.
    #[cfg(not(unix))]
    pub fn open(_path: &Path) -> io::Result<Arc<Self>> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "memory mapping is only wired up on Unix platforms",
        ))
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is a live PROT_READ mapping of exactly `len` bytes
        // owned by `self`; the borrow ties the slice to the mapping.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A typed view of `count` elements of `T` starting at byte `offset`,
    /// sharing ownership of the mapping.
    ///
    /// Errors (never panics) on out-of-bounds ranges, misaligned offsets, or
    /// arithmetic overflow — the inputs come from untrusted file headers.
    pub fn typed_slice<T: Pod>(
        self: &Arc<Self>,
        offset: usize,
        count: usize,
    ) -> io::Result<MappedSlice<T>> {
        let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let byte_len = count
            .checked_mul(std::mem::size_of::<T>())
            .ok_or_else(|| invalid("typed slice length overflows"))?;
        let end = offset
            .checked_add(byte_len)
            .ok_or_else(|| invalid("typed slice range overflows"))?;
        if end > self.len {
            return Err(invalid("typed slice out of the mapped range"));
        }
        let ptr = if self.len == 0 {
            std::ptr::NonNull::<T>::dangling().as_ptr() as *const T
        } else {
            // SAFETY: offset <= end <= len, so the pointer stays inside (or
            // one past) the mapping.
            unsafe { self.ptr.add(offset) as *const T }
        };
        if !(ptr as usize).is_multiple_of(std::mem::align_of::<T>()) {
            return Err(invalid("typed slice is misaligned for its element type"));
        }
        Ok(MappedSlice {
            ptr,
            len: count,
            _map: Arc::clone(self),
            _elem: PhantomData,
        })
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if self.len != 0 {
            // SAFETY: `ptr`/`len` describe the mapping created in `open`,
            // unmapped exactly once here.
            unsafe {
                sys::munmap(self.ptr.cast(), self.len);
            }
        }
    }
}

/// A `&[T]` view into a [`MappedFile`], keeping the mapping alive.
///
/// Dereferences to a slice; cloning is an `Arc` bump.
#[derive(Debug, Clone)]
pub struct MappedSlice<T: Pod> {
    ptr: *const T,
    len: usize,
    _map: Arc<MappedFile>,
    _elem: PhantomData<T>,
}

// SAFETY: the underlying memory is immutable and `T: Pod` is Send + Sync.
unsafe impl<T: Pod> Send for MappedSlice<T> {}
unsafe impl<T: Pod> Sync for MappedSlice<T> {}

impl<T: Pod> Deref for MappedSlice<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: construction checked bounds and alignment against the
        // mapping, `_map` keeps the memory alive, and `T: Pod` admits every
        // bit pattern.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

/// An exclusive advisory lock on a file, released on drop (or process exit).
///
/// `flock` semantics: cooperating processes (and separate opens within one
/// process) exclude each other; the lock never blocks non-cooperating I/O.
#[derive(Debug)]
pub struct FileLock {
    _file: File,
}

impl FileLock {
    fn open_lock_file(path: &Path) -> io::Result<File> {
        File::options()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
    }

    /// Take an exclusive lock on `path` (creating the file if absent),
    /// blocking until it is available.
    pub fn exclusive(path: &Path) -> io::Result<Self> {
        let file = Self::open_lock_file(path)?;
        #[cfg(unix)]
        flock_fd(&file, sys::LOCK_EX)?;
        Ok(Self { _file: file })
    }

    /// Try to take an exclusive lock on `path` without blocking. `Ok(None)`
    /// means some other holder (a mapped reader or another writer) has it.
    pub fn try_exclusive(path: &Path) -> io::Result<Option<Self>> {
        let file = Self::open_lock_file(path)?;
        #[cfg(unix)]
        {
            let rc = flock_fd(&file, sys::LOCK_EX | sys::LOCK_NB);
            if let Err(e) = rc {
                return if e.kind() == io::ErrorKind::WouldBlock {
                    Ok(None)
                } else {
                    Err(e)
                };
            }
        }
        Ok(Some(Self { _file: file }))
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_file(name: &str, bytes: &[u8]) -> PathBuf {
        let path = std::env::temp_dir().join(format!("cnc-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_file_bytes_exactly() {
        let data: Vec<u8> = (0..=255).collect();
        let path = temp_file("exact", &data);
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(map.bytes(), data.as_slice());
        assert_eq!(map.len(), 256);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = temp_file("empty", &[]);
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        assert!(map.typed_slice::<u64>(0, 0).unwrap().is_empty());
        assert!(map.typed_slice::<u64>(0, 1).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn typed_slices_decode_little_endian_payload() {
        let mut bytes = Vec::new();
        for v in [1u64, u64::MAX, 42] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for v in [7u32, 0, u32::MAX] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = temp_file("typed", &bytes);
        let map = MappedFile::open(&path).unwrap();
        let words = map.typed_slice::<u64>(0, 3).unwrap();
        assert_eq!(&*words, &[1, u64::MAX, 42]);
        let ints = map.typed_slice::<u32>(24, 3).unwrap();
        assert_eq!(&*ints, &[7, 0, u32::MAX]);
        // The slice keeps the mapping alive after the Arc handle is gone.
        drop(map);
        assert_eq!(words[2], 42);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn typed_slice_rejects_bad_ranges() {
        let path = temp_file("ranges", &[0u8; 64]);
        let map = MappedFile::open(&path).unwrap();
        assert!(map.typed_slice::<u64>(0, 9).is_err(), "out of bounds");
        assert!(map.typed_slice::<u64>(3, 1).is_err(), "misaligned");
        assert!(
            map.typed_slice::<u64>(usize::MAX, 1).is_err(),
            "range overflow"
        );
        assert!(
            map.typed_slice::<u64>(0, usize::MAX).is_err(),
            "length overflow"
        );
        assert!(map.typed_slice::<u32>(60, 1).is_ok(), "tail u32 fits");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn exclusive_locks_exclude_each_other() {
        let path = std::env::temp_dir().join(format!("cnc-mmap-lock-{}", std::process::id()));
        let a = FileLock::try_exclusive(&path).unwrap();
        assert!(a.is_some(), "first lock must succeed");
        assert!(
            FileLock::try_exclusive(&path).unwrap().is_none(),
            "second exclusive lock must be refused (flock is per open-file-description)"
        );
        drop(a);
        assert!(FileLock::try_exclusive(&path).unwrap().is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_reader_blocks_exclusive_lock() {
        let path = temp_file("readerlock", &[1, 2, 3, 4]);
        let map = MappedFile::open(&path).unwrap();
        assert!(
            FileLock::try_exclusive(&path).unwrap().is_none(),
            "a live mapping holds a shared lock"
        );
        drop(map);
        assert!(FileLock::try_exclusive(&path).unwrap().is_some());
        let _ = std::fs::remove_file(&path);
    }
}
