//! Raw undirected edge collections.

/// A collection of undirected edges over vertices `0..num_vertices`.
///
/// The canonical internal form after [`EdgeList::normalize`] is: no
/// self-loops, each undirected edge stored once as `(min, max)`, sorted,
/// deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    /// Undirected edges. After normalization, `u < v` for every `(u, v)`.
    pub edges: Vec<(u32, u32)>,
    /// Number of vertices (ids are `< num_vertices`).
    pub num_vertices: usize,
}

impl EdgeList {
    /// An edge list over `num_vertices` ids with no edges yet.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            edges: Vec::new(),
            num_vertices,
        }
    }

    /// Build from raw pairs; infers `num_vertices` from the largest id and
    /// normalizes. The iterator is consumed in a single pass that tracks the
    /// maximum id while collecting — no second walk over the staged edges.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let iter = pairs.into_iter();
        let (lo, _) = iter.size_hint();
        let mut el = Self {
            edges: Vec::with_capacity(lo),
            num_vertices: 0,
        };
        for (u, v) in iter {
            el.num_vertices = el.num_vertices.max(u.max(v) as usize + 1);
            el.edges.push((u, v));
        }
        el.normalize();
        el
    }

    /// Add one undirected edge; ids may exceed the current vertex count, in
    /// which case the count grows.
    pub fn push(&mut self, u: u32, v: u32) {
        self.num_vertices = self.num_vertices.max(u.max(v) as usize + 1);
        self.edges.push((u, v));
    }

    /// Canonicalize: drop self-loops, orient each edge as `(min, max)`,
    /// sort, and deduplicate parallel edges.
    pub fn normalize(&mut self) {
        self.edges.retain(|&(u, v)| u != v);
        for e in &mut self.edges {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        }
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Whether the list is already in canonical form: every edge oriented
    /// as `(min, max)` with `u < v`, sorted, and deduplicated — exactly what
    /// [`EdgeList::normalize`] produces. The parallel CSR builder requires
    /// this form and uses the check to normalize a copy when it is not met.
    pub fn is_normalized(&self) -> bool {
        self.edges.iter().all(|&(u, v)| u < v) && self.edges.windows(2).all(|w| w[0] < w[1])
    }

    /// Number of undirected edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if there are no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterate over the undirected edges.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.edges.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_normalizes() {
        let el = EdgeList::from_pairs([(2, 1), (1, 2), (3, 3), (0, 4), (4, 0)]);
        assert_eq!(el.edges, vec![(0, 4), (1, 2)]);
        assert_eq!(el.num_vertices, 5);
    }

    #[test]
    fn push_grows_vertex_count() {
        let mut el = EdgeList::new(2);
        el.push(0, 1);
        el.push(5, 3);
        assert_eq!(el.num_vertices, 6);
        el.normalize();
        assert_eq!(el.edges, vec![(0, 1), (3, 5)]);
    }

    #[test]
    fn empty_list() {
        let el = EdgeList::from_pairs(std::iter::empty());
        assert!(el.is_empty());
        assert_eq!(el.num_vertices, 0);
    }

    #[test]
    fn is_normalized_tracks_canonical_form() {
        let mut el = EdgeList::new(4);
        assert!(el.is_normalized(), "empty list is canonical");
        el.push(2, 1);
        assert!(!el.is_normalized(), "reversed orientation");
        el.normalize();
        assert!(el.is_normalized());
        el.push(1, 2);
        assert!(!el.is_normalized(), "duplicate edge");
        el.normalize();
        el.push(0, 1);
        assert!(!el.is_normalized(), "unsorted");
        el.normalize();
        assert!(el.is_normalized());
    }

    #[test]
    fn self_loops_removed() {
        let el = EdgeList::from_pairs([(7, 7), (7, 8)]);
        assert_eq!(el.len(), 1);
        assert_eq!(el.edges[0], (7, 8));
    }
}
