//! Seeded synthetic graph generators.
//!
//! The paper evaluates on SNAP / WebGraph datasets that are not shipped with
//! this repository; these generators produce graphs with the degree
//! *distribution shapes* that drive the paper's findings (see
//! [`crate::datasets`] for the tuned analogues). All generators are
//! deterministic in their seed.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::edgelist::EdgeList;

/// Uniform random graph `G(n, m)`: `m` distinct undirected edges chosen
/// uniformly among all pairs. Degrees concentrate around `2m/n` — the
/// "near-uniform" regime of the friendster-like dataset.
pub fn gnm(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 2 || m == 0, "need at least two vertices for edges");
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(max_edges);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(m * 2);
    let mut el = EdgeList::new(n);
    while seen.len() < m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if seen.insert(e) {
            el.push(e.0, e.1);
        }
    }
    el.normalize();
    el
}

/// Chung–Lu power-law graph: vertex `i` gets weight `(i+1)^(-1/(γ-1))` and
/// edges are sampled with endpoint probability proportional to weight, until
/// `n · avg_deg / 2` distinct edges exist. Produces the heavy-tailed degree
/// distributions of social graphs (LJ/OR/TW-like); smaller `gamma` → heavier
/// tail → more degree-skewed intersections.
pub fn chung_lu(n: usize, avg_deg: f64, gamma: f64, seed: u64) -> EdgeList {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(n >= 2);
    let target_m = ((n as f64 * avg_deg) / 2.0).round() as usize;
    let max_edges = n * (n - 1) / 2;
    let target_m = target_m.min(max_edges);
    let alpha = 1.0 / (gamma - 1.0);
    // Cumulative weights for O(log n) endpoint sampling.
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        total += ((i + 1) as f64).powf(-alpha);
        cum.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sample = |rng: &mut StdRng| -> u32 {
        let x: f64 = rng.gen::<f64>() * total;
        cum.partition_point(|&c| c < x) as u32
    };
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(target_m * 2);
    let mut el = EdgeList::new(n);
    // Collision-heavy distributions may stall; bound the attempts.
    let max_attempts = target_m.saturating_mul(50).max(1000);
    let mut attempts = 0usize;
    while seen.len() < target_m && attempts < max_attempts {
        attempts += 1;
        let u = sample(&mut rng).min(n as u32 - 1);
        let v = sample(&mut rng).min(n as u32 - 1);
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if seen.insert(e) {
            el.push(e.0, e.1);
        }
    }
    el.normalize();
    el
}

/// R-MAT recursive-matrix graph (Chakrabarti et al.). `scale` gives
/// `n = 2^scale` vertices; `edge_factor` gives `m ≈ n · edge_factor`
/// undirected edges. The canonical skew parameters are
/// `(a, b, c) = (0.57, 0.19, 0.19)`.
pub fn rmat(scale: u32, edge_factor: usize, a: f64, b: f64, c: f64, seed: u64) -> EdgeList {
    assert!(a + b + c < 1.0, "a+b+c must leave room for d");
    let n = 1usize << scale;
    let target_m = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(target_m * 2);
    let mut el = EdgeList::new(n);
    let max_attempts = target_m.saturating_mul(50).max(1000);
    let mut attempts = 0usize;
    while seen.len() < target_m && attempts < max_attempts {
        attempts += 1;
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            let x: f64 = rng.gen();
            let (du, dv) = if x < a {
                (0, 0)
            } else if x < a + b {
                (0, 1)
            } else if x < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u == v {
            continue;
        }
        let e = (u.min(v), u.max(v));
        if seen.insert(e) {
            el.push(e.0, e.1);
        }
    }
    el.normalize();
    el
}

/// Web-like graph with a few extreme hubs (the WI dataset's max degree is
/// 1.2 M at an average of 28): `hubs` vertices are connected to a large
/// random fraction `hub_coverage` of all vertices; the remaining edges form
/// a power-law body.
pub fn hub_web(n: usize, avg_deg: f64, hubs: usize, hub_coverage: f64, seed: u64) -> EdgeList {
    assert!(hubs < n);
    assert!((0.0..=1.0).contains(&hub_coverage));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    // Hub edges: hub h attaches to each other vertex with prob hub_coverage.
    for h in 0..hubs as u32 {
        for v in 0..n as u32 {
            if v != h && rng.gen::<f64>() < hub_coverage {
                let e = (h.min(v), h.max(v));
                if seen.insert(e) {
                    el.push(e.0, e.1);
                }
            }
        }
    }
    // Body: power-law graph over the non-hub vertices.
    let body = chung_lu(n, avg_deg, 2.2, seed ^ 0x9e37_79b9);
    for (u, v) in body.iter() {
        let e = (u.min(v), u.max(v));
        if seen.insert(e) {
            el.push(e.0, e.1);
        }
    }
    el.normalize();
    el
}

/// Barabási–Albert preferential attachment: start from a small clique and
/// attach each new vertex to `m_attach` existing vertices chosen
/// proportionally to their current degree. Produces γ ≈ 3 power-law tails
/// with a naturally *degree-descending-ish* id order (old vertices are the
/// hubs) — the opposite of what BMP wants after relabeling, making it a
/// useful reorder-ablation input.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> EdgeList {
    assert!(m_attach >= 1);
    assert!(n > m_attach + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut el = EdgeList::new(n);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m_attach);
    // Seed clique of m_attach + 1 vertices.
    for u in 0..=m_attach as u32 {
        for v in (u + 1)..=m_attach as u32 {
            el.push(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in (m_attach + 1)..n {
        let v = v as u32;
        let mut chosen: Vec<u32> = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while chosen.len() < m_attach && guard < 100 * m_attach {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            el.push(t.min(v), t.max(v));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    el.normalize();
    el
}

/// Complete graph `K_n` (every pair connected) — worst-case density.
pub fn complete(n: usize) -> EdgeList {
    let mut el = EdgeList::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            el.push(u, v);
        }
    }
    el
}

/// Simple path `0-1-2-…-(n-1)` — no triangles, all counts zero.
pub fn path(n: usize) -> EdgeList {
    let mut el = EdgeList::new(n);
    for u in 1..n as u32 {
        el.push(u - 1, u);
    }
    el
}

/// Star graph with center `0` — maximal skew, all counts zero.
pub fn star(n: usize) -> EdgeList {
    let mut el = EdgeList::new(n);
    for v in 1..n as u32 {
        el.push(0, v);
    }
    el
}

/// Streaming Chung–Lu power-law writer: sample `n · avg_deg / 2` weighted
/// pairs and emit them as SNAP text straight to `writer`, without ever
/// holding the edge set in memory — resident state is the O(|V|) cumulative
/// weight table and the RNG, so multi-hundred-million-edge inputs for the
/// bounded-memory preparation pipeline ([`crate::stream`]) can be produced
/// on machines that could never hold them as an [`EdgeList`].
///
/// Unlike [`chung_lu`] there is **no** in-process deduplication: self-loops
/// are skipped at the sampler, but duplicate pairs go to disk and are merged
/// by whatever normalizes downstream (the streaming preparation's external
/// sort, [`EdgeList::normalize`], …). Deterministic in `seed`; returns the
/// number of edge lines written.
pub fn stream_power_law<W: std::io::Write>(
    n: usize,
    avg_deg: f64,
    gamma: f64,
    seed: u64,
    writer: W,
) -> std::io::Result<u64> {
    use std::io::Write;

    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(n >= 2);
    let target_m = ((n as f64 * avg_deg) / 2.0).round() as u64;
    let alpha = 1.0 / (gamma - 1.0);
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        total += ((i + 1) as f64).powf(-alpha);
        cum.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let sample = |rng: &mut StdRng| -> u32 {
        let x: f64 = rng.gen::<f64>() * total;
        (cum.partition_point(|&c| c < x) as u32).min(n as u32 - 1)
    };
    let mut w = std::io::BufWriter::new(writer);
    writeln!(
        w,
        "# stream_power_law n={n} target_m={target_m} gamma={gamma} seed={seed}"
    )?;
    let mut written = 0u64;
    while written < target_m {
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        if u == v {
            continue;
        }
        writeln!(w, "{u} {v}")?;
        written += 1;
    }
    w.flush()?;
    Ok(written)
}

/// Two-level "clique of cliques": `k` cliques of size `s`, consecutive
/// cliques bridged by one edge. Rich in triangles, useful for verification.
pub fn clique_chain(k: usize, s: usize) -> EdgeList {
    let n = k * s;
    let mut el = EdgeList::new(n);
    for c in 0..k {
        let base = (c * s) as u32;
        for i in 0..s as u32 {
            for j in (i + 1)..s as u32 {
                el.push(base + i, base + j);
            }
        }
        if c + 1 < k {
            el.push(base + s as u32 - 1, base + s as u32);
        }
    }
    el
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    #[test]
    fn gnm_deterministic_and_sized() {
        let a = gnm(100, 300, 42);
        let b = gnm(100, 300, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        let c = gnm(100, 300, 43);
        assert_ne!(a, c, "different seeds give different graphs");
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let el = gnm(5, 100, 1);
        assert_eq!(el.len(), 10);
    }

    #[test]
    fn chung_lu_is_heavy_tailed() {
        let el = chung_lu(2000, 10.0, 2.0, 7);
        let g = CsrGraph::from_edge_list(&el);
        let max_d = (0..2000u32).map(|u| g.degree(u)).max().unwrap();
        let avg = g.num_directed_edges() as f64 / 2000.0;
        assert!(
            max_d as f64 > 6.0 * avg,
            "power law should produce hubs: max={max_d} avg={avg:.1}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn rmat_valid_and_deterministic() {
        let el = rmat(9, 8, 0.57, 0.19, 0.19, 11);
        let g = CsrGraph::from_edge_list(&el);
        g.validate().unwrap();
        assert_eq!(el, rmat(9, 8, 0.57, 0.19, 0.19, 11));
        assert!(g.num_vertices() == 512);
    }

    #[test]
    fn hub_web_has_extreme_hub() {
        let el = hub_web(3000, 6.0, 2, 0.5, 5);
        let g = CsrGraph::from_edge_list(&el);
        let hub_deg = g.degree(0).max(g.degree(1));
        assert!(
            hub_deg > 1000,
            "hub should touch ~half the graph, got {hub_deg}"
        );
        g.validate().unwrap();
    }

    #[test]
    fn structured_generators() {
        assert_eq!(complete(6).len(), 15);
        assert_eq!(path(6).len(), 5);
        assert_eq!(star(6).len(), 5);
        let cc = clique_chain(3, 4);
        // 3 cliques of C(4,2)=6 edges plus 2 bridges.
        assert_eq!(cc.len(), 3 * 6 + 2);
        CsrGraph::from_edge_list(&cc).validate().unwrap();
    }

    #[test]
    fn barabasi_albert_shape() {
        let el = barabasi_albert(2000, 4, 8);
        let g = CsrGraph::from_edge_list(&el);
        g.validate().unwrap();
        // Roughly m edges per new vertex.
        assert!(el.len() >= 1990 * 4 - 100, "len={}", el.len());
        // Early vertices are hubs.
        let early_max = (0..10u32).map(|u| g.degree(u)).max().unwrap();
        let late_max = (1900..2000u32).map(|u| g.degree(u)).max().unwrap();
        assert!(
            early_max > 5 * late_max,
            "preferential attachment must make old vertices hubs: {early_max} vs {late_max}"
        );
        assert_eq!(el, barabasi_albert(2000, 4, 8), "deterministic");
    }

    #[test]
    fn stream_power_law_is_deterministic_text() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        let wrote = stream_power_law(500, 8.0, 2.2, 17, &mut a).unwrap();
        stream_power_law(500, 8.0, 2.2, 17, &mut b).unwrap();
        assert_eq!(a, b, "same seed, same bytes");
        assert_eq!(wrote, (500.0 * 8.0 / 2.0) as u64);
        // The emitted text parses through the normal reader; normalization
        // merges the duplicates the streaming writer deliberately keeps.
        let el = crate::io::read_edge_list(a.as_slice()).unwrap();
        assert!(el.is_normalized());
        assert!(el.len() <= wrote as usize);
        assert!(el.len() > wrote as usize / 2, "mostly distinct pairs");
        CsrGraph::from_edge_list(&el).validate().unwrap();
    }

    #[test]
    fn generators_produce_symmetric_csr() {
        for el in [
            gnm(64, 200, 1),
            chung_lu(64, 6.0, 2.3, 2),
            rmat(6, 4, 0.57, 0.19, 0.19, 3),
            hub_web(64, 4.0, 1, 0.4, 4),
            barabasi_albert(64, 3, 5),
        ] {
            CsrGraph::from_edge_list(&el).validate().unwrap();
        }
    }
}
