//! Property-based tests for the graph substrate.

use cnc_graph::{generators, io, reorder, CsrGraph, EdgeList};
use proptest::prelude::*;

/// Strategy: an arbitrary raw pair list over up to `n` vertices.
fn pairs(n: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn csr_from_arbitrary_pairs_is_valid(ps in pairs(64, 300)) {
        let el = EdgeList::from_pairs(ps);
        let g = CsrGraph::from_edge_list(&el);
        prop_assert!(g.validate().is_ok());
        // Each undirected edge appears exactly twice in dst.
        prop_assert_eq!(g.num_directed_edges(), 2 * el.len());
    }

    #[test]
    fn edge_offsets_are_inverse_of_dst(ps in pairs(48, 200)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        for (eid, u, v) in g.iter_edges() {
            prop_assert_eq!(g.edge_offset(u, v), Some(eid));
            let rev = g.reverse_offset(u, eid);
            prop_assert_eq!(g.dst()[rev], u);
            prop_assert_eq!(g.reverse_offset(v, rev), eid);
        }
    }

    #[test]
    fn find_src_correct_from_any_hint(ps in pairs(48, 200), hint in 0u32..48) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        prop_assume!(g.num_directed_edges() > 0);
        let hint = hint.min(g.num_vertices() as u32 - 1);
        for (eid, u, _) in g.iter_edges() {
            let mut h = hint;
            prop_assert_eq!(g.find_src(eid, &mut h), u);
        }
    }

    #[test]
    fn relabel_preserves_degree_multiset(ps in pairs(40, 150)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let r = reorder::degree_descending(&g);
        prop_assert!(reorder::is_degree_descending(&r.graph));
        let mut before: Vec<usize> = (0..g.num_vertices() as u32).map(|u| g.degree(u)).collect();
        let mut after: Vec<usize> =
            (0..r.graph.num_vertices() as u32).map(|u| r.graph.degree(u)).collect();
        before.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(before, after);
    }

    #[test]
    fn relabel_preserves_adjacency(ps in pairs(32, 120)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let r = reorder::degree_descending(&g);
        for u in 0..g.num_vertices() as u32 {
            for v in 0..g.num_vertices() as u32 {
                let before = g.edge_offset(u, v).is_some();
                let after = r.graph.edge_offset(r.to_new(u), r.to_new(v)).is_some();
                prop_assert_eq!(before, after, "adjacency changed for ({}, {})", u, v);
            }
        }
    }

    #[test]
    fn binary_roundtrip_arbitrary(ps in pairs(64, 300)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let mut buf = Vec::new();
        io::write_csr(&g, &mut buf).unwrap();
        let back = io::read_csr(buf.as_slice()).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn text_roundtrip_arbitrary(ps in pairs(64, 300)) {
        let el = EdgeList::from_pairs(ps);
        let mut buf = Vec::new();
        io::write_edge_list(&el, &mut buf).unwrap();
        let back = io::read_edge_list(buf.as_slice()).unwrap();
        // Vertex count can shrink (isolated top ids are not represented in
        // text), but the edges are identical.
        prop_assert_eq!(el.edges, back.edges);
    }

    #[test]
    fn gnm_has_exact_edge_count(n in 4usize..64, m in 0usize..100, seed in 0u64..50) {
        let el = generators::gnm(n, m, seed);
        let max = n * (n - 1) / 2;
        prop_assert_eq!(el.len(), m.min(max));
        prop_assert!(CsrGraph::from_edge_list(&el).validate().is_ok());
    }
}
