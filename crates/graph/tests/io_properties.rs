//! Property-based tests for the binary graph formats: round trips are
//! lossless, and malformed bytes — truncation or corruption anywhere in the
//! stream — surface as `io::ErrorKind::InvalidData`-style errors, never as
//! panics.

use std::io::ErrorKind;

use cnc_graph::{io, prepare, CsrGraph, EdgeList, PreparedGraph, ReorderPolicy};
use proptest::prelude::*;

/// Strategy: an arbitrary raw pair list over up to `n` vertices.
fn pairs(n: u32, max_len: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn csr_round_trips_exactly(ps in pairs(64, 300)) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let mut buf = Vec::new();
        io::write_csr(&g, &mut buf).unwrap();
        prop_assert_eq!(io::read_csr(buf.as_slice()).unwrap(), g);
    }

    #[test]
    fn counts_round_trip_exactly(counts in prop::collection::vec(any::<u32>(), 0..500)) {
        let mut buf = Vec::new();
        io::write_counts(&counts, &mut buf).unwrap();
        prop_assert_eq!(io::read_counts(buf.as_slice()).unwrap(), counts);
    }

    #[test]
    fn truncated_csr_errors_never_panics(ps in pairs(48, 200), frac in 0.0f64..1.0) {
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let mut buf = Vec::new();
        io::write_csr(&g, &mut buf).unwrap();
        let cut = ((buf.len() as f64) * frac) as usize;
        prop_assume!(cut < buf.len());
        prop_assert!(io::read_csr(buf[..cut].to_vec().as_slice()).is_err());
    }

    #[test]
    fn corrupted_csr_errors_or_stays_valid(
        ps in pairs(48, 200),
        pos in any::<usize>(),
        xor in 1u8..255,
    ) {
        // Flipping any byte must either produce a valid CSR (e.g. a dst id
        // change that keeps all invariants) or a clean InvalidData /
        // UnexpectedEof error — never a panic or an invariant-violating
        // graph.
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let mut buf = Vec::new();
        io::write_csr(&g, &mut buf).unwrap();
        let i = pos % buf.len();
        buf[i] ^= xor;
        match io::read_csr(buf.as_slice()) {
            Ok(back) => prop_assert!(back.validate().is_ok()),
            Err(e) => prop_assert!(
                matches!(e.kind(), ErrorKind::InvalidData | ErrorKind::UnexpectedEof),
                "unexpected error kind {:?}", e.kind()
            ),
        }
    }

    #[test]
    fn truncated_counts_error_never_panic(
        counts in prop::collection::vec(any::<u32>(), 1..200),
        frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        io::write_counts(&counts, &mut buf).unwrap();
        let cut = ((buf.len() as f64) * frac) as usize;
        prop_assume!(cut < buf.len());
        prop_assert!(io::read_counts(buf[..cut].to_vec().as_slice()).is_err());
    }

    #[test]
    fn prepared_round_trips_both_policies(ps in pairs(48, 200), degdesc in any::<bool>()) {
        let policy = if degdesc { ReorderPolicy::DegreeDescending } else { ReorderPolicy::None };
        let g = CsrGraph::from_edge_list(&EdgeList::from_pairs(ps));
        let pg = PreparedGraph::from_csr(g, policy);
        let mut buf = Vec::new();
        prepare::write_prepared(&pg, &mut buf).unwrap();
        let back = prepare::read_prepared(buf.as_slice()).unwrap();
        prop_assert_eq!(back.graph(), pg.graph());
        prop_assert_eq!(back.policy(), policy);
        prop_assert_eq!(back.reordered(), pg.reordered());
    }

    #[test]
    fn truncated_prepared_errors_never_panics(ps in pairs(48, 200), frac in 0.0f64..1.0) {
        let pg = PreparedGraph::from_csr(
            CsrGraph::from_edge_list(&EdgeList::from_pairs(ps)),
            ReorderPolicy::DegreeDescending,
        );
        let mut buf = Vec::new();
        prepare::write_prepared(&pg, &mut buf).unwrap();
        let cut = ((buf.len() as f64) * frac) as usize;
        prop_assume!(cut < buf.len());
        prop_assert!(prepare::read_prepared(buf[..cut].to_vec().as_slice()).is_err());
    }
}

#[test]
fn wrong_magic_is_invalid_data() {
    let g = CsrGraph::from_edge_list(&EdgeList::from_pairs([(0, 1), (1, 2)]));
    let mut buf = Vec::new();
    io::write_csr(&g, &mut buf).unwrap();
    buf[0..8].copy_from_slice(b"NOTMAGIC");
    assert_eq!(
        io::read_csr(buf.as_slice()).unwrap_err().kind(),
        ErrorKind::InvalidData
    );
    let mut cbuf = Vec::new();
    io::write_counts(&[1, 2, 3], &mut cbuf).unwrap();
    cbuf[0..8].copy_from_slice(b"NOTMAGIC");
    assert_eq!(
        io::read_counts(cbuf.as_slice()).unwrap_err().kind(),
        ErrorKind::InvalidData
    );
}
